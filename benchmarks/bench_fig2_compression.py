"""FIG2 — metadata compression field widths (Fig. 2 / Eq. 3-6).

Regenerates the compressed metadata layout: the paper's platform
parameters must give exactly 35/29/20/44, and the workload census must
stay within the representable ranges.
"""

from repro.core.config import derive_field_widths
from repro.harness.experiments import fig2_compression
from conftest import run_once, save_results


def test_fig2_paper_platform_widths(benchmark):
    """256 GiB + 1 M locks -> the paper's 35/29/20/44 split."""
    widths = benchmark(derive_field_widths, 256 << 30, 1 << 28, 1_000_000)
    assert (widths.base, widths.range, widths.lock, widths.key) == \
        (35, 29, 20, 44)


def test_fig2_census(benchmark):
    """Workload census: measured object sizes / lock usage fit the
    configured widths (paper: >=25 range bits needed for SPEC2006)."""
    data = benchmark.pedantic(
        fig2_compression, kwargs={"scale": "small"},
        rounds=1, iterations=1)
    save_results("fig2_compression", data)
    print()
    print("FIG2 field widths (base/range/lock/key):")
    print(f"  paper platform : {data['paper_platform']}")
    print(f"  paper reference: {data['paper_reference']}")
    print(f"  sim platform   : {data['sim_platform']}")
    print(f"  census         : {data['census']}")
    assert data["paper_platform"] == {"base": 35, "range": 29,
                                      "lock": 20, "key": 44}
    sim = data["sim_platform"]
    assert sim["base"] + sim["range"] == 64
    assert sim["lock"] + sim["key"] == 64
    # Our census must fit comfortably inside the paper layout too.
    assert data["census"]["max_object_bytes"] <= (1 << 29) * 8
