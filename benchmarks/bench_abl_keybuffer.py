"""ABL-KB — keybuffer size sweep (design choice of Section 3.5).

The keybuffer's value: repeated temporal checks to hot locks skip the
DCache key load. Sweeping 0..32 entries shows the hit-rate knee and
diminishing returns beyond a small buffer — why the paper's tiny
TLB-like structure (and its +112 FF budget) is enough.
"""

import pytest

from repro.harness.experiments import abl_keybuffer
from conftest import run_once, save_results

WORKLOADS = ("hmmer", "tsp")
SIZES = (0, 1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def sweep():
    return abl_keybuffer(sizes=SIZES, workloads=WORKLOADS,
                         scale="small")


def test_abl_keybuffer_generate(benchmark):
    data = benchmark.pedantic(
        abl_keybuffer,
        kwargs={"sizes": (0, 8), "workloads": ("hmmer",),
                "scale": "small"},
        rounds=1, iterations=1)
    assert len(data["rows"]) == 2


def test_abl_keybuffer_table(benchmark, sweep):
    def check():
        save_results("abl_keybuffer", sweep)
        print()
        print(f"{'entries':>8s}" + "".join(
            f"{name + ' cyc':>14s}{'hit%':>7s}" for name in WORKLOADS))
        for row in sweep["rows"]:
            line = f"{row['entries']:8d}"
            for name in WORKLOADS:
                line += (f"{row[name]['cycles']:14d}"
                         f"{100 * row[name]['hit_rate']:6.1f}%")
            print(line)
    run_once(benchmark, check)

def test_abl_keybuffer_monotone_value(benchmark, sweep):
    """More entries never hurt; zero entries are strictly worst."""
    def check():
        rows = {row["entries"]: row for row in sweep["rows"]}
        for name in WORKLOADS:
            zero = rows[0][name]["cycles"]
            eight = rows[8][name]["cycles"]
            assert eight < zero, f"{name}: keybuffer gave no benefit"
            assert rows[8][name]["hit_rate"] > 0.5
    run_once(benchmark, check)

def test_abl_keybuffer_diminishing_returns(benchmark, sweep):
    """The knee is early: 16 entries buy little over 8."""
    def check():
        rows = {row["entries"]: row for row in sweep["rows"]}
        for name in WORKLOADS:
            gain_0_8 = rows[0][name]["cycles"] - rows[8][name]["cycles"]
            gain_8_16 = rows[8][name]["cycles"] - rows[16][name]["cycles"]
            assert gain_8_16 <= gain_0_8
    run_once(benchmark, check)

def test_abl_keybuffer_replacement_policy(benchmark):
    """LRU vs FIFO at a small size: LRU never loses, and both beat a
    disabled buffer (the policy matters less than having one at all)."""
    def check():
        data = abl_keybuffer(sizes=(0, 2), workloads=("hmmer",),
                             scale="small", policies=("lru", "fifo"))
        rows = {(row["policy"], row["entries"]): row["hmmer"]
                for row in data["rows"]}
        assert rows[("lru", 2)]["cycles"] <= rows[("fifo", 2)]["cycles"]
        assert rows[("fifo", 2)]["cycles"] <= rows[("fifo", 0)]["cycles"]
    run_once(benchmark, check)
