"""ABL-LMSM — SBCETS trie vs linear-mapped shadow memory (Section 2).

The paper argues a linear map is more hardware-friendly; in software
the trie pays a two-level walk per metadata operation. Comparing the
two SBCETS runtimes isolates that cost.
"""

import pytest

from repro.harness.experiments import abl_shadow_map
from conftest import run_once, save_results

WORKLOADS = ("tsp", "health")


@pytest.fixture(scope="module")
def data():
    return abl_shadow_map(workloads=WORKLOADS, scale="small")


def test_abl_shadow_generate(benchmark):
    out = benchmark.pedantic(
        abl_shadow_map, kwargs={"workloads": ("tsp",),
                                "scale": "small"},
        rounds=1, iterations=1)
    assert out["rows"]


def test_abl_shadow_table(benchmark, data):
    def check():
        save_results("abl_shadow", data)
        print()
        print(f"{'workload':10s}{'trie oh':>12s}{'linear oh':>12s}")
        for row in data["rows"]:
            print(f"{row['workload']:10s}{row['trie_oh']:11.1f}%"
                  f"{row['linear_oh']:11.1f}%")
    run_once(benchmark, check)

def test_abl_trie_costs_more(benchmark, data):
    """The trie walk makes software metadata ops strictly slower."""
    def check():
        for row in data["rows"]:
            assert row["trie_oh"] > row["linear_oh"], row
    run_once(benchmark, check)
