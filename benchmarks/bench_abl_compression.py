"""ABL-COMP — 128-bit compressed vs 256-bit uncompressed metadata.

The compression scheme (Section 3.3) halves the through-memory metadata
traffic: compare HWST128 (compressed, 2 x 64-bit shadow ops per
pointer move) against the WDL-wide datapath (uncompressed 256-bit
metadata, 32-byte shadow ops).
"""

import pytest

from repro.harness.experiments import abl_compression
from conftest import run_once, save_results

WORKLOADS = ("tsp", "health")


@pytest.fixture(scope="module")
def data():
    return abl_compression(workloads=WORKLOADS, scale="small")


def test_abl_compression_generate(benchmark):
    out = benchmark.pedantic(
        abl_compression, kwargs={"workloads": ("tsp",),
                                 "scale": "small"},
        rounds=1, iterations=1)
    assert out["rows"]


def test_abl_compression_table(benchmark, data):
    def check():
        save_results("abl_compression", data)
        print()
        print(f"{'workload':10s}{'compressed oh':>15s}"
              f"{'uncompressed oh':>17s}{'shadow bytes c/u':>20s}")
        for row in data["rows"]:
            print(f"{row['workload']:10s}{row['compressed_oh']:14.1f}%"
                  f"{row['uncompressed_oh']:16.1f}%"
                  f"{row['compressed_shadow_bytes']:>10d}/"
                  f"{row['uncompressed_shadow_bytes']:<9d}")
    run_once(benchmark, check)

def test_abl_compression_halves_traffic(benchmark, data):
    """Compressed metadata moves ~half the shadow bytes."""
    def check():
        for row in data["rows"]:
            ratio = row["uncompressed_shadow_bytes"] / \
                max(row["compressed_shadow_bytes"], 1)
            assert ratio > 1.5, row
    run_once(benchmark, check)

def test_abl_compression_is_faster(benchmark, data):
    def check():
        for row in data["rows"]:
            assert row["compressed_oh"] < row["uncompressed_oh"], row
    run_once(benchmark, check)
