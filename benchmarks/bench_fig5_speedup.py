"""FIG5 — speedup factors over SBCETS (BOGO / WDL / HWST128).

The paper's BOGO and WatchdogLite bars are literature numbers measured
on x86 against x86 SBCETS; here the mechanisms are re-implemented on
the simulated RISC-V pipeline, so measured levels differ (see
EXPERIMENTS.md) while the headline — HWST128 is the fastest, with
bzip2/hmmer the standout temporal-heavy wins — must hold.
"""

import pytest

from repro.harness.experiments import fig5_speedup
from conftest import run_once, save_results

SUBSET = ["milc", "lbm", "sjeng", "bzip2", "hmmer"]


@pytest.fixture(scope="module")
def fig5_data():
    return fig5_speedup(scale="small", workloads=SUBSET)


def test_fig5_generate(benchmark):
    data = benchmark.pedantic(
        fig5_speedup, kwargs={"scale": "small", "workloads": ["hmmer"]},
        rounds=1, iterations=1)
    assert data["rows"]


def test_fig5_table(benchmark, fig5_data):
    def check():
        data = fig5_data
        save_results("fig5_speedup", data)
        print()
        header = f"{'workload':12s}" + "".join(
            f"{s:>14s}" for s in ("bogo", "wdl_narrow", "wdl_wide",
                                  "hwst128_tchk"))
        print(header)
        for row in data["rows"]:
            print(f"{row['workload']:12s}" + "".join(
                f"{row[s]:13.2f}x" for s in ("bogo", "wdl_narrow",
                                             "wdl_wide", "hwst128_tchk")))
        geomean = data["geomean"]
        print(f"{'GEOMEAN':12s}" + "".join(
            f"{geomean[s]:13.2f}x" for s in ("bogo", "wdl_narrow",
                                             "wdl_wide", "hwst128_tchk")))
        paper = data["paper_geomean"]
        print(f"{'paper':12s}" + "".join(
            f"{paper[s]:13.2f}x" for s in ("bogo", "wdl_narrow",
                                           "wdl_wide", "hwst128_tchk")))
    run_once(benchmark, check)

def test_fig5_all_accelerators_beat_software(benchmark, fig5_data):
    def check():
        for scheme, value in fig5_data["geomean"].items():
            assert value > 1.0, f"{scheme} slower than SBCETS"
    run_once(benchmark, check)

def test_fig5_hwst_is_fastest(benchmark, fig5_data):
    def check():
        geomean = fig5_data["geomean"]
        assert geomean["hwst128_tchk"] == max(geomean.values())
        assert geomean["hwst128_tchk"] > 2.0
    run_once(benchmark, check)

def test_fig5_temporal_heavy_standouts(benchmark, fig5_data):
    """Paper Sec. 5.1: bzip2 (7.98x) and hmmer (7.78x) benefit most —
    their per-block/per-sequence churn makes temporal checking the
    bottleneck, which the keybuffer removes."""
    def check():
        rows = {row["workload"]: row for row in fig5_data["rows"]}
        others = [rows[n]["hwst128_tchk"] for n in rows
                  if n not in ("bzip2", "hmmer")]
        assert rows["bzip2"]["hwst128_tchk"] > max(others)
        assert rows["hmmer"]["hwst128_tchk"] > min(others)
    run_once(benchmark, check)

def test_fig5_wdl_wide_beats_narrow(benchmark, fig5_data):
    def check():
        geomean = fig5_data["geomean"]
        assert geomean["wdl_wide"] > geomean["wdl_narrow"]
    run_once(benchmark, check)
