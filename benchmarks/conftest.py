"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_*`` file regenerates one paper artefact (figure/table) at
a reduced scale so ``pytest benchmarks/ --benchmark-only`` stays
laptop-friendly; the full-scale runs are the ``repro.harness.experiments``
CLI (see EXPERIMENTS.md). Results are also written to
``benchmarks/results/*.json`` for inspection.
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_results(name: str, data):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, default=str)
    return path


@pytest.fixture
def results_saver():
    return save_results


def run_once(benchmark, fn, *args, **kwargs):
    """Register ``fn`` with pytest-benchmark, executed exactly once.

    Used for validation/table tests so the whole suite runs under
    ``--benchmark-only`` (which skips tests without the fixture).
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
