"""TAB-HW — Section 5.3 hardware cost (+LUTs/+FFs/critical path)."""

import pytest

from repro.core.config import HwstConfig
from repro.harness.experiments import hwcost_table
from conftest import run_once, save_results


@pytest.fixture(scope="module")
def cost_data():
    return hwcost_table()


def test_hwcost_generate(benchmark):
    data = benchmark(hwcost_table)
    assert data["added_luts"] > 0


def test_hwcost_table(benchmark, cost_data):
    def check():
        save_results("hwcost", cost_data)
        print()
        print(cost_data["table"])
        paper = cost_data["paper"]
        print(f"paper: +{paper['luts']} LUTs (+{paper['lut_pct']}%), "
              f"+{paper['ffs']} FFs (+{paper['ff_pct']}%), "
              f"{paper['cp_before']} -> {paper['cp_after']} ns")
    run_once(benchmark, check)

def test_hwcost_matches_paper(benchmark, cost_data):
    def check():
        paper = cost_data["paper"]
        assert cost_data["added_luts"] == pytest.approx(paper["luts"],
                                                        rel=0.05)
        assert cost_data["added_ffs"] == pytest.approx(paper["ffs"],
                                                       rel=0.10)
        assert cost_data["lut_overhead_pct"] == pytest.approx(
            paper["lut_pct"], abs=0.25)
        assert cost_data["ff_overhead_pct"] == pytest.approx(
            paper["ff_pct"], abs=0.10)
        assert cost_data["critical_path_after_ns"] == pytest.approx(
            paper["cp_after"], abs=0.15)
    run_once(benchmark, check)

def test_hwcost_scales_with_keybuffer(benchmark):
    def check():
        small = hwcost_table(HwstConfig(keybuffer_entries=2))
        large = hwcost_table(HwstConfig(keybuffer_entries=32))
        assert large["added_luts"] > small["added_luts"]
    run_once(benchmark, check)
