"""FIG6 — Juliet security coverage of GCC / ASAN / SBCETS / HWST128.

Runs a stratified sample of the generated corpus (proportions preserved,
so expected percentages match the full corpus) under all four schemes
and compares against the paper's coverage.
"""

import pytest

from repro.harness.experiments import fig6_coverage
from repro.workloads.juliet import corpus_counts
from conftest import run_once, save_results

FRACTION = 0.012


@pytest.fixture(scope="module")
def fig6_data():
    return fig6_coverage(fraction=FRACTION)


def test_fig6_corpus_counts(benchmark):
    """Section 4: 7074 spatial + 1292 temporal = 8366 cases."""
    def check():
        counts = corpus_counts()
        assert counts["spatial"] == 7074
        assert counts["temporal"] == 1292
        assert counts["total"] == 8366
    run_once(benchmark, check)

def test_fig6_generate(benchmark):
    data = benchmark.pedantic(
        fig6_coverage,
        kwargs={"fraction": 0.003, "schemes": ("gcc",)},
        rounds=1, iterations=1)
    assert "coverage" in data


def test_fig6_table(benchmark, fig6_data):
    def check():
        save_results("fig6_coverage", fig6_data)
        print()
        print(fig6_data["table"])
    run_once(benchmark, check)

def test_fig6_coverage_close_to_paper(benchmark, fig6_data):
    """Sampled coverage within a few points of Fig. 6."""
    def check():
        coverage = fig6_data["coverage"]
        paper = fig6_data["paper_coverage"]
        for scheme, expected in paper.items():
            assert abs(coverage[scheme] - expected) < 8.0, \
                f"{scheme}: {coverage[scheme]:.1f}% vs paper {expected}%"
    run_once(benchmark, check)

def test_fig6_orderings(benchmark, fig6_data):
    """SBCETS >= HWST128 > ASAN >> GCC (Fig. 6 structure)."""
    def check():
        coverage = fig6_data["coverage"]
        assert coverage["sbcets"] >= coverage["hwst128_tchk"]
        assert coverage["hwst128_tchk"] > coverage["asan"]
        assert coverage["asan"] > coverage["gcc"]
    run_once(benchmark, check)

def test_fig6_asan_misses_cwe690(benchmark, fig6_data):
    """The paper's singled-out difference: ASAN detects none of
    CWE690 (NULL deref from return with mapped offsets)."""
    def check():
        assert fig6_data["per_cwe"]["asan"].get(690, 0.0) == 0.0
        assert fig6_data["per_cwe"]["sbcets"].get(690, 0.0) == 100.0
    run_once(benchmark, check)

def test_fig6_hwst_trails_sbcets_only_on_cwe122(benchmark, fig6_data):
    """HWST128's only deficit vs SBCETS is CWE122 (compression
    padding on odd-sized heap objects)."""
    def check():
        sbcets = fig6_data["per_cwe"]["sbcets"]
        hwst = fig6_data["per_cwe"]["hwst128_tchk"]
        for cwe in sbcets:
            if cwe == 122:
                assert hwst[cwe] <= sbcets[cwe]
            else:
                assert abs(hwst[cwe] - sbcets[cwe]) < 1e-9, cwe
    run_once(benchmark, check)
