"""FIG4 — performance overhead of SBCETS / HWST128 / HWST128_tchk.

Regenerates the Fig. 4 series on a representative workload subset at
small scale (full suite: ``python -m repro.harness.experiments fig4``).
Checks the calibrated shape: ordering SBCETS >> HWST128 > HWST128_tchk
per workload, and geomeans in the calibrated bands recorded in
EXPERIMENTS.md.
"""

import pytest

from repro.harness.experiments import fig4_overhead
from conftest import run_once, save_results

SUBSET = ["stringsearch", "sha", "treeadd", "tsp", "health",
          "lbm", "bzip2", "hmmer"]


@pytest.fixture(scope="module")
def fig4_data():
    return fig4_overhead(scale="small", workloads=SUBSET,
                         collect_metrics=True)


def test_fig4_generate(benchmark, fig4_data):
    data = benchmark.pedantic(
        fig4_overhead,
        kwargs={"scale": "small", "workloads": ["treeadd"]},
        rounds=1, iterations=1)
    assert data["rows"]


def test_fig4_table(benchmark, fig4_data):
    def check():
        data = fig4_data
        save_results("fig4_overhead", data)
        print()
        print(f"{'workload':14s}{'sbcets':>12s}{'hwst128':>12s}"
              f"{'hwst_tchk':>12s}{'tchk+elide':>12s}{'elided':>8s}")
        for row in data["rows"]:
            print(f"{row['workload']:14s}{row['sbcets']:11.1f}%"
                  f"{row['hwst128']:11.1f}%{row['hwst128_tchk']:11.1f}%"
                  f"{row['hwst128_tchk_elide']:11.1f}%"
                  f"{row['checks_elided']:8d}")
        print(f"{'GEOMEAN':14s}{data['geomean']['sbcets']:11.1f}%"
              f"{data['geomean']['hwst128']:11.1f}%"
              f"{data['geomean']['hwst128_tchk']:11.1f}%"
              f"{data['geomean']['hwst128_tchk_elide']:11.1f}%")
        print(f"{'paper':14s}{441.45:11.1f}%{152.91:11.1f}%{94.89:11.1f}%")
    run_once(benchmark, check)


def test_fig4_check_elision(benchmark, fig4_data):
    """--elide-checks must prove checks away on real workloads and
    never run slower than the un-elided tchk build."""
    def check():
        wins = 0
        for row in fig4_data["rows"]:
            assert row["hwst128_tchk_elide"] <= row["hwst128_tchk"] \
                + 1e-9, row
            if row["checks_elided"] > 0 and \
                    row["hwst128_tchk_elide"] < row["hwst128_tchk"]:
                wins += 1
        assert wins > 0, "no workload had any check elided"
    run_once(benchmark, check)

def test_fig4_per_workload_ordering(benchmark, fig4_data):
    """Every workload: software >> hardware > hardware+tchk."""
    def check():
        for row in fig4_data["rows"]:
            assert row["sbcets"] > row["hwst128"], row
            assert row["hwst128"] >= row["hwst128_tchk"], row
            assert row["hwst128_tchk"] >= 0, row
    run_once(benchmark, check)

def test_fig4_geomean_bands(benchmark, fig4_data):
    """Shape check: SBCETS in the several-hundred-percent band, the
    hardware variants roughly an order of magnitude lower."""
    def check():
        geomean = fig4_data["geomean"]
        assert 200 <= geomean["sbcets"] <= 900
        assert 30 <= geomean["hwst128"] <= 300
        assert 10 <= geomean["hwst128_tchk"] <= 200
        # tchk buys a clear further reduction (the keybuffer's value).
        assert geomean["hwst128_tchk"] < geomean["hwst128"]
    run_once(benchmark, check)

def test_fig4_speedup_over_software(benchmark, fig4_data):
    """The headline: HWST128 is ~3.7x faster than SBCETS (Sec. 5.1)."""
    def check():
        geomean = fig4_data["geomean"]
        factor = (1 + geomean["sbcets"] / 100) / \
            (1 + geomean["hwst128_tchk"] / 100)
        assert factor > 2.0, f"hardware speedup collapsed: {factor:.2f}x"
    run_once(benchmark, check)

def test_fig4_metric_snapshots(benchmark, fig4_data):
    """Per-run metric snapshots ride along with the overhead rows: the
    tchk runs must show keybuffer traffic and every run a consistent
    cycle count between the registry and the headline number."""
    def check():
        saved = []
        for row in fig4_data["rows"]:
            snaps = row["metrics"]
            assert set(snaps) == {"baseline", "sbcets", "hwst128",
                                  "hwst128_tchk", "hwst128_tchk_elide"}
            tchk = snaps["hwst128_tchk"]
            assert tchk["sim.kb.hits"] + tchk["sim.kb.misses"] > 0, row
            for scheme, snap in snaps.items():
                assert snap["sim.cycles"] == snap["pipeline.cycles"], \
                    (row["workload"], scheme)
            saved.append({"workload": row["workload"],
                          "hwst128_tchk": tchk})
        save_results("fig4_metrics", saved)
    run_once(benchmark, check)
