"""BENCH — the simulator's own performance trajectory.

Runs a reduced slice of the ``repro bench`` scenario suite (see
EXPERIMENTS.md "BENCH") under pytest-benchmark, validates the
``repro.bench/v1`` envelope invariants, and exercises the regression
gate both ways (clean self-comparison, tripped perturbed copy).
Results land in ``benchmarks/results/bench_trajectory.json`` — the
full per-PR baseline is ``BENCH_SIM.json`` at the repo root.
"""

import copy

from repro.obs.bench import (
    envelope_to_json, run_bench, strip_measured,
)
from repro.obs.compare import compare_envelopes
from conftest import save_results

SCENARIOS = ["sha/baseline", "sha/hwst128_tchk", "treeadd/baseline",
             "treeadd/hwst128_tchk"]


def test_bench_trajectory(benchmark):
    envelope = benchmark.pedantic(
        run_bench, kwargs={"scenarios": SCENARIOS, "reps": 2,
                           "seed": 7},
        rounds=1, iterations=1)
    save_results("bench_trajectory", envelope)
    print()
    print("BENCH guest-MIPS medians (reps=2):")
    for name in SCENARIOS:
        measured = envelope["scenarios"][name]["measured"]
        mips = measured["guest_mips"]
        wall = measured["wall_ms"]
        print(f"  {name:<22} {mips['median']:>7.2f} MIPS  "
              f"{wall['median']:>8.2f} ms ±{wall['iqr']:.2f}")
    # instrumented runs do strictly more guest work than baseline
    for workload in ("sha", "treeadd"):
        base = envelope["scenarios"][f"{workload}/baseline"]
        tchk = envelope["scenarios"][f"{workload}/hwst128_tchk"]
        assert tchk["guest_instructions"] > base["guest_instructions"]
        assert tchk["guest_cycles"] > base["guest_cycles"]
    # the deterministic skeleton reproduces at the same seed
    again = run_bench(scenarios=SCENARIOS[:1], reps=1, seed=7)
    assert strip_measured(again)["scenarios"]["sha/baseline"] == \
        strip_measured(envelope)["scenarios"]["sha/baseline"]
    assert envelope_to_json(envelope)   # serialises cleanly


def test_bench_gate_round_trip(benchmark):
    envelope = benchmark.pedantic(
        run_bench, kwargs={"scenarios": SCENARIOS[:1], "reps": 1,
                           "seed": 7},
        rounds=1, iterations=1)
    assert compare_envelopes(envelope, envelope).ok
    slow = copy.deepcopy(envelope)
    band = slow["scenarios"][SCENARIOS[0]]["measured"]["wall_ms"]
    band["median"] *= 3.0
    band["iqr"] = 0.01
    comparison = compare_envelopes(envelope, slow)
    assert not comparison.ok
    assert "REGRESSED" in comparison.table()
