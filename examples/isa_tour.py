"""Hand-written HWST128 assembly: the metadata flows of Fig. 1.

Walks the paper's Figure 1 with real instructions on the simulator:

  (a) metadata create + bind (`bndrs`/`bndrt`) and the fused deref check
  (b) in-pipeline propagation (register moves carry the SRF entry)
  (c) through-memory propagation on a pointer store (`sbdl`/`sbdu`)
  (d) through-memory propagation on a pointer load (`lbdls`/`lbdus`)

Run:  python examples/isa_tour.py
"""

from repro.core.config import HwstConfig
from repro.isa.asm import assemble
from repro.sim.machine import Machine
from repro.sim.memory import DEFAULT_LAYOUT
from repro.sim.program import Program

HEAP = DEFAULT_LAYOUT.heap_base
LOCK0 = HwstConfig().lock_base

ASM = f"""
_start:
    # --- (a) metadata create and bind -------------------------------
    # an "allocation" at the start of the heap, 64 bytes
    lui   t0, {HEAP >> 12}          # t0 = pointer (base)
    addi  t1, t0, 64                # t1 = bound
    bndrs t0, t0, t1                # SRF[t0] <- compressed spatial

    lui   t3, {LOCK0 >> 12}         # t3 = lock_location address
    addi  t2, zero, 77              # t2 = unique key
    sd    t2, 0(t3)                 # *lock = key
    bndrt t0, t2, t3                # SRF[t0] <- compressed temporal

    # fused checks on a dereference of t0
    tchk  t0                        # temporal: keybuffer + key compare
    addi  t4, zero, 123
    sd.chk t4, 8(t0)                # spatial check fused with the store

    # --- (b) in-pipeline propagation ---------------------------------
    addi  t5, t0, 16                # pointer arithmetic: SRF follows
    tchk  t5
    ld.chk t6, 0(t5)                # still fully checked

    # --- (c) through-memory propagation: store ----------------------
    addi  s1, t0, 128               # s1 = container address in the heap
    sd    t0, 0(s1)                 # store the pointer itself
    sbdl  t0, 0(s1)                 # store compressed lower half
    sbdu  t0, 0(s1)                 # store compressed upper half

    # --- (d) through-memory propagation: load -----------------------
    ld    s2, 0(s1)                 # reload the pointer
    lbdls s2, 0(s1)                 # reload metadata into SRF[s2]
    lbdus s2, 0(s1)
    tchk  s2
    ld.chk a0, 8(s2)                # reads back the 123 stored above

    # decompressing loads for wrapper code (lbas/lbnd/lkey/lloc)
    lbas  s3, 0(s1)
    lbnd  s4, 0(s1)
    lkey  s5, 0(s1)
    lloc  s6, 0(s1)

    addi  a7, zero, 93              # exit(a0)
    ecall
"""


def main():
    instrs = assemble(ASM, base_pc=DEFAULT_LAYOUT.text_base)
    program = Program(instrs=instrs, entry=DEFAULT_LAYOUT.text_base)
    machine = Machine()
    result = machine.run(program)

    print("Fig. 1 metadata-flow tour")
    print("-" * 60)
    print(f"status     : {result.status} (exit={result.exit_code}; "
          f"the 123 written through the checked store)")
    print(f"instret    : {result.instret}")
    print(f"hwst ops   : {result.stats['hwst_ops']}")
    print(f"keybuffer  : {result.stats['kb_hits']} hits / "
          f"{result.stats['kb_misses']} misses")
    print()
    base, bound, key, lock = machine.srf_metadata(18)  # s2
    print("SRF entry reloaded from shadow memory (step d):")
    print(f"  base={base:#x} bound={bound:#x} key={key} lock={lock:#x}")
    print()
    print("decompressed into GPRs by lbas/lbnd/lkey/lloc:")
    for name, reg in (("base", 19), ("bound", 20), ("key", 21),
                      ("lock", 22)):
        print(f"  {name:5s} = {machine.regs[reg]:#x}")
    print()
    print("now free the object (erase the key) and watch tchk fire:")
    bad = ASM.replace(
        "    addi  a7, zero, 93              # exit(a0)",
        "    sd    zero, 0(t3)               # free: erase the key\n"
        "    tchk  s2                        # dangling pointer!\n"
        "    addi  a7, zero, 93              # exit(a0)")
    instrs = assemble(bad, base_pc=DEFAULT_LAYOUT.text_base)
    result = Machine().run(Program(instrs=instrs,
                                   entry=DEFAULT_LAYOUT.text_base))
    print(f"  -> {result.status}")
    print(f"     {result.detail}")


if __name__ == "__main__":
    main()
