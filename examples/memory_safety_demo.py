"""Detection matrix: classic memory-safety bugs under every scheme.

Reproduces, in miniature, the paper's security story (Section 5.2):
pointer-based schemes catch spatial and temporal violations; the
compression padding makes HWST128 miss sub-8-byte heap overflows that
exact-bounds SBCETS catches; ASAN's redzones miss far out-of-bounds
accesses; GCC's canary only sees contiguous stack smashes.

Run:  python examples/memory_safety_demo.py
"""

from repro.harness.runner import detected, run_program

BUGS = {
    "heap overflow (loop)": r"""
int main(void) {
    long *a = (long*)malloc(4 * sizeof(long));
    int i;
    for (i = 0; i <= 4; i++) { a[i] = i; }
    free(a);
    return 0;
}""",
    "heap off-by-one byte": r"""
int main(void) {
    char *b = (char*)malloc(9);
    b[9] = 1;
    free(b);
    return 0;
}""",
    "stack smash": r"""
int main(void) {
    long buf[4];
    int i;
    for (i = 0; i < 8; i++) { buf[i] = 7; }
    return (int)(buf[0] - 7);
}""",
    "use after free": r"""
int main(void) {
    long *p = (long*)malloc(16);
    p[0] = 5;
    free(p);
    return (int)(p[0] & 0);
}""",
    "double free": r"""
int main(void) {
    long *p = (long*)malloc(16);
    free(p);
    free(p);
    return 0;
}""",
    "null dereference": r"""
int main(void) {
    long *p = 0;
    return (int)(p[0] & 0);
}""",
}

SCHEMES = ("baseline", "sbcets", "hwst128", "hwst128_tchk",
           "bogo", "wdl_narrow", "wdl_wide", "asan", "gcc")


def main():
    width = max(len(name) for name in BUGS) + 2
    print(f"{'bug':{width}s}" + "".join(f"{s[:9]:>11s}" for s in SCHEMES))
    for name, source in BUGS.items():
        row = f"{name:{width}s}"
        for scheme in SCHEMES:
            result = run_program(source, scheme, timing=False,
                                 max_instructions=5_000_000)
            if detected(scheme, result):
                kind = {"spatial_violation": "SPATIAL",
                        "temporal_violation": "TEMPORAL"}.get(
                            result.status, "REPORT")
                row += f"{kind:>11s}"
            else:
                row += f"{'-':>11s}"
        print(row)
    print("\n(SPATIAL/TEMPORAL = hardware/software check fired; "
          "REPORT = sanitizer diagnostic; '-' = undetected)")


if __name__ == "__main__":
    main()
