"""Profile a workload end to end with the repro.obs telemetry stack.

One shared MetricsRegistry is threaded through compile + simulation,
so the compile-phase wall clocks, the instruction-class counters, the
keybuffer/D-cache hit rates and the per-cause cycle breakdown all land
in a single snapshot. A CycleProfiler attributes every modelled cycle
to a function, and a Tracer records structured events that export to
the Chrome trace_event format (load at https://ui.perfetto.dev).

Run:  python examples/profile_workload.py
"""

import json

from repro.obs import CycleProfiler, MetricsRegistry, PhaseTimers, Tracer
from repro.obs.metrics import format_tree
from repro.obs.stats import derived_rates
from repro.pipeline.timing import InOrderPipeline
from repro.schemes import compile_source
from repro.sim.machine import Machine
from repro.workloads import WORKLOADS

WORKLOAD = "treeadd"
SCHEME = "hwst128_tchk"


def main():
    metrics = MetricsRegistry()
    tracer = Tracer(capacity=16384)
    profiler = CycleProfiler()

    # Compiling and running explicitly (rather than run_workload) keeps
    # the Program around — the profiler needs its symbol table to fold
    # PCs onto functions.
    source = WORKLOADS[WORKLOAD].source("small")
    program = compile_source(source, SCHEME,
                             phases=PhaseTimers(metrics=metrics,
                                                tracer=tracer))
    machine = Machine(timing=InOrderPipeline(metrics=metrics),
                      metrics=metrics, tracer=tracer, profiler=profiler)
    result = machine.run(program)
    if not result.ok:
        raise SystemExit(f"{WORKLOAD}/{SCHEME}: {result.status}")

    print(f"=== {WORKLOAD} under {SCHEME}: "
          f"{result.instret} instructions, {result.cycles} cycles ===")

    # 1. Hotspots: which functions burn the cycles?
    report = profiler.report(program)
    print()
    print("hotspot table (per-PC cycle attribution, "
          f"{100 * report.attributed_fraction:.0f}% mapped):")
    print(report.table(limit=8, show_pcs=False))

    # 2. The metric tree with the derived rates the paper quotes.
    print()
    print("metric tree:")
    rates = derived_rates(result.stats, instret=result.instret,
                          cycles=result.cycles)
    print(format_tree(metrics.tree(), derived=rates))

    # 3. The trace exports as Chrome trace_event JSON.
    doc = tracer.to_chrome_dict()
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    cats = sorted({e["cat"] for e in doc["traceEvents"] if "cat" in e})
    print()
    print(f"trace: {len(tracer)} events kept ({tracer.dropped} dropped "
          f"from the ring), categories: {', '.join(cats)}")
    print(f"  {len(spans)} duration spans; first retire span: "
          f"{json.dumps(next(e for e in spans if e['cat'] == 'retire'))}")

    # 4. Snapshots are plain dicts — compare, diff, aggregate.
    snap = result.metrics
    assert snap["sim.kb.hits"] == result.stats["kb_hits"]
    kb_rate = rates["kb_hit_rate"]
    print()
    print(f"keybuffer: {snap['sim.kb.hits']} hits / "
          f"{snap['sim.kb.misses']} misses ({100 * kb_rate:.1f}% hit "
          f"rate), {snap['sim.kb.evictions']} evictions")
    compile_ms = sum(value["sum"] for name, value in snap.items()
                     if name.startswith("compile.") and
                     isinstance(value, dict))
    print(f"compile: {compile_ms:.1f} ms across "
          f"{sum(1 for n in snap if n.startswith('compile.'))} phases")


if __name__ == "__main__":
    main()
