"""Where do the cycles go? Overhead anatomy of the protection schemes.

Runs one pointer-chasing and one compute-heavy workload under the
Fig. 4 schemes and breaks the cycle count into the timing model's
components (base issue, load-use stalls, redirects, D$ misses,
metadata-unit cycles) plus keybuffer statistics — the microarchitecture
story behind the paper's numbers.

Run:  python examples/overhead_analysis.py
"""

from repro.harness.runner import perf_overhead_pct, run_workload

WORKLOADS = ("tsp", "sha")
SCHEMES = ("baseline", "sbcets", "hwst128", "hwst128_tchk")


def main():
    for name in WORKLOADS:
        print(f"=== {name} ===")
        base_cycles = None
        header = (f"{'scheme':14s}{'cycles':>10s}{'perf.oh':>9s}"
                  f"{'instret':>9s}{'d$miss':>8s}{'kb hit%':>9s}"
                  f"{'meta ops':>9s}")
        print(header)
        for scheme in SCHEMES:
            result = run_workload(name, scheme, scale="small")
            if not result.ok:
                raise SystemExit(f"{name}/{scheme}: {result.status}")
            if scheme == "baseline":
                base_cycles = result.cycles
            overhead = perf_overhead_pct(result.cycles, base_cycles)
            stats = result.stats
            hits = stats.get("kb_hits", 0)
            misses = stats.get("kb_misses", 0)
            hit_rate = 100 * hits / (hits + misses) if hits + misses \
                else 0.0
            print(f"{scheme:14s}{result.cycles:>10d}"
                  f"{overhead:>8.1f}%{result.instret:>9d}"
                  f"{stats.get('dcache_misses', 0):>8d}"
                  f"{hit_rate:>8.1f}%"
                  f"{stats.get('shadow_ops', 0):>9d}")
        # cycle breakdown of the full hardware scheme
        result = run_workload(name, "hwst128_tchk", scale="small")
        parts = {key[4:]: value for key, value in result.stats.items()
                 if key.startswith("cyc_")}
        total = sum(parts.values())
        print("hwst128_tchk cycle breakdown: " + ", ".join(
            f"{part}={100 * value / total:.1f}%"
            for part, value in sorted(parts.items(), key=lambda p: -p[1])
            if value))
        print()


if __name__ == "__main__":
    main()
