"""Explore the generated Juliet-style corpus (Fig. 6 inputs).

Prints the corpus composition, shows a generated bad/good pair, and
runs a handful of cases live under two schemes.

Run:  python examples/juliet_explorer.py
"""

from repro.harness.runner import detected, run_program
from repro.workloads.juliet import (
    CWE_PLAN, corpus_counts, generate_corpus,
)


def main():
    counts = corpus_counts()
    print(f"corpus: {counts['total']} cases "
          f"({counts['spatial']} spatial + {counts['temporal']} temporal"
          f"; paper: 8366 = 7074 + 1292)")
    print()
    print("composition:")
    for cwe, plan in CWE_PLAN.items():
        parts = ", ".join(f"{subtype} x{count}"
                          for subtype, count in plan)
        print(f"  CWE{cwe}: {parts}")
    print()

    sample = generate_corpus(fraction=0.002)
    case = next(c for c in sample if c.cwe == 416)
    print(f"=== {case.case_id} (flow variant {case.flow}) ===")
    print("--- bad ---")
    print(case.bad_source)
    print("--- good ---")
    print(case.good_source)

    print("=== running five cases under hwst128_tchk and asan ===")
    for c in sample[:5]:
        line = f"{c.case_id:36s}"
        for scheme in ("hwst128_tchk", "asan"):
            result = run_program(c.bad_source, scheme, timing=False,
                                 max_instructions=3_000_000)
            line += f" {scheme}:{'DETECTED' if detected(scheme, result) else 'missed':9s}"
        print(line)


if __name__ == "__main__":
    main()
