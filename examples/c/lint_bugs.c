// Deliberately buggy example for the static linter: every function
// below contains a memory-safety defect `repro analyze` reports
// without running the program.
int oob_write(void) {
    int buf[4];
    buf[4] = 7;             // off-by-one past the last element
    return buf[0];
}

int use_after_free(void) {
    int *p = (int *)malloc(16);
    if (p == 0) {
        return 1;
    }
    *p = 5;
    free(p);
    return *p;              // read through the freed pointer
}

int double_free(void) {
    char *block = (char *)malloc(32);
    free(block);
    free(block);            // second release of the same region
    return 0;
}

int main(void) {
    int x = oob_write();
    int y = use_after_free();
    int z = double_free();
    return x + y + z;
}
