// Clean example: heap allocation, a write/read cycle, and a single
// free on every path.  The linter reports nothing.
int main(void) {
    long *ring = (long *)malloc(10 * 8);
    int head = 0;
    int i;
    long total = 0;
    if (ring == 0) {
        return 1;
    }
    for (i = 0; i < 10; i = i + 1) {
        ring[head] = (long)(i * i);
        head = head + 1;
        if (head >= 10) {
            head = 0;
        }
    }
    for (i = 0; i < 10; i = i + 1) {
        total = total + ring[i];
    }
    free(ring);
    print_int(total);
    return 0;
}
