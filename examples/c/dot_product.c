// Clean example: fixed-trip loops over stack arrays.  Every access is
// provably in bounds, so `repro analyze` stays quiet and
// `--elide-checks` removes the instrumentation checks entirely.
int main(void) {
    int a[8];
    int b[8];
    int i;
    int acc = 0;
    for (i = 0; i < 8; i = i + 1) {
        a[i] = i + 1;
        b[i] = 8 - i;
    }
    for (i = 0; i < 8; i = i + 1) {
        acc = acc + a[i] * b[i];
    }
    print_int(acc);
    return 0;
}
