"""Using the metadata-compression core as a library (no simulation).

Walks through the paper's Section 3.3 with the `repro.core` API:
deriving field widths with Eq. 3-6, packing/unpacking 256-bit metadata
into the 128-bit SRF image, and measuring the over-approximation
("slack") that compression introduces — the mechanism behind the
CWE122 coverage gap in Fig. 6.

Run:  python examples/metadata_compression.py
"""

from repro.core import (
    HwstConfig, LockAllocator, MetadataCompressor, PointerMetadata,
    ShadowMap, derive_field_widths,
)


def main():
    print("Eq. 3-6 width derivation")
    print("-" * 60)
    for label, memory, max_obj, locks in (
        ("paper platform (256 GiB, 1 M locks)", 256 << 30, 1 << 28,
         1_000_000),
        ("small embedded (16 MiB, 1 Ki locks)", 1 << 24, 1 << 16, 1024),
    ):
        widths = derive_field_widths(memory, max_obj, locks)
        print(f"{label}:")
        print(f"  base={widths.base}  range={widths.range}  "
              f"lock={widths.lock}  key={widths.key}  "
              f"(total {widths.total} bits)")
    print()

    config = HwstConfig()
    compressor = MetadataCompressor(config)
    locks = LockAllocator(config)
    lock, key = locks.allocate()

    print("Compress / decompress round trip (Fig. 2 layout)")
    print("-" * 60)
    meta = PointerMetadata(base=0x40_0000, bound=0x40_0100,
                           key=key, lock=lock)
    packed = compressor.compress(meta)
    print(f"metadata : base={meta.base:#x} bound={meta.bound:#x} "
          f"key={meta.key} lock={meta.lock:#x}")
    print(f"compressed 128-bit image: lower={packed.lower:#018x} "
          f"upper={packed.upper:#018x}")
    print(f"round trip ok: {compressor.decompress(packed) == meta}")
    print()

    print("Compression slack (the CWE122 mechanism)")
    print("-" * 60)
    for size in (256, 260, 257, 9):
        slack = compressor.spatial_slack(0x40_0000, 0x40_0000 + size)
        note = "exact" if slack == 0 else \
            f"{slack} bytes of overflow escape the spatial check"
        print(f"object of {size:4d} bytes -> {note}")
    print()

    print("Linear-mapped shadow memory (Eq. 1)")
    print("-" * 60)
    shadow = ShadowMap.from_config(config)
    for container in (0x40_0000, 0x40_0008, 0xEF_0000):
        print(f"container {container:#9x} -> shadow "
              f"{shadow.shadow_addr(container):#x}")

    print()
    print("Temporal lock discipline")
    print("-" * 60)
    print(f"allocated lock={lock:#x} key={key}")
    print(f"check(key, lock) while live : {locks.check(key, lock)}")
    locks.free(lock)
    print(f"check(key, lock) after free : {locks.check(key, lock)}")
    lock2, key2 = locks.allocate()
    print(f"recycled lock {lock2:#x} got fresh key {key2} "
          f"(old key can never revalidate)")


if __name__ == "__main__":
    main()
