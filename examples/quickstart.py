"""Quickstart: compile a mini-C program and run it under HWST128.

Shows the one-call API (`repro.compile_and_run`), the cycle counts the
timing model produces, and a memory-safety bug being caught by the
hardware checks.

Run:  python examples/quickstart.py
"""

from repro import compile_and_run

PROGRAM = r"""
int main(void) {
    long *data = (long*)malloc(8 * sizeof(long));
    long sum = 0;
    int i;
    for (i = 0; i < 8; i++) { data[i] = i * i; }
    for (i = 0; i < 8; i++) { sum += data[i]; }
    print_str("sum of squares 0..7 = ");
    print_int(sum);
    print_char(10);
    free(data);
    return sum == 140 ? 0 : 1;
}
"""

BUGGY = r"""
int main(void) {
    long *data = (long*)malloc(8 * sizeof(long));
    free(data);
    return (int)data[0];   /* use after free */
}
"""


def main():
    print("=== clean program ===")
    for scheme in ("baseline", "hwst128_tchk"):
        result = compile_and_run(PROGRAM, scheme=scheme)
        print(f"{scheme:14s} status={result.status:6s} "
              f"exit={result.exit_code} "
              f"instructions={result.instret} cycles={result.cycles}")
        print(f"{'':14s} output: {result.output_text().strip()!r}")
    base = compile_and_run(PROGRAM, scheme="baseline")
    hwst = compile_and_run(PROGRAM, scheme="hwst128_tchk")
    overhead = 100.0 * (hwst.cycles / base.cycles - 1)
    print(f"\nHWST128 overhead on this program: {overhead:.1f}% "
          f"(Eq. 7 of the paper)")

    print("\n=== use-after-free ===")
    unprotected = compile_and_run(BUGGY, scheme="baseline")
    protected = compile_and_run(BUGGY, scheme="hwst128_tchk")
    print(f"baseline      -> {unprotected.status} "
          f"(exit={unprotected.exit_code}: silent garbage)")
    print(f"hwst128_tchk  -> {protected.status}")
    print(f"               {protected.detail}")


if __name__ == "__main__":
    main()
