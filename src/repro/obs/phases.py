"""Wall-clock phase timers for the compile pipeline.

``schemes.compile_source`` wraps lex/parse/sema/irgen/instrument and
the backend's lower/link in :meth:`PhaseTimers.phase` spans. Timings
accumulate (user unit + runtime unit both pass through the front end),
land in ``compile.<phase>.ms`` histograms when a registry is attached,
and appear as ``compile``-category spans in an attached tracer.

:data:`NULL_PHASES` is the disabled fast path — a reusable no-op
context manager, so the default compile pays a handful of cheap
``with`` entries per translation unit and nothing else.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

__all__ = ["PhaseTimers", "NullPhaseTimers", "NULL_PHASES",
           "COMPILE_PHASES"]

COMPILE_PHASES = ("lex", "parse", "sema", "irgen", "instrument",
                  "analyze", "lower", "link")


class _PhaseSpan:
    """Context manager recording one phase span on exit."""

    __slots__ = ("_timers", "_name", "_t0")

    def __init__(self, timers: "PhaseTimers", name: str):
        self._timers = timers
        self._name = name

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._timers._record(self._name, self._t0, time.perf_counter())
        return False


class PhaseTimers:
    """Accumulating named wall-clock spans."""

    def __init__(self, metrics=None, tracer=None, scope: str = "compile"):
        self._scope = metrics.scope(scope) if metrics is not None else None
        self._tracer = tracer
        self._origin = time.perf_counter()
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return True

    @property
    def metrics(self):
        """The ``compile``-scoped metrics view, or None when detached.

        Lets pipeline stages hang counters off the same registry the
        timers write to (e.g. ``compile.analyze.checks_elided``)."""
        return self._scope

    def phase(self, name: str) -> _PhaseSpan:
        return _PhaseSpan(self, name)

    def _record(self, name: str, t0: float, t1: float):
        elapsed = t1 - t0
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + 1
        if self._scope is not None:
            self._scope.histogram(f"{name}.ms").observe(elapsed * 1e3)
        tracer = self._tracer
        if tracer is not None and tracer.wants("compile"):
            tracer.emit("compile", name,
                        ts=(t0 - self._origin) * 1e6,
                        dur=elapsed * 1e6)

    def ms(self, name: str) -> float:
        return self.seconds.get(name, 0.0) * 1e3

    def summary(self) -> Dict[str, float]:
        """Accumulated milliseconds per phase."""
        return {name: seconds * 1e3
                for name, seconds in sorted(self.seconds.items())}


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullPhaseTimers(PhaseTimers):
    """Disabled timers: ``phase()`` hands back a shared no-op span."""

    def __init__(self):
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    def phase(self, name: str):
        return _NULL_SPAN


NULL_PHASES = NullPhaseTimers()
