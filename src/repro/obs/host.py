"""Host-process gauges: peak RSS and GC activity.

One source of truth for every consumer that reports host-side memory:
:class:`~repro.sim.machine.Machine` stamps these into each run's metric
snapshot (``host.peak_rss_kb`` / ``host.gc_collections``), the bench
runner (:mod:`repro.obs.bench`) records them per scenario, and campaign
heartbeats (:mod:`repro.obs.heartbeat`) include them in progress events.

``resource`` is POSIX-only; on platforms without it (or without the
``ru_maxrss`` field) the helpers degrade to ``0`` rather than raising —
callers treat zero as "unavailable".
"""

from __future__ import annotations

import gc
import sys

__all__ = ["peak_rss_kb", "gc_collections", "observe_host"]

try:                                    # POSIX only
    import resource as _resource
except ImportError:                     # pragma: no cover - non-POSIX
    _resource = None


def peak_rss_kb() -> int:
    """Peak resident-set size of this process, in KiB (0 if unknown).

    A process-lifetime high-water mark (``ru_maxrss``): it never
    decreases, so per-phase deltas are only meaningful when the phase
    raised the high-water mark.
    """
    if _resource is None:               # pragma: no cover - non-POSIX
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":        # pragma: no cover - macOS: bytes
        peak //= 1024
    return int(peak)


def gc_collections() -> int:
    """Total garbage-collector collections across all generations."""
    return sum(stat.get("collections", 0) for stat in gc.get_stats())


def observe_host(scope) -> None:
    """Stamp the host gauges onto a metrics scope (or registry).

    Names the metrics ``<scope>.peak_rss_kb`` and
    ``<scope>.gc_collections``.
    """
    scope.gauge("peak_rss_kb").set(peak_rss_kb())
    scope.gauge("gc_collections").set(gc_collections())
