"""Performance-trajectory bench: scenario registry, runner, envelope.

This is the instrument the ROADMAP's fast-ISS work gets measured
against: ``repro bench`` executes a fixed scenario suite — workload
kernels under representative schemes plus small fuzz / fault-injection
campaign smokes — ``reps`` times each, measures guest instructions,
host wall time, guest MIPS, compile-phase wall time, peak RSS and GC
activity, aggregates the noisy host-side numbers with median/IQR
bands, and writes a versioned ``repro.bench/v1`` envelope
(``BENCH_SIM.json``, tracked per-PR).

Envelope determinism contract: every field *outside* the per-scenario
``"measured"`` subtree and the top-level ``"host"`` section is a pure
function of ``(seed, scenario set)`` — guest instructions, simulated
cycles, the per-function cycle profile, the ``sim.*``/``cyc_*``
counter census. :func:`strip_measured` removes the host-timing parts;
what remains must be byte-identical across reruns at the same seed
(asserted in ``tests/test_bench.py``). The measured parts are what
:mod:`repro.obs.compare` gates on.
"""

from __future__ import annotations

import gc
import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

__all__ = ["BenchScenario", "SCENARIOS", "QUICK_SCENARIOS",
           "ENVELOPE_SCHEMA", "run_bench", "run_scenario",
           "strip_measured", "scenario_names", "envelope_to_json",
           "load_envelope", "save_envelope"]

ENVELOPE_SCHEMA = "repro.bench/v1"

#: Workloads small enough to repeat a handful of times yet diverse in
#: pointer/heap behaviour (hash kernel, graph walk, tree build, string
#: scan, DP table). All run at ``small`` scale.
_BENCH_WORKLOADS = ("sha", "dijkstra", "treeadd", "stringsearch",
                    "hmmer", "bzip2")

#: The two schemes the trajectory tracks: the uninstrumented
#: interpreter floor and the fully-checked HWST128 hot path.
_BENCH_SCHEMES = ("baseline", "hwst128_tchk")


@dataclass(frozen=True)
class BenchScenario:
    """One named bench cell: a workload run or a campaign smoke."""

    name: str
    kind: str                       # "workload" | "campaign"
    description: str
    workload: str = ""
    scheme: str = ""
    scale: str = "small"
    campaign: str = ""              # "fuzz" | "faultinject"
    n: int = 0                      # campaign size
    quick: bool = True              # part of the --quick subset?


def _build_registry() -> Dict[str, BenchScenario]:
    scenarios: Dict[str, BenchScenario] = {}
    quick_workloads = ("sha", "treeadd", "dijkstra")
    for workload in _BENCH_WORKLOADS:
        for scheme in _BENCH_SCHEMES:
            name = f"{workload}/{scheme}"
            scenarios[name] = BenchScenario(
                name=name, kind="workload",
                description=f"{workload} kernel under {scheme} "
                            "(small scale, timed pipeline)",
                workload=workload, scheme=scheme,
                quick=workload in quick_workloads)
    scenarios["fuzz_smoke"] = BenchScenario(
        name="fuzz_smoke", kind="campaign", campaign="fuzz", n=6,
        description="6-program differential-fuzz campaign "
                    "(generator + 4 oracles, no reduction)")
    scenarios["faultinject_smoke"] = BenchScenario(
        name="faultinject_smoke", kind="campaign",
        campaign="faultinject", n=8,
        description="8-injection fault campaign (metadata+keybuffer "
                    "families, differential oracle)")
    return scenarios


SCENARIOS: Dict[str, BenchScenario] = _build_registry()
QUICK_SCENARIOS = tuple(name for name, s in SCENARIOS.items() if s.quick)


def scenario_names(quick: bool = False) -> List[str]:
    if quick:
        return list(QUICK_SCENARIOS)
    return list(SCENARIOS)


# ---------------------------------------------------------------------------
# Aggregation helpers (deterministic, no numpy)
# ---------------------------------------------------------------------------

def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of a sorted sample, q in [0, 1]."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def _band(samples: Sequence[float], digits: int = 4) -> Dict[str, object]:
    """Median/IQR noise band of a repeated host-side measurement."""
    ordered = sorted(float(s) for s in samples)
    q1 = _quantile(ordered, 0.25)
    q3 = _quantile(ordered, 0.75)
    return {
        "median": round(_quantile(ordered, 0.5), digits),
        "iqr": round(q3 - q1, digits),
        "min": round(ordered[0], digits) if ordered else 0.0,
        "max": round(ordered[-1], digits) if ordered else 0.0,
        "reps": len(ordered),
    }


# ---------------------------------------------------------------------------
# Scenario execution
# ---------------------------------------------------------------------------

def _run_workload_scenario(scenario: BenchScenario, reps: int,
                           engine: str = "ref") -> dict:
    from repro.harness.runner import timed_run
    from repro.workloads import WORKLOADS

    source = WORKLOADS[scenario.workload].source(scenario.scale)
    samples: List[dict] = []
    deterministic: Optional[dict] = None
    for rep in range(reps):
        result, sample = timed_run(source, scenario.scheme,
                                   profile=(rep == 0), engine=engine)
        if result.status != "exit" or result.exit_code != 0:
            raise RuntimeError(
                f"bench scenario {scenario.name} did not run clean: "
                f"{result.status}/exit={result.exit_code} "
                f"{result.detail}")
        samples.append(sample)
        if rep == 0:
            deterministic = {
                "guest_instructions": result.instret,
                "guest_cycles": result.cycles,
                "counters": {key: int(value) for key, value
                             in sorted(result.stats.items())},
                "profile": sample["profile"],
            }
    walls = [s["wall_s"] for s in samples]
    compiles = [s["compile_s"] for s in samples]
    instret = deterministic["guest_instructions"]
    entry = {
        "kind": "workload",
        "workload": scenario.workload,
        "scheme": scenario.scheme,
        "scale": scenario.scale,
        "engine": engine,
    }
    entry.update(deterministic)
    phase_medians = {}
    for phase in sorted(samples[0]["phases_ms"]):
        phase_medians[phase] = round(_quantile(
            sorted(s["phases_ms"].get(phase, 0.0) for s in samples),
            0.5), 4)
    entry["measured"] = {
        "wall_ms": _band([w * 1e3 for w in walls]),
        "guest_mips": _band([instret / w / 1e6 for w in walls]),
        "compile_ms": _band([c * 1e3 for c in compiles]),
        "compile_phases_ms": phase_medians,
        "peak_rss_kb": max(s["peak_rss_kb"] for s in samples),
        "gc_collections": max(s["gc_collections"] for s in samples),
    }
    return entry


def _run_campaign_scenario(scenario: BenchScenario, reps: int,
                           seed: int) -> dict:
    from repro.obs.host import gc_collections, peak_rss_kb

    walls: List[float] = []
    deterministic: Optional[dict] = None
    for rep in range(reps):
        # Same measurement isolation as timed_run(): drain the cyclic
        # collector so the previous rep's dead machines don't bill
        # their GC pauses to this rep's wall.
        gc.collect()
        t0 = time.perf_counter()
        if scenario.campaign == "fuzz":
            from repro.fuzz import run_fuzz

            report = run_fuzz(n=scenario.n, seed=seed,
                              reduce_divergences=False)
            digest = {
                "cells": scenario.n,
                "divergences": len(report.divergences),
            }
        elif scenario.campaign == "faultinject":
            from repro.faultinject import run_campaign

            report = run_campaign(
                scheme="hwst128", families=("metadata", "keybuffer"),
                n=scenario.n, seed=seed)
            digest = {
                "cells": scenario.n,
                "scoreboard": dict(sorted(report.scoreboard.items())),
            }
        else:
            raise ValueError(
                f"unknown campaign kind {scenario.campaign!r}")
        walls.append(time.perf_counter() - t0)
        if rep == 0:
            deterministic = digest
    entry = {
        "kind": "campaign",
        "campaign": scenario.campaign,
        "seed": seed,
    }
    entry.update(deterministic)
    entry["measured"] = {
        "wall_ms": _band([w * 1e3 for w in walls]),
        "cells_per_sec": _band([scenario.n / w for w in walls]),
        "peak_rss_kb": peak_rss_kb(),
        "gc_collections": gc_collections(),
    }
    return entry


def run_scenario(scenario: BenchScenario, reps: int = 3,
                 seed: int = 7, engine: str = "ref") -> dict:
    """Run one scenario ``reps`` times; returns its envelope entry.

    ``engine`` selects the execution core for *workload* scenarios
    (the deterministic subtree is engine-independent by the lockstep
    contract, so only the measured bands move). Campaign smokes always
    run their own orchestration and ignore it.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1: {reps}")
    if scenario.kind == "workload":
        return _run_workload_scenario(scenario, reps, engine=engine)
    return _run_campaign_scenario(scenario, reps, seed)


# ---------------------------------------------------------------------------
# Suite runner + envelope
# ---------------------------------------------------------------------------

def run_bench(scenarios: Optional[Sequence[str]] = None,
              reps: int = 3, seed: int = 7, quick: bool = False,
              engine: str = "ref",
              progress: Optional[Callable[[str, int, int], None]] = None,
              ) -> dict:
    """Run the bench suite and build the ``repro.bench/v1`` envelope.

    ``scenarios`` selects by name (default: the full registry, or the
    ``--quick`` subset). ``engine`` selects the workload-scenario
    execution core (``ref`` | ``fast``); the envelope records it.
    ``progress(name, index, total)`` is called before each scenario
    starts (the CLI prints a status line).
    """
    import platform
    import sys as _sys

    names = list(scenarios) if scenarios else scenario_names(quick)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown bench scenarios {unknown}; known: "
                         f"{sorted(SCENARIOS)}")
    entries: Dict[str, dict] = {}
    for index, name in enumerate(names):
        if progress is not None:
            progress(name, index, len(names))
        entries[name] = run_scenario(SCENARIOS[name], reps=reps,
                                     seed=seed, engine=engine)
    return {
        "schema": ENVELOPE_SCHEMA,
        "seed": seed,
        "reps": reps,
        "quick": bool(quick),
        "engine": engine,
        "scenarios": entries,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": _sys.platform,
            "machine": platform.machine(),
        },
    }


def strip_measured(envelope: dict) -> dict:
    """The deterministic skeleton of an envelope.

    Removes every per-scenario ``"measured"`` subtree and the
    ``"host"`` section; what is left must be byte-identical across
    reruns at the same seed (the determinism contract ``repro bench``
    promises and ``tests/test_bench.py`` asserts).
    """
    out = {key: value for key, value in envelope.items()
           if key != "host"}
    out["scenarios"] = {
        name: {key: value for key, value in entry.items()
               if key != "measured"}
        for name, entry in envelope.get("scenarios", {}).items()
    }
    return out


def envelope_to_json(envelope: dict) -> str:
    return json.dumps(envelope, indent=2, sort_keys=True) + "\n"


def load_envelope(path) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != ENVELOPE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {ENVELOPE_SCHEMA!r}, "
            f"got {schema!r}")
    return doc


def save_envelope(envelope: dict, path) -> None:
    with open(path, "w") as fh:
        fh.write(envelope_to_json(envelope))
