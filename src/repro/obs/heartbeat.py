"""Periodic structured progress events for long-running campaigns.

A :class:`Heartbeat` turns a silent multi-minute campaign (fuzzing,
fault injection, bench sweeps) into an observable one: call
:meth:`tick` with the current completion count as often as you like —
at most one event per ``interval_s`` seconds actually gets emitted.
Each event is a single JSON line on ``stream`` (stderr by default)::

    {"done": 120, "elapsed_s": 31.0, "eta_s": 20.7, "event": "heartbeat",
     "label": "fuzz", "pct": 60.0, "rate_per_s": 3.87, "total": 200,
     "divergences": 0, "peak_rss_kb": 91136}

and, when a registry / tracer is attached, lands as
``obs.campaign.*`` gauges and a ``campaign``-category trace event.
Heartbeats never touch the campaign's deterministic report documents
(``repro.fuzz/v1`` / ``repro.faultinject/v1``): progress goes to
stderr/telemetry only, so same-seed byte-identity is preserved.

Short runs stay silent: nothing is emitted until ``interval_s`` has
elapsed, so test suites and smoke jobs see no extra output.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Optional

from repro.obs.host import peak_rss_kb

__all__ = ["Heartbeat"]


class Heartbeat:
    """Rate-limited campaign progress reporter.

    ``total`` is the number of work items (cells, programs,
    injections); ``label`` names the campaign in every event.
    ``interval_s <= 0`` disables emission entirely (ticks become
    no-ops), which is the CLI's ``--heartbeat 0``.
    """

    def __init__(self, total: int, label: str,
                 interval_s: float = 15.0,
                 stream=None,
                 metrics=None, tracer=None,
                 clock: Callable[[], float] = time.monotonic):
        self.total = total
        self.label = label
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._t0 = clock()
        self._last_emit = self._t0
        self.emitted = 0
        self._scope = metrics.scope("obs.campaign") \
            if metrics is not None else None
        self._tracer = tracer

    @property
    def enabled(self) -> bool:
        return self.interval_s > 0

    def tick(self, done: int, **fields) -> bool:
        """Report progress; emits only when the interval has elapsed.

        Returns True when an event was actually emitted. Extra keyword
        fields (divergence counts, current target, …) pass through into
        the event payload.
        """
        if not self.enabled:
            return False
        now = self._clock()
        if now - self._last_emit < self.interval_s:
            return False
        self._last_emit = now
        self.emit(done, _now=now, **fields)
        return True

    def emit(self, done: int, _now: Optional[float] = None, **fields):
        """Unconditionally emit one progress event."""
        now = self._clock() if _now is None else _now
        elapsed = max(now - self._t0, 1e-9)
        rate = done / elapsed
        remaining = max(self.total - done, 0)
        eta = remaining / rate if rate > 0 else None
        payload = {
            "event": "heartbeat",
            "label": self.label,
            "done": done,
            "total": self.total,
            "pct": round(100.0 * done / self.total, 1)
            if self.total else 0.0,
            "elapsed_s": round(elapsed, 1),
            "rate_per_s": round(rate, 2),
            "eta_s": round(eta, 1) if eta is not None else None,
            "peak_rss_kb": peak_rss_kb(),
        }
        payload.update(fields)
        self.emitted += 1
        self.stream.write(json.dumps(payload, sort_keys=True) + "\n")
        flush = getattr(self.stream, "flush", None)
        if flush is not None:
            flush()
        if self._scope is not None:
            self._scope.gauge("done").set(done)
            self._scope.gauge("total").set(self.total)
            self._scope.gauge("rate_per_s").set(round(rate, 2))
            self._scope.counter("heartbeats").inc()
        tracer = self._tracer
        if tracer is not None and tracer.wants("campaign"):
            tracer.emit("campaign", self.label, ts=elapsed * 1e6,
                        args=payload)

    def progress(self, done: int, total: int) -> None:
        """Adapter matching the executor's ``progress(done, total)``
        callback shape (``total`` is re-asserted from the executor's
        view but the constructor's value wins for ETA math)."""
        self.tick(done)
