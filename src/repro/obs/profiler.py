"""Cycle-attribution profiler for the timing model.

The machine calls :meth:`CycleProfiler.record` with every retired
``(pc, cycles)`` pair (``cycles`` being the full cost the pipeline
charged, stalls and miss penalties included), so the accumulated
per-PC map attributes 100 % of modelled cycles. After the run,
:meth:`CycleProfiler.report` folds PCs onto the :class:`~repro.sim.
program.Program` symbol table, producing the per-function hotspot
table the perf PRs optimise against.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CycleProfiler", "FunctionProfile", "ProfileReport"]


@dataclass
class FunctionProfile:
    """Aggregated cost of one function (or the ``?`` bucket)."""

    name: str
    cycles: int = 0
    retired: int = 0
    pcs: Dict[int, int] = field(default_factory=dict)   # pc -> cycles

    @property
    def cpi(self) -> float:
        return self.cycles / self.retired if self.retired else 0.0

    def hottest_pcs(self, limit: int = 3) -> List[Tuple[int, int]]:
        return sorted(self.pcs.items(), key=lambda kv: -kv[1])[:limit]


@dataclass
class ProfileReport:
    """Hotspot table: functions sorted by cycle cost."""

    total_cycles: int
    total_retired: int
    functions: List[FunctionProfile]

    @property
    def attributed_cycles(self) -> int:
        return sum(f.cycles for f in self.functions
                   if f.name != "?")

    @property
    def attributed_fraction(self) -> float:
        return self.attributed_cycles / self.total_cycles \
            if self.total_cycles else 0.0

    def table(self, limit: int = 20, show_pcs: bool = True) -> str:
        lines = [
            f"{'function':28s}{'cycles':>12s}{'%':>7s}{'cum%':>7s}"
            f"{'retired':>10s}{'cpi':>6s}",
        ]
        cumulative = 0
        for fn in self.functions[:limit]:
            cumulative += fn.cycles
            pct = 100.0 * fn.cycles / self.total_cycles \
                if self.total_cycles else 0.0
            cum = 100.0 * cumulative / self.total_cycles \
                if self.total_cycles else 0.0
            lines.append(
                f"{fn.name:28s}{fn.cycles:>12d}{pct:>6.1f}%{cum:>6.1f}%"
                f"{fn.retired:>10d}{fn.cpi:>6.2f}")
            if show_pcs:
                for pc, cycles in fn.hottest_pcs():
                    lines.append(f"    {pc:#10x}  {cycles:>10d} cyc")
        remaining = self.functions[limit:]
        if remaining:
            rest = sum(f.cycles for f in remaining)
            lines.append(f"{f'… {len(remaining)} more':28s}{rest:>12d}")
        lines.append(
            f"{'TOTAL':28s}{self.total_cycles:>12d}{100.0:>6.1f}%"
            f"{'':>7s}{self.total_retired:>10d}")
        return "\n".join(lines)

    def function_summary(self) -> List[dict]:
        """Deterministic per-function cost list for bench envelopes
        (``repro.bench/v1`` embeds this; repro.obs.compare diffs it)."""
        return [
            {"name": fn.name, "cycles": fn.cycles, "retired": fn.retired}
            for fn in self.functions
        ]

    def to_collapsed(self, root: Optional[str] = None) -> str:
        """Collapsed-stack ("folded") rendering for flamegraph tools.

        One line per frame, ``frame cycles`` — loadable by
        flamegraph.pl and https://speedscope.app (paste as "folded
        stacks"). The simulator attributes cycles per PC, not per call
        chain, so stacks are one frame deep; ``root`` (e.g. the
        workload name) prepends a common parent frame so several
        exports can be concatenated into one flamegraph.
        """
        lines = []
        for fn in sorted(self.functions, key=lambda f: f.name):
            stack = fn.name if root is None else f"{root};{fn.name}"
            lines.append(f"{stack} {fn.cycles}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        return {
            "total_cycles": self.total_cycles,
            "total_retired": self.total_retired,
            "attributed_fraction": self.attributed_fraction,
            "functions": [
                {
                    "name": fn.name,
                    "cycles": fn.cycles,
                    "retired": fn.retired,
                    "pct": (100.0 * fn.cycles / self.total_cycles
                            if self.total_cycles else 0.0),
                    "hottest_pcs": [
                        {"pc": f"{pc:#x}", "cycles": cyc}
                        for pc, cyc in fn.hottest_pcs()
                    ],
                }
                for fn in self.functions
            ],
        }


class CycleProfiler:
    """Per-PC cycle accumulator (feeds :class:`ProfileReport`)."""

    def __init__(self):
        self.pc_cycles: Dict[int, int] = {}
        self.pc_retired: Dict[int, int] = {}
        self.total_cycles = 0
        self.total_retired = 0

    def record(self, pc: int, cycles: int):
        """Hot path: one call per retired instruction when attached."""
        self.total_cycles += cycles
        self.total_retired += 1
        pc_cycles = self.pc_cycles
        pc_cycles[pc] = pc_cycles.get(pc, 0) + cycles
        pc_retired = self.pc_retired
        pc_retired[pc] = pc_retired.get(pc, 0) + 1

    def reset(self):
        self.pc_cycles.clear()
        self.pc_retired.clear()
        self.total_cycles = 0
        self.total_retired = 0

    # -- attribution -------------------------------------------------------

    @staticmethod
    def _function_index(program) -> Tuple[List[int], List[str]]:
        """Sorted (starts, names) of function symbols inside .text."""
        funcs = sorted(
            (addr, name) for name, addr in program.symbols.items()
            if program.text_base <= addr < program.text_end
            and program.instr_at(addr) is not None)
        return [a for a, _ in funcs], [n for _, n in funcs]

    def report(self, program=None) -> ProfileReport:
        """Fold the PC map onto ``program``'s symbols.

        Without a program every PC lands in the ``?`` bucket (still a
        valid per-PC profile).
        """
        starts: List[int] = []
        names: List[str] = []
        if program is not None:
            starts, names = self._function_index(program)
        buckets: Dict[str, FunctionProfile] = {}
        for pc, cycles in self.pc_cycles.items():
            index = bisect_right(starts, pc) - 1
            name = names[index] if index >= 0 else "?"
            bucket = buckets.get(name)
            if bucket is None:
                bucket = buckets[name] = FunctionProfile(name)
            bucket.cycles += cycles
            bucket.retired += self.pc_retired[pc]
            bucket.pcs[pc] = cycles
        functions = sorted(buckets.values(), key=lambda f: -f.cycles)
        return ProfileReport(
            total_cycles=self.total_cycles,
            total_retired=self.total_retired,
            functions=functions,
        )
