"""Hierarchical metrics registry: typed counters, gauges, histograms.

The registry is the single home for every counter the reproduction
used to scatter across ad-hoc dicts (``Machine.stats``,
``InOrderPipeline.breakdown``, ``KeyBuffer.hits`` …). Metric names are
dot-scoped (``sim.kb.hits``, ``pipeline.dcache.miss_penalty_cycles``,
``compile.lower.ms``); components create their metrics through a
:meth:`MetricsRegistry.scope` proxy so they never hard-code their own
prefix.

Design constraints (this sits under the simulator's hot loop):

* a :class:`Counter` is a bare ``__slots__`` object — handlers capture
  the counter once and bump ``counter.value`` directly, which costs no
  more than the dict increment it replaces;
* ``get``-or-create semantics: asking for an existing name returns the
  same object (so a component re-constructed after ``reset()`` keeps
  feeding the same metric);
* snapshots are plain JSON-able dicts supporting ``delta`` and
  ``merge`` for multi-run aggregation.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Scope",
    "format_tree", "merge_snapshots", "to_prometheus",
]


class Counter:
    """Monotonic counter. Hot paths mutate :attr:`value` directly."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1):
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative inc {amount}")
        self.value += amount

    def reset(self):
        self.value = 0

    def snapshot(self):
        return self.value

    def __repr__(self):
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-write-wins scalar (sizes, rates, high-water marks)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def reset(self):
        self.value = 0

    def snapshot(self):
        return self.value

    def __repr__(self):
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Sample distribution with nearest-rank percentiles.

    Samples beyond ``max_samples`` still update ``count``/``sum``/
    ``min``/``max`` but are no longer stored, so percentiles become
    approximations computed over the stored prefix (documented in
    docs/observability.md; the bound keeps long runs O(1) in memory).

    Percentile edge cases: an empty histogram reports ``0.0`` for every
    percentile (``count`` disambiguates); a single-sample histogram
    reports that sample for every percentile.
    """

    __slots__ = ("name", "max_samples", "count", "total", "min", "max",
                 "_samples")
    kind = "histogram"

    def __init__(self, name: str, max_samples: int = 4096):
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []

    def observe(self, value: Union[int, float]):
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the stored samples, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without float
        return ordered[min(int(rank), len(ordered)) - 1]

    def reset(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._samples.clear()

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def merge_from(self, other: "Histogram"):
        for value in other._samples:
            self.observe(value)
        # Samples beyond the other's storage bound: fold into the
        # moments only (the residual sum keeps totals exact).
        overflow = other.count - len(other._samples)
        if overflow > 0:
            self.count += overflow
            self.total += other.total - sum(other._samples)
            if other.min is not None and \
                    (self.min is None or other.min < self.min):
                self.min = other.min
            if other.max is not None and \
                    (self.max is None or other.max > self.max):
                self.max = other.max

    def __repr__(self):
        return f"Histogram({self.name}, n={self.count})"


Metric = Union[Counter, Gauge, Histogram]


class Scope:
    """Prefix proxy: ``registry.scope("sim.kb").counter("hits")`` names
    the metric ``sim.kb.hits``."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str):
        self._registry = registry
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        return self._prefix

    def _full(self, name: str) -> str:
        return f"{self._prefix}.{name}" if name else self._prefix

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._full(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._full(name))

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        return self._registry.histogram(self._full(name), max_samples)

    def scope(self, prefix: str) -> "Scope":
        return Scope(self._registry, self._full(prefix))

    def reset(self):
        self._registry.reset(prefix=self._prefix)

    @property
    def registry(self) -> "MetricsRegistry":
        return self._registry


class MetricsRegistry:
    """Flat name -> metric store with dot-scoped views."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    # -- creation ----------------------------------------------------------

    def _get_or_create(self, name: str, cls, *args) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        return self._get_or_create(name, Histogram, max_samples)

    def scope(self, prefix: str) -> Scope:
        return Scope(self, prefix)

    # -- inspection --------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self, prefix: str = "") -> List[str]:
        if not prefix:
            return sorted(self._metrics)
        dotted = prefix + "."
        return sorted(n for n in self._metrics
                      if n == prefix or n.startswith(dotted))

    def reset(self, prefix: str = ""):
        """Zero every metric (optionally only under ``prefix``)."""
        for name in self.names(prefix):
            self._metrics[name].reset()

    # -- snapshots ---------------------------------------------------------

    def snapshot(self, prefix: str = "") -> Dict[str, object]:
        """Flat ``name -> value`` dict (histograms become summary dicts)."""
        return {name: self._metrics[name].snapshot()
                for name in self.names(prefix)}

    def delta(self, earlier: Dict[str, object],
              prefix: str = "") -> Dict[str, object]:
        """Scalar difference ``now - earlier`` (counters/gauges).

        Histograms cannot be subtracted sample-wise; their current
        summary is passed through unchanged.
        """
        out: Dict[str, object] = {}
        for name, value in self.snapshot(prefix).items():
            before = earlier.get(name)
            if isinstance(value, dict) or not isinstance(
                    before, (int, float)):
                out[name] = value
            else:
                out[name] = value - before
        return out

    def merge(self, other: "MetricsRegistry"):
        """Fold another registry in: counters add, gauges take the
        other's value, histograms concatenate."""
        for name, metric in other._metrics.items():
            if isinstance(metric, Counter):
                self.counter(name).value += metric.value
            elif isinstance(metric, Gauge):
                self.gauge(name).value = metric.value
            else:
                self.histogram(name, metric.max_samples).merge_from(metric)

    # -- export ------------------------------------------------------------

    def tree(self, prefix: str = "") -> Dict[str, object]:
        """Nested dict view keyed by namespace segment."""
        root: Dict[str, object] = {}
        for name, value in self.snapshot(prefix).items():
            node = root
            parts = name.split(".")
            for part in parts[:-1]:
                nxt = node.setdefault(part, {})
                if not isinstance(nxt, dict):
                    # a metric named like a namespace ("a.b" + "a.b.c"):
                    # keep the leaf under a reserved key
                    nxt = node[part] = {"": nxt}
                node = nxt
            leaf = parts[-1]
            if isinstance(node.get(leaf), dict) and not isinstance(value,
                                                                   dict):
                node[leaf][""] = value
            else:
                node[leaf] = value
        return root

    def to_json(self, path=None, prefix: str = "", indent: int = 2,
                extra: Optional[Dict[str, object]] = None) -> str:
        """Serialise to the ``repro.obs.metrics/v1`` JSON document."""
        doc: Dict[str, object] = {"schema": "repro.obs.metrics/v1"}
        if extra:
            doc.update(extra)
        doc["metrics"] = self.snapshot(prefix)
        text = json.dumps(doc, indent=indent, sort_keys=False, default=str)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text


def _merge_hist_summaries(prev: Dict[str, object],
                          value: Dict[str, object]) -> Dict[str, object]:
    """Order-independent merge of two histogram summary dicts.

    counts/sums add, min/max combine, mean is recomputed from the
    merged moments, and the percentiles become the count-weighted
    average of the inputs' percentiles — an approximation (the raw
    samples are gone), but a *symmetric* one: pairwise weighted
    averaging is associative and commutative (up to float rounding),
    so parallel sweeps that merge worker snapshots in completion order
    still converge on the same summary whatever the order was.
    """
    pc = prev.get("count", 0)
    vc = value.get("count", 0)
    if not vc:
        return dict(prev)
    if not pc:
        return dict(value)
    count = pc + vc
    out: Dict[str, object] = {
        "count": count,
        "sum": prev.get("sum", 0) + value.get("sum", 0),
        "min": min(prev.get("min", 0.0), value.get("min", 0.0)),
        "max": max(prev.get("max", 0.0), value.get("max", 0.0)),
    }
    out["mean"] = out["sum"] / count
    for key in ("p50", "p95", "p99"):
        if key in prev or key in value:
            out[key] = (pc * prev.get(key, 0.0)
                        + vc * value.get(key, 0.0)) / count
    return out


def merge_snapshots(*snapshots: Dict[str, object]) -> Dict[str, object]:
    """Combine flat snapshots: scalars add, histogram summary dicts
    merge via :func:`_merge_hist_summaries` (exact count/sum/min/max,
    count-weighted percentile approximation). Both operations are
    commutative and associative (scalars exactly, histogram floats up
    to rounding), so multi-worker merges are order-independent."""
    out: Dict[str, object] = {}
    for snap in snapshots:
        for name, value in snap.items():
            if name not in out:
                out[name] = dict(value) if isinstance(value, dict) else value
            elif isinstance(value, dict):
                prev = out[name]
                assert isinstance(prev, dict), name
                out[name] = _merge_hist_summaries(prev, value)
            else:
                out[name] = out[name] + value
    return out


def _prom_name(name: str, prefix: str) -> str:
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    return f"{prefix}_{sanitized}" if prefix else sanitized


def to_prometheus(snapshot: Dict[str, object],
                  prefix: str = "repro") -> str:
    """Render a flat :meth:`MetricsRegistry.snapshot` in the Prometheus
    text exposition format (``repro serve``'s ``/metrics`` endpoint).

    Dots become underscores under a ``repro_`` prefix; histogram
    summary dicts expand into ``_count``/``_sum`` plus ``quantile``-
    labelled sample lines. Untyped (no TYPE metadata is emitted for
    plain scalars beyond ``gauge`` — the registry snapshot does not
    carry the metric kind, and consumers treat untyped as gauge).
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        metric = _prom_name(name, prefix)
        if isinstance(value, dict):
            lines.append(f"# TYPE {metric} summary")
            for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                                  ("0.99", "p99")):
                if key in value:
                    lines.append(
                        f'{metric}{{quantile="{quantile}"}} '
                        f'{float(value[key]):g}')
            lines.append(f"{metric}_sum {float(value.get('sum', 0)):g}")
            lines.append(f"{metric}_count {int(value.get('count', 0))}")
        elif isinstance(value, bool):
            lines.append(f"{metric} {int(value)}")
        elif isinstance(value, (int, float)):
            lines.append(f"{metric} {value:g}" if isinstance(value, float)
                         else f"{metric} {value}")
        else:
            continue  # non-numeric gauge (labels, paths): not exposable
    return "\n".join(lines) + "\n"


def _fmt_scalar(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_tree(tree: Dict[str, object], indent: int = 0,
                derived: Optional[Dict[str, object]] = None) -> str:
    """Render a :meth:`MetricsRegistry.tree` as an indented listing."""
    lines: List[str] = []

    def walk(node: Dict[str, object], depth: int):
        pad = "  " * depth
        for key in sorted(node):
            value = node[key]
            if isinstance(value, dict) and any(
                    isinstance(v, dict) for v in value.values()) or (
                    isinstance(value, dict)
                    and not _is_hist_summary(value)):
                lines.append(f"{pad}{key}:")
                walk(value, depth + 1)
            elif isinstance(value, dict):
                summary = ", ".join(
                    f"{k}={_fmt_scalar(value[k])}"
                    for k in ("count", "mean", "p50", "p95", "p99")
                    if k in value)
                lines.append(f"{pad}{key:24s} {summary}")
            else:
                lines.append(f"{pad}{key:24s} {_fmt_scalar(value)}")

    def _is_hist_summary(value: Dict[str, object]) -> bool:
        return set(value) >= {"count", "sum", "p50"}

    walk(tree, indent)
    if derived:
        lines.append("derived:")
        for key in sorted(derived):
            lines.append(f"  {key:24s} {_fmt_scalar(derived[key])}")
    return "\n".join(lines)
