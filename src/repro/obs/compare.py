"""Bench-envelope comparison: regression gating + differential profiling.

:func:`compare_envelopes` diffs two ``repro.bench/v1`` envelopes
scenario by scenario. The gate is deliberately noise-aware: a scenario
counts as **regressed** only when the median wall time slowed past the
relative tolerance *and* the median shift clears the combined IQR
noise bands *and* the scenario is large enough for wall-clock to mean
anything (``min_wall_ms``). Self-comparison of an envelope is
therefore always clean, and one noisy rep cannot fail CI.

When a scenario regresses, the differential profile explains *where*:
the deterministic per-function cycle profiles embedded in both
envelopes are diffed (:func:`diff_profiles`) to name the guest
functions whose simulated cost moved, and the counter census is
diffed (:func:`diff_counters`) to name the ``sim.*``/``cyc_*`` event
classes that moved. Identical profiles + counters on a wall-clock
regression mean the guest work did not change — the *interpreter*
(or the host) got slower, which is exactly the signal the fast-ISS
trajectory needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ScenarioDelta", "BenchComparison", "compare_envelopes",
           "diff_profiles", "diff_counters"]

#: Default gate: >25 % median wall-time slowdown (host timers in CI are
#: noisy; the IQR guard below does the fine discrimination).
DEFAULT_TOLERANCE_PCT = 25.0

#: Scenarios whose baseline median wall is below this never gate.
DEFAULT_MIN_WALL_MS = 2.0


def diff_profiles(base: List[dict], new: List[dict],
                  top: int = 5) -> List[dict]:
    """Top-N per-function cycle movers between two embedded profiles.

    Each profile is the envelope's deterministic ``"profile"`` list
    (``{"name", "cycles", "retired"}`` records). Returns mover records
    sorted by absolute cycle delta, descending; functions present on
    only one side diff against zero.
    """
    base_by = {fn["name"]: fn for fn in base}
    new_by = {fn["name"]: fn for fn in new}
    movers = []
    for name in sorted(set(base_by) | set(new_by)):
        b = base_by.get(name, {})
        n = new_by.get(name, {})
        delta = n.get("cycles", 0) - b.get("cycles", 0)
        if delta == 0:
            continue
        base_cycles = b.get("cycles", 0)
        movers.append({
            "function": name,
            "base_cycles": base_cycles,
            "new_cycles": n.get("cycles", 0),
            "delta_cycles": delta,
            "delta_pct": (100.0 * delta / base_cycles
                          if base_cycles else None),
            "delta_retired": n.get("retired", 0) - b.get("retired", 0),
        })
    movers.sort(key=lambda m: (-abs(m["delta_cycles"]), m["function"]))
    return movers[:top]


def diff_counters(base: Dict[str, int], new: Dict[str, int],
                  top: int = 5) -> List[dict]:
    """Top-N moved scalar counters between two snapshot dicts."""
    movers = []
    for name in sorted(set(base) | set(new)):
        b, n = base.get(name, 0), new.get(name, 0)
        if not isinstance(b, (int, float)) or \
                not isinstance(n, (int, float)) or n == b:
            continue
        movers.append({
            "counter": name,
            "base": b,
            "new": n,
            "delta": n - b,
            "delta_pct": 100.0 * (n - b) / b if b else None,
        })
    movers.sort(key=lambda m: (-abs(m["delta"]), m["counter"]))
    return movers[:top]


@dataclass
class ScenarioDelta:
    """One scenario's base-vs-new comparison row."""

    name: str
    verdict: str                  # ok | regressed | improved | new | missing
    base_wall_ms: Optional[float] = None
    new_wall_ms: Optional[float] = None
    slowdown_pct: Optional[float] = None
    base_mips: Optional[float] = None
    new_mips: Optional[float] = None
    noise_ms: float = 0.0
    notes: List[str] = field(default_factory=list)
    profile_movers: List[dict] = field(default_factory=list)
    counter_movers: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "verdict": self.verdict,
            "base_wall_ms": self.base_wall_ms,
            "new_wall_ms": self.new_wall_ms,
            "slowdown_pct": self.slowdown_pct,
            "base_mips": self.base_mips,
            "new_mips": self.new_mips,
            "noise_ms": self.noise_ms,
            "notes": list(self.notes),
            "profile_movers": list(self.profile_movers),
            "counter_movers": list(self.counter_movers),
        }


@dataclass
class BenchComparison:
    """Full envelope diff: per-scenario rows + the gate verdict."""

    tolerance_pct: float
    min_wall_ms: float
    deltas: List[ScenarioDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[ScenarioDelta]:
        return [d for d in self.deltas if d.verdict == "regressed"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "schema": "repro.bench.compare/v1",
            "tolerance_pct": self.tolerance_pct,
            "min_wall_ms": self.min_wall_ms,
            "ok": self.ok,
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def table(self) -> str:
        """Regression table + differential profiles for the casualties."""
        lines = [
            f"{'scenario':<28}{'base ms':>10}{'new ms':>10}"
            f"{'Δ%':>8}{'base MIPS':>11}{'new MIPS':>11}  verdict",
        ]
        for d in self.deltas:
            wall_b = f"{d.base_wall_ms:.2f}" \
                if d.base_wall_ms is not None else "-"
            wall_n = f"{d.new_wall_ms:.2f}" \
                if d.new_wall_ms is not None else "-"
            pct = f"{d.slowdown_pct:+.1f}" \
                if d.slowdown_pct is not None else "-"
            mips_b = f"{d.base_mips:.2f}" \
                if d.base_mips is not None else "-"
            mips_n = f"{d.new_mips:.2f}" \
                if d.new_mips is not None else "-"
            mark = d.verdict.upper() if d.verdict == "regressed" \
                else d.verdict
            lines.append(f"{d.name:<28}{wall_b:>10}{wall_n:>10}"
                         f"{pct:>8}{mips_b:>11}{mips_n:>11}  {mark}")
            for note in d.notes:
                lines.append(f"{'':<28}  note: {note}")
        for d in self.regressions:
            lines.append("")
            lines.append(f"differential profile — {d.name}:")
            if not d.profile_movers and not d.counter_movers:
                lines.append("  guest profile and counters identical: "
                             "interpreter/host-side slowdown")
                continue
            for m in d.profile_movers:
                pct = f" ({m['delta_pct']:+.1f}%)" \
                    if m["delta_pct"] is not None else ""
                lines.append(
                    f"  fn {m['function']:<24} "
                    f"{m['base_cycles']:>10} -> {m['new_cycles']:>10} "
                    f"cycles  Δ{m['delta_cycles']:+d}{pct}")
            for m in d.counter_movers:
                pct = f" ({m['delta_pct']:+.1f}%)" \
                    if m["delta_pct"] is not None else ""
                lines.append(
                    f"  ct {m['counter']:<24} "
                    f"{m['base']:>10} -> {m['new']:>10}"
                    f"  Δ{m['delta']:+d}{pct}")
        gate = "OK" if self.ok else \
            f"REGRESSED ({len(self.regressions)} scenario(s))"
        lines.append("")
        lines.append(f"bench gate: {gate} "
                     f"(tolerance {self.tolerance_pct:g}%, "
                     f"IQR noise guard, floor {self.min_wall_ms:g}ms)")
        return "\n".join(lines)


def _wall(entry: dict) -> Tuple[float, float]:
    band = entry.get("measured", {}).get("wall_ms", {})
    return float(band.get("median", 0.0)), float(band.get("iqr", 0.0))


def _mips(entry: dict) -> Optional[float]:
    band = entry.get("measured", {}).get("guest_mips")
    if not band:
        return None
    return float(band.get("median", 0.0))


def compare_envelopes(base: dict, new: dict,
                      tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
                      min_wall_ms: float = DEFAULT_MIN_WALL_MS,
                      top: int = 5) -> BenchComparison:
    """Diff two ``repro.bench/v1`` envelopes; see the module docstring
    for the gate semantics."""
    comparison = BenchComparison(tolerance_pct=tolerance_pct,
                                 min_wall_ms=min_wall_ms)
    base_scenarios = base.get("scenarios", {})
    new_scenarios = new.get("scenarios", {})
    for name in sorted(set(base_scenarios) | set(new_scenarios)):
        if name not in new_scenarios:
            comparison.deltas.append(ScenarioDelta(
                name=name, verdict="missing",
                notes=["scenario present in baseline only"]))
            continue
        entry = new_scenarios[name]
        if name not in base_scenarios:
            wall, _ = _wall(entry)
            comparison.deltas.append(ScenarioDelta(
                name=name, verdict="new", new_wall_ms=wall,
                new_mips=_mips(entry),
                notes=["no baseline for this scenario"]))
            continue
        base_entry = base_scenarios[name]
        base_wall, base_iqr = _wall(base_entry)
        new_wall, new_iqr = _wall(entry)
        delta = ScenarioDelta(
            name=name, verdict="ok",
            base_wall_ms=base_wall, new_wall_ms=new_wall,
            base_mips=_mips(base_entry), new_mips=_mips(entry),
            noise_ms=base_iqr + new_iqr)
        if base_wall > 0:
            delta.slowdown_pct = 100.0 * (new_wall / base_wall - 1.0)
        base_instret = base_entry.get("guest_instructions")
        new_instret = entry.get("guest_instructions")
        if base_instret is not None and new_instret is not None \
                and base_instret != new_instret:
            delta.notes.append(
                f"guest instructions changed: {base_instret} -> "
                f"{new_instret} (behaviour change, MIPS not "
                "like-for-like)")
        slowed = (
            base_wall >= min_wall_ms
            and delta.slowdown_pct is not None
            and delta.slowdown_pct > tolerance_pct
            and (new_wall - base_wall) > delta.noise_ms
        )
        if slowed:
            delta.verdict = "regressed"
            delta.profile_movers = diff_profiles(
                base_entry.get("profile", []),
                entry.get("profile", []), top=top)
            delta.counter_movers = diff_counters(
                base_entry.get("counters", {}),
                entry.get("counters", {}), top=top)
        elif delta.slowdown_pct is not None and \
                delta.slowdown_pct < -tolerance_pct and \
                (base_wall - new_wall) > delta.noise_ms:
            delta.verdict = "improved"
        comparison.deltas.append(delta)
    return comparison
