"""Low-overhead structured event tracing.

A :class:`Tracer` records :class:`TraceEvent` records into a bounded
ring buffer (oldest events drop first; ``dropped`` counts the loss).
Producers guard every emit with ``tracer.wants(category)`` — a frozen-
set membership test — so disabled categories cost one branch. When no
tracer is attached at all the simulator skips even that (the attribute
is ``None``), which is the null-sink fast path the <5 % overhead budget
relies on.

Categories
----------

``compile``   front-end/back-end phase spans (wall-clock µs)
``retire``    one span per retired instruction (cycle timestamps)
``trap``      simulation-ending traps (violations, faults, exits)
``kb``        keybuffer fills / evictions / clears
``shadow``    shadow-memory metadata writes and clears
``sim``       whole-run span markers
``campaign``  heartbeat progress instants from long campaigns
              (wall-clock µs; see repro.obs.heartbeat)

Exporters
---------

``to_chrome_json`` writes the Chrome ``trace_event`` array format —
load it at ``chrome://tracing`` or https://ui.perfetto.dev. Cycle-
timestamped categories and wall-clock ``compile`` spans are kept on
separate pids so the two time bases never interleave on one track.
``to_jsonl`` writes one JSON object per line for ad-hoc scripting.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER",
           "TRACE_CATEGORIES"]

TRACE_CATEGORIES = ("compile", "retire", "trap", "kb", "shadow", "sim",
                    "campaign")

# Wall-clock categories land on their own pid in the Chrome export so
# their microsecond timestamps don't share a track with cycle counts.
_WALLCLOCK_CATEGORIES = frozenset(["compile", "campaign"])


class TraceEvent:
    """One structured event. ``dur`` None means an instant event."""

    __slots__ = ("ts", "cat", "name", "dur", "args")

    def __init__(self, ts: float, cat: str, name: str,
                 dur: Optional[float] = None,
                 args: Optional[dict] = None):
        self.ts = ts
        self.cat = cat
        self.name = name
        self.dur = dur
        self.args = args

    def to_dict(self) -> dict:
        out = {"ts": self.ts, "cat": self.cat, "name": self.name}
        if self.dur is not None:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self):
        return (f"TraceEvent({self.cat}:{self.name} ts={self.ts}"
                f"{'' if self.dur is None else f' dur={self.dur}'})")


class Tracer:
    """Bounded ring buffer of trace events."""

    def __init__(self, capacity: int = 65536,
                 categories: Optional[Iterable[str]] = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._active = frozenset(categories if categories is not None
                                 else TRACE_CATEGORIES)
        unknown = self._active - set(TRACE_CATEGORIES)
        if unknown:
            raise ValueError(f"unknown trace categories: {sorted(unknown)}")
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    @property
    def enabled(self) -> bool:
        return True

    @property
    def categories(self) -> frozenset:
        return self._active

    def wants(self, cat: str) -> bool:
        """Cheap pre-check so producers skip building event args."""
        return cat in self._active

    def emit(self, cat: str, name: str, ts: float,
             dur: Optional[float] = None, args: Optional[dict] = None):
        if cat not in self._active:
            return
        self.emitted += 1
        self._events.append(TraceEvent(ts, cat, name, dur, args))

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.emitted - len(self._events)

    def events(self, cat: Optional[str] = None) -> List[TraceEvent]:
        if cat is None:
            return list(self._events)
        return [e for e in self._events if e.cat == cat]

    def clear(self):
        self._events.clear()
        self.emitted = 0

    # -- exporters ---------------------------------------------------------

    def to_chrome_dict(self) -> dict:
        """Chrome ``trace_event`` JSON object format (Perfetto-loadable)."""
        tids: Dict[str, int] = {cat: i for i, cat
                                in enumerate(TRACE_CATEGORIES)}
        trace_events: List[dict] = []
        for cat, pid, label in (("sim-cycles", 0, "simulated cycles"),
                                ("wall-clock", 1, "host wall clock")):
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": label}})
        for event in self._events:
            pid = 1 if event.cat in _WALLCLOCK_CATEGORIES else 0
            entry = {
                "name": event.name,
                "cat": event.cat,
                "pid": pid,
                "tid": tids.get(event.cat, len(TRACE_CATEGORIES)),
                "ts": event.ts,
            }
            if event.dur is None:
                entry["ph"] = "i"
                entry["s"] = "t"
            else:
                entry["ph"] = "X"
                entry["dur"] = event.dur
            if event.args:
                entry["args"] = event.args
            trace_events.append(entry)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "producer": "repro.obs.tracing",
                "dropped_events": self.dropped,
            },
        }

    def to_chrome_json(self, path=None, indent: Optional[int] = None) -> str:
        text = json.dumps(self.to_chrome_dict(), indent=indent)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text

    def to_jsonl(self, path=None) -> str:
        lines = "\n".join(json.dumps(e.to_dict()) for e in self._events)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(lines + ("\n" if lines else ""))
        return lines


class NullTracer(Tracer):
    """Sink that records nothing — for call sites that want an always-
    valid tracer object rather than an ``is not None`` guard."""

    def __init__(self):
        super().__init__(capacity=1, categories=())

    @property
    def enabled(self) -> bool:
        return False

    def wants(self, cat: str) -> bool:
        return False

    def emit(self, cat: str, name: str, ts: float,
             dur: Optional[float] = None, args: Optional[dict] = None):
        return None


NULL_TRACER = NullTracer()
