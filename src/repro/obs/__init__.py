"""``repro.obs`` — unified telemetry for the HWST128 reproduction.

Cooperating pieces (see docs/observability.md for the catalogue):

* :mod:`repro.obs.metrics` — hierarchical :class:`MetricsRegistry`
  with typed :class:`Counter`/:class:`Gauge`/:class:`Histogram`,
  snapshot/delta/merge and JSON export;
* :mod:`repro.obs.tracing` — bounded-ring structured event
  :class:`Tracer` with Chrome ``trace_event`` and JSONL exporters;
* :mod:`repro.obs.profiler` — :class:`CycleProfiler`, per-PC /
  per-function cycle attribution on the timing model, plus a
  collapsed-stack (folded) exporter for flamegraph/speedscope;
* :mod:`repro.obs.phases` — :class:`PhaseTimers`, wall-clock spans
  around the compile pipeline;
* :mod:`repro.obs.host` — host-process gauges (peak RSS, GC);
* :mod:`repro.obs.heartbeat` — :class:`Heartbeat`, rate-limited
  structured progress events for long campaigns;
* :mod:`repro.obs.bench` / :mod:`repro.obs.compare` — the
  performance-trajectory bench: ``repro.bench/v1`` envelopes
  (``BENCH_SIM.json``) and the regression gate with differential
  profiling (``repro bench --against``).

Everything is off by default: a machine without a tracer/profiler and
a compile without phase timers take the null-sink fast paths.
"""

from repro.obs.heartbeat import Heartbeat
from repro.obs.host import gc_collections, observe_host, peak_rss_kb
from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, Scope, format_tree,
    merge_snapshots,
)
from repro.obs.phases import (
    COMPILE_PHASES, NULL_PHASES, NullPhaseTimers, PhaseTimers,
)
from repro.obs.profiler import CycleProfiler, FunctionProfile, ProfileReport
from repro.obs.stats import HitMissStats, derived_rates
from repro.obs.tracing import (
    NULL_TRACER, NullTracer, TRACE_CATEGORIES, TraceEvent, Tracer,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Scope",
    "format_tree", "merge_snapshots",
    "COMPILE_PHASES", "NULL_PHASES", "NullPhaseTimers", "PhaseTimers",
    "CycleProfiler", "FunctionProfile", "ProfileReport",
    "HitMissStats", "derived_rates",
    "NULL_TRACER", "NullTracer", "TRACE_CATEGORIES", "TraceEvent",
    "Tracer",
    "Heartbeat", "gc_collections", "observe_host", "peak_rss_kb",
]
