"""Shared hit/miss bookkeeping and derived-rate helpers.

:class:`HitMissStats` replaces the copy-pasted ``hits``/``misses``/
``hit_rate``/``reset_stats`` blocks that :class:`repro.sim.keybuffer.
KeyBuffer` and :class:`repro.pipeline.cache.DataCache` each reinvented.
The counters live in a :class:`~repro.obs.metrics.MetricsRegistry` (or
stand alone when no registry is supplied) so cache statistics surface
in metric snapshots without any extra plumbing.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.obs.metrics import Counter, MetricsRegistry, Scope

__all__ = ["HitMissStats", "derived_rates"]


class HitMissStats:
    """Mixin: hit/miss counters with rate and reset semantics.

    Subclasses call :meth:`_init_hit_miss` from ``__init__`` and bump
    ``self._hits.value`` / ``self._misses.value`` on their hot paths
    (one attribute store — no slower than the raw ints it replaces).
    Extra counters (e.g. the keybuffer's ``clears``) can be created
    with :meth:`_stat_counter` and are reset alongside.
    """

    def _init_hit_miss(self, metrics: Optional[Union[MetricsRegistry,
                                                     Scope]] = None):
        self._metrics = metrics
        self._extra_stats = []
        if metrics is not None:
            self._hits = metrics.counter("hits")
            self._misses = metrics.counter("misses")
        else:
            self._hits = Counter("hits")
            self._misses = Counter("misses")
        # Re-constructed components (Machine.reset) re-acquire the same
        # registry counters; a fresh component implies fresh stats.
        self._hits.reset()
        self._misses.reset()

    def _stat_counter(self, name: str) -> Counter:
        """An additional counter reset together with hits/misses."""
        counter = self._metrics.counter(name) if self._metrics is not None \
            else Counter(name)
        counter.reset()
        self._extra_stats.append(counter)
        return counter

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def accesses(self) -> int:
        return self._hits.value + self._misses.value

    @property
    def hit_rate(self) -> float:
        total = self._hits.value + self._misses.value
        return self._hits.value / total if total else 0.0

    def reset_stats(self):
        self._hits.reset()
        self._misses.reset()
        for counter in self._extra_stats:
            counter.reset()

    def hit_miss_stats(self) -> Dict[str, int]:
        """Back-compat dict view."""
        return {"hits": self._hits.value, "misses": self._misses.value}


def derived_rates(stats: Dict[str, int], instret: int = 0,
                  cycles: int = 0) -> Dict[str, float]:
    """Rates the paper's tables quote, computed from a legacy stats dict.

    Works on any ``RunResult.stats`` (keys are always present since the
    zero-fill fix); divisions guard against empty runs.
    """

    def rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    out = {
        "kb_hit_rate": rate(stats.get("kb_hits", 0),
                            stats.get("kb_misses", 0)),
        "dcache_hit_rate": rate(stats.get("dcache_hits", 0),
                                stats.get("dcache_misses", 0)),
    }
    if instret:
        out["cpi"] = cycles / instret
        mem_ops = stats.get("loads", 0) + stats.get("stores", 0)
        out["mem_ops_per_kinstr"] = 1000.0 * mem_ops / instret
    return out
