"""repro.fuzz — coverage-guided differential fuzzing for the stack.

The subsystem generates seeded, guaranteed-terminating mini-C programs
(:mod:`repro.fuzz.gen`), cross-checks every layer of the toolchain on
them through a stack of differential oracles (:mod:`repro.fuzz.oracle`),
steers generation with grammar-production and runtime-function coverage
(:mod:`repro.fuzz.coverage`), and shrinks any divergence to a minimal
repro (:mod:`repro.fuzz.reduce`).  :mod:`repro.fuzz.campaign` ties it
together behind ``repro fuzz`` and the ``repro.fuzz/v1`` report.
"""

from repro.fuzz.campaign import FuzzCell, FuzzReport, run_fuzz
from repro.fuzz.gen import (
    BUG_KINDS, EXPECTED_CLASS, GeneratedProgram, generate_program,
    plan_programs,
)
from repro.fuzz.oracle import Divergence, classify_program, probe_program
from repro.fuzz.coverage import FuzzCoverage
from repro.fuzz.reduce import reduce_source

__all__ = [
    "BUG_KINDS", "EXPECTED_CLASS", "Divergence", "FuzzCell", "FuzzCoverage",
    "FuzzReport", "GeneratedProgram", "classify_program", "generate_program",
    "plan_programs", "probe_program", "reduce_source", "run_fuzz",
]
