"""Fuzz campaign driver: generate → probe → classify → reduce → report.

A campaign runs in *rounds*.  Each round plans ``round_size`` programs,
generates them with the current coverage-derived production weights,
fans the oracle probes across the :class:`~repro.harness.parallel.\
SweepExecutor` worker pool, then folds the observed coverage back into
the weights for the next round.  Coverage is merged in program-index
order at the round barrier, so the generated corpus — and therefore the
whole report — is a pure function of ``(seed, n, round_size)``; the
jobs count only changes wallclock, never a byte of the report.

Divergent programs are shrunk in the parent process with
:func:`repro.fuzz.reduce.reduce_source`; the predicate re-probes the
candidate and accepts it iff it still shows every original divergence
signature.  Reduced repros (plus the original source and a metadata
record) land in ``corpus_dir`` when one is given.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.fuzz.coverage import FuzzCoverage
from repro.fuzz.gen import generate_program, plan_programs
from repro.fuzz.oracle import (
    DEFAULT_SCHEMES, Divergence, classify_program, probe_program,
)
from repro.harness.parallel import (
    CellResult, STATUS_HANG, STATUS_WORKER_DIED, SweepExecutor, run_cells,
)

__all__ = ["FuzzCell", "FuzzReport", "REPORT_SCHEMA", "run_fuzz"]

REPORT_SCHEMA = "repro.fuzz/v1"

#: Programs per generation round (the coverage-feedback barrier).
ROUND_SIZE = 25


@dataclass(frozen=True)
class FuzzCell:
    """One generated program's full oracle probe, as an executor cell."""

    index: int
    name: str
    kind: str                       # "safe" or a planted-bug kind
    expect: str                     # "" | "spatial" | "temporal"
    source: str
    schemes: Tuple[str, ...] = DEFAULT_SCHEMES
    max_instructions: int = 2_000_000
    wallclock_budget: Optional[float] = 60.0
    engine_lockstep: bool = False
    spec_lockstep: bool = False

    @property
    def tag(self) -> str:
        return f"fuzz/{self.index}"

    @property
    def scheme(self) -> str:
        return "fuzz"

    @property
    def workload(self) -> str:
        return self.name

    @property
    def group_key(self) -> str:
        # Batch neighbouring programs onto one worker for cache locality.
        return f"fuzz.{self.index // 4}"

    def execute(self) -> CellResult:
        probe = probe_program(self.source, self.schemes,
                              max_instructions=self.max_instructions,
                              engine_lockstep=self.engine_lockstep,
                              spec_lockstep=self.spec_lockstep)
        verdicts, divergences = classify_program(
            self.kind, self.expect, probe, self.schemes)
        reference = probe.profiles[self.schemes[-1]]
        return CellResult(
            tag=self.tag, workload=self.name, scheme="fuzz",
            ok=not divergences,
            status="agree" if not divergences else "divergence",
            exit_code=reference.exit_code,
            instret=reference.instret,
            extra={
                "verdicts": verdicts,
                "divergences": [d.to_dict() for d in divergences],
                "functions": list(probe.functions),
                "lint": list(probe.lint_kinds),
                "statuses": {key: profile.status
                             for key, profile in probe.profiles.items()},
            })


def _crash_signature(error: str) -> Tuple[str, str]:
    """Harness-divergence signature for a worker traceback."""
    last = error.strip().splitlines()[-1] if error.strip() else ""
    name = last.split(":", 1)[0].strip()
    name = name.rsplit(".", 1)[-1] or "Exception"
    return ("harness", f"crash.{name}")


def _envelope_divergence(result: CellResult) -> Divergence:
    if result.status == STATUS_HANG:
        return Divergence("harness", "hang", result.detail)
    if result.status == STATUS_WORKER_DIED:
        return Divergence("harness", "worker_died", result.detail)
    oracle, kind = _crash_signature(result.error)
    detail = result.error.strip().splitlines()[-1] if result.error else ""
    return Divergence(oracle, kind, detail)


def _signatures_of(source: str, kind: str, expect: str,
                   schemes: Sequence[str],
                   max_instructions: int,
                   engine_lockstep: bool = False,
                   spec_lockstep: bool = False) -> Set[Tuple[str, str]]:
    """Divergence signatures a candidate source exhibits (for ddmin)."""
    try:
        probe = probe_program(source, schemes,
                              max_instructions=max_instructions,
                              collect_coverage=False,
                              engine_lockstep=engine_lockstep,
                              spec_lockstep=spec_lockstep)
    except Exception as exc:                    # toolchain crash class
        return {("harness", f"crash.{type(exc).__name__}")}
    _, divergences = classify_program(kind, expect, probe, schemes)
    return {d.signature for d in divergences}


@dataclass
class FuzzReport:
    """Deterministic ``repro.fuzz/v1`` campaign report."""

    seed: int
    n: int
    schemes: Tuple[str, ...]
    round_size: int
    programs: List[dict] = field(default_factory=list)
    divergences: List[dict] = field(default_factory=list)
    coverage: dict = field(default_factory=dict)
    #: True when a ``stop`` flag cut the campaign short at a round (or
    #: reduction) boundary; the report then covers the completed prefix.
    interrupted: bool = False

    @property
    def clean(self) -> bool:
        return not self.divergences

    def scoreboard(self) -> dict:
        kinds: Dict[str, int] = {}
        oracle_tallies: Dict[str, Dict[str, int]] = {}
        for record in self.programs:
            kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
            for oracle, verdict in record["verdicts"].items():
                tally = oracle_tallies.setdefault(oracle, {})
                tally[verdict] = tally.get(verdict, 0) + 1
        return {
            "programs": len(self.programs),
            "safe": kinds.get("safe", 0),
            "planted": {k: kinds[k] for k in sorted(kinds) if k != "safe"},
            "oracles": {k: dict(sorted(v.items()))
                        for k, v in sorted(oracle_tallies.items())},
            "divergent_programs": len(
                {d["index"] for d in self.divergences}),
            "divergences": sum(len(d["divergences"])
                               for d in self.divergences),
        }

    def to_dict(self) -> dict:
        # interrupted/completed appear only on truncated reports, so
        # completed campaigns keep their exact bytes.
        doc = {
            "schema": REPORT_SCHEMA,
            "seed": self.seed,
            "n": self.n,
            "schemes": list(self.schemes),
            "round_size": self.round_size,
            "scoreboard": self.scoreboard(),
            "coverage": self.coverage,
            "programs": self.programs,
            "divergences": self.divergences,
        }
        if self.interrupted:
            doc["interrupted"] = True
            doc["completed"] = len(self.programs)
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path) -> None:
        Path(path).write_text(self.to_json())

    def table(self) -> str:
        board = self.scoreboard()
        lines = [
            f"fuzz campaign: seed={self.seed} n={self.n} "
            f"schemes={'/'.join(self.schemes)}",
            f"  programs: {board['programs']} "
            f"({board['safe']} safe, "
            f"{board['programs'] - board['safe']} planted)",
        ]
        for oracle, tally in board["oracles"].items():
            cells = " ".join(f"{verdict}={count}"
                             for verdict, count in tally.items())
            lines.append(f"  oracle {oracle:<12} {cells}")
        if self.divergences:
            lines.append(f"  DIVERGENT: {board['divergent_programs']} "
                         f"program(s), {board['divergences']} finding(s)")
            for record in self.divergences:
                sigs = ", ".join(sorted(
                    {f"{d['oracle']}/{d['kind']}"
                     for d in record["divergences"]}))
                shrunk = record.get("reduced_statements")
                note = f" -> reduced to {shrunk} stmts" \
                    if shrunk is not None else ""
                lines.append(f"    {record['name']}: {sigs}{note}")
        else:
            lines.append("  no divergences")
        return "\n".join(lines)


def run_fuzz(n: int, seed: int,
             jobs: int = 1,
             executor: Optional[SweepExecutor] = None,
             schemes: Sequence[str] = DEFAULT_SCHEMES,
             corpus_dir=None,
             reduce_divergences: bool = True,
             round_size: int = ROUND_SIZE,
             max_instructions: int = 2_000_000,
             wallclock_budget: Optional[float] = 60.0,
             reduce_checks: int = 300,
             heartbeat=None,
             engine_lockstep: bool = False,
             spec_lockstep: bool = False,
             stop=None) -> FuzzReport:
    """Run a fuzz campaign of ``n`` programs from ``seed``.

    Deterministic: the report (and its JSON rendering) is byte-identical
    for the same ``(seed, n, round_size, schemes)`` at any ``jobs``.
    ``heartbeat`` (a :class:`repro.obs.heartbeat.Heartbeat`) receives
    rate-limited progress ticks as probe groups complete — stderr/
    telemetry only, never a byte of the report.

    ``engine_lockstep`` (opt-in) adds the ref-vs-fast engine oracle to
    every probe; ``spec_lockstep`` (opt-in) adds the executable golden
    spec (``repro.spec``) co-simulated against the reference engine.
    Both default off, keeping existing reports byte-identical.

    ``stop`` (optional zero-argument callable, e.g. a SIGTERM flag) is
    polled at every round boundary and between divergence reductions;
    once True, the campaign finalises a valid truncated report over
    the rounds that completed, marked ``interrupted=True``.
    """
    schemes = tuple(schemes)
    report = FuzzReport(seed=seed, n=n, schemes=schemes,
                        round_size=round_size)
    coverage = FuzzCoverage()
    weights: Optional[Dict[str, float]] = None
    divergent: List[Tuple[FuzzCell, List[Divergence]]] = []

    done = 0
    while done < n:
        if stop is not None and stop():
            report.interrupted = True
            break
        batch = min(round_size, n - done)
        plan = plan_programs(seed, batch, start=done)
        cells = []
        for index, kind in plan:
            program = generate_program(seed, index, kind, weights)
            cells.append((program, FuzzCell(
                index=index, name=program.name, kind=program.kind,
                expect=program.expect, source=program.source,
                schemes=schemes, max_instructions=max_instructions,
                wallclock_budget=wallclock_budget,
                engine_lockstep=engine_lockstep,
                spec_lockstep=spec_lockstep)))
        progress = None
        if heartbeat is not None:
            base_done = done

            def progress(round_done, _total, _base=base_done):
                heartbeat.tick(
                    _base + round_done,
                    divergent_programs=len(divergent),
                    phase="probe")
        results = run_cells([cell for _, cell in cells],
                            executor=executor, jobs=jobs,
                            progress=progress)
        # Fold results back in index order — the only order that exists
        # as far as the report is concerned, whatever jobs= was.
        for (program, cell), result in zip(cells, results):
            if result.measured:
                verdicts = result.extra["verdicts"]
                found = [Divergence(**d)
                         for d in result.extra["divergences"]]
                coverage.observe(program.features,
                                 result.extra["functions"])
                status = result.extra["statuses"].get(schemes[-1], "")
            else:
                envelope = _envelope_divergence(result)
                verdicts = {"harness": "divergence"}
                found = [envelope]
                status = result.status
            report.programs.append({
                "index": cell.index,
                "name": cell.name,
                "kind": cell.kind,
                "expect": cell.expect,
                "status": status,
                "verdicts": verdicts,
                "findings": len(found),
            })
            if found:
                divergent.append((cell, found))
        weights = coverage.weights()
        done += batch

    report.coverage = coverage.to_dict()

    corpus = Path(corpus_dir) if corpus_dir else None
    if corpus is not None:
        corpus.mkdir(parents=True, exist_ok=True)
    for cell, found in divergent:
        if stop is not None and stop() and not report.interrupted:
            # Keep recording the (cheap) divergence facts; only skip
            # the remaining expensive ddmin reductions.
            report.interrupted = True
            reduce_divergences = False
        if heartbeat is not None:
            heartbeat.tick(n, divergent_programs=len(divergent),
                           phase="reduce", reducing=cell.name)
        record = {
            "index": cell.index,
            "name": cell.name,
            "kind": cell.kind,
            "expect": cell.expect,
            "divergences": [d.to_dict() for d in found],
            "source": cell.source,
        }
        wanted = {d.signature for d in found}
        reducible = reduce_divergences and not any(
            d.kind in ("hang", "worker_died") for d in found)
        if reducible:
            from repro.fuzz.reduce import reduce_source

            def predicate(candidate: str,
                          _wanted=frozenset(wanted)) -> bool:
                got = _signatures_of(candidate, cell.kind, cell.expect,
                                     schemes, max_instructions,
                                     engine_lockstep=engine_lockstep,
                                     spec_lockstep=spec_lockstep)
                return _wanted <= got

            shrunk = reduce_source(cell.source, predicate,
                                   max_checks=reduce_checks)
            record["reduced_source"] = shrunk.source
            record["reduced_statements"] = shrunk.statements
            record["reduce_checks"] = shrunk.checks
        report.divergences.append(record)
        if corpus is not None:
            stem = corpus / cell.name
            stem.with_suffix(".c").write_text(cell.source)
            if "reduced_source" in record:
                (corpus / f"{cell.name}.min.c").write_text(
                    record["reduced_source"])
            stem.with_suffix(".json").write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n")
    return report
