"""Differential oracle stack for fuzz programs.

Four oracle classes, each a pure function of observable run profiles:

``scheme``
    gcc / sbcets / hwst128 must agree on (status, exit code, stdout)
    for safe programs; a planted bug must be reported by every checked
    scheme with exactly the planted violation class (spatial vs
    temporal) — never missed, never mis-attributed.  The unchecked
    baseline may do anything on a buggy program *except* spin forever.
``static``
    the linter's error findings are must-facts; any error on a
    provably safe program is a false positive, and an error whose
    class contradicts the planted class is a mis-attribution.
``compression``
    the same program under two metadata-compression geometries
    (default vs :data:`ALT_WIDTHS`) must execute identically:
    same status/exit/stdout/trap class, same trap pc, same instret.
    Heap digests are *excluded* here by design — the runtime stores
    width-dependent packed metadata words in memory, so raw images
    legitimately differ between geometries.
``timing``
    the timed pipeline must be architecturally invisible: ISS and
    pipeline runs of the same build must match on every observable
    including the heap digest and the retired-instruction count.

Every run happens untimed except the one timed hwst128 probe, which
doubles as the coverage collector (per-PC profile folded onto runtime
function symbols).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import FieldWidths, HwstConfig
from repro.faultinject.oracle import RunProfile, profile_run
from repro.sim.machine import (
    STATUS_EXIT, STATUS_LIMIT, STATUS_SPATIAL, STATUS_TEMPORAL,
)

__all__ = ["ALT_WIDTHS", "CHECKED_SCHEMES", "DEFAULT_SCHEMES",
           "Divergence", "ProgramProbe", "alt_config", "classify_program",
           "probe_program"]

#: the alternative compression geometry for the round-trip oracle —
#: wider base/lock, narrower range/key than the paper's default.
ALT_WIDTHS = FieldWidths(base=38, range=26, lock=18, key=46)

DEFAULT_SCHEMES: Tuple[str, ...] = ("gcc", "sbcets", "hwst128")
CHECKED_SCHEMES: Tuple[str, ...] = ("sbcets", "hwst128")

_EXPECT_STATUS = {"spatial": STATUS_SPATIAL, "temporal": STATUS_TEMPORAL}

#: linter finding kind -> violation class it asserts.
_LINT_CLASS = {
    "oob": "spatial",
    "intra-oob": "spatial",
    "uaf": "temporal",
    "double-free": "temporal",
    "invalid-free": "temporal",
}


def alt_config(config: Optional[HwstConfig] = None) -> HwstConfig:
    """The default config re-geometried to :data:`ALT_WIDTHS`.

    ``lock_entries`` shrinks to the 18-bit lock space the narrower
    field can address.
    """
    base = config or HwstConfig()
    return HwstConfig(widths=ALT_WIDTHS, lock_entries=1 << 18,
                      shadow_offset=base.shadow_offset,
                      lock_base=base.lock_base)


@dataclass(frozen=True)
class Divergence:
    """One oracle disagreement (the fuzzer's unit of 'found something')."""

    oracle: str          # scheme | static | compression | timing | harness
    kind: str            # e.g. "stdout_mismatch", "missed.hwst128"
    detail: str = ""

    @property
    def signature(self) -> Tuple[str, str]:
        return (self.oracle, self.kind)

    def to_dict(self) -> dict:
        return {"oracle": self.oracle, "kind": self.kind,
                "detail": self.detail}


@dataclass
class ProgramProbe:
    """Raw observations of one program across every oracle axis."""

    profiles: Dict[str, RunProfile]
    lint_kinds: Tuple[str, ...]
    functions: Tuple[str, ...]       # runtime functions hit (timed run)
    #: Spec-lockstep observation (opt-in): first divergence (or None)
    #: plus run shape. None when the spec oracle was not requested.
    spec: Optional[dict] = None


def _profile(cache, source: str, scheme: str, config: HwstConfig,
             max_instructions: int, timed: bool = False,
             profiler=None, engine: str = "ref"
             ) -> Tuple[RunProfile, object]:
    from repro.sim import make_machine

    program = cache.compile(source, scheme, config)
    timing = None
    if timed:
        from repro.pipeline.timing import InOrderPipeline
        timing = InOrderPipeline()
    machine = make_machine(engine, config=config, timing=timing,
                           profiler=profiler)
    result = machine.run(program, max_instructions=max_instructions)
    return profile_run(machine, result), program


def probe_program(source: str,
                  schemes: Sequence[str] = DEFAULT_SCHEMES,
                  config: Optional[HwstConfig] = None,
                  cache=None,
                  max_instructions: int = 2_000_000,
                  collect_coverage: bool = True,
                  engine_lockstep: bool = False,
                  spec_lockstep: bool = False) -> ProgramProbe:
    """Run every oracle probe for ``source``; may raise on a toolchain
    crash (the campaign layer converts that into a harness divergence).

    ``engine_lockstep`` (opt-in, off by default so existing
    ``repro.fuzz/v1`` reports stay byte-identical) adds a fifth oracle
    axis: the hwst128 build re-executed on the fast translation-cached
    engine, which must match the reference run on every observable
    including instret and the heap digest.

    ``spec_lockstep`` (opt-in, same byte-compatibility contract) adds
    the executable golden spec (``repro.spec``) as an oracle: the
    hwst128 build co-simulated instruction-by-instruction against the
    reference engine, with full architectural state diffed at every
    retire.
    """
    from repro.analyze.linter import analyze_source
    from repro.harness.compile_cache import process_cache

    cache = cache if cache is not None else process_cache()
    config = config or HwstConfig()
    profiles: Dict[str, RunProfile] = {}
    for scheme in schemes:
        profiles[scheme], _ = _profile(cache, source, scheme, config,
                                       max_instructions)
    functions: Tuple[str, ...] = ()
    spec_record: Optional[dict] = None
    if "hwst128" in schemes:
        if engine_lockstep:
            profiles["hwst128@fast"], _ = _profile(
                cache, source, "hwst128", config, max_instructions,
                engine="fast")
        if spec_lockstep:
            from repro.sim import make_machine
            from repro.spec.lockstep import run_lockstep

            program = cache.compile(source, "hwst128", config)
            machine = make_machine("ref", config=config, timing=None)
            widths = config.widths
            lockstep = run_lockstep(
                machine, program,
                widths=(widths.base, widths.range, widths.lock,
                        widths.key),
                lock_base=config.lock_base,
                shadow_budget=config.shadow_budget,
                max_instructions=max_instructions)
            spec_record = {
                "divergence": lockstep.divergence,
                "status": lockstep.outcome.status,
                "retires": lockstep.retires,
            }
        profiles["hwst128@alt"], _ = _profile(
            cache, source, "hwst128", alt_config(config), max_instructions)
        profiler = None
        if collect_coverage:
            from repro.obs.profiler import CycleProfiler
            profiler = CycleProfiler()
        profiles["hwst128@timed"], program = _profile(
            cache, source, "hwst128", config, max_instructions,
            timed=True, profiler=profiler)
        if profiler is not None:
            report = profiler.report(program)
            functions = tuple(sorted(
                fn.name for fn in report.functions if fn.name != "?"))
    lint = analyze_source(source, "fuzz", config)
    lint_kinds = tuple(sorted({f.kind for f in lint.errors()}))
    return ProgramProbe(profiles=profiles, lint_kinds=lint_kinds,
                        functions=functions, spec=spec_record)


def _show(profile: RunProfile) -> str:
    text = f"{profile.status}/exit={profile.exit_code}"
    if profile.trap_class:
        text += f"/{profile.trap_class}"
    return text


def classify_program(kind: str, expect: str, probe: ProgramProbe,
                     schemes: Sequence[str] = DEFAULT_SCHEMES
                     ) -> Tuple[Dict[str, str], List[Divergence]]:
    """Reduce a probe to per-oracle verdicts plus divergences.

    ``kind`` is "safe" or a planted-bug kind; ``expect`` is "" or the
    planted violation class. Verdicts: "agree", "divergence", or (for
    the static oracle on planted programs only) "miss" — the linter is
    allowed to miss a dynamic bug, it must never contradict one.
    """
    divergences: List[Divergence] = []
    profiles = probe.profiles
    safe = kind == "safe"

    # -- scheme agreement --------------------------------------------------
    if safe:
        reference = profiles[schemes[0]]
        for scheme in schemes:
            profile = profiles[scheme]
            if profile.status != STATUS_EXIT or profile.exit_code != 0:
                divergences.append(Divergence(
                    "scheme", f"safe_trap.{scheme}",
                    f"safe program ended {_show(profile)}"))
            elif profile.output != reference.output:
                divergences.append(Divergence(
                    "scheme", f"stdout_mismatch.{scheme}",
                    f"{scheme} stdout {profile.output!r} != "
                    f"{schemes[0]} stdout {reference.output!r}"))
    else:
        wanted = _EXPECT_STATUS[expect]
        for scheme in CHECKED_SCHEMES:
            if scheme not in profiles:
                continue
            profile = profiles[scheme]
            if profile.status == wanted:
                continue
            if profile.status in (STATUS_SPATIAL, STATUS_TEMPORAL):
                divergences.append(Divergence(
                    "scheme", f"misattributed.{scheme}",
                    f"planted {kind} ({expect}) reported as "
                    f"{profile.status}"))
            else:
                divergences.append(Divergence(
                    "scheme", f"missed.{scheme}",
                    f"planted {kind} ({expect}) ended {_show(profile)}"))
        if "gcc" in profiles and profiles["gcc"].status == STATUS_LIMIT:
            divergences.append(Divergence(
                "scheme", "runaway.gcc",
                f"unchecked run of planted {kind} hit the step budget"))
    scheme_verdict = "divergence" if any(
        d.oracle == "scheme" for d in divergences) else "agree"

    # -- static vs dynamic -------------------------------------------------
    static_verdict = "agree"
    if safe:
        if probe.lint_kinds:
            static_verdict = "divergence"
            divergences.append(Divergence(
                "static", "lint_false_positive",
                "linter errors on a safe program: "
                + ", ".join(probe.lint_kinds)))
    elif not probe.lint_kinds:
        static_verdict = "miss"
    else:
        classes = {_LINT_CLASS.get(k, "other") for k in probe.lint_kinds}
        if expect not in classes and "other" not in classes:
            static_verdict = "divergence"
            divergences.append(Divergence(
                "static", "lint_misattributed",
                f"planted {expect} bug, linter reported only: "
                + ", ".join(probe.lint_kinds)))

    # -- compression round-trip --------------------------------------------
    compression_verdict = "agree"
    if "hwst128" in profiles and "hwst128@alt" in profiles:
        a, b = profiles["hwst128"], profiles["hwst128@alt"]
        same = (a.status == b.status and a.exit_code == b.exit_code
                and a.output == b.output and a.trap_class == b.trap_class
                and a.trap_pc == b.trap_pc and a.instret == b.instret)
        if not same:
            compression_verdict = "divergence"
            divergences.append(Divergence(
                "compression", "config_mismatch",
                f"default {_show(a)} instret={a.instret} vs "
                f"alt {_show(b)} instret={b.instret}"))

    # -- ISS vs pipeline ---------------------------------------------------
    timing_verdict = "agree"
    if "hwst128" in profiles and "hwst128@timed" in profiles:
        a, b = profiles["hwst128"], profiles["hwst128@timed"]
        if not (a.matches(b) and a.instret == b.instret):
            timing_verdict = "divergence"
            divergences.append(Divergence(
                "timing", "iss_pipeline_mismatch",
                f"untimed {_show(a)} instret={a.instret} vs "
                f"timed {_show(b)} instret={b.instret}"))

    verdicts = {
        "scheme": scheme_verdict,
        "static": static_verdict,
        "compression": compression_verdict,
        "timing": timing_verdict,
    }

    # -- reference vs fast engine (opt-in lockstep) ------------------------
    # The verdict key appears only when the probe carried the fast-
    # engine profile, so default campaign reports stay byte-identical.
    if "hwst128" in profiles and "hwst128@fast" in profiles:
        a, b = profiles["hwst128"], profiles["hwst128@fast"]
        if a.matches(b) and a.instret == b.instret:
            verdicts["engine"] = "agree"
        else:
            verdicts["engine"] = "divergence"
            divergences.append(Divergence(
                "engine", "ref_fast_mismatch",
                f"ref {_show(a)} instret={a.instret} vs "
                f"fast {_show(b)} instret={b.instret}"))

    # -- executable spec vs ISS (opt-in lockstep) --------------------------
    # Same byte-compatibility contract as the engine oracle: the
    # verdict key exists only when the probe carried a spec record.
    if probe.spec is not None:
        divergence = probe.spec.get("divergence")
        if divergence is None:
            verdicts["spec"] = "agree"
        else:
            verdicts["spec"] = "divergence"
            first = divergence.get("deltas") or [{}]
            divergences.append(Divergence(
                "spec", "spec_iss_mismatch",
                f"{divergence.get('reason')} at retire "
                f"{divergence.get('retire')} pc={divergence.get('pc')} "
                f"{divergence.get('mnemonic')}: {first[0]}"))
    return verdicts, divergences
