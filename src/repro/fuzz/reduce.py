"""ddmin-style test-case reducer over the mini-C AST.

Shrinks a divergence-triggering program to a minimal repro: parse the
source, repeatedly delete pre-order chunks of statements (halving the
chunk size, ddmin's complement-deletion schedule), then hoist loop and
branch bodies into their parent block, re-printing each candidate with
the deterministic pretty-printer and re-checking the caller's
``predicate``.  A candidate that fails to print (rare unprintable
shapes) or no longer exhibits the divergence is simply rejected — the
semantic analyzer rejecting a candidate (e.g. a deleted declaration
still referenced) shows up as a failing predicate, not a crash.

The reducer is deterministic: site enumeration is pre-order over the
AST, candidates are tried in a fixed schedule, and the predicate is
assumed pure.  ``max_checks`` bounds the number of predicate
evaluations so reduction cost stays predictable.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.minic import ast
from repro.minic.parser import parse
from repro.minic.pretty import PrettyError, pretty

__all__ = ["ReduceResult", "count_statements", "reduce_source"]


@dataclass
class ReduceResult:
    source: str
    statements: int
    checks: int          # predicate evaluations spent
    reduced: bool        # anything actually removed?


# -- site enumeration --------------------------------------------------------

def _stmt_sites(block: ast.Block, out: List[Tuple]) -> None:
    for index, stmt in enumerate(block.stmts):
        out.append(("stmt", block, index))
        for child in _child_blocks(stmt):
            _stmt_sites(child, out)


def _child_blocks(stmt: ast.Stmt):
    """Blocks nested directly under a statement (bodies and branches)."""
    if isinstance(stmt, ast.Block):
        yield stmt
        return
    for name in ("body", "then", "other"):
        child = getattr(stmt, name, None)
        if isinstance(child, ast.Block):
            yield child
        elif isinstance(child, ast.Stmt):
            yield from _child_blocks(child)


def _sites(unit: ast.TranslationUnit) -> List[Tuple]:
    """Deletable sites in deterministic pre-order."""
    sites: List[Tuple] = []
    for index, _ in enumerate(unit.globals):
        sites.append(("global", unit, index))
    for index, func in enumerate(unit.functions):
        if func.name != "main":
            sites.append(("func", unit, index))
    for func in unit.functions:
        if func.body is not None:
            _stmt_sites(func.body, sites)
    return sites


def count_statements(unit: ast.TranslationUnit) -> int:
    """Statements in function bodies (control headers count once)."""
    return sum(1 for site in _sites(unit) if site[0] == "stmt")


def _apply_removal(unit: ast.TranslationUnit, drop: range) -> None:
    """Remove the sites with pre-order ids in ``drop`` (in place)."""
    sites = _sites(unit)
    selected = [sites[i] for i in drop if i < len(sites)]
    # Remove highest index first within each container so earlier
    # removals don't shift later ones.
    for kind, container, index in sorted(
            selected, key=lambda s: -s[2]):
        if kind == "global":
            del container.globals[index]
        elif kind == "func":
            del container.functions[index]
        else:
            del container.stmts[index]


# -- hoisting transforms -----------------------------------------------------

def _hoist_candidates(stmt: ast.Stmt) -> List[List[ast.Stmt]]:
    """Replacement statement lists that simplify a control statement."""
    def as_list(body: Optional[ast.Stmt]) -> List[ast.Stmt]:
        if body is None:
            return []
        if isinstance(body, ast.Block):
            return list(body.stmts)
        return [body]

    if isinstance(stmt, ast.If):
        out = [as_list(stmt.then)]
        if stmt.other is not None:
            out.append(as_list(stmt.other))
            stripped = copy.deepcopy(stmt)
            stripped.other = None
            out.append([stripped])
        return out
    if isinstance(stmt, (ast.While, ast.DoWhile)):
        return [as_list(stmt.body)]
    if isinstance(stmt, ast.For):
        init = [stmt.init] if stmt.init is not None else []
        return [init + as_list(stmt.body)]
    return []


# -- the reduction loop ------------------------------------------------------

class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _render(unit: ast.TranslationUnit) -> Optional[str]:
    try:
        text = pretty(unit)
        parse(text)          # candidate must stay syntactically valid
        return text
    except (PrettyError, Exception):
        return None


def _try(unit: ast.TranslationUnit, mutate,
         predicate: Callable[[str], bool],
         budget: _Budget) -> Optional[ast.TranslationUnit]:
    """Deep-copy, mutate, render, check. None if rejected/out of budget."""
    candidate = copy.deepcopy(unit)
    try:
        mutate(candidate)
    except Exception:
        return None
    text = _render(candidate)
    if text is None:
        return None
    if not budget.spend():
        return None
    return candidate if predicate(text) else None


def reduce_source(source: str, predicate: Callable[[str], bool],
                  max_checks: int = 400) -> ReduceResult:
    """Shrink ``source`` while ``predicate(candidate_source)`` holds.

    ``predicate`` receives pretty-printed candidate source and must
    return True when the candidate still exhibits the divergence being
    chased.  The original source is assumed to satisfy it.
    """
    budget = _Budget(max_checks)
    try:
        unit = parse(source)
    except Exception:
        return ReduceResult(source=source, statements=-1,
                            checks=0, reduced=False)
    text = _render(unit)
    if text is None or not budget.spend() or not predicate(text):
        # The printed form misbehaves differently from the raw source:
        # keep the original untouched rather than chase a ghost.
        return ReduceResult(source=source, statements=count_statements(unit),
                            checks=budget.used, reduced=False)

    reduced_any = False
    # Phase 1+2: chunked deletion, chunk size halving to 1 (ddmin's
    # complement-deletion schedule), to fixpoint.
    passes = True
    while passes:
        passes = False
        size = max(1, len(_sites(unit)) // 2)
        while size >= 1:
            start = 0
            while True:
                total = len(_sites(unit))
                if start >= total:
                    break
                drop = range(start, min(start + size, total))
                accepted = _try(unit,
                                lambda u, d=drop: _apply_removal(u, d),
                                predicate, budget)
                if accepted is not None:
                    unit = accepted
                    reduced_any = passes = True
                else:
                    start += size
                if budget.used >= budget.limit:
                    break
            if budget.used >= budget.limit:
                break
            size //= 2
        if budget.used >= budget.limit:
            break

    # Phase 3: hoist control bodies (turn `if/while/for { S }` into S),
    # repeating until nothing simplifies.
    changed = True
    while changed and budget.used < budget.limit:
        changed = False
        sites = _sites(unit)
        for site_id, (kind, container, index) in enumerate(sites):
            if kind != "stmt":
                continue
            stmt = container.stmts[index]
            for replacement in _hoist_candidates(stmt):
                def mutate(u, sid=site_id, repl=replacement):
                    target_sites = _sites(u)
                    _, block, idx = target_sites[sid]
                    block.stmts[idx:idx + 1] = copy.deepcopy(repl)
                accepted = _try(unit, mutate, predicate, budget)
                if accepted is not None:
                    unit = accepted
                    reduced_any = changed = True
                    break
            if changed:
                break

    return ReduceResult(source=_render(unit) or source,
                        statements=count_statements(unit),
                        checks=budget.used, reduced=reduced_any)
