"""Seeded grammar-based mini-C program generator.

Every program is typed, memory-safe by construction (all reads follow
writes, every index is provably in bounds, loops are bounded by
constants, helper functions are non-recursive) and therefore guaranteed
to terminate.  A program optionally carries exactly one planted,
ground-truth-labelled bug drawn from the Juliet fault taxonomy
(:data:`BUG_KINDS`); the planted statement is always placed after the
last loop and the last allocation so that an *unchecked* scheme cannot
be pushed into an unbounded loop by the corruption.

Determinism: all randomness flows from a private
``random.Random(f"fuzz/{seed}/{index}")`` — the same (seed, index,
weights) triple always yields the same source text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: planted-bug kinds -> violation class the checked schemes must raise.
EXPECTED_CLASS = {
    "oob_write": "spatial",
    "oob_read": "spatial",
    "oob_under": "spatial",
    "uaf": "temporal",
    "double_free": "temporal",
    "free_offset": "temporal",
}

BUG_KINDS: Tuple[str, ...] = tuple(sorted(EXPECTED_CLASS))

#: statement productions the coverage loop can steer towards.
STATEMENT_KINDS: Tuple[str, ...] = (
    "stmt.assign", "stmt.compound", "stmt.postinc", "stmt.if",
    "stmt.ifelse", "stmt.for", "stmt.while", "stmt.dowhile", "stmt.call",
    "stmt.memset", "stmt.memcpy", "stmt.strops", "stmt.print",
    "stmt.ternary", "stmt.cast", "stmt.member",
)

#: productions legal inside a loop or branch body (no nested loops, so
#: the constant-bound termination argument stays trivial).
_SIMPLE_KINDS: Tuple[str, ...] = (
    "stmt.assign", "stmt.compound", "stmt.postinc", "stmt.print",
    "stmt.ternary", "stmt.cast",
)

_BIN_OPS = ("+", "-", "*", "&", "|", "^")
_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_COMPOUND_OPS = ("+=", "-=", "*=", "^=", "|=", "&=")


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated fuzz program plus its ground-truth label."""

    index: int
    name: str
    kind: str                      # "safe" or a member of BUG_KINDS
    expect: str                    # "", "spatial" or "temporal"
    source: str
    features: Tuple[str, ...]      # grammar productions exercised


@dataclass
class _Buf:
    name: str
    count: int                     # element count
    elem: str                      # "long" or "char"
    heap: bool


class _Gen:
    def __init__(self, rng: random.Random, weights: Dict[str, float]):
        self.rng = rng
        self.weights = weights
        self.lines: List[str] = []
        self.features: set = set()
        self.scalars: List[str] = []       # long lvalues
        self.int_scalars: List[str] = []   # int lvalues (cast targets)
        self.bufs: List[_Buf] = []
        self.helpers: List[str] = []
        self.counter = 0
        self.use_struct = False
        self.struct_ptr = False
        # Largest value a live loop variable can take inside its body
        # (for-loops count 0..bound-1, while/do countdowns bound..1);
        # lvalue() consults this before indexing a buffer with it.
        self.loop_max: Dict[str, int] = {}

    # -- small helpers -----------------------------------------------------

    def fresh(self, prefix: str) -> str:
        name = f"{prefix}{self.counter}"
        self.counter += 1
        return name

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def pick_kind(self, kinds: Sequence[str]) -> str:
        total = sum(self.weights.get(k, 1.0) for k in kinds)
        x = self.rng.random() * total
        for kind in kinds:
            x -= self.weights.get(kind, 1.0)
            if x <= 0:
                return kind
        return kinds[-1]

    def const(self) -> str:
        value = self.rng.randint(-99, 99)
        return str(value) if value >= 0 else f"(-{-value})"

    # -- expressions -------------------------------------------------------

    def rvalue(self, depth: int, loop_var: Optional[str] = None) -> str:
        """A safe long-valued expression."""
        rng = self.rng
        atoms: List[str] = list(self.scalars)
        if loop_var:
            atoms.append(loop_var)
        for buf in self.bufs:
            if buf.elem == "long":
                atoms.append(f"{buf.name}[{rng.randrange(buf.count)}]")
        if self.use_struct:
            atoms.append("sp0.a")
            atoms.append(f"sp0.b[{rng.randrange(self.struct_dim)}]")
            if self.struct_ptr:
                atoms.append("pp0->a")
        atoms.append(self.const())
        if depth <= 0:
            return rng.choice(atoms)
        roll = rng.random()
        if roll < 0.45:
            op = rng.choice(_BIN_OPS)
            return (f"{self.rvalue(depth - 1, loop_var)} {op} "
                    f"{self.rvalue(depth - 1, loop_var)}")
        if roll < 0.55:
            divisor = rng.choice((2, 3, 5, 7, 9))
            op = rng.choice(("/", "%"))
            return f"({self.rvalue(depth - 1, loop_var)}) {op} {divisor}"
        if roll < 0.65:
            shift = rng.randrange(6)
            op = rng.choice(("<<", ">>"))
            return f"({self.rvalue(depth - 1, loop_var)}) {op} {shift}"
        if roll < 0.72 and self.helpers:
            self.features.add("expr.call")
            fn = rng.choice(self.helpers)
            return (f"{fn}({self.rvalue(0, loop_var)}, "
                    f"{self.rvalue(0, loop_var)})")
        if roll < 0.80:
            self.features.add("expr.sizeof")
            what = rng.choice(("long", "int", "char *"))
            return f"({self.rvalue(depth - 1, loop_var)} + sizeof({what}))"
        if roll < 0.88:
            op = rng.choice(("-", "~"))
            return f"{op}({self.rvalue(depth - 1, loop_var)})"
        return rng.choice(atoms)

    def cond(self, loop_var: Optional[str] = None) -> str:
        op = self.rng.choice(_CMP_OPS)
        return f"{self.rvalue(1, loop_var)} {op} {self.rvalue(0, loop_var)}"

    def lvalue(self, loop_var: Optional[str] = None) -> str:
        """A writable location (never a loop counter)."""
        rng = self.rng
        options: List[str] = list(self.scalars)
        for buf in self.bufs:
            if buf.elem == "long":
                # The loop variable is only a legal index when its
                # entire range fits the buffer (unknown vars are
                # treated as unbounded and never used).
                in_range = (loop_var is not None and
                            self.loop_max.get(loop_var, buf.count)
                            < buf.count)
                index = (loop_var if in_range and rng.random() < 0.5
                         else str(rng.randrange(buf.count)))
                options.append(f"{buf.name}[{index}]")
        if self.use_struct:
            options.append("sp0.a")
            options.append(f"sp0.b[{rng.randrange(self.struct_dim)}]")
        return rng.choice(options)

    # -- statements --------------------------------------------------------

    def statement(self, kind: str, indent: int,
                  loop_var: Optional[str] = None) -> None:
        rng = self.rng
        self.features.add(kind)
        if kind == "stmt.assign":
            self.emit(indent, f"{self.lvalue(loop_var)} = "
                              f"{self.rvalue(2, loop_var)};")
        elif kind == "stmt.compound":
            op = rng.choice(_COMPOUND_OPS)
            self.emit(indent, f"{self.lvalue(loop_var)} {op} "
                              f"{self.rvalue(1, loop_var)};")
        elif kind == "stmt.postinc":
            target = rng.choice(self.scalars)
            self.emit(indent, f"{target}{rng.choice(('++', '--'))};")
        elif kind == "stmt.print":
            self.emit(indent, f"print_int({self.rvalue(1, loop_var)});")
        elif kind == "stmt.ternary":
            self.emit(indent, f"{rng.choice(self.scalars)} = "
                              f"{self.cond(loop_var)} ? "
                              f"{self.rvalue(1, loop_var)} : "
                              f"{self.rvalue(1, loop_var)};")
        elif kind == "stmt.cast":
            if self.int_scalars:
                target = rng.choice(self.int_scalars)
                self.emit(indent, f"{target} = "
                                  f"(int)({self.rvalue(1, loop_var)});")
                self.emit(indent, f"acc += (long){target};")
            else:
                self.emit(indent, f"acc += (long)(char)"
                                  f"({self.rvalue(1, loop_var)});")
        elif kind == "stmt.if":
            self.emit(indent, f"if ({self.cond(loop_var)}) {{")
            self.body(rng.randint(1, 2), indent + 1, _SIMPLE_KINDS,
                      loop_var)
            self.emit(indent, "}")
        elif kind == "stmt.ifelse":
            self.emit(indent, f"if ({self.cond(loop_var)}) {{")
            self.body(1, indent + 1, _SIMPLE_KINDS, loop_var)
            self.emit(indent, "} else {")
            self.body(1, indent + 1, _SIMPLE_KINDS, loop_var)
            self.emit(indent, "}")
        elif kind == "stmt.for":
            var = self.fresh("i")
            bound = rng.randint(2, 8)
            self.loop_max[var] = bound - 1
            self.emit(indent, f"for (long {var} = 0; {var} < {bound}; "
                              f"{var}++) {{")
            self.body(rng.randint(1, 2), indent + 1, _SIMPLE_KINDS, var)
            self.emit(indent, "}")
        elif kind in ("stmt.while", "stmt.dowhile"):
            var = self.fresh("t")
            bound = rng.randint(2, 6)
            self.loop_max[var] = bound     # countdown: body sees bound..1
            self.emit(indent, f"long {var} = {bound};")
            if kind == "stmt.while":
                self.emit(indent, f"while ({var} > 0) {{")
            else:
                self.emit(indent, "do {")
            self.body(1, indent + 1, _SIMPLE_KINDS, var)
            self.emit(indent + 1, f"{var} = {var} - 1;")
            if kind == "stmt.while":
                self.emit(indent, "}")
            else:
                self.emit(indent, f"}} while ({var} > 0);")
        elif kind == "stmt.call":
            if self.helpers:
                fn = rng.choice(self.helpers)
                self.emit(indent, f"acc += {fn}({self.rvalue(1, loop_var)}, "
                                  f"{self.rvalue(0, loop_var)});")
            else:
                self.statement("stmt.assign", indent, loop_var)
        elif kind == "stmt.memset":
            heap_longs = [b for b in self.bufs if b.heap and
                          b.elem == "long"]
            if heap_longs:
                buf = rng.choice(heap_longs)
                fill = rng.randrange(4)
                self.emit(indent, f"memset({buf.name}, {fill}, "
                                  f"{buf.count} * sizeof(long));")
            else:
                self.statement("stmt.assign", indent, loop_var)
        elif kind == "stmt.memcpy":
            heap_longs = [b for b in self.bufs if b.heap and
                          b.elem == "long"]
            if len(heap_longs) >= 2:
                dst, src = rng.sample(heap_longs, 2)
                count = min(dst.count, src.count)
                self.emit(indent, f"memcpy({dst.name}, {src.name}, "
                                  f"{count} * sizeof(long));")
            else:
                self.statement("stmt.assign", indent, loop_var)
        elif kind == "stmt.strops":
            char_bufs = [b for b in self.bufs if b.elem == "char"]
            if char_bufs:
                buf = rng.choice(char_bufs)
                word = "".join(rng.choice("abcdxyz")
                               for _ in range(rng.randint(1, buf.count - 1)))
                self.emit(indent, f'strcpy({buf.name}, "{word}");')
                self.emit(indent, f"acc += strlen({buf.name});")
            else:
                self.statement("stmt.assign", indent, loop_var)
        elif kind == "stmt.member":
            if self.use_struct:
                if self.struct_ptr and rng.random() < 0.5:
                    self.emit(indent, f"pp0->a = {self.rvalue(1, loop_var)};")
                else:
                    dim = rng.randrange(self.struct_dim)
                    self.emit(indent, f"sp0.b[{dim}] = "
                                      f"{self.rvalue(1, loop_var)};")
                self.emit(indent, "acc += sp0.a;")
            else:
                self.statement("stmt.assign", indent, loop_var)
        else:   # pragma: no cover - defensive
            raise ValueError(f"unknown statement kind {kind!r}")

    def body(self, count: int, indent: int, kinds: Sequence[str],
             loop_var: Optional[str] = None) -> None:
        for _ in range(count):
            self.statement(self.pick_kind(kinds), indent, loop_var)


def _emit_bug(gen: _Gen, kind: str) -> None:
    """Plant the labelled bug; placed after every loop and allocation."""
    rng = gen.rng
    heap = [b for b in gen.bufs if b.heap and b.elem == "long"]
    stack = [b for b in gen.bufs if not b.heap]
    target = rng.choice(heap)
    if kind == "oob_write":
        victims = heap + stack
        buf = rng.choice(victims)
        gen.emit(1, f"{buf.name}[{buf.count}] = 99;")
    elif kind == "oob_read":
        victims = heap + stack
        buf = rng.choice(victims)
        gen.emit(1, f"acc += {buf.name}[{buf.count}];")
    elif kind == "oob_under":
        gen.emit(1, f"{target.name}[-1] = 7;")
    elif kind == "uaf":
        gen.emit(1, f"free({target.name});")
        gen.emit(1, f"acc += {target.name}[0];")
        target.heap = False          # skip the final free
    elif kind == "double_free":
        gen.emit(1, f"free({target.name});")
        gen.emit(1, f"free({target.name});")
        target.heap = False
    elif kind == "free_offset":
        offset = rng.choice((1, 2, 3))
        gen.emit(1, f"free({target.name} + {offset});")
        target.heap = False
    else:   # pragma: no cover - defensive
        raise ValueError(f"unknown bug kind {kind!r}")


def generate_program(seed: int, index: int, kind: str = "safe",
                     weights: Optional[Dict[str, float]] = None
                     ) -> GeneratedProgram:
    """Generate program ``index`` of the campaign seeded with ``seed``."""
    if kind != "safe" and kind not in EXPECTED_CLASS:
        raise ValueError(f"unknown program kind {kind!r}")
    rng = random.Random(f"fuzz/{seed}/{index}")
    gen = _Gen(rng, dict(weights or {}))

    gen.use_struct = rng.random() < 0.35
    gen.struct_dim = rng.randint(2, 4)
    gen.struct_ptr = gen.use_struct and rng.random() < 0.5
    n_helpers = rng.randint(0, 2)
    n_globals = rng.randint(0, 2)
    n_scalars = rng.randint(2, 4)
    n_ints = rng.randint(0, 1)
    n_stack = rng.randint(0, 2)
    n_heap = rng.randint(1, 2)
    use_charbuf = rng.random() < 0.4
    n_body = rng.randint(5, 12)

    out = gen.lines
    if gen.use_struct:
        gen.features.add("decl.struct")
        out.append(f"struct Pair {{ long a; long b[{gen.struct_dim}]; }};")
    for g in range(n_globals):
        gen.features.add("decl.global")
        name = f"g{g}"
        out.append(f"long {name} = {rng.randint(-50, 50)};")
        gen.scalars.append(name)
    for h in range(n_helpers):
        gen.features.add("decl.helper")
        name = f"fn{h}"
        out.append(f"long {name}(long a0, long a1) {{")
        out.append(f"    long r = a0 {rng.choice(_BIN_OPS)} "
                   f"(a1 {rng.choice(_BIN_OPS)} {rng.randint(1, 9)});")
        if rng.random() < 0.5:
            out.append(f"    if (r {rng.choice(_CMP_OPS)} "
                       f"{rng.randint(-20, 20)}) {{ r = r "
                       f"{rng.choice(('+', '-', '^'))} a0; }}")
        out.append("    return r;")
        out.append("}")
        gen.helpers.append(name)
    out.append("int main() {")
    gen.emit(1, f"long acc = {rng.randint(0, 9)};")
    gen.scalars.append("acc")
    for v in range(n_scalars):
        name = f"v{v}"
        gen.emit(1, f"long {name} = {rng.randint(-99, 99)};")
        gen.scalars.append(name)
    for w in range(n_ints):
        name = f"w{w}"
        gen.emit(1, f"int {name} = {rng.randint(-99, 99)};")
        gen.int_scalars.append(name)
    for s in range(n_stack):
        gen.features.add("decl.stack_array")
        buf = _Buf(f"s{s}", rng.randint(4, 10), "long", heap=False)
        gen.emit(1, f"long {buf.name}[{buf.count}];")
        gen.bufs.append(buf)
    for h in range(n_heap):
        gen.features.add("decl.heap_buffer")
        buf = _Buf(f"h{h}", rng.randint(4, 10), "long", heap=True)
        gen.emit(1, f"long *{buf.name} = (long *)malloc({buf.count} "
                    f"* sizeof(long));")
        gen.bufs.append(buf)
    if use_charbuf:
        gen.features.add("decl.char_buffer")
        buf = _Buf("c0", rng.randint(6, 14), "char", heap=True)
        gen.emit(1, f"char *{buf.name} = (char *)malloc({buf.count});")
        gen.bufs.append(buf)
        gen.emit(1, f"{buf.name}[0] = 0;")
    if gen.use_struct:
        gen.emit(1, "struct Pair sp0;")
        gen.emit(1, f"sp0.a = {rng.randint(-20, 20)};")
        if gen.struct_ptr:
            gen.emit(1, "struct Pair *pp0 = &sp0;")
    # Deterministic fills so every later read is of initialised memory.
    for buf in gen.bufs:
        if buf.elem != "long":
            continue
        var = gen.fresh("i")
        stride = rng.randint(1, 5)
        gen.emit(1, f"for (long {var} = 0; {var} < {buf.count}; "
                    f"{var}++) {{")
        gen.emit(2, f"{buf.name}[{var}] = {var} * {stride} + "
                    f"{rng.randint(0, 9)};")
        gen.emit(1, "}")
    if gen.use_struct:
        var = gen.fresh("i")
        gen.emit(1, f"for (long {var} = 0; {var} < {gen.struct_dim}; "
                    f"{var}++) {{")
        gen.emit(2, f"sp0.b[{var}] = {var} + {rng.randint(0, 9)};")
        gen.emit(1, "}")

    gen.body(n_body, 1, STATEMENT_KINDS)

    # Checksum sinks: observable stdout that every scheme must agree on.
    gen.emit(1, "print_int(acc);")
    for name in gen.scalars[:3]:
        gen.emit(1, f"print_int({name});")
    for buf in gen.bufs:
        if buf.elem == "long":
            gen.emit(1, f"print_int({buf.name}"
                        f"[{rng.randrange(buf.count)}]);")

    if kind != "safe":
        gen.features.add(f"bug.{kind}")
        _emit_bug(gen, kind)
    for buf in gen.bufs:
        if buf.heap:
            gen.emit(1, f"free({buf.name});")
    gen.emit(1, "return 0;")
    out.append("}")

    return GeneratedProgram(
        index=index,
        name=f"fuzz-{seed}-{index}",
        kind=kind,
        expect=EXPECTED_CLASS.get(kind, ""),
        source="\n".join(out) + "\n",
        features=tuple(sorted(gen.features)),
    )


def plan_programs(seed: int, count: int, start: int = 0
                  ) -> List[Tuple[int, str]]:
    """Deterministic (index, kind) plan: roughly half safe, half planted."""
    plan: List[Tuple[int, str]] = []
    for index in range(start, start + count):
        rng = random.Random(f"fuzz-plan/{seed}/{index}")
        if rng.random() < 0.5:
            plan.append((index, "safe"))
        else:
            plan.append((index, rng.choice(BUG_KINDS)))
    return plan
