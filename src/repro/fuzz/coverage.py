"""Coverage feedback for the fuzzer's generation loop.

Two coverage domains steer generation:

* **grammar productions** — the statement/declaration kinds each
  generated program exercised (reported by the generator itself);
* **runtime functions** — which runtime symbols (``malloc``,
  ``memset``, ``strlen`` …) actually retired instructions, folded out
  of the existing ``repro.obs`` per-PC profiler on the timed probe.

:meth:`FuzzCoverage.weights` turns both into selection weights:
productions get inverse-frequency weight (rare productions become more
likely), and productions linked to cold runtime functions get an extra
boost.  All arithmetic is plain float on small integers, so weights —
and therefore the whole campaign — are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.fuzz.gen import STATEMENT_KINDS

#: statement production -> runtime function it drives.
RUNTIME_LINKS = {
    "stmt.memset": "memset",
    "stmt.memcpy": "memcpy",
    "stmt.strops": "strlen",
    "stmt.print": "print_int",
}


@dataclass
class FuzzCoverage:
    """Accumulated coverage counters across generated programs."""

    productions: Dict[str, int] = field(default_factory=dict)
    runtime_functions: Dict[str, int] = field(default_factory=dict)
    programs: int = 0

    def observe(self, features: Iterable[str],
                functions: Iterable[str]) -> None:
        """Fold one program's generator features + profiled functions."""
        self.programs += 1
        for feature in features:
            self.productions[feature] = \
                self.productions.get(feature, 0) + 1
        for function in functions:
            self.runtime_functions[function] = \
                self.runtime_functions.get(function, 0) + 1

    def weights(self) -> Dict[str, float]:
        """Selection weights for the next generation round."""
        out: Dict[str, float] = {}
        for kind in STATEMENT_KINDS:
            weight = 4.0 / (1.0 + self.productions.get(kind, 0))
            linked = RUNTIME_LINKS.get(kind)
            if linked is not None:
                hits = self.runtime_functions.get(linked, 0)
                weight *= 1.0 + 2.0 / (1.0 + hits)
            out[kind] = weight
        return out

    def to_dict(self) -> dict:
        return {
            "programs": self.programs,
            "productions": {k: self.productions[k]
                            for k in sorted(self.productions)},
            "runtime_functions": {k: self.runtime_functions[k]
                                  for k in sorted(self.runtime_functions)},
        }
