"""Command-line toolchain: compile, run, inspect.

The CLI face of the reproduction (the paper's contribution #4 is an
open-source tool chain)::

    python -m repro run prog.c --scheme hwst128_tchk --stats
    python -m repro run prog.c --scheme hwst128_tchk --elide-checks
    python -m repro analyze prog.c --json
    python -m repro compile prog.c --disasm
    python -m repro schemes
    python -m repro workloads --run treeadd --scheme sbcets
    python -m repro juliet --cwe 416 --limit 3 --scheme asan
    python -m repro experiments fig4 --scale small --jobs 4
    python -m repro bench --reps 3 --seed 7 --out BENCH_SIM.json
    python -m repro bench --against BENCH_SIM.json
    python -m repro conform --jobs 4 --fuzz-count 200 --out CONFORM.json
    python -m repro serve --port 8128 --jobs 4 --cache-dir .repro-cache
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
from typing import List, Optional

from repro.core.config import HwstConfig
from repro.errors import (EXIT_FAILURE, EXIT_INTERRUPTED, EXIT_OK,
                          ReproError, exit_code_for, exit_code_for_status)
from repro.harness.runner import detected
from repro.pipeline.timing import InOrderPipeline
from repro.schemes import SCHEMES, compile_source
from repro.sim.machine import Machine
from repro.workloads import WORKLOADS


def _read_source(path: str) -> str:
    with open(path) as fh:
        return fh.read()


def _config(args) -> HwstConfig:
    return HwstConfig(elide_checks=getattr(args, "elide_checks", False))


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive: {text}")
    return value


def _result_exit_code(result) -> int:
    """Distinct documented exit code for a run outcome (see
    repro.errors: 4=spatial, 5=temporal, 6=memory fault, ...)."""
    return exit_code_for_status(result.status, result.exit_code)


@contextlib.contextmanager
def _graceful_stop():
    """Convert SIGTERM/SIGINT into a polled stop flag for the scope of
    a campaign, so ``repro fuzz`` / ``repro faultcampaign`` flush a
    valid truncated report (exit code 12) instead of dying mid-write.
    A second SIGINT restores default handling (immediate kill escape
    hatch). Yields the flag callable the campaigns poll."""
    state = {"stop": False}

    def handler(signum, _frame):
        if state["stop"] and signum == signal.SIGINT:
            signal.signal(signal.SIGINT, signal.default_int_handler)
        state["stop"] = True
        print("interrupt: finishing current chunk, flushing truncated "
              "report (send SIGINT again to kill)", file=sys.stderr)

    previous = {sig: signal.signal(sig, handler)
                for sig in (signal.SIGTERM, signal.SIGINT)}
    try:
        yield lambda: state["stop"]
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _print_result(result, stats: bool):
    print(f"status : {result.status}")
    if result.status == "exit":
        print(f"exit   : {result.exit_code}")
    if result.trap_class:
        pc = f" @ {result.trap_pc:#x}" if result.trap_pc is not None \
            else ""
        print(f"trap   : {result.trap_class}{pc}")
    if result.detail:
        print(f"detail : {result.detail}")
    if result.output:
        print(f"output : {result.output_text()!r}")
    print(f"instret: {result.instret}")
    print(f"cycles : {result.cycles}")
    if stats:
        from repro.obs.stats import derived_rates

        print("stats  :")
        for key in sorted(result.stats):
            print(f"  {key:18s} {result.stats[key]}")
        rates = derived_rates(result.stats, instret=result.instret,
                              cycles=result.cycles)
        print("derived:")
        for key in sorted(rates):
            print(f"  {key:18s} {rates[key]:.4f}")


def cmd_run(args) -> int:
    source = _read_source(args.file)
    profiling = bool(args.profile or args.folded_out)
    observing = bool(profiling or args.trace_out or args.metrics_out)
    metrics = tracer = profiler = phases = None
    if observing:
        from repro.obs import (CycleProfiler, MetricsRegistry, PhaseTimers,
                               Tracer)

        metrics = MetricsRegistry()
        if args.trace_out:
            tracer = Tracer(capacity=args.trace_buffer)
        if profiling:
            profiler = CycleProfiler()
        phases = PhaseTimers(metrics=metrics, tracer=tracer)
    program = compile_source(source, args.scheme, _config(args),
                             phases=phases)
    from repro.sim import make_machine

    timing = None if args.no_timing else InOrderPipeline(metrics=metrics)
    machine = make_machine(args.engine, timing=timing,
                           trace_depth=args.trace, metrics=metrics,
                           tracer=tracer, profiler=profiler)
    result = machine.run(program, max_instructions=args.max_instructions)
    _print_result(result, args.stats)
    if args.trace and result.status != "exit":
        print("\nlast retired instructions:")
        print(machine.trace_text())
    if profiling:
        report = profiler.report(program)
        if args.profile:
            print("\nhotspots:")
            print(report.table())
            print(f"attributed : "
                  f"{100.0 * report.attributed_fraction:.1f}% "
                  "of cycles mapped to functions")
        if args.folded_out:
            with open(args.folded_out, "w") as fh:
                fh.write(report.to_collapsed())
            print(f"folded  -> {args.folded_out} "
                  "(flamegraph.pl / speedscope)")
    if args.metrics_out:
        machine.metrics.to_json(
            args.metrics_out,
            extra={"scheme": args.scheme, "file": args.file})
        print(f"metrics -> {args.metrics_out}")
    if args.trace_out:
        if args.trace_format == "jsonl":
            tracer.to_jsonl(args.trace_out)
        else:
            tracer.to_chrome_json(args.trace_out)
        note = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
        print(f"trace   -> {args.trace_out} "
              f"({len(tracer)} events{note})")
        if tracer.dropped:
            print(f"warning: trace ring buffer overflowed, "
                  f"{tracer.dropped} oldest events dropped — raise "
                  f"--trace-buffer (currently {args.trace_buffer})",
                  file=sys.stderr)
    return _result_exit_code(result)


def cmd_stats(args) -> int:
    """Run a program and pretty-print the full metric tree."""
    from repro.obs import MetricsRegistry, PhaseTimers
    from repro.obs.metrics import format_tree
    from repro.obs.stats import derived_rates

    source = _read_source(args.file)
    metrics = MetricsRegistry()
    phases = PhaseTimers(metrics=metrics)
    program = compile_source(source, args.scheme, _config(args),
                             phases=phases)
    timing = None if args.no_timing else InOrderPipeline(metrics=metrics)
    machine = Machine(timing=timing, metrics=metrics)
    result = machine.run(program, max_instructions=args.max_instructions)
    print(f"{args.file} under {args.scheme}: {result.status} "
          f"({result.instret} instructions, {result.cycles} cycles)")
    rates = derived_rates(result.stats, instret=result.instret,
                          cycles=result.cycles)
    print(format_tree(metrics.tree(), derived=rates))
    if args.metrics_out:
        metrics.to_json(args.metrics_out,
                        extra={"scheme": args.scheme, "file": args.file})
        print(f"metrics -> {args.metrics_out}")
    return 0 if result.ok else 1


def cmd_compile(args) -> int:
    source = _read_source(args.file)
    program = compile_source(source, args.scheme, _config(args))
    print(f"scheme      : {args.scheme}")
    print(f"text        : {program.text_base:#x}..{program.text_end:#x} "
          f"({len(program.instrs)} instructions)")
    data = program.segments[0] if program.segments else None
    if data is not None:
        print(f"data        : {data.addr:#x} (+{len(data.data)} bytes)")
    print(f"entry       : {program.entry:#x}")
    if args.encode:
        from repro.isa.encoding import encode_program

        blob = encode_program(program.instrs)
        with open(args.encode, "wb") as fh:
            fh.write(blob)
        print(f"machine code: {args.encode} ({len(blob)} bytes)")
    if args.disasm:
        print()
        print(program.listing())
    return 0


def cmd_schemes(_args) -> int:
    width = max(len(name) for name in SCHEMES) + 2
    for name, spec in SCHEMES.items():
        print(f"{name:{width}s}{spec.description}")
    return 0


def cmd_workloads(args) -> int:
    if args.run is None:
        width = max(len(name) for name in WORKLOADS) + 2
        for name, workload in WORKLOADS.items():
            print(f"{workload.group:8s} {name:{width}s}"
                  f"{workload.description}")
        return 0
    workload = WORKLOADS.get(args.run)
    if workload is None:
        print(f"unknown workload {args.run!r}", file=sys.stderr)
        return 1
    from repro.harness.runner import run_workload

    result = run_workload(args.run, args.scheme, scale=args.scale,
                          config=_config(args))
    _print_result(result, args.stats)
    return 0 if result.ok else 1


def cmd_juliet(args) -> int:
    from repro.harness.runner import run_program
    from repro.workloads.juliet import generate_corpus

    cwes = [args.cwe] if args.cwe else None
    cases = generate_corpus(fraction=1.0, cwes=cwes,
                            max_per_subtype=args.limit)
    for case in cases:
        if args.show:
            print(f"=== {case.case_id} (flow {case.flow}) ===")
            print(case.bad_source)
            continue
        result = run_program(case.bad_source, args.scheme,
                             config=_config(args), timing=False,
                             max_instructions=3_000_000)
        verdict = "DETECTED" if detected(args.scheme, result) else \
            "missed"
        print(f"{case.case_id:38s} {result.status:20s} {verdict}")
    return 0


def cmd_analyze(args) -> int:
    """Static memory-safety lint: no execution, no instrumentation."""
    import json

    from repro.analyze import analyze_source

    reports = []
    failed = False
    for path in args.files:
        report = analyze_source(_read_source(path), name=path)
        reports.append(report)
        if report.errors():
            failed = True
    if getattr(args, "sarif", None):
        sarif = reports[0].to_sarif()
        if len(reports) > 1:
            for report in reports[1:]:
                sarif["runs"].extend(report.to_sarif()["runs"])
        with open(args.sarif, "w", encoding="utf-8") as fh:
            json.dump(sarif, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        payload = [report.to_dict() for report in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2))
    else:
        for report in reports:
            print(report.text())
    return 1 if failed else 0


def _heartbeat(args, total: int, label: str, executor=None):
    """Build the campaign Heartbeat from ``--heartbeat SECONDS``
    (0 = off, the default: short runs and tests stay silent)."""
    if not getattr(args, "heartbeat", 0):
        return None
    from repro.obs import Heartbeat

    registry = executor.registry if executor is not None else None
    return Heartbeat(total=total, label=label,
                     interval_s=args.heartbeat, metrics=registry)


def cmd_faultcampaign(args) -> int:
    """Seeded fault-injection campaign with a differential oracle."""
    import json

    from repro.faultinject import FAMILIES, run_campaign
    from repro.harness.parallel import SweepExecutor

    families = [name.strip() for name in args.faults.split(",")
                if name.strip()]
    unknown = [name for name in families if name not in FAMILIES]
    if unknown:
        print(f"error: unknown fault families {unknown}; known: "
              f"{sorted(FAMILIES)}", file=sys.stderr)
        return 2
    with SweepExecutor(jobs=args.jobs) as executor, \
            _graceful_stop() as stop:
        heartbeat = _heartbeat(args, total=args.n, label="faultinject",
                               executor=executor)
        report = run_campaign(
            scheme=args.scheme, families=families, n=args.n,
            seed=args.seed, executor=executor,
            wallclock_budget=args.wallclock, heartbeat=heartbeat,
            engine_lockstep=args.engine_lockstep, stop=stop)
    print(report.table())
    print(executor.summary())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report -> {args.out}")
    if report.interrupted:
        print(f"interrupted after {len(report.injections)}/{args.n} "
              "injections; truncated report is valid", file=sys.stderr)
        return EXIT_INTERRUPTED
    # Gate on harness health: injections are *supposed* to be detected
    # or masked (and silent corruption is a finding, not a failure),
    # but a crash or hang means the harness itself misbehaved.
    return 0 if report.clean else 1


def cmd_fuzz(args) -> int:
    """Coverage-guided differential fuzzing campaign."""
    from repro.fuzz import run_fuzz
    from repro.harness.parallel import SweepExecutor

    with SweepExecutor(jobs=args.jobs) as executor, \
            _graceful_stop() as stop:
        heartbeat = _heartbeat(args, total=args.n, label="fuzz",
                               executor=executor)
        report = run_fuzz(
            n=args.n, seed=args.seed, executor=executor,
            corpus_dir=args.corpus,
            reduce_divergences=not args.no_reduce,
            wallclock_budget=args.wallclock, heartbeat=heartbeat,
            engine_lockstep=args.engine_lockstep,
            spec_lockstep=args.spec_lockstep, stop=stop)
    print(report.table())
    print(executor.summary())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.to_json())
        print(f"report -> {args.out}")
    if report.interrupted:
        print(f"interrupted after {len(report.programs)}/{args.n} "
              "programs; truncated report is valid", file=sys.stderr)
        return EXIT_INTERRUPTED
    return 0 if report.clean else 1


def cmd_conform(args) -> int:
    """Conformance campaign: executable spec vs the ISS engines."""
    from repro.errors import EXIT_SPEC_DIVERGENCE
    from repro.harness.conform import (divergences_of, report_to_json,
                                       run_conform)
    from repro.harness.parallel import SweepExecutor

    schemes = [name.strip() for name in args.schemes.split(",")
               if name.strip()]
    unknown = [name for name in schemes if name not in SCHEMES]
    if unknown:
        print(f"error: unknown schemes {unknown}; known: "
              f"{sorted(SCHEMES)}", file=sys.stderr)
        return 2
    workloads = None
    if args.workloads:
        workloads = [name.strip() for name in args.workloads.split(",")
                     if name.strip()]
        missing = [name for name in workloads if name not in WORKLOADS]
        if missing:
            print(f"error: unknown workloads {missing}; known: "
                  f"{sorted(WORKLOADS)}", file=sys.stderr)
            return 2
    with SweepExecutor(jobs=args.jobs) as executor:
        report = run_conform(
            workloads=workloads, schemes=schemes, scale=args.scale,
            fuzz_count=args.fuzz_count, seed=args.seed,
            equiv=not args.skip_equiv, lockstep=not args.skip_lockstep,
            max_instructions=args.max_instructions,
            heartbeat_s=args.heartbeat, registry=executor.registry,
            executor=executor)
        summary = executor.summary()
    totals = report["totals"]
    print(f"conform: {totals['cells']} cells, "
          f"{totals['equiv_cases']} equivalence cases, "
          f"{totals['retires']} lockstep retires, "
          f"{totals['mnemonics_covered']} mnemonics covered, "
          f"{totals['divergences']} divergences")
    never = report["coverage"]["never_exercised"]
    if never and not args.skip_lockstep:
        print(f"never exercised by the lockstep corpus ({len(never)}): "
              + " ".join(never))
    print(summary)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report_to_json(report))
        print(f"report -> {args.out}")
    return EXIT_SPEC_DIVERGENCE if divergences_of(report) else EXIT_OK


def cmd_serve(args) -> int:
    """Long-running compile-and-check HTTP service (repro.serve/v1)."""
    import asyncio

    from repro.serve import ServeApp, Supervisor

    supervisor = Supervisor(
        jobs=args.jobs,
        disk_root=args.cache_dir,
        disk_max_bytes=args.cache_max_mb * 1024 * 1024,
        breaker_cooldown_s=args.breaker_cooldown)
    app = ServeApp(
        supervisor,
        host=args.host, port=args.port,
        queue_limit=args.queue_limit,
        deadline_s=args.deadline,
        drain_timeout_s=args.drain_timeout,
        allow_debug=args.debug_faults)

    async def serve() -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, app.request_shutdown)
        await app.start()
        print(f"repro serve listening on "
              f"http://{app.host}:{app.port} "
              f"(workers={args.jobs} queue={args.queue_limit} "
              f"deadline={args.deadline:g}s)", flush=True)
        await app.run()

    try:
        asyncio.run(serve())
    finally:
        supervisor.close()
    print("repro serve: drained cleanly", file=sys.stderr)
    return EXIT_OK


def cmd_experiments(args) -> int:
    from repro.harness import experiments

    return experiments.main(args.rest)


def cmd_bench(args) -> int:
    """Performance-trajectory bench: run/compare repro.bench/v1
    envelopes (see repro.obs.bench / repro.obs.compare)."""
    from repro.errors import BenchRegression
    from repro.obs.bench import (
        SCENARIOS, load_envelope, run_bench, save_envelope,
    )
    from repro.obs.compare import compare_envelopes

    if args.list:
        width = max(len(name) for name in SCENARIOS) + 2
        for name, scenario in SCENARIOS.items():
            quick = "quick " if scenario.quick else "      "
            print(f"{quick}{name:{width}s}{scenario.description}")
        return 0

    names = None
    if args.scenarios:
        names = [name.strip() for name in args.scenarios.split(",")
                 if name.strip()]
        unknown = [name for name in names if name not in SCENARIOS]
        if unknown:
            print(f"error: unknown bench scenarios {unknown}; see "
                  "repro bench --list", file=sys.stderr)
            return 2
    if args.replay:
        # Compare two existing envelopes without running anything
        # (CI's self-check path).
        envelope = load_envelope(args.replay)
    else:
        def progress(name, index, total):
            print(f"bench [{index + 1}/{total}] {name} "
                  f"(x{args.reps})", file=sys.stderr)

        envelope = run_bench(scenarios=names, reps=args.reps,
                             seed=args.seed, quick=args.quick,
                             engine=args.engine, progress=progress)
    if args.out:
        save_envelope(envelope, args.out)
        print(f"envelope -> {args.out}")
    if args.against:
        base = load_envelope(args.against)
        comparison = compare_envelopes(
            base, envelope, tolerance_pct=args.tolerance,
            min_wall_ms=args.min_wall)
        print(comparison.table())
        if not comparison.ok:
            # Distinct documented exit code (repro.errors: 11).
            raise BenchRegression(
                [d.name for d in comparison.regressions])
    elif not args.out and not args.replay:
        # No baseline and nowhere to save: show what was measured.
        for name, entry in envelope["scenarios"].items():
            wall = entry["measured"]["wall_ms"]
            mips = entry["measured"].get("guest_mips")
            mips_s = f"  {mips['median']:.2f} MIPS" if mips else ""
            print(f"{name:<28}{wall['median']:>10.2f} ms "
                  f"±{wall['iqr']:.2f}{mips_s}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HWST128 reproduction tool chain")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="compile and execute a mini-C file")
    run_p.add_argument("file")
    run_p.add_argument("--scheme", default="baseline",
                       choices=sorted(SCHEMES))
    run_p.add_argument("--stats", action="store_true")
    run_p.add_argument("--elide-checks", action="store_true",
                       help="statically remove proven-redundant checks")
    run_p.add_argument("--no-timing", action="store_true")
    run_p.add_argument("--engine", default="ref", choices=("ref", "fast"),
                       help="execution core: 'ref' (per-instruction "
                       "reference interpreter) or 'fast' (translation-"
                       "cached superblock interpreter; same observables)")
    run_p.add_argument("--trace", type=int, default=0, metavar="N",
                       help="keep the last N instructions for post-mortem")
    run_p.add_argument("--max-instructions", type=int,
                       default=200_000_000)
    run_p.add_argument("--profile", action="store_true",
                       help="per-function cycle-attribution hotspot table")
    run_p.add_argument("--folded-out", metavar="OUT.FOLDED",
                       help="write collapsed-stack profile lines "
                       "(flamegraph.pl / speedscope input)")
    run_p.add_argument("--metrics-out", metavar="OUT.JSON",
                       help="write the metric snapshot "
                       "(repro.obs.metrics/v1)")
    run_p.add_argument("--trace-out", metavar="OUT.JSON",
                       help="write a structured event trace")
    run_p.add_argument("--trace-format", default="chrome",
                       choices=("chrome", "jsonl"),
                       help="trace_event JSON (Perfetto-loadable) or JSONL")
    run_p.add_argument("--trace-buffer", type=_positive_int,
                       default=65536, metavar="N",
                       help="trace ring-buffer capacity")
    run_p.set_defaults(fn=cmd_run)

    stats_p = sub.add_parser(
        "stats", help="run a mini-C file and print the metric tree")
    stats_p.add_argument("file")
    stats_p.add_argument("--scheme", default="baseline",
                         choices=sorted(SCHEMES))
    stats_p.add_argument("--elide-checks", action="store_true",
                         help="statically remove proven-redundant checks")
    stats_p.add_argument("--no-timing", action="store_true")
    stats_p.add_argument("--max-instructions", type=int,
                         default=200_000_000)
    stats_p.add_argument("--metrics-out", metavar="OUT.JSON",
                         help="also write the snapshot as JSON")
    stats_p.set_defaults(fn=cmd_stats)

    compile_p = sub.add_parser("compile",
                               help="compile and inspect a mini-C file")
    compile_p.add_argument("file")
    compile_p.add_argument("--scheme", default="baseline",
                           choices=sorted(SCHEMES))
    compile_p.add_argument("--elide-checks", action="store_true",
                           help="statically remove proven-redundant checks")
    compile_p.add_argument("--disasm", action="store_true",
                           help="print the full assembly listing")
    compile_p.add_argument("--encode", metavar="OUT.BIN",
                           help="write binary machine code")
    compile_p.set_defaults(fn=cmd_compile)

    schemes_p = sub.add_parser("schemes", help="list protection schemes")
    schemes_p.set_defaults(fn=cmd_schemes)

    workloads_p = sub.add_parser("workloads",
                                 help="list or run benchmark workloads")
    workloads_p.add_argument("--run", metavar="NAME")
    workloads_p.add_argument("--scheme", default="baseline",
                             choices=sorted(SCHEMES))
    workloads_p.add_argument("--scale", default="default",
                             choices=("default", "small"))
    workloads_p.add_argument("--stats", action="store_true")
    workloads_p.add_argument("--elide-checks", action="store_true",
                             help="statically remove proven-redundant "
                             "checks")
    workloads_p.set_defaults(fn=cmd_workloads)

    juliet_p = sub.add_parser("juliet",
                              help="generate/run Juliet-style cases")
    juliet_p.add_argument("--cwe", type=int)
    juliet_p.add_argument("--limit", type=int, default=1,
                          help="cases per subtype")
    juliet_p.add_argument("--scheme", default="hwst128_tchk",
                          choices=sorted(SCHEMES))
    juliet_p.add_argument("--show", action="store_true",
                          help="print sources instead of running")
    juliet_p.add_argument("--elide-checks", action="store_true",
                          help="statically remove proven-redundant checks")
    juliet_p.set_defaults(fn=cmd_juliet)

    analyze_p = sub.add_parser(
        "analyze", help="static memory-safety lint (no execution)")
    analyze_p.add_argument("files", nargs="+")
    analyze_p.add_argument("--json", action="store_true",
                           help="emit repro.analyze/v1 JSON")
    analyze_p.add_argument("--sarif", metavar="OUT.SARIF",
                           help="write findings as SARIF 2.1.0 "
                                "(one run per input file)")
    analyze_p.set_defaults(fn=cmd_analyze)

    fault_p = sub.add_parser(
        "faultcampaign",
        help="seeded fault-injection campaign (differential oracle)")
    fault_p.add_argument("--scheme", default="hwst128",
                         choices=sorted(SCHEMES))
    fault_p.add_argument("--faults", default="metadata,keybuffer,checks",
                         metavar="FAM[,FAM...]",
                         help="fault families: metadata, keybuffer, "
                         "checks")
    fault_p.add_argument("--n", type=_positive_int, default=200,
                         help="number of injections")
    fault_p.add_argument("--seed", type=int, default=0)
    fault_p.add_argument("--jobs", type=_positive_int, default=1)
    fault_p.add_argument("--wallclock", type=float, default=60.0,
                         metavar="SECONDS",
                         help="per-injection watchdog budget")
    fault_p.add_argument("--out", metavar="OUT.JSON",
                         help="write the repro.faultinject/v1 report")
    fault_p.add_argument("--engine-lockstep", action="store_true",
                         help="before injecting, re-run every golden "
                         "on the fast engine and abort on any "
                         "observable mismatch (report bytes unchanged)")
    fault_p.add_argument("--heartbeat", type=float, default=0.0,
                         metavar="SECONDS",
                         help="emit JSON progress heartbeats on stderr "
                         "every SECONDS (0 = off)")
    fault_p.set_defaults(fn=cmd_faultcampaign)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="coverage-guided differential fuzzing (grammar generator "
        "+ oracle stack + ddmin reducer)")
    fuzz_p.add_argument("--n", type=_positive_int, default=200,
                        help="number of generated programs")
    fuzz_p.add_argument("--seed", type=int, default=0)
    fuzz_p.add_argument("--jobs", type=_positive_int, default=1)
    fuzz_p.add_argument("--wallclock", type=float, default=60.0,
                        metavar="SECONDS",
                        help="per-program watchdog budget")
    fuzz_p.add_argument("--corpus", metavar="DIR",
                        help="save divergent programs (orig + reduced "
                        "repro + metadata) here")
    fuzz_p.add_argument("--no-reduce", action="store_true",
                        help="skip ddmin reduction of divergences")
    fuzz_p.add_argument("--out", metavar="OUT.JSON",
                        help="write the repro.fuzz/v1 report")
    fuzz_p.add_argument("--engine-lockstep", action="store_true",
                        help="add the ref-vs-fast engine oracle to "
                        "every probe (hwst128 build re-executed on the "
                        "fast engine; must match including instret)")
    fuzz_p.add_argument("--spec-lockstep", action="store_true",
                        help="add the executable golden spec "
                        "(repro.spec) as an oracle: the hwst128 build "
                        "co-simulated against the reference engine "
                        "with per-retire architectural state diffs")
    fuzz_p.add_argument("--heartbeat", type=float, default=0.0,
                        metavar="SECONDS",
                        help="emit JSON progress heartbeats on stderr "
                        "every SECONDS (0 = off)")
    fuzz_p.set_defaults(fn=cmd_fuzz)

    conform_p = sub.add_parser(
        "conform",
        help="spec-vs-ISS conformance: per-instruction equivalence "
        "sweeps + lockstep co-simulation over workloads and fuzz "
        "programs (exit 15 on any divergence)")
    conform_p.add_argument("--workloads", metavar="A,B,...",
                           help="lockstep these workload kernels only "
                           "(default: all registered workloads)")
    conform_p.add_argument("--schemes", default=",".join(
        ("hwst128_tchk", "bogo", "wdl_wide")),
        metavar="A,B,...",
        help="schemes to lockstep each workload under")
    conform_p.add_argument("--scale", default="small",
                           help="workload input scale")
    conform_p.add_argument("--fuzz-count", type=int, default=200,
                           metavar="N",
                           help="generated fuzz programs to lockstep "
                           "(0 = none)")
    conform_p.add_argument("--seed", type=int, default=20260807,
                           help="seed for equivalence cases and the "
                           "fuzz corpus")
    conform_p.add_argument("--jobs", type=_positive_int, default=1)
    conform_p.add_argument("--skip-equiv", action="store_true",
                           help="skip the per-instruction equivalence "
                           "sweep")
    conform_p.add_argument("--skip-lockstep", action="store_true",
                           help="skip program lockstep (equivalence "
                           "sweep only)")
    conform_p.add_argument("--max-instructions", type=_positive_int,
                           default=2_000_000,
                           help="per-program lockstep retire budget")
    conform_p.add_argument("--heartbeat", type=float, default=0.0,
                           metavar="SECONDS",
                           help="emit JSON progress heartbeats on "
                           "stderr every SECONDS (0 = off)")
    conform_p.add_argument("--out", metavar="OUT.JSON",
                           help="write the repro.spec/v1 report")
    conform_p.set_defaults(fn=cmd_conform)

    bench_p = sub.add_parser(
        "bench",
        help="performance-trajectory bench: run the scenario suite, "
        "write/compare repro.bench/v1 envelopes")
    bench_p.add_argument("--reps", type=_positive_int, default=3,
                         help="repetitions per scenario (median/IQR)")
    bench_p.add_argument("--seed", type=int, default=7,
                         help="campaign-smoke seed")
    bench_p.add_argument("--quick", action="store_true",
                         help="run the quick scenario subset only")
    bench_p.add_argument("--scenarios", metavar="NAME[,NAME...]",
                         help="run only these scenarios "
                         "(see --list)")
    bench_p.add_argument("--list", action="store_true",
                         help="list registered scenarios and exit")
    bench_p.add_argument("--out", metavar="OUT.JSON",
                         help="write the repro.bench/v1 envelope "
                         "(BENCH_SIM.json)")
    bench_p.add_argument("--against", metavar="BASE.JSON",
                         help="gate against a baseline envelope; exits "
                         "11 on regression past tolerance")
    bench_p.add_argument("--replay", metavar="CUR.JSON",
                         help="compare an existing envelope instead of "
                         "running the suite")
    bench_p.add_argument("--tolerance", type=float, default=25.0,
                         metavar="PCT",
                         help="median wall-time slowdown gate")
    bench_p.add_argument("--engine", default="ref",
                         choices=("ref", "fast"),
                         help="execution core for workload scenarios "
                         "(the envelope records it)")
    bench_p.add_argument("--min-wall", type=float, default=2.0,
                         metavar="MS",
                         help="baseline medians below this never gate")
    bench_p.set_defaults(fn=cmd_bench)

    serve_p = sub.add_parser(
        "serve",
        help="hardened compile-and-check HTTP service "
        "(repro.serve/v1; POST /v1/check, /healthz, /metrics)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8128,
                         help="listen port (0 = ephemeral, printed at "
                         "startup)")
    serve_p.add_argument("--jobs", type=_positive_int, default=2,
                         help="supervised worker processes")
    serve_p.add_argument("--queue-limit", type=_positive_int, default=8,
                         help="admitted concurrent requests before "
                         "load-shedding 429s")
    serve_p.add_argument("--deadline", type=float, default=30.0,
                         metavar="SECONDS",
                         help="per-request wallclock deadline "
                         "(exceeding it returns 504)")
    serve_p.add_argument("--drain-timeout", type=float, default=10.0,
                         metavar="SECONDS",
                         help="SIGTERM drain budget; missing it exits "
                         "14 with in-flight requests dropped")
    serve_p.add_argument("--cache-dir", metavar="DIR",
                         help="cross-process on-disk artifact store "
                         "shared by the workers (omit for per-process "
                         "memory-only caching)")
    serve_p.add_argument("--cache-max-mb", type=_positive_int,
                         default=256,
                         help="artifact store size cap (LRU eviction)")
    serve_p.add_argument("--breaker-cooldown", type=float, default=30.0,
                         metavar="SECONDS",
                         help="circuit-breaker quarantine window for a "
                         "worker-killing request fingerprint")
    serve_p.add_argument("--debug-faults", action="store_true",
                         help="accept the 'debug' request block "
                         "(planted worker crashes/sleeps) — soak "
                         "tests only, never production")
    serve_p.set_defaults(fn=cmd_serve)

    experiments_p = sub.add_parser(
        "experiments", help="regenerate paper figures; supports "
        "--jobs N parallel sweeps (see repro.harness.experiments)")
    experiments_p.add_argument("rest", nargs=argparse.REMAINDER)
    experiments_p.set_defaults(fn=cmd_experiments)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # `experiments` forwards everything verbatim (argparse's REMAINDER
    # refuses leading options like `--list`).
    if argv and argv[0] == "experiments":
        from repro.harness import experiments

        return experiments.main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return EXIT_FAILURE
    except ReproError as err:
        # Each error class maps to a distinct documented exit code
        # (repro.errors: 3=toolchain, 4=spatial, 5=temporal, ...).
        print(f"error: {type(err).__name__}: {err}", file=sys.stderr)
        return exit_code_for(err)


if __name__ == "__main__":
    sys.exit(main())
