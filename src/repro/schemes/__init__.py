"""Protection schemes: compile pipelines gluing instrumentation,
runtime, codegen and the machine together.

Available schemes (the paper's Figures 4-6 cast):

==============  ============================================================
``baseline``    no protection (the perf.oh denominator, Eq. 7)
``sbcets``      SoftboundCETS software spatial+temporal (trie metadata)
``hwst128``     HWST128 hardware, temporal key load in software (no tchk)
``hwst128_tchk``full HWST128 with the tchk instruction + keybuffer
``bogo``        BOGO: MPX spatial + bound nullification on free
``wdl_narrow``  WatchdogLite, scalar metadata ops
``wdl_wide``    WatchdogLite, 256-bit vector metadata ops
``asan``        AddressSanitizer (redzones + quarantine + shadow bytes)
``gcc``         GCC stack-protector canaries
==============  ============================================================
"""

from repro.schemes.compile import (
    SCHEMES,
    compile_source,
    run_source,
    scheme_names,
)

__all__ = ["SCHEMES", "compile_source", "run_source", "scheme_names"]
