"""Source -> Program compile pipelines, one per protection scheme."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.codegen.link import build_program
from repro.codegen.lower import CodegenOptions
from repro.codegen.runtime import runtime_source
from repro.core.config import HwstConfig
from repro.ir.irgen import lower_unit
from repro.ir.verify import verify_module
from repro.minic import analyze, tokenize
from repro.minic.parser import Parser
from repro.obs.phases import NULL_PHASES
from repro.pipeline.timing import InOrderPipeline, TimingParams
from repro.sim.machine import Machine, RunResult
from repro.sim.memory import DEFAULT_LAYOUT


@dataclass(frozen=True)
class SchemeSpec:
    """How to build a program under one protection scheme."""

    name: str
    runtime: str                       # scheme runtime family
    instrument: Optional[str] = None   # instrumentation pass name
    spill_meta: Optional[str] = None   # codegen metadata-spill flavour
    sbcets_shadow: str = "trie"
    description: str = ""


SCHEMES: Dict[str, SchemeSpec] = {
    "baseline": SchemeSpec(
        "baseline", runtime="baseline",
        description="unprotected build (perf.oh denominator)"),
    "sbcets": SchemeSpec(
        "sbcets", runtime="sbcets", instrument="sbcets",
        description="SoftboundCETS software spatial+temporal safety"),
    "sbcets_lmsm": SchemeSpec(
        "sbcets_lmsm", runtime="sbcets", instrument="sbcets",
        sbcets_shadow="linear",
        description="SBCETS with linear-mapped shadow (ABL-LMSM ablation)"),
    "hwst128": SchemeSpec(
        "hwst128", runtime="hwst", instrument="hwst128",
        spill_meta="hwst",
        description="HWST128 without tchk (software temporal key load)"),
    "hwst128_tchk": SchemeSpec(
        "hwst128_tchk", runtime="hwst", instrument="hwst128_tchk",
        spill_meta="hwst",
        description="full HWST128: tchk + keybuffer"),
    "bogo": SchemeSpec(
        "bogo", runtime="bogo", instrument="bogo", spill_meta="mpx",
        description="BOGO on MPX: spatial + free-time bound nullification"),
    "wdl_narrow": SchemeSpec(
        "wdl_narrow", runtime="wdl", instrument="wdl_narrow",
        description="WatchdogLite, scalar metadata handling"),
    "wdl_wide": SchemeSpec(
        "wdl_wide", runtime="wdl", instrument="wdl_wide", spill_meta="avx",
        description="WatchdogLite, AVX 256-bit metadata handling"),
    "asan": SchemeSpec(
        "asan", runtime="asan", instrument="asan",
        description="AddressSanitizer: redzones + quarantine"),
    "gcc": SchemeSpec(
        "gcc", runtime="gcc", instrument="gcc",
        description="GCC stack-protector canaries"),
}


def scheme_names():
    return list(SCHEMES)


def _compile_unit(source: str, name: str, phases=NULL_PHASES,
                  unit_cache=None):
    """Front end for one translation unit, phase-timed stage by stage.

    ``unit_cache`` (a :class:`repro.harness.compile_cache.CompileCache`)
    memoises the scheme-independent front-end result; a hit returns a
    fresh unpickled ``Module`` that later passes may mutate freely.
    """
    if unit_cache is not None:
        module = unit_cache.load_unit(source, name)
        if module is not None:
            return module
    with phases.phase("lex"):
        tokens = tokenize(source)
    with phases.phase("parse"):
        unit = Parser(tokens).parse_translation_unit()
    with phases.phase("sema"):
        sema = analyze(unit)
    with phases.phase("irgen"):
        module = lower_unit(sema, name)
    if unit_cache is not None:
        unit_cache.store_unit(source, name, module)
    return module


def compile_source(source: str, scheme: str = "baseline",
                   config: Optional[HwstConfig] = None,
                   program_name: str = "program",
                   phases=None, unit_cache=None):
    """Compile mini-C ``source`` under ``scheme`` into a Program.

    ``phases`` is an optional :class:`repro.obs.phases.PhaseTimers`;
    when attached, lex/parse/sema/irgen/instrument/lower/link wall
    times accumulate into its ``compile.*`` metrics (the user unit and
    the runtime unit both pass through the front-end phases).

    When ``config.elide_checks`` is set and the scheme's pass is
    elidable, the static memory-safety analysis runs before
    instrumentation (stamping per-access facts) and the redundant-check
    eliminator runs after it; elision counts land in
    ``module.meta["analyze"]`` and, with ``phases`` attached, in the
    ``compile.analyze.*`` counters.
    """
    spec = SCHEMES.get(scheme)
    if spec is None:
        raise ValueError(
            f"unknown scheme {scheme!r}; pick one of {sorted(SCHEMES)}")
    config = config or HwstConfig()
    phases = phases if phases is not None else NULL_PHASES

    module = _compile_unit(source, program_name, phases, unit_cache)
    if spec.instrument is not None:
        from repro.ir.instrument import PASSES, instrument_module

        elide = config.elide_checks and \
            getattr(PASSES.get(spec.instrument), "elidable", False)
        if elide:
            from repro.analyze.elide import hoist_loop_checks
            from repro.analyze.interproc import \
                analyze_module_interproc

            with phases.phase("analyze"):
                # Interprocedural: call-graph summaries refine call
                # sites, call-site contexts refine callees, and proven
                # loop-invariant temporal checks move to preheaders
                # before instrumentation.
                per_function, istats = analyze_module_interproc(
                    module, config, stamp=True)
                istats.checks_hoisted = hoist_loop_checks(
                    module, per_function)
        with phases.phase("instrument"):
            instrument_module(module, spec.instrument, config=config)
        if elide:
            from repro.analyze.elide import elide_module

            with phases.phase("analyze"):
                stats = elide_module(module, config)
            istats.cross_call_elided = stats.cross_call_elided
            module.meta["analyze"] = {
                "checks_total": stats.checks_total,
                "checks_proven": stats.checks_proven,
                "checks_elided": stats.checks_elided,
                "spatial_elided": stats.spatial_elided,
                "temporal_elided": stats.temporal_elided,
                "ops_removed": stats.ops_removed,
                **istats.to_meta(),
            }
            scope = phases.metrics
            if scope is not None:
                for key, value in module.meta["analyze"].items():
                    scope.counter(f"analyze.{key}").inc(value)
    runtime = _compile_unit(
        runtime_source(spec.runtime, spec.sbcets_shadow), "runtime",
        phases, unit_cache)
    module.merge(runtime)
    verify_module(module)

    meta: Dict[str, object] = {"scheme": scheme, "name": program_name}
    if "analyze" in module.meta:
        # Keep the elision summary on the Program so cached builds can
        # replay the compile.analyze.* counters without re-analysing.
        meta["analyze"] = dict(module.meta["analyze"])
    options = CodegenOptions(spill_meta=spec.spill_meta)
    program = build_program(module, config=config, layout=DEFAULT_LAYOUT,
                            options=options, meta=meta, phases=phases)
    return program


def run_source(source: str, scheme: str = "baseline",
               config: Optional[HwstConfig] = None,
               timing: bool = True,
               timing_params: Optional[TimingParams] = None,
               max_instructions: int = 200_000_000,
               program_name: str = "program",
               metrics=None, tracer=None, profiler=None,
               phases=None) -> RunResult:
    """Compile and execute ``source`` under ``scheme``.

    The optional observability hooks (``metrics`` registry, ``tracer``,
    ``profiler``, compile ``phases``) are threaded into both the
    compile pipeline and the machine; pass one shared
    :class:`~repro.obs.metrics.MetricsRegistry` to get the full
    ``compile.* / sim.* / pipeline.*`` tree in one snapshot.
    """
    config = config or HwstConfig()
    if phases is None and metrics is not None:
        from repro.obs.phases import PhaseTimers
        phases = PhaseTimers(metrics=metrics, tracer=tracer)
    program = compile_source(source, scheme, config, program_name,
                             phases=phases)
    pipeline = InOrderPipeline(timing_params, metrics=metrics) \
        if timing else None
    machine = Machine(config=config, timing=pipeline, metrics=metrics,
                      tracer=tracer, profiler=profiler)
    return machine.run(program, max_instructions=max_instructions)
