"""repro.serve: hardened long-running compile-and-check service.

The batch CLI turned into infrastructure: an asyncio HTTP/JSON API
(stdlib only) that accepts mini-C source and returns a versioned
``repro.serve/v1`` envelope — scheme verdicts through the existing
run path, ``repro.analyze`` linter findings, an overhead estimate and
a trap report — engineered so one bad request cannot take down the
next million. Layers:

* :mod:`repro.serve.protocol` — request validation and the **pure**
  ``evaluate()`` entry point (no global state; byte-identical to the
  offline CLI for the same source);
* :mod:`repro.serve.store` — bounded in-memory result cache keyed by
  request fingerprint (the on-disk artifact store lives in
  :mod:`repro.harness.compile_cache`);
* :mod:`repro.serve.supervisor` — supervised worker pool over
  :mod:`repro.harness.parallel`: thread-based deadline watchdog,
  crashed-worker detection with bounded restart + exponential
  backoff, per-cell circuit breaker;
* :mod:`repro.serve.app` — the asyncio HTTP server: admission control
  with load-shedding 429s, request coalescing by source sha-256,
  ``/healthz`` + ``/metrics``, graceful SIGTERM drain.
"""

from repro.serve.protocol import (
    DEFAULT_SCHEMES, RequestError, SCHEMA, canonical_json, evaluate,
    parse_request, request_fingerprint,
)
from repro.serve.store import ResultCache
from repro.serve.supervisor import ServeCell, Supervisor
from repro.serve.app import ServeApp

__all__ = [
    "DEFAULT_SCHEMES", "RequestError", "SCHEMA", "canonical_json",
    "evaluate", "parse_request", "request_fingerprint",
    "ResultCache", "ServeCell", "Supervisor", "ServeApp",
]
