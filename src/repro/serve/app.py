"""The asyncio HTTP front end of ``repro serve``.

Stdlib only: ``asyncio.start_server`` plus a small hand-rolled
HTTP/1.1 request parser (one request per connection,
``Connection: close``). The event loop owns every piece of mutable
service state — admission counts, the coalescing map, the result
cache, the metrics registry — so none of it needs locks; the only
blocking work (the supervised pool call) runs via
``run_in_executor`` and communicates back through return values.

Request lifecycle for ``POST /v1/check``::

    parse -> result-cache hit? ->
      coalesce onto an identical in-flight request? ->
        admission control (active >= limit -> 429 + Retry-After) ->
          ServeCell through the Supervisor (deadline watchdog,
          restart/backoff, circuit breaker) ->
            HTTP status from the verdict status.

Responses carry the deterministic ``repro.serve/v1`` envelope plus a
``transport`` key (cache/coalescing/supervision facts) that is
*excluded* from the byte-identity contract.

Graceful shutdown: ``request_shutdown()`` (signal-handler safe) stops
the accept loop, in-flight requests drain under ``drain_timeout_s``,
and a missed deadline raises :class:`repro.errors.DrainTimeout`
(CLI exit code 14) with the number of dropped requests.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional, Tuple

from repro.errors import DrainTimeout
from repro.harness.parallel import STATUS_HANG, STATUS_WORKER_DIED
from repro.obs.metrics import MetricsRegistry, to_prometheus
from repro.serve.protocol import RequestError, SCHEMA, canonical_json, \
    parse_request
from repro.serve.store import ResultCache
from repro.serve.supervisor import STATUS_DEGRADED, STATUS_QUARANTINED, \
    STATUS_SERVED, ServeCell, Supervisor

__all__ = ["ServeApp"]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Verdict status -> (HTTP status, machine-readable error kind).
#: ``served`` maps to 200 with no error kind.
_STATUS_HTTP = {
    STATUS_HANG: (504, "deadline_exceeded"),
    STATUS_WORKER_DIED: (500, "worker_died"),
    STATUS_QUARANTINED: (503, "quarantined"),
    STATUS_DEGRADED: (503, "degraded"),
    "error": (500, "internal_error"),
}

_HEADER_TIMEOUT_S = 30.0
_MAX_BODY_BYTES = 1 * 1024 * 1024


class ServeApp:
    """One server instance: config, state, routes, lifecycle."""

    def __init__(self, supervisor: Supervisor,
                 host: str = "127.0.0.1", port: int = 0,
                 queue_limit: int = 8,
                 deadline_s: float = 30.0,
                 drain_timeout_s: float = 10.0,
                 result_cache_entries: int = 256,
                 allow_debug: bool = False,
                 registry: Optional[MetricsRegistry] = None):
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.deadline_s = deadline_s
        self.drain_timeout_s = drain_timeout_s
        self.allow_debug = allow_debug
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.results = ResultCache(max_entries=result_cache_entries)

        self._serve = self.registry.scope("serve")
        self._active = 0          # admitted primaries in the pool
        self._inflight: Dict[str, asyncio.Future] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        # Prefork: the worker template must exist before the first
        # connection, or forked workers inherit client sockets (see
        # Supervisor on the forkserver context).
        await self._loop.run_in_executor(None, self.supervisor.warm)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Begin graceful drain; safe to call from a signal handler
        registered on the loop (``loop.add_signal_handler``)."""
        self._shutdown.set()

    def request_shutdown_threadsafe(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)

    async def run(self) -> None:
        """Serve until :meth:`request_shutdown`, then drain.

        Raises :class:`DrainTimeout` when in-flight requests outlive
        the drain deadline (they are abandoned — "dropped").
        """
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.drain()

    async def drain(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(),
                                   timeout=self.drain_timeout_s)
        except asyncio.TimeoutError:
            dropped = self._active + len(self._inflight)
            self._serve.counter("drain.dropped").inc(max(dropped, 1))
            raise DrainTimeout(dropped, self.drain_timeout_s) from None

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, headers = await asyncio.wait_for(
                    self._read_head(reader), timeout=_HEADER_TIMEOUT_S)
            except asyncio.TimeoutError:
                await self._send_error(writer, 408, "timeout",
                                       "request head not received in "
                                       "time")
                return
            except (asyncio.IncompleteReadError, ValueError) as err:
                await self._send_error(writer, 400, "bad_http",
                                       f"malformed request: {err}")
                return
            await self._route(method, path, headers, reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader
                         ) -> Tuple[str, str, Dict[str, str]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ValueError("empty request line")
        parts = request_line.split()
        if len(parts) != 3:
            raise ValueError(f"bad request line {request_line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            if ":" in line:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        return method, path, headers

    async def _route(self, method: str, path: str,
                     headers: Dict[str, str],
                     reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0]
        if path == "/v1/check":
            if method != "POST":
                await self._send_error(writer, 405, "method_not_allowed",
                                       "use POST for /v1/check")
                return
            await self._handle_check(headers, reader, writer)
        elif path == "/healthz":
            await self._handle_healthz(writer)
        elif path == "/metrics":
            await self._handle_metrics(writer)
        else:
            await self._send_error(writer, 404, "not_found",
                                   f"no route for {path}")

    # -- routes ------------------------------------------------------------

    async def _handle_healthz(self, writer) -> None:
        degraded = self.supervisor.degraded
        doc = {
            "status": "degraded" if degraded else "ok",
            "active_requests": self._active,
            "inflight_fingerprints": len(self._inflight),
            "cells_completed": self.supervisor.cells_completed,
            "worker_deaths": self.supervisor.total_deaths,
            "pool_restarts": self.supervisor.total_restarts,
            "open_breakers": self.supervisor.open_breakers(),
            "draining": self._shutdown.is_set(),
        }
        await self._send_json(writer, 503 if degraded else 200, doc)

    async def _handle_metrics(self, writer) -> None:
        for name, value in self.results.stats_snapshot().items():
            self.registry.gauge(name).set(value)
        self.registry.gauge("serve.active_requests").set(self._active)
        body = to_prometheus(self.registry.snapshot()).encode("utf-8")
        await self._send_raw(writer, 200, body,
                             content_type="text/plain; version=0.0.4")

    async def _handle_check(self, headers, reader, writer) -> None:
        self._serve.counter("requests.total").inc()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY_BYTES:
            self._serve.counter("requests.bad").inc()
            await self._send_error(writer, 413, "body_too_large",
                                   "missing or oversized Content-Length")
            return
        try:
            body = await asyncio.wait_for(reader.readexactly(length),
                                          timeout=_HEADER_TIMEOUT_S)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            self._serve.counter("requests.bad").inc()
            await self._send_error(writer, 400, "bad_body",
                                   "request body shorter than "
                                   "Content-Length")
            return
        try:
            request = parse_request(body, allow_debug=self.allow_debug)
        except RequestError as err:
            self._serve.counter("requests.bad").inc()
            await self._send_error(writer, err.http_status, err.kind,
                                   str(err))
            return

        fingerprint = request["fingerprint"]
        cacheable = not request["debug"]

        if cacheable:
            cached = self.results.get(fingerprint)
            if cached is not None:
                self._serve.counter("requests.cache_hits").inc()
                await self._respond_served(writer, cached,
                                           cached_hit=True)
                return

        pending = self._inflight.get(fingerprint)
        if pending is not None:
            # Coalesce: ride the identical in-flight evaluation.
            self._serve.counter("requests.coalesced").inc()
            status, envelope, kind, detail = await asyncio.shield(pending)
            if status == 200:
                await self._respond_served(writer, envelope,
                                           coalesced=True)
            else:
                await self._send_error(writer, status, kind, detail,
                                       retry_after=self._retry_after(
                                           status))
            return

        if self._shutdown.is_set():
            self._serve.counter("requests.shed").inc()
            await self._send_error(writer, 503, "draining",
                                   "server is draining", retry_after=1)
            return
        if self._active >= self.queue_limit:
            self._serve.counter("requests.shed").inc()
            await self._send_error(writer, 429, "overloaded",
                                   "admission queue full", retry_after=1)
            return

        future = asyncio.get_running_loop().create_future()
        self._inflight[fingerprint] = future
        self._active += 1
        self._idle.clear()
        started = time.monotonic()
        try:
            outcome = await self._evaluate(request)
        except Exception as err:  # defensive: supervisor never raises
            outcome = (500, None, "internal_error",
                       f"{type(err).__name__}: {err}")
        finally:
            self._active -= 1
            self._inflight.pop(fingerprint, None)
            if self._active == 0 and not self._inflight:
                self._idle.set()
        self._serve.histogram("latency_s").observe(
            time.monotonic() - started)
        future.set_result(outcome)
        status, envelope, kind, detail = outcome
        if status == 200:
            if cacheable:
                self.results.put(fingerprint, envelope)
            await self._respond_served(writer, envelope)
        else:
            await self._send_error(writer, status, kind, detail,
                                   retry_after=self._retry_after(status))

    async def _evaluate(self, request
                        ) -> Tuple[int, Optional[dict], str, str]:
        """Run the cell on the supervised pool; fold supervision
        facts into loop-owned metrics; map the verdict to HTTP."""
        debug = request["debug"]
        cell = ServeCell(
            source=request["source"],
            schemes=tuple(request["schemes"]),
            elide_checks=request["elide_checks"],
            max_instructions=request["max_instructions"],
            wallclock_budget=self.deadline_s,
            fingerprint=request["fingerprint"],
            debug_crash=bool(debug.get("crash")),
            debug_sleep_s=float(debug.get("sleep_s", 0.0)))
        loop = asyncio.get_running_loop()
        result, delta, meta = await loop.run_in_executor(
            None, self.supervisor.run_cell, cell)

        # All counter mutation happens here, on the loop thread.
        if meta.worker_deaths:
            self._serve.counter("worker.deaths").inc(meta.worker_deaths)
        if meta.pool_restarts:
            self._serve.counter("worker.restarts").inc(
                meta.pool_restarts)
        if meta.breaker_opened:
            self._serve.counter("breaker.opened").inc()
        for name, value in delta.items():
            if isinstance(value, int) and value > 0:
                self.registry.counter(name).inc(value)

        if result.status == STATUS_SERVED:
            self._serve.counter("requests.ok").inc()
            return 200, result.extra["envelope"], "", ""
        http_status, kind = _STATUS_HTTP.get(
            result.status, (500, "internal_error"))
        self._serve.counter(f"requests.{kind}").inc()
        detail = result.detail or result.error or result.status
        if result.status == "error":
            detail = detail.strip().splitlines()[-1]
        return http_status, None, kind, detail

    # -- response helpers --------------------------------------------------

    @staticmethod
    def _retry_after(status: int) -> Optional[int]:
        return 1 if status in (429, 503) else None

    async def _respond_served(self, writer, envelope: dict,
                              cached_hit: bool = False,
                              coalesced: bool = False) -> None:
        doc = dict(envelope)
        doc["transport"] = {"cached": cached_hit, "coalesced": coalesced}
        await self._send_raw(
            writer, 200, canonical_json(doc).encode("utf-8"),
            content_type="application/json")

    async def _send_json(self, writer, status: int, doc: dict,
                         retry_after: Optional[int] = None) -> None:
        body = (json.dumps(doc, indent=2, sort_keys=True) + "\n") \
            .encode("utf-8")
        await self._send_raw(writer, status, body,
                             content_type="application/json",
                             retry_after=retry_after)

    async def _send_error(self, writer, status: int, kind: str,
                          detail: str,
                          retry_after: Optional[int] = None) -> None:
        await self._send_json(
            writer, status,
            {"schema": SCHEMA,
             "error": {"kind": kind, "detail": detail}},
            retry_after=retry_after)

    @staticmethod
    async def _send_raw(writer, status: int, body: bytes,
                        content_type: str,
                        retry_after: Optional[int] = None) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        if retry_after is not None:
            head.append(f"Retry-After: {retry_after}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
