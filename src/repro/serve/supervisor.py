"""Supervised worker pool for the serve front end.

Layers the server's fault domains on top of the primitives in
:mod:`repro.harness.parallel`:

* each request becomes a :class:`ServeCell` — a picklable job whose
  ``execute()`` runs the pure :func:`repro.serve.evaluate` under the
  per-request deadline watchdog (``_execute_cell`` arms it from the
  cell's ``wallclock_budget``), against the worker's process-local
  compile cache backed by the shared on-disk artifact store;
* a dead worker (``os._exit``, segfault, OOM-kill) breaks the whole
  ``ProcessPoolExecutor``; the supervisor detects it, rebuilds the
  pool under **exponential backoff**, and retries the cell a bounded
  number of times — innocents queued behind a crasher recover, the
  crasher itself exhausts its attempts and comes back as
  ``status="worker_died"``;
* a **circuit breaker** quarantines a request fingerprint after
  repeated deaths: further identical submissions are refused for a
  cooldown without touching the pool (``status="quarantined"``), then
  one trial request is let through (half-open);
* too many *consecutive* deaths — nothing completing at all — flips
  the supervisor into **degraded** mode: requests are refused
  (``status="degraded"``) until something succeeds or the operator
  restarts, keeping a poisoned host from fork-bombing itself.

:meth:`Supervisor.run_cell` is blocking and thread-safe; the asyncio
app calls it through ``run_in_executor``. It returns
``(CellResult, cache_delta, meta)`` and mutates **no** metrics
registry itself — counter updates happen on the event-loop thread
(see :mod:`repro.serve.app`), because registry counters are not
thread-safe.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.harness.compile_cache import configure_process_cache, \
    process_cache
from repro.harness.parallel import CellResult, STATUS_WORKER_DIED, \
    _execute_cell

__all__ = ["ServeCell", "Supervisor", "STATUS_SERVED",
           "STATUS_QUARANTINED", "STATUS_DEGRADED", "CRASH_EXIT_CODE"]

#: Envelope statuses minted by this layer.
STATUS_SERVED = "served"
STATUS_QUARANTINED = "quarantined"
STATUS_DEGRADED = "degraded"

#: Exit code a debug-fault crash cell kills its worker with — visible
#: in soak-test logs as the planted cause of pool restarts.
CRASH_EXIT_CODE = 86


@dataclass(frozen=True)
class ServeCell:
    """One request as a picklable pool job.

    ``execute()`` returns a :class:`CellResult` whose ``extra`` carries
    the deterministic ``repro.serve/v1`` envelope; the wallclock
    watchdog and exception fencing around it come from
    ``parallel._execute_cell``, exactly as sweep cells get them.

    ``debug_crash`` (only reachable when the server runs with
    ``--debug-faults``) kills the worker process mid-cell — the soak
    test's planted fault for exercising supervision.
    """

    source: str
    schemes: Tuple[str, ...]
    elide_checks: bool = False
    max_instructions: int = 5_000_000
    wallclock_budget: Optional[float] = None
    fingerprint: str = ""
    debug_crash: bool = False
    debug_sleep_s: float = 0.0

    # _spec_identity / envelope compatibility with parallel cells.
    workload: Optional[str] = None

    @property
    def tag(self) -> str:
        return self.fingerprint

    @property
    def scheme(self) -> str:
        return "+".join(self.schemes)

    @property
    def group_key(self) -> str:
        return self.fingerprint

    def execute(self) -> CellResult:
        from repro.serve.protocol import evaluate

        if self.debug_crash:
            os._exit(CRASH_EXIT_CODE)
        if self.debug_sleep_s > 0:
            time.sleep(self.debug_sleep_s)
        envelope = evaluate(
            self.source, schemes=self.schemes,
            elide_checks=self.elide_checks,
            max_instructions=self.max_instructions,
            cache=process_cache())
        return CellResult(
            tag=self.tag, workload=None, scheme=self.scheme,
            ok=True, status=STATUS_SERVED,
            extra={"envelope": envelope})


def _worker_init(disk_root: Optional[str], max_bytes: int) -> None:
    """Pool initializer: point the worker's process-local compile cache
    at the shared on-disk artifact store."""
    if disk_root is not None:
        configure_process_cache(disk_root=disk_root,
                                max_bytes=max_bytes)


def _worker_ping() -> int:
    """No-op pool job; see :meth:`Supervisor.warm`."""
    return os.getpid()


def _worker_run(cell: ServeCell) -> Tuple[CellResult, Dict[str, int]]:
    """Worker entry point: one cell + this process's cache delta."""
    cache = process_cache()
    before = cache.stats_snapshot()
    result = _execute_cell(cell)
    delta = {name: value - before.get(name, 0)
             for name, value in cache.stats_snapshot().items()}
    return result, delta


@dataclass
class _BreakerEntry:
    strikes: int = 0
    open_until: float = 0.0
    half_open: bool = False


@dataclass
class SupervisorMeta:
    """Per-call supervision record, for the app's metrics/transport."""

    attempts: int = 0
    worker_deaths: int = 0
    pool_restarts: int = 0
    quarantined: bool = False
    degraded: bool = False
    breaker_opened: bool = False
    extra: Dict[str, object] = field(default_factory=dict)


class Supervisor:
    """Thread-safe supervised pool; see the module docstring."""

    def __init__(self, jobs: int = 2,
                 disk_root: Optional[str] = None,
                 disk_max_bytes: int = 256 * 1024 * 1024,
                 max_attempts: int = 3,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0,
                 breaker_threshold: int = 2,
                 breaker_cooldown_s: float = 30.0,
                 degraded_after: int = 6):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self.disk_root = disk_root
        self.disk_max_bytes = disk_max_bytes
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.degraded_after = degraded_after

        # Workers come from a *forkserver*, not plain fork: a server
        # process forks workers from a template captured before any
        # connection exists, so replacement workers (after a crash,
        # with requests in flight) can never inherit live client
        # sockets — a forked fd duplicate would hold connections open
        # past the server's close() and break ``Connection: close``
        # EOF semantics. Falls back to the platform default where the
        # forkserver method is unavailable.
        try:
            self._mp_context = multiprocessing.get_context("forkserver")
        except ValueError:
            self._mp_context = None

        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._cooldown_until = 0.0
        self._consecutive_deaths = 0
        self._degraded = False
        self._breakers: Dict[str, _BreakerEntry] = {}
        # Lifetime counters, read (not mutated) by the app's /healthz.
        self.total_deaths = 0
        self.total_restarts = 0
        self.cells_completed = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._degraded

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- pool management ---------------------------------------------------

    def _pool_handle(self) -> Tuple[ProcessPoolExecutor, int]:
        """Current pool + its generation, honouring restart backoff."""
        while True:
            with self._lock:
                if self._pool is not None:
                    return self._pool, self._generation
                wait = self._cooldown_until - time.monotonic()
                if wait <= 0:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.jobs,
                        mp_context=self._mp_context,
                        initializer=_worker_init,
                        initargs=(self.disk_root, self.disk_max_bytes))
                    self._generation += 1
                    return self._pool, self._generation
            time.sleep(min(wait, 0.05))

    def warm(self) -> None:
        """Spin up the forkserver + worker pool *before* the listening
        socket accepts anything (prefork): blocking, call once at
        startup."""
        pool, _ = self._pool_handle()
        pool.submit(_worker_ping).result()

    def _note_death(self, generation: int, meta: SupervisorMeta) -> None:
        """A submission observed its pool break: retire that pool
        generation (first observer wins) and schedule the rebuild
        under exponential backoff."""
        with self._lock:
            self.total_deaths += 1
            meta.worker_deaths += 1
            if self._generation == generation and self._pool is not None:
                pool, self._pool = self._pool, None
                self.total_restarts += 1
                meta.pool_restarts += 1
                self._consecutive_deaths += 1
                backoff = min(
                    self.backoff_base_s *
                    (2 ** (self._consecutive_deaths - 1)),
                    self.backoff_cap_s)
                self._cooldown_until = time.monotonic() + backoff
                if self._consecutive_deaths >= self.degraded_after:
                    self._degraded = True
            else:
                pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- circuit breaker ---------------------------------------------------

    def _breaker_admits(self, key: str) -> bool:
        """False while ``key`` is quarantined; lets one trial through
        after the cooldown (half-open)."""
        if not key:
            return True
        with self._lock:
            entry = self._breakers.get(key)
            if entry is None or entry.strikes < self.breaker_threshold:
                return True
            now = time.monotonic()
            if now < entry.open_until:
                return False
            if entry.half_open:
                return False      # a trial is already in flight
            entry.half_open = True
            return True

    def _breaker_strike(self, key: str, meta: SupervisorMeta) -> None:
        if not key:
            return
        with self._lock:
            entry = self._breakers.setdefault(key, _BreakerEntry())
            entry.strikes += 1
            entry.half_open = False
            if entry.strikes >= self.breaker_threshold:
                entry.open_until = time.monotonic() + \
                    self.breaker_cooldown_s
                meta.breaker_opened = True

    def _breaker_clear(self, key: str) -> None:
        if key:
            with self._lock:
                self._breakers.pop(key, None)

    def open_breakers(self) -> int:
        with self._lock:
            return sum(
                1 for e in self._breakers.values()
                if e.strikes >= self.breaker_threshold)

    # -- execution ---------------------------------------------------------

    def run_cell(self, cell: ServeCell
                 ) -> Tuple[CellResult, Dict[str, int], SupervisorMeta]:
        """Run one cell to a verdict envelope; blocking, never raises.

        Every outcome is a :class:`CellResult`: ``served`` (with the
        envelope in ``extra``), ``hang`` (deadline), ``error``
        (evaluate bug), ``worker_died`` (attempts exhausted),
        ``quarantined`` (breaker open) or ``degraded``.
        """
        meta = SupervisorMeta()
        key = cell.fingerprint
        if not self._breaker_admits(key):
            meta.quarantined = True
            return (self._refusal(cell, STATUS_QUARANTINED,
                                  "circuit breaker open for this "
                                  "request fingerprint"), {}, meta)
        if self.degraded:
            meta.degraded = True
            return (self._refusal(cell, STATUS_DEGRADED,
                                  "supervisor degraded after repeated "
                                  "worker deaths"), {}, meta)

        for _ in range(self.max_attempts):
            meta.attempts += 1
            pool, generation = self._pool_handle()
            try:
                result, delta = pool.submit(_worker_run, cell).result()
            except Exception:
                # BrokenProcessPool / BrokenExecutor — or a submit on a
                # pool another thread is retiring right now. Either
                # way: note, back off, retry on a fresh generation.
                self._note_death(generation, meta)
                self._breaker_strike(key, meta)
                continue
            with self._lock:
                self._consecutive_deaths = 0
                self._degraded = False
                self.cells_completed += 1
            self._breaker_clear(key)
            return result, delta, meta

        return (self._refusal(
            cell, STATUS_WORKER_DIED,
            f"worker process died {meta.attempts} time(s) running "
            "this request"), {}, meta)

    @staticmethod
    def _refusal(cell: ServeCell, status: str, detail: str) -> CellResult:
        return CellResult(
            tag=cell.tag, workload=None, scheme=cell.scheme,
            ok=False, status=status, detail=detail, error=detail)
