"""Bounded in-memory result cache for served envelopes.

Keyed by :func:`repro.serve.protocol.request_fingerprint`, so a
repeated submission of the same source + options is answered without
touching the worker pool at all. Envelopes are deterministic (see
:mod:`repro.serve.protocol`), which makes this cache semantically
invisible — a hit returns exactly the bytes a fresh evaluation would
have produced.

Only ever touched from the single-threaded asyncio event loop, so no
locking; the on-disk, cross-process artifact tier lives in
:class:`repro.harness.compile_cache.DiskArtifactStore`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

__all__ = ["ResultCache"]


class ResultCache:
    """LRU map of request fingerprint -> served envelope dict."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str) -> Optional[dict]:
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return entry

    def put(self, fingerprint: str, envelope: dict) -> None:
        self._entries[fingerprint] = envelope
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats_snapshot(self) -> Dict[str, int]:
        return {
            "serve.result_cache.entries": len(self._entries),
            "serve.result_cache.hits": self.hits,
            "serve.result_cache.misses": self.misses,
            "serve.result_cache.evictions": self.evictions,
        }
