"""The ``repro.serve/v1`` wire protocol and the pure evaluation core.

:func:`evaluate` is the service's whole value in one pure function:
``(source, schemes, options) -> envelope dict``, no global state, no
timestamps, no host measurements — which is what makes the service's
core invariant checkable: a verdict served under load must be
**byte-identical** (:func:`canonical_json`) to the same source
compiled and checked offline. Everything nondeterministic (cache
hits, coalescing, queueing) lives outside the envelope, under the
transport key the server adds.

The envelope carries, per requested scheme: the run verdict through
the existing :func:`repro.harness.runner.run_program` path (status,
exit code, detection classification, trap report, guest counts, the
same documented CLI exit code ``repro run`` would have returned), the
``repro.analyze`` linter findings, and an overhead estimate (Eq. 7
cycles vs the uninstrumented baseline).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Sequence, Tuple

from repro.core.config import HwstConfig
from repro.errors import ReproError, ToolchainError, exit_code_for, \
    exit_code_for_status

__all__ = ["SCHEMA", "DEFAULT_SCHEMES", "MAX_SOURCE_BYTES",
           "RequestError", "canonical_json", "evaluate",
           "parse_request", "request_fingerprint"]

SCHEMA = "repro.serve/v1"

#: Default scheme verdict set: the unprotected-but-hardened compiler
#: baseline, the software reference, and the full accelerator.
DEFAULT_SCHEMES: Tuple[str, ...] = ("gcc", "sbcets", "hwst128_tchk")

#: Request-body source cap (documented 413 above it).
MAX_SOURCE_BYTES = 64 * 1024

#: Server-side ceiling on the per-request step budget; requests may
#: lower it, never raise it.
MAX_INSTRUCTIONS_CAP = 20_000_000
DEFAULT_MAX_INSTRUCTIONS = 5_000_000

#: Output bytes echoed back per verdict (deterministic truncation).
_OUTPUT_CAP = 4096


def canonical_json(doc: dict) -> str:
    """The byte-identity serialisation of an envelope."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


class RequestError(ValueError):
    """A request the server refuses before any compilation happens.

    ``http_status`` is the documented mapping (400 malformed JSON or
    fields, 413 source too large); ``kind`` is the machine-readable
    error tag echoed in the response body.
    """

    def __init__(self, kind: str, detail: str, http_status: int = 400):
        super().__init__(detail)
        self.kind = kind
        self.http_status = http_status


def request_fingerprint(source: str, schemes: Sequence[str],
                        elide_checks: bool,
                        max_instructions: int) -> str:
    """Content address of a request: identical in-flight submissions
    coalesce on this key, completed ones hit the result cache on it."""
    doc = {"source_sha256":
           hashlib.sha256(source.encode("utf-8")).hexdigest(),
           "schemes": list(schemes),
           "elide_checks": bool(elide_checks),
           "max_instructions": int(max_instructions)}
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode("utf-8")).hexdigest()


def parse_request(body: bytes,
                  max_source_bytes: int = MAX_SOURCE_BYTES,
                  allow_debug: bool = False) -> Dict[str, object]:
    """Validate a ``POST /v1/check`` body into a request dict.

    Raises :class:`RequestError` on anything malformed; never touches
    the compiler. The returned dict carries ``source``, ``schemes``,
    ``elide_checks``, ``max_instructions``, ``fingerprint`` and (only
    with ``allow_debug``) the fault-injection ``debug`` block the soak
    tests use.
    """
    from repro.schemes import SCHEMES

    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise RequestError("bad_json", f"request body is not JSON: "
                           f"{err}") from None
    if not isinstance(doc, dict):
        raise RequestError("bad_request", "request body must be a JSON "
                           "object")
    source = doc.get("source")
    if not isinstance(source, str) or not source.strip():
        raise RequestError("bad_source", "'source' must be a non-empty "
                           "string of mini-C")
    if len(source.encode("utf-8")) > max_source_bytes:
        raise RequestError(
            "source_too_large",
            f"source exceeds {max_source_bytes} bytes",
            http_status=413)
    schemes = doc.get("schemes", list(DEFAULT_SCHEMES))
    if not (isinstance(schemes, list) and schemes
            and all(isinstance(s, str) for s in schemes)):
        raise RequestError("bad_schemes", "'schemes' must be a "
                           "non-empty list of scheme names")
    unknown = [s for s in schemes if s not in SCHEMES]
    if unknown:
        raise RequestError(
            "unknown_scheme",
            f"unknown scheme(s) {unknown}; known: {sorted(SCHEMES)}")
    elide = doc.get("elide_checks", False)
    if not isinstance(elide, bool):
        raise RequestError("bad_request", "'elide_checks' must be a "
                           "boolean")
    budget = doc.get("max_instructions", DEFAULT_MAX_INSTRUCTIONS)
    if not isinstance(budget, int) or isinstance(budget, bool) or \
            budget < 1:
        raise RequestError("bad_request", "'max_instructions' must be "
                           "a positive integer")
    budget = min(budget, MAX_INSTRUCTIONS_CAP)
    debug = doc.get("debug")
    if debug is not None and not allow_debug:
        raise RequestError("bad_request", "'debug' requires the server "
                           "to run with --debug-faults")
    if debug is not None and not isinstance(debug, dict):
        raise RequestError("bad_request", "'debug' must be an object")
    fingerprint = request_fingerprint(source, schemes, elide, budget)
    if debug:
        # Planted-fault requests must never coalesce with (or cache-
        # poison) the identical real request.
        fingerprint = hashlib.sha256(
            (fingerprint + json.dumps(debug, sort_keys=True))
            .encode("utf-8")).hexdigest()
    return {
        "source": source,
        "schemes": tuple(schemes),
        "elide_checks": elide,
        "max_instructions": budget,
        "debug": debug or {},
        "fingerprint": fingerprint,
    }


def _trap_report(result) -> Optional[Dict[str, object]]:
    if not result.trap_class:
        return None
    return {
        "class": result.trap_class,
        "pc": result.trap_pc,
        "detail": result.detail,
    }


def _verdict(scheme: str, result) -> Dict[str, object]:
    from repro.harness.runner import detected

    return {
        "status": result.status,
        "exit_code": result.exit_code,
        "cli_exit_code": exit_code_for_status(result.status,
                                              result.exit_code),
        "detected": detected(scheme, result),
        "instret": result.instret,
        "cycles": result.cycles,
        "output": result.output[:_OUTPUT_CAP].decode(
            "utf-8", errors="replace"),
        "trap": _trap_report(result),
    }


def _error_verdict(err: ReproError) -> Dict[str, object]:
    return {
        "status": "toolchain_error",
        "error": f"{type(err).__name__}: {err}",
        "cli_exit_code": exit_code_for(err),
        "detected": False,
        "trap": None,
    }


def evaluate(source: str,
             schemes: Sequence[str] = DEFAULT_SCHEMES,
             elide_checks: bool = False,
             max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
             cache=None) -> Dict[str, object]:
    """Compile + run + lint ``source``: the pure service core.

    A deterministic function of its arguments (``cache`` only short-
    circuits identical compiles; the simulator is deterministic, so
    cached and fresh verdicts are identical). Toolchain failures are
    *data* — a verdict with ``status="toolchain_error"`` and the same
    documented exit code the CLI maps — never an exception, so one
    broken translation unit cannot poison a worker.
    """
    from repro.harness.runner import run_program

    config = HwstConfig(elide_checks=elide_checks)
    verdicts: Dict[str, Dict[str, object]] = {}
    runs: Dict[str, object] = {}

    def run(scheme: str):
        if scheme not in runs:
            runs[scheme] = run_program(
                source, scheme, config=config, timing=True,
                max_instructions=max_instructions, cache=cache)
        return runs[scheme]

    baseline_cycles: Optional[int] = None
    try:
        baseline = run("baseline")
        if baseline.status == "exit":
            baseline_cycles = baseline.cycles
    except ReproError:
        baseline = None

    for scheme in schemes:
        try:
            verdicts[scheme] = _verdict(scheme, run(scheme))
        except ReproError as err:
            verdicts[scheme] = _error_verdict(err)

    overhead: Dict[str, object] = {"baseline_cycles": baseline_cycles,
                                   "pct_by_scheme": {}}
    if baseline_cycles:
        for scheme, verdict in verdicts.items():
            if verdict.get("status") == "exit" and verdict["cycles"]:
                overhead["pct_by_scheme"][scheme] = round(
                    (verdict["cycles"] / baseline_cycles - 1.0) * 100.0,
                    4)

    try:
        from repro.analyze import analyze_source

        analysis = analyze_source(source, name="<request>").to_dict()
    except ToolchainError as err:
        analysis = {"error": f"{type(err).__name__}: {err}"}

    return {
        "schema": SCHEMA,
        "source_sha256":
            hashlib.sha256(source.encode("utf-8")).hexdigest(),
        "options": {
            "schemes": list(schemes),
            "elide_checks": bool(elide_checks),
            "max_instructions": int(max_instructions),
        },
        "verdicts": verdicts,
        "analyze": analysis,
        "overhead": overhead,
    }
