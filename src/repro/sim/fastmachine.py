"""Translation-cached fast engine for the RV64 + HWST128 simulator.

:class:`FastMachine` is the QEMU-style dynamic-binary-translation
answer to the classic fetch/decode/execute loop in
:class:`~repro.sim.machine.Machine` (which stays untouched as the
golden reference engine): the first time execution reaches a pc, the
basic block starting there is decoded **once** into a list of bound
Python closures with every static operand (pc, rd, rs1, rs2, imm,
branch targets, link values) pre-extracted, and the block is cached by
entry pc. Subsequent visits replay the closures with no per-instruction
fetch, dispatch-dict lookup, operand decoding, or budget bookkeeping —
instret advances in one bulk add per block.

Design points (docs/fast-iss.md covers the full contract):

* **Superblocks.** Traces extend across unconditional direct jumps
  (``jal``): a call or a ``j`` does not end the trace, so a hot
  caller+callee sequence becomes one block (bounded by
  :data:`MAX_TRACE`, and a trace never revisits a pc — loops translate
  once, not unrolled). Conditional branches, ``jalr``, ``ecall`` and
  ``ebreak`` terminate a trace; their successors chain through the
  pc-indexed block cache.
* **Fusion.** The instrumentation idiom ``tchk rs1`` followed by a
  fused-check access (``ld.chk``/``sd.chk`` …) is translated into a
  *single* closure — one Python call performs the temporal check, the
  spatial check and the memory access, while still retiring as two
  instructions with two distinct trap pcs.
* **Exactness.** Every architecturally visible observable is
  bit-identical with the reference engine: registers, memory, SRF,
  stdout, instret (including at trap boundaries — a mid-block trap
  credits exactly the instructions that completed before it), trap
  class/pc/detail, ``sim.*`` counters, keybuffer and shadow statistics,
  and — when a timing model is attached — cycles and the full
  ``cyc_*``/dcache breakdown. The timing model is evaluated at
  *translate time*: everything ``retire()`` charges that is static per
  instruction (base cost, structural extras, mul/div latency, jump
  redirects, intra-block interlocks) is summed into one per-block
  **fold** applied once per replay, with an exact per-position unwind
  for mid-block traps; only the D-cache outcome, the tchk
  keybuffer-miss beat and taken-branch redirects stay in the closures.
  Reference-wrapped ops self-account through the real ``retire()`` and
  therefore occupy a block alone in timed mode, reading interlock
  state the fold materialises at block boundaries.
* **Invalidation.** ``load()`` registers a store watch on the text
  window; any store overlapping a translated block drops that block
  from the cache. (Instruction *semantics* cannot change — both
  engines fetch from the decoded ``Program.instrs`` list, not from
  memory bytes — so this is cache hygiene plus honest statistics, and
  the contract a future fetch-from-memory engine will need.)
* **Fallbacks.** Per-instruction observers — a fault-injection hook,
  a trace ring buffer, an event tracer, a cycle profiler (whose
  ``record`` must fire exactly once per retired pc) — and the budget
  tail (fewer remaining instructions than the next block retires) all
  run on the reference ``_dispatch_loop``, which is also what
  ``step()`` uses: semantics cannot drift because there is only one
  single-instruction path, and observed runs pay zero translation
  overhead on top of what the reference engine costs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro import bits
from repro.core.config import ALIGN_SHIFT
from repro.errors import (
    IllegalInstruction, MemoryFault, ReproError, ShadowMemoryExhausted,
    SimTrap,
)
from repro.isa import csr as csrdef
from repro.isa.instructions import Instr, SPEC_TABLE
from repro.sim.machine import Machine, SRF_INVALID
from repro.sim.program import Program

__all__ = ["FastMachine", "MAX_TRACE"]

#: Upper bound on instructions per translated trace. Superblock
#: extension across ``jal`` stops here so a call-heavy region cannot
#: translate into one giant block (which would defeat the budget tail
#: and bloat retranslation after an invalidation).
MAX_TRACE = 64

_ALU_R_OPS = frozenset((
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "addw", "subw", "sllw", "srlw", "sraw",
    "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
    "mulw", "divw", "divuw", "remw", "remuw",
))
_ALU_I_OPS = frozenset((
    "addi", "slti", "sltiu", "xori", "ori", "andi",
    "slli", "srli", "srai", "addiw", "slliw", "srliw", "sraiw",
))
_BRANCH_OPS = frozenset(("beq", "bne", "blt", "bge", "bltu", "bgeu"))

_M64 = bits.MASK64

# Translation modes, decided per run from the attached timing model.
# (Per-instruction observers never reach translated code at all: they
# run on the reference _dispatch_loop, see _exec_loop.)
_PLAIN = "plain"   # no timing model
_TIMED = "timed"   # timing model attached


# ----------------------------------------------------------------------
# Specialised ALU closure factories (exec-compiled once per mnemonic)
# ----------------------------------------------------------------------
#
# The generic reference path costs three calls per ALU instruction
# (closure -> _alu_fn lambda -> bits helper). These templates inline the
# operation *expression* into the closure body, so the hot ops are one
# call with only arithmetic inside. Semantics are forced equal by
# construction: every expression below is the reference _alu_table
# lambda with bits.to_u64/to_s64/sext unfolded (``(x ^ SIGN) - SIGN`` is
# sign extension; signed compares drop the common ``- SIGN`` term).

_ALU_EXPR = {
    "add": "(a + b) & 0xFFFFFFFFFFFFFFFF",
    "sub": "(a - b) & 0xFFFFFFFFFFFFFFFF",
    "sll": "(a << (b & 63)) & 0xFFFFFFFFFFFFFFFF",
    "slt": "1 if (a ^ 0x8000000000000000) < (b ^ 0x8000000000000000)"
           " else 0",
    "sltu": "1 if a < b else 0",
    "xor": "a ^ b",
    "srl": "a >> (b & 63)",
    "sra": "(((a ^ 0x8000000000000000) - 0x8000000000000000)"
           " >> (b & 63)) & 0xFFFFFFFFFFFFFFFF",
    "or": "a | b",
    "and": "a & b",
    "addw": "((((a + b) & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000)"
            " & 0xFFFFFFFFFFFFFFFF",
    "subw": "((((a - b) & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000)"
            " & 0xFFFFFFFFFFFFFFFF",
    "sllw": "((((a << (b & 31)) & 0xFFFFFFFF) ^ 0x80000000)"
            " - 0x80000000) & 0xFFFFFFFFFFFFFFFF",
    "srlw": "((((a & 0xFFFFFFFF) >> (b & 31)) ^ 0x80000000)"
            " - 0x80000000) & 0xFFFFFFFFFFFFFFFF",
    "sraw": "((((a & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000)"
            " >> (b & 31)) & 0xFFFFFFFFFFFFFFFF",
    "mul": "(a * b) & 0xFFFFFFFFFFFFFFFF",
    "mulw": "((((a * b) & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000)"
            " & 0xFFFFFFFFFFFFFFFF",
    # immediate variants share the R expressions (b = u64 immediate):
    "addi": "(a + b) & 0xFFFFFFFFFFFFFFFF",
    "slti": "1 if (a ^ 0x8000000000000000) < (b ^ 0x8000000000000000)"
            " else 0",
    "sltiu": "1 if a < b else 0",
    "xori": "a ^ b",
    "ori": "a | b",
    "andi": "a & b",
    "slli": "(a << (b & 63)) & 0xFFFFFFFFFFFFFFFF",
    "srli": "a >> (b & 63)",
    "srai": "(((a ^ 0x8000000000000000) - 0x8000000000000000)"
            " >> (b & 63)) & 0xFFFFFFFFFFFFFFFF",
    "addiw": "((((a + b) & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000)"
             " & 0xFFFFFFFFFFFFFFFF",
    "slliw": "((((a << (b & 31)) & 0xFFFFFFFF) ^ 0x80000000)"
             " - 0x80000000) & 0xFFFFFFFFFFFFFFFF",
    "srliw": "((((a & 0xFFFFFFFF) >> (b & 31)) ^ 0x80000000)"
             " - 0x80000000) & 0xFFFFFFFFFFFFFFFF",
    "sraiw": "((((a & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000)"
             " >> (b & 31)) & 0xFFFFFFFFFFFFFFFF",
    # (mulh*/div*/rem* stay on the reference lambdas: rare, and their
    # latency dwarfs a function call anyway)
}

_TPL_R_PLAIN = """\
def _mk(regs, srf, srf_wide, rd, rs1, rs2, INVALID=INVALID):
    def run():
        a = regs[rs1]; b = regs[rs2]
        regs[rd] = {expr}
        e1 = srf[rs1]
        w1 = srf_wide[rs1]
        if e1[2] or e1[3] or w1 is not None:
            srf[rd] = e1
            srf_wide[rd] = w1
        else:
            e2 = srf[rs2]
            w2 = srf_wide[rs2]
            if e2[2] or e2[3] or w2 is not None:
                srf[rd] = e2
                srf_wide[rd] = w2
            else:
                srf[rd] = INVALID
                srf_wide[rd] = None
    return run
"""

_TPL_I_PLAIN = """\
def _mk(regs, srf, srf_wide, rd, rs1, b):
    def run():
        a = regs[rs1]
        regs[rd] = {expr}
        srf[rd] = srf[rs1]
        srf_wide[rd] = srf_wide[rs1]
    return run
"""

def _compile_alu_makers():
    """(op -> closure maker) from the expression table.

    One (semantics-only) maker per mnemonic: timed blocks use the same
    closures — every cycle an ALU op costs is static and lives in the
    block's timing fold, not in the per-instruction closure.
    """
    makers = {}
    for op, expr in _ALU_EXPR.items():
        tpl = _TPL_I_PLAIN if op in _ALU_I_OPS else _TPL_R_PLAIN
        ns = {"INVALID": SRF_INVALID}
        exec(compile(tpl.format(expr=expr),
                     f"<fastmachine:{op}>", "exec"), ns)
        makers[op] = ns["_mk"]
    return makers


_ALU_MAKERS = _compile_alu_makers()

_SPECIALISED_OPS = frozenset(
    ("tchk", "lui", "auipc", "bndrs", "bndrt",
     "sbdl", "sbdu", "lbdls", "lbdus", "jal", "jalr"),
) | _ALU_R_OPS | _ALU_I_OPS | _BRANCH_OPS


def _is_specialised(op: str, spec) -> bool:
    """True when the op has a dedicated emitter (its full static cost
    is known at translate time); False for reference-wrapped ops."""
    if op in _SPECIALISED_OPS:
        return True
    if spec is None:
        return False
    if spec.is_load and spec.opcode == 0x03:
        return True
    if spec.is_store and spec.opcode == 0x23:
        return True
    return spec.checked and (spec.is_load or spec.is_store)


class _Block:
    """One translated trace: straight-line closures + terminator."""

    __slots__ = ("body", "term", "n", "pos", "end_pc", "lo", "hi",
                 "fold", "unwind")

    def __init__(self, body, term, n, pos, end_pc, lo, hi,
                 fold=None, unwind=None):
        self.body = body      # tuple of 0-arg closures (returns ignored)
        self.term = term      # 0-arg closure -> next pc | None, or None
        self.n = n            # instructions this block retires
        self.pos = pos        # pc -> instructions completed before it
        self.end_pc = end_pc  # successor pc when term falls through
        self.lo = lo          # lowest pc in the trace (invalidation)
        self.hi = hi          # one past the highest pc in the trace
        self.fold = fold      # applies the block's static costs, or None
        self.unwind = unwind  # fold prefix for a trap after k instrs


class FastMachine(Machine):
    """Machine with a translation-cached superblock execution engine.

    Drop-in replacement for :class:`Machine` — construction arguments,
    ``run()``/``step()`` signatures and :class:`RunResult` contents are
    identical; only the execution core differs.
    """

    MAX_TRACE = MAX_TRACE

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._blocks: Dict[int, _Block] = {}
        self._mode = _PLAIN
        self._translations = 0
        self._translated_instrs = 0
        self._fused_pairs = 0
        self._invalidated_blocks = 0
        self._block_runs = 0

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------

    def load(self, program: Program):
        super().load(program)
        # A fresh run translates from scratch: reset() replaced the
        # memory/keybuffer/dcache objects the closures capture.
        self._blocks.clear()
        self._translations = 0
        self._translated_instrs = 0
        self._fused_pairs = 0
        self._invalidated_blocks = 0
        self._block_runs = 0
        self._mode = self._pick_mode()
        self.memory.watch_stores(program.text_base, program.text_end,
                                 self._on_text_store)

    def _pick_mode(self) -> str:
        return _TIMED if self.timing is not None else _PLAIN

    def _on_text_store(self, addr: int, size: int):
        """Store into the text window: drop every overlapping block."""
        end = addr + size
        stale = [entry for entry, block in self._blocks.items()
                 if addr < block.hi and end > block.lo]
        for entry in stale:
            del self._blocks[entry]
        self._invalidated_blocks += len(stale)

    def fast_stats(self) -> Dict[str, int]:
        """Translation-cache statistics (deterministic per run)."""
        return {
            "blocks": len(self._blocks),
            "translations": self._translations,
            "translated_instrs": self._translated_instrs,
            "fused_pairs": self._fused_pairs,
            "invalidated_blocks": self._invalidated_blocks,
            "block_runs": self._block_runs,
        }

    # ------------------------------------------------------------------
    # Execution engine
    # ------------------------------------------------------------------

    def _exec_loop(self, max_instructions: int) -> None:
        if self.fault_hook is not None or self.trace_depth \
                or self.tracer is not None or self.profiler is not None \
                or self._tracer_retire is not None:
            # Per-instruction observation (fault hooks, trace ring,
            # event tracers stamping ``_now()`` timestamps, cycle
            # profilers recording every retired pc): the reference
            # loop is the only honest way to run these — and it is
            # also *faster* than wrapping reference handlers in block
            # closures, so observed runs skip translation entirely.
            self._dispatch_loop(max_instructions, max_instructions)
            return
        blocks = self._blocks
        translate = self._translate
        remaining = max_instructions
        pc = self.pc
        runs = 0
        try:
            while True:
                self.pc = pc
                block = blocks.get(pc)
                if block is None:
                    block = translate(pc)
                n = block.n
                if remaining < n:
                    # Budget tail: fewer instructions left than this
                    # block retires — finish (and overrun-trap) on the
                    # reference loop, reporting the run-level limit.
                    self._dispatch_loop(remaining, max_instructions)
                    return
                runs += 1
                try:
                    for fn in block.body:
                        fn()
                except ReproError:
                    # Credit exactly the instructions that completed
                    # before the trapping one (which set self.pc).
                    # ReproError, not just SimTrap: compression range
                    # errors (bndrs/bndrt) must leave the same instret
                    # the reference loop would. The unwind applies the
                    # same prefix of the block's folded static costs.
                    completed = block.pos[self.pc]
                    self.instret += completed
                    if block.unwind is not None:
                        block.unwind(completed)
                    raise
                # The fold (block-level static cycles/counters and the
                # end-of-block interlock state) applies after the body
                # but before the terminator: a wrapped terminator
                # (ecall) runs the reference retire, which must read
                # the post-body pipeline state — and must not be
                # double-counted if it traps.
                fold = block.fold
                if fold is not None:
                    fold()
                term = block.term
                if term is not None:
                    try:
                        tpc = term()
                    except ReproError:
                        self.instret += block.pos[self.pc]
                        raise
                else:
                    tpc = None
                self.instret += n
                remaining -= n
                pc = block.end_pc if tpc is None else tpc
        finally:
            self._block_runs += runs
            scope = self._sim.scope("fast")
            scope.gauge("blocks").set(len(self._blocks))
            scope.gauge("translations").set(self._translations)
            scope.gauge("translated_instrs").set(self._translated_instrs)
            scope.gauge("fused_pairs").set(self._fused_pairs)
            scope.gauge("invalidated_blocks").set(self._invalidated_blocks)
            scope.gauge("block_runs").set(self._block_runs)

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def _translate(self, entry_pc: int) -> _Block:
        """Decode the trace starting at ``entry_pc`` into a block.

        Called exactly at execution time (the block cache missed), so
        raising here — pc outside text, unknown opcode — is observably
        identical to the reference loop raising at the same pc.
        """
        program = self.program
        index = program.index_of(entry_pc)
        if index < 0:
            raise MemoryFault(entry_pc, "pc outside text")
        instrs = program.instrs
        dispatch = self._dispatch
        timed = self._mode is _TIMED
        body: List[Callable] = []
        term: Optional[Callable] = None
        pos: Dict[int, int] = {}
        count = 0
        pc = entry_pc
        end_pc = entry_pc
        lo, hi = entry_pc, entry_pc
        # Per-position static-cost records feeding the block fold:
        # statics[i] = (cycles, ((counter, delta), ...)) for position
        # i; states[k] = the pipeline's load-producer state after k
        # instructions (states[0] is a never-read placeholder — a trap
        # at position 0 leaves the previous block's state in place).
        statics: List = []
        states: List = [(-1, -1)]
        prev_state = None
        first_desc = None
        spec_count = 0

        def push(ins2):
            """Record one specialised instruction's static costs."""
            nonlocal prev_state, first_desc, spec_count
            spec2 = SPEC_TABLE[ins2.op]
            pairs = self._static_counters(ins2, spec2)
            if timed:
                cyc, tpairs = self._static_timing(ins2, spec2,
                                                  prev_state)
                pairs = pairs + tpairs
                if first_desc is None:
                    first_desc = self._boundary_desc(ins2, spec2)
                prev_state = (
                    ins2.rd if (spec2.is_load and spec2.writes_rd
                                and not spec2.srf_write) else -1,
                    ins2.rd if (spec2.srf_write and spec2.is_load)
                    else -1,
                )
                states.append(prev_state)
            else:
                cyc = 0
            statics.append((cyc, tuple(pairs)))
            spec_count += 1

        while True:
            idx = program.index_of(pc)
            if idx < 0 or (count and pc in pos) or count >= self.MAX_TRACE:
                # Ran off text / joined this trace (loop) / trace full:
                # fall through to pc; the next block starts there.
                end_pc = pc
                break
            ins = instrs[idx]
            op = ins.op
            if dispatch.get(op) is None:
                if count == 0:
                    raise IllegalInstruction(pc, op)
                end_pc = pc
                break
            if pc < lo:
                lo = pc
            if pc + 4 > hi:
                hi = pc + 4
            if op in ("csrrw", "csrrs", "csrrc") or (
                    timed and op not in ("ecall", "ebreak")
                    and not _is_specialised(op, SPEC_TABLE.get(op))):
                # CSR reads of instret/cycle must see the exact
                # architectural count, but the block loop bulk-adds
                # instret after the block — so a CSR op is always the
                # sole instruction of its own block, where the count is
                # exact at entry (every prior block fully retired). In
                # timed mode every other reference-wrapped op joins
                # them: its handler runs the full reference retire(),
                # which must read interlock state the fold only
                # materialises at block boundaries.
                if count:
                    end_pc = pc
                    break
                pos[pc] = 0
                count = 1
                body.append(self._emit_wrapped(ins, pc))
                end_pc = pc + 4
                break
            # tchk + fused-check access -> one fused closure.
            if op == "tchk" and idx + 1 < len(instrs) \
                    and count + 2 <= self.MAX_TRACE \
                    and (pc + 4) not in pos:
                nxt = instrs[idx + 1]
                nspec = SPEC_TABLE.get(nxt.op)
                if nspec is not None and nspec.checked \
                        and dispatch.get(nxt.op) is not None:
                    pos[pc] = count
                    pos[pc + 4] = count + 1
                    push(ins)
                    push(nxt)
                    body.append(self._emit_fused(ins, pc, nxt, nspec))
                    count += 2
                    if pc + 8 > hi:
                        hi = pc + 8
                    pc += 8
                    self._fused_pairs += 1
                    continue
            pos[pc] = count
            count += 1
            if op in _BRANCH_OPS:
                push(ins)
                term = self._emit_branch(ins, pc)
                end_pc = pc + 4
                break
            if op == "jal":
                push(ins)
                target = (pc + ins.imm) & _M64
                if program.index_of(target) >= 0 and target not in pos \
                        and count < self.MAX_TRACE:
                    # Superblock extension: the jump does not end the
                    # trace — translation continues at its target.
                    closure = self._emit_jal(ins, pc, target,
                                             terminator=False)
                    if closure is not None:
                        body.append(closure)
                    pc = target
                    continue
                term = self._emit_jal(ins, pc, target, terminator=True)
                end_pc = target
                break
            if op == "jalr":
                push(ins)
                term = self._emit_jalr(ins, pc)
                end_pc = pc + 4  # unused: jalr always returns a target
                break
            if op in ("ecall", "ebreak"):
                # May raise or (SYS_WRITE) fall through; rare enough
                # that the reference handler is the right tool. Its
                # retire self-accounts *after* the fold ran (the term
                # slot runs post-fold), so it needs no statics — just a
                # placeholder keeping unwind prefixes aligned.
                statics.append((0, ()))
                term = self._emit_wrapped(ins, pc)
                end_pc = pc + 4
                break
            if _is_specialised(op, SPEC_TABLE.get(op)):
                push(ins)
            else:
                # Plain-mode wrapped op mid-block: the reference
                # handler does its own census, so its fold record is
                # an alignment placeholder.
                statics.append((0, ()))
            closure = self._emit_straightline(ins, pc)
            if closure is not None:
                body.append(closure)
            pc += 4
        fold, unwind = self._build_fold(statics, states, first_desc,
                                        spec_count)
        block = _Block(tuple(body), term, count, pos, end_pc, lo, hi,
                       fold, unwind)
        self._blocks[entry_pc] = block
        self._translations += 1
        self._translated_instrs += count
        return block

    # -- block-level static cost fold ----------------------------------

    def _static_counters(self, ins: Instr, spec):
        """The sim-census increments of one specialised instruction, as
        ``(counter, delta)`` pairs — everything the reference handler
        counts unconditionally *after* its last possible trap point.
        ``tchk`` is the exception (counted before a temporal trap can
        raise) and stays inline; ``taken`` is data-dependent and stays
        in the branch terminator."""
        ct = self._ct
        op = ins.op
        if op == "tchk":
            return []
        if op in ("sbdl", "sbdu"):
            return [(ct["stores"], 1), (ct["hwst_ops"], 1),
                    (ct["shadow_ops"], 1)]
        if op in ("lbdls", "lbdus"):
            return [(ct["loads"], 1), (ct["hwst_ops"], 1),
                    (ct["shadow_ops"], 1)]
        if spec.is_load:
            pairs = [(ct["loads"], 1)]
        elif spec.is_store:
            pairs = [(ct["stores"], 1)]
        elif op in ("bndrs", "bndrt"):
            return [(ct["hwst_ops"], 1)]
        elif spec.is_branch:
            return [(ct["branches"], 1)]
        elif op == "jal":
            return [(ct["calls"], 1)]
        else:
            return []
        if spec.checked:
            pairs.append((ct["hwst_ops"], 1))
        return pairs

    def _static_timing(self, ins: Instr, spec, prev_state):
        """The translate-time-known part of ``retire()`` for one
        specialised instruction: ``(cycles, [(counter, delta), ...])``.

        Mirrors :meth:`InOrderPipeline.retire` term by term; what is
        *not* here stays dynamic in the closures — the D-cache outcome,
        the tchk keybuffer-miss beat, and the taken-branch redirect.
        ``prev_state`` is the load-producer state after the previous
        instruction of the trace, or ``None`` for the first one (whose
        interlock against the previous block the fold resolves at run
        time)."""
        pl = self.timing
        params = pl.params
        bk = pl._bk
        op = ins.op
        cyc = 1
        deltas = [(bk["base"], 1)]
        wide = 0
        if spec.shadow_access:
            wide += params.smac_extra
        if op == "tchk":
            wide += params.tchk_occupancy
        if spec.srf_write and not spec.is_load:
            wide += params.bind_extra
        if (spec.is_load or spec.is_store) and spec.mem_bytes > 8:
            wide += params.wide_access_extra
        if wide:
            cyc += wide
            deltas.append((bk["wide"], wide))
        if spec.mul_like:
            cyc += params.mul_latency
            deltas.append((bk["muldiv"], params.mul_latency))
        elif spec.div_like:
            cyc += params.div_latency
            deltas.append((bk["muldiv"], params.div_latency))
        if spec.is_jump:
            # jal/jalr always redirect; a taken *branch* pays its
            # penalty dynamically in the terminator closure.
            cyc += params.jump_penalty
            deltas.append((bk["redirect"], params.jump_penalty))
        if prev_state is not None:
            llr, lsrf = prev_state
            stall = 0
            if llr > 0 and ((spec.reads_rs1 and ins.rs1 == llr)
                            or (spec.reads_rs2 and ins.rs2 == llr)):
                stall += params.load_use_stall
            if lsrf >= 0 and (
                    ((spec.checked or op == "tchk")
                     and ins.rs1 == lsrf)
                    or (op in ("sbdl", "sbdu") and ins.rs2 == lsrf)):
                stall += params.srf_load_use_stall
            if stall:
                cyc += stall
                deltas.append((bk["load_use"], stall))
        return cyc, deltas

    @staticmethod
    def _boundary_desc(ins: Instr, spec):
        """Operand descriptor for the block's *first* instruction,
        whose interlock against the previous block is resolved by the
        fold at run time. Sentinels (-2/-3) can never match: the GPR
        producer test requires ``last > 0``, the SRF one ``last >=
        0``."""
        op = ins.op
        return (
            ins.rs1 if spec.reads_rs1 else -2,
            ins.rs2 if spec.reads_rs2 else -2,
            ins.rs1 if (spec.checked or op == "tchk")
            else (ins.rs2 if op in ("sbdl", "sbdu") else -3),
        )

    def _build_fold(self, statics, states, first_desc, spec_count):
        """Compile the per-block ``(fold, unwind)`` pair.

        ``fold()`` applies the whole block's static costs in one shot:
        the merged counter deltas, the static cycle total plus the
        dynamically resolved first-instruction boundary interlock, and
        the end-of-block producer state. ``unwind(k)`` applies the same
        for the k-instruction prefix that completed before a mid-block
        trap. Returns ``(None, None)`` when there is nothing to fold
        (reference-wrapped sole blocks self-account)."""
        if spec_count == 0:
            return None, None
        total = 0
        merged: Dict[int, list] = {}
        for cyc, pairs in statics:
            total += cyc
            for counter, delta in pairs:
                key = id(counter)
                entry = merged.get(key)
                if entry is None:
                    merged[key] = [counter, delta]
                else:
                    entry[1] += delta
        merged_pairs = tuple((counter, delta)
                             for counter, delta in merged.values())
        if self._mode is not _TIMED:
            if not merged_pairs:
                return None, None

            def fold_plain():
                for counter, delta in merged_pairs:
                    counter.value += delta

            def unwind_plain(completed):
                for i in range(completed):
                    for counter, delta in statics[i][1]:
                        counter.value += delta

            return fold_plain, unwind_plain
        pl = self.timing
        bk_lu = pl._bk["load_use"]
        params = pl.params
        lu_stall = params.load_use_stall
        srf_stall = params.srf_load_use_stall
        a, b, srf_c = first_desc
        end_state = states[-1]

        def fold():
            extra = 0
            last = pl._last_load_rd
            if last > 0 and (a == last or b == last):
                extra = lu_stall
                bk_lu.value += lu_stall
            last = pl._last_srf_load_rd
            if last >= 0 and srf_c == last:
                extra += srf_stall
                bk_lu.value += srf_stall
            for counter, delta in merged_pairs:
                counter.value += delta
            pl.cycles += total + extra
            pl._last_load_rd, pl._last_srf_load_rd = end_state

        def unwind(completed):
            if not completed:
                return
            cyc = 0
            for i in range(completed):
                ci, pairs = statics[i]
                cyc += ci
                for counter, delta in pairs:
                    counter.value += delta
            last = pl._last_load_rd
            if last > 0 and (a == last or b == last):
                cyc += lu_stall
                bk_lu.value += lu_stall
            last = pl._last_srf_load_rd
            if last >= 0 and srf_c == last:
                cyc += srf_stall
                bk_lu.value += srf_stall
            pl.cycles += cyc
            pl._last_load_rd, pl._last_srf_load_rd = states[completed]

        return fold, unwind

    # ------------------------------------------------------------------
    # Closure emitters — straight-line ops
    # ------------------------------------------------------------------

    def _emit_straightline(self, ins: Instr, pc: int):
        """Closure for one non-control-flow instruction (or None when
        the instruction is architecturally dead, e.g. a plain-mode
        nop: it still counts in instret via the block's bulk add)."""
        op = ins.op
        if op in _ALU_R_OPS:
            return self._emit_alu_r(ins, pc)
        if op in _ALU_I_OPS:
            return self._emit_alu_i(ins, pc)
        spec = SPEC_TABLE[op]
        if spec.is_load and spec.opcode == 0x03:
            return self._emit_load(ins, pc, spec, checked=False)
        if spec.is_store and spec.opcode == 0x23:
            return self._emit_store(ins, pc, spec, checked=False)
        if spec.checked and spec.is_load:
            return self._emit_load(ins, pc, spec, checked=True)
        if spec.checked and spec.is_store:
            return self._emit_store(ins, pc, spec, checked=True)
        if op == "tchk":
            return self._emit_tchk(ins, pc)
        if op in ("lui", "auipc"):
            return self._emit_const_write(ins, pc)
        if op in ("bndrs", "bndrt"):
            return self._emit_bind(ins, pc, temporal=(op == "bndrt"))
        if op in ("sbdl", "sbdu"):
            return self._emit_sbd(ins, pc, upper=(op == "sbdu"))
        if op in ("lbdls", "lbdus"):
            return self._emit_lbds(ins, pc, upper=(op == "lbdus"))
        # CSR ops, decompressing metadata loads, MPX/AVX model ops,
        # fences: rare — reference handlers keep them exact.
        return self._emit_wrapped(ins, pc)

    def _emit_wrapped(self, ins: Instr, pc: int):
        """Reference handler pre-bound to its operands. Used for every
        op without a specialised emitter."""
        handler = self._dispatch[ins.op]
        m = self

        def run():
            m.pc = pc
            return handler(ins)

        return run

    def _spatial_consts(self):
        """Translate-time constants for an inlined decompress_spatial.

        The compressor object lives for the machine's lifetime and its
        field widths are fixed at construction, so the masks can be
        burned into closures. Returns ``(base_mask, base_width,
        range_mask)``; the inline expansion is exactly
        :meth:`MetadataCompressor.decompress_spatial`.
        """
        comp = self.compressor
        return comp._base_mask, comp._widths.base, comp._range_mask

    # -- timing fragments ----------------------------------------------

    def _interlock_ops(self):
        """Captured pipeline internals for partially evaluated timing.

        The emitted closures read/write the same ``_last_load_rd`` /
        ``_last_srf_load_rd`` attributes and breakdown counters the
        reference ``InOrderPipeline.retire`` uses, so specialised and
        reference-handled instructions interleave with exact interlock
        and cycle accounting.
        """
        pl = self.timing
        p = pl.params
        return (pl, pl.dcache.access, pl._bk, p.load_use_stall,
                p.srf_load_use_stall, p.dcache_miss_penalty)

    def _emit_alu_r(self, ins: Instr, pc: int):
        """Semantics-only in both modes: every cycle an ALU op costs
        (base, mul/div latency, the intra-block interlock) is static
        and lives in the block's timing fold."""
        regs, srf, srf_wide = self.regs, self.srf, self.srf_wide
        rd, rs1, rs2 = ins.rd, ins.rs1, ins.rs2
        if rd == 0:
            return None  # architectural nop (the fold still bills it)
        maker = _ALU_MAKERS.get(ins.op)
        if maker is not None:
            return maker(regs, srf, srf_wide, rd, rs1, rs2)
        fn = self._alu_fn(ins.op)

        def run():
            regs[rd] = fn(regs[rs1], regs[rs2])
            e1 = srf[rs1]
            w1 = srf_wide[rs1]
            if e1[2] or e1[3] or w1 is not None:
                srf[rd] = e1
                srf_wide[rd] = w1
            else:
                e2 = srf[rs2]
                w2 = srf_wide[rs2]
                if e2[2] or e2[3] or w2 is not None:
                    srf[rd] = e2
                    srf_wide[rd] = w2
                else:
                    srf[rd] = SRF_INVALID
                    srf_wide[rd] = None

        return run

    def _emit_alu_i(self, ins: Instr, pc: int):
        regs, srf, srf_wide = self.regs, self.srf, self.srf_wide
        rd, rs1 = ins.rd, ins.rs1
        imm_u = ins.imm & _M64
        if rd == 0:
            return None
        maker = _ALU_MAKERS.get(ins.op)
        if maker is not None:
            return maker(regs, srf, srf_wide, rd, rs1, imm_u)
        fn = self._alu_fn(ins.op)

        def run():
            regs[rd] = fn(regs[rs1], imm_u)
            srf[rd] = srf[rs1]
            srf_wide[rd] = srf_wide[rs1]

        return run

    def _emit_load(self, ins: Instr, pc: int, spec, checked: bool):
        m = self
        regs, srf, srf_wide = self.regs, self.srf, self.srf_wide
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        nbytes = spec.mem_bytes
        mem_load = self.memory.load_uint
        # Sign extension is the identity for 8-byte loads; for narrower
        # loads ``((v ^ sb) - sb) & M64`` is bits.sext unfolded (the
        # loaded value is already < 2**width).
        signed = spec.mem_signed and nbytes < 8
        sb = 1 << (8 * nbytes - 1)
        base_mask, base_w, range_mask = self._spatial_consts()
        # Only the D-cache outcome is dynamic: base cost, interlocks
        # and the sim counters are static per block (the timing fold).
        timed = self._mode is _TIMED
        if timed:
            pl, dc_access, _, _, _, miss = self._interlock_ops()
            bk_dmiss = pl._bk["dmiss"]

        def run():
            m.pc = pc
            addr = (regs[rs1] + imm) & _M64
            if checked:
                e = srf[rs1]
                if not e[2]:
                    m._spatial_fail(addr, 0, 0)
                lower = e[0]
                base = (lower & base_mask) << ALIGN_SHIFT
                bound = base + \
                    (((lower >> base_w) & range_mask) << ALIGN_SHIFT)
                if addr < base or addr + nbytes > bound:
                    m._spatial_fail(addr, base, bound)
            value = mem_load(addr, nbytes)
            if signed:
                value = ((value ^ sb) - sb) & _M64
            if rd:
                regs[rd] = value
                srf[rd] = SRF_INVALID
                srf_wide[rd] = None
            if timed and not dc_access(addr, False):
                pl.cycles += miss
                bk_dmiss.value += miss

        return run

    def _emit_store(self, ins: Instr, pc: int, spec, checked: bool):
        m = self
        regs, srf = self.regs, self.srf
        rs1, rs2, imm = ins.rs1, ins.rs2, ins.imm
        nbytes = spec.mem_bytes
        mem_store = self.memory.store_uint
        base_mask, base_w, range_mask = self._spatial_consts()
        snoop = nbytes == 8
        timed = self._mode is _TIMED
        if timed:
            pl, dc_access, _, _, _, miss = self._interlock_ops()
            bk_dmiss = pl._bk["dmiss"]

        def run():
            m.pc = pc
            addr = (regs[rs1] + imm) & _M64
            if checked:
                e = srf[rs1]
                if not e[2]:
                    m._spatial_fail(addr, 0, 0)
                lower = e[0]
                base = (lower & base_mask) << ALIGN_SHIFT
                bound = base + \
                    (((lower >> base_w) & range_mask) << ALIGN_SHIFT)
                if addr < base or addr + nbytes > bound:
                    m._spatial_fail(addr, base, bound)
            value = regs[rs2]
            mem_store(addr, nbytes, value)
            if snoop and m._lock_lo <= addr < m._lock_hi:
                m._snoop_lock_store(addr, value)
            if timed and not dc_access(addr, True):
                pl.cycles += miss
                bk_dmiss.value += miss

        return run

    def _temporal_consts(self):
        """Translate-time constants for an inlined ``_temporal_check``.

        Valid only on the fast block path, which never runs with a
        tracer attached (``_exec_loop`` falls back to the reference
        dispatch loop then), so the kb-trace emission in the reference
        helper is unreachable here by construction.
        """
        comp = self.compressor
        return (comp._lock_mask, comp._widths.lock, comp._key_mask,
                comp._config.lock_base, self.keybuffer.lookup,
                self.keybuffer.fill, self.memory.load_u64)

    def _emit_tchk(self, ins: Instr, pc: int):
        m = self
        srf = self.srf
        rs1 = ins.rs1
        ct_tchk = self._ct["tchk"]
        ct_hwst = self._ct["hwst_ops"]
        lock_mask, lock_w, key_mask, lock_base, kb_lookup, kb_fill, \
            mem_load_u64 = self._temporal_consts()
        # ct_tchk/ct_hwst stay inline (not folded): the reference
        # handler counts a tchk *before* a temporal trap can raise.
        # Base cost, occupancy and interlocks are static (the fold);
        # only the keybuffer-miss beat — the secondary key load through
        # the D-cache — is dynamic.
        timed = self._mode is _TIMED
        if timed:
            pl, dc_access, bk, _, _, miss = self._interlock_ops()
            bk_dmiss, bk_tchk_miss = bk["dmiss"], bk["tchk_miss"]
            kb_extra = pl.params.keybuffer_miss_extra

        def run():
            m.pc = pc
            ct_tchk.value += 1
            ct_hwst.value += 1
            e = srf[rs1]
            if not e[3]:
                m._temporal_fail(0, 0, 0)
            upper = e[1]
            lock_idx = upper & lock_mask
            key = (upper >> lock_w) & key_mask
            if lock_idx == 0:
                m._temporal_fail(key, 0, 0)
            lock = lock_base + ((lock_idx - 1) << 3)
            cached = kb_lookup(lock)
            if cached is not None:
                if cached != key:
                    m._temporal_fail(key, cached, lock)
            else:
                stored = mem_load_u64(lock)
                kb_fill(lock, stored)
                if stored != key:
                    m._temporal_fail(key, stored, lock)
                if timed:
                    extra = 1 + kb_extra
                    if not dc_access(lock, False):
                        extra += miss
                        bk_dmiss.value += miss
                    bk_tchk_miss.value += kb_extra + 1
                    pl.cycles += extra

        return run

    def _emit_bind(self, ins: Instr, pc: int, temporal: bool):
        """bndrs/bndrt: compress + SRF write (census side effects stay
        in the compressor's bound method). The SRF write is unguarded —
        the reference handlers write ``srf[0]`` too."""
        m = self
        regs, srf, srf_wide = self.regs, self.srf, self.srf_wide
        rd, rs1, rs2 = ins.rd, ins.rs1, ins.rs2
        compress = self.compressor.compress_temporal if temporal \
            else self.compressor.compress_spatial

        def run():
            m.pc = pc  # compress may raise MetadataRangeError
            packed = compress(regs[rs1], regs[rs2])
            e = srf[rd]
            if temporal:
                srf[rd] = (e[0], packed, e[2], True)
            else:
                srf[rd] = (packed, e[1], True, e[3])
                srf_wide[rd] = None

        return run

    def _emit_sbd(self, ins: Instr, pc: int, upper: bool):
        """sbdl/sbdu: SRF half -> shadow memory (Eq. 1 address). The
        SMAC budget guard is inlined; like the reference handler, the
        shadow store does not snoop the lock window."""
        m = self
        regs, srf = self.regs, self.srf
        rs1, rs2, imm = ins.rs1, ins.rs2, ins.imm
        off = 8 if upper else 0
        csrs = self.csrs  # mutated in place by csrrw — read per access
        sm_key = csrdef.HWST_SM_OFFSET
        budget = self.config.shadow_budget
        memory = self.memory
        store_u64 = memory.store_u64
        timed = self._mode is _TIMED
        if timed:
            pl, dc_access, _, _, _, miss = self._interlock_ops()
            bk_dmiss = pl._bk["dmiss"]

        def run():
            m.pc = pc
            container = (regs[rs1] + imm) & _M64
            sa = (container << 2) + csrs[sm_key] + off
            if budget and memory.shadow_bytes_touched > budget:
                raise ShadowMemoryExhausted(
                    memory.shadow_bytes_touched, budget)
            e = srf[rs2]
            if upper:
                value = e[1] if e[3] else 0
            else:
                value = e[0] if e[2] else 0
            store_u64(sa, value)
            if timed and not dc_access(sa, True):
                pl.cycles += miss
                bk_dmiss.value += miss

        return run

    def _emit_lbds(self, ins: Instr, pc: int, upper: bool):
        """lbdls/lbdus: shadow memory -> SRF half (no decompression).
        Writes ``srf[rd]`` unguarded, exactly like the reference."""
        m = self
        regs, srf, srf_wide = self.regs, self.srf, self.srf_wide
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        off = 8 if upper else 0
        csrs = self.csrs
        sm_key = csrdef.HWST_SM_OFFSET
        budget = self.config.shadow_budget
        memory = self.memory
        load_u64 = memory.load_u64
        timed = self._mode is _TIMED
        if timed:
            pl, dc_access, _, _, _, miss = self._interlock_ops()
            bk_dmiss = pl._bk["dmiss"]

        def run():
            m.pc = pc
            container = (regs[rs1] + imm) & _M64
            sa = (container << 2) + csrs[sm_key] + off
            if budget and memory.shadow_bytes_touched > budget:
                raise ShadowMemoryExhausted(
                    memory.shadow_bytes_touched, budget)
            value = load_u64(sa)
            e = srf[rd]
            if upper:
                srf[rd] = (e[0], value, e[2], True)
            else:
                srf[rd] = (value, e[1], True, e[3])
            srf_wide[rd] = None
            if timed and not dc_access(sa, False):
                pl.cycles += miss
                bk_dmiss.value += miss

        return run

    def _emit_fused(self, tchk_ins: Instr, pc: int, acc: Instr, aspec):
        """One closure for a ``tchk`` + fused-check access pair.

        Retires as two instructions: ``self.pc`` steps from the tchk to
        the access before the spatial check, so a trap in either half
        reports its own pc and the block's position map credits the
        completed half (the fold's unwind then bills exactly the
        completed half's static costs — the access half's never stall,
        because the tchk clears both interlock producers). Only the
        tchk census counters and the two dynamic D-cache beats stay in
        the closure.
        """
        m = self
        regs, srf, srf_wide = self.regs, self.srf, self.srf_wide
        rs1_t = tchk_ins.rs1
        pc_acc = pc + 4
        rd, rs1, rs2, imm = acc.rd, acc.rs1, acc.rs2, acc.imm
        nbytes = aspec.mem_bytes
        is_load = aspec.is_load
        signed = aspec.mem_signed and nbytes < 8
        sb = 1 << (8 * nbytes - 1)
        mem_load = self.memory.load_uint
        mem_store = self.memory.store_uint
        base_mask, base_w, range_mask = self._spatial_consts()
        lock_mask, lock_w, key_mask, lock_base, kb_lookup, kb_fill, \
            mem_load_u64 = self._temporal_consts()
        snoop = (not is_load) and nbytes == 8
        ct_tchk = self._ct["tchk"]
        ct_hwst = self._ct["hwst_ops"]
        timed = self._mode is _TIMED
        if timed:
            pl, dc_access, bk, _, _, miss = self._interlock_ops()
            bk_dmiss, bk_tchk_miss = bk["dmiss"], bk["tchk_miss"]
            kb_extra = pl.params.keybuffer_miss_extra

        def run():
            m.pc = pc
            ct_tchk.value += 1
            ct_hwst.value += 1
            et = srf[rs1_t]
            if not et[3]:
                m._temporal_fail(0, 0, 0)
            upper = et[1]
            lock_idx = upper & lock_mask
            key = (upper >> lock_w) & key_mask
            if lock_idx == 0:
                m._temporal_fail(key, 0, 0)
            lock = lock_base + ((lock_idx - 1) << 3)
            cached = kb_lookup(lock)
            if cached is not None:
                if cached != key:
                    m._temporal_fail(key, cached, lock)
            else:
                stored = mem_load_u64(lock)
                kb_fill(lock, stored)
                if stored != key:
                    m._temporal_fail(key, stored, lock)
                if timed:
                    extra = 1 + kb_extra
                    if not dc_access(lock, False):
                        extra += miss
                        bk_dmiss.value += miss
                    bk_tchk_miss.value += kb_extra + 1
                    pl.cycles += extra
            m.pc = pc_acc
            addr = (regs[rs1] + imm) & _M64
            e = srf[rs1]
            if not e[2]:
                m._spatial_fail(addr, 0, 0)
            lower = e[0]
            base = (lower & base_mask) << ALIGN_SHIFT
            bound = base + \
                (((lower >> base_w) & range_mask) << ALIGN_SHIFT)
            if addr < base or addr + nbytes > bound:
                m._spatial_fail(addr, base, bound)
            if is_load:
                value = mem_load(addr, nbytes)
                if signed:
                    value = ((value ^ sb) - sb) & _M64
                if rd:
                    regs[rd] = value
                    srf[rd] = SRF_INVALID
                    srf_wide[rd] = None
            else:
                value = regs[rs2]
                mem_store(addr, nbytes, value)
                if snoop and m._lock_lo <= addr < m._lock_hi:
                    m._snoop_lock_store(addr, value)
            if timed and not dc_access(addr, not is_load):
                pl.cycles += miss
                bk_dmiss.value += miss

        return run

    def _emit_const_write(self, ins: Instr, pc: int):
        """lui/auipc: the written value is a translate-time constant."""
        regs, srf, srf_wide = self.regs, self.srf, self.srf_wide
        rd = ins.rd
        if ins.op == "lui":
            value = bits.sext(ins.imm << 12, 32) & _M64
        else:
            value = (pc + bits.sext(ins.imm << 12, 32)) & _M64
        if rd == 0:
            return None

        def run():
            regs[rd] = value
            srf[rd] = SRF_INVALID
            srf_wide[rd] = None

        return run

    # ------------------------------------------------------------------
    # Closure emitters — control flow
    # ------------------------------------------------------------------

    def _emit_branch(self, ins: Instr, pc: int):
        regs = self.regs
        rs1, rs2 = ins.rs1, ins.rs2
        op = ins.op
        taken_pc = (pc + ins.imm) & _M64
        S = bits.to_s64
        compare = {
            "beq": lambda a, b: a == b,
            "bne": lambda a, b: a != b,
            "blt": lambda a, b: S(a) < S(b),
            "bge": lambda a, b: S(a) >= S(b),
            "bltu": lambda a, b: a < b,
            "bgeu": lambda a, b: a >= b,
        }[op]
        # ct_branches, the base cost and the interlock are static (the
        # fold); only the taken-path redirect penalty is dynamic.
        ct_taken = self._ct["taken"]
        if self._mode is _PLAIN:
            def run():
                if compare(regs[rs1], regs[rs2]):
                    ct_taken.value += 1
                    return taken_pc
                return None

            return run
        pl, _, bk, _, _, _ = self._interlock_ops()
        bk_redirect = bk["redirect"]
        penalty = pl.params.branch_penalty

        def run_timed():
            if compare(regs[rs1], regs[rs2]):
                ct_taken.value += 1
                pl.cycles += penalty
                bk_redirect.value += penalty
                return taken_pc
            return None

        return run_timed

    def _emit_jal(self, ins: Instr, pc: int, target: int,
                  terminator: bool):
        regs, srf, srf_wide = self.regs, self.srf, self.srf_wide
        rd = ins.rd
        link = (pc + 4) & _M64
        # ct_calls and the full cost (a jal always redirects) are
        # static — a plain ``j`` inside a superblock costs nothing at
        # run time.
        if not terminator and rd == 0:
            return None

        def run():
            if rd:
                regs[rd] = link
                srf[rd] = SRF_INVALID
                srf_wide[rd] = None
            if terminator:
                return target
            return None

        return run

    def _emit_jalr(self, ins: Instr, pc: int):
        regs, srf, srf_wide = self.regs, self.srf, self.srf_wide
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        link = (pc + 4) & _M64

        def run():
            target = ((regs[rs1] + imm) & _M64) & ~1
            if rd:
                regs[rd] = link
                srf[rd] = SRF_INVALID
                srf_wide[rd] = None
            return target

        return run
