"""The keybuffer: a small TLB-like cache of lock_location -> key.

Section 3.5: the temporal check needs a memory load to fetch the key
stored at a pointer's lock_location. The keybuffer records the most
recently loaded keys so a ``tchk`` whose lock hits the buffer skips the
DCache access entirely. It is cleared whenever a pointer is freed (the
machine snoops stores into the lock-table window), guaranteeing the
buffer never serves a stale key.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class KeyBuffer:
    """Fully-associative buffer of ``lock -> key`` entries.

    ``policy`` selects the replacement strategy: "lru" (default, what a
    TLB-like structure would do) or "fifo" (cheaper hardware — an
    ablation knob for the Section 3.5 design point).
    """

    def __init__(self, entries: int = 8, policy: str = "lru"):
        if entries < 0:
            raise ValueError(f"entries must be non-negative: {entries}")
        if policy not in ("lru", "fifo"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self._entries = entries
        self._policy = policy
        self._data: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.clears = 0

    @property
    def capacity(self) -> int:
        return self._entries

    def __len__(self) -> int:
        return len(self._data)

    def lookup(self, lock: int) -> Optional[int]:
        """Return the cached key for ``lock`` or None on miss."""
        if self._entries == 0:
            self.misses += 1
            return None
        key = self._data.get(lock)
        if key is None:
            self.misses += 1
            return None
        if self._policy == "lru":
            self._data.move_to_end(lock)
        self.hits += 1
        return key

    def fill(self, lock: int, key: int):
        """Install a freshly loaded key, evicting the victim on overflow."""
        if self._entries == 0:
            return
        fresh = lock not in self._data
        self._data[lock] = key
        if fresh or self._policy == "lru":
            self._data.move_to_end(lock)
        while len(self._data) > self._entries:
            self._data.popitem(last=False)

    def invalidate(self, lock: int):
        """Drop a single entry (a new key was written to its lock)."""
        self._data.pop(lock, None)

    def clear(self):
        """Flush everything (a pointer was freed)."""
        if self._data:
            self._data.clear()
        self.clears += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self):
        self.hits = 0
        self.misses = 0
        self.clears = 0
