"""The keybuffer: a small TLB-like cache of lock_location -> key.

Section 3.5: the temporal check needs a memory load to fetch the key
stored at a pointer's lock_location. The keybuffer records the most
recently loaded keys so a ``tchk`` whose lock hits the buffer skips the
DCache access entirely. It is cleared whenever a pointer is freed (the
machine snoops stores into the lock-table window), guaranteeing the
buffer never serves a stale key.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.obs.stats import HitMissStats


class KeyBuffer(HitMissStats):
    """Fully-associative buffer of ``lock -> key`` entries.

    ``policy`` selects the replacement strategy: "lru" (default, what a
    TLB-like structure would do) or "fifo" (cheaper hardware — an
    ablation knob for the Section 3.5 design point).

    Hit/miss accounting comes from :class:`repro.obs.stats.HitMissStats`;
    pass ``metrics`` (a registry scope, e.g. ``sim.kb``) to surface the
    counters in metric snapshots.
    """

    def __init__(self, entries: int = 8, policy: str = "lru",
                 metrics=None):
        if entries < 0:
            raise ValueError(f"entries must be non-negative: {entries}")
        if policy not in ("lru", "fifo"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self._entries = entries
        self._policy = policy
        self._data: "OrderedDict[int, int]" = OrderedDict()
        self._init_hit_miss(metrics)
        self._clears = self._stat_counter("clears")
        self._evictions = self._stat_counter("evictions")

    @property
    def capacity(self) -> int:
        return self._entries

    @property
    def clears(self) -> int:
        return self._clears.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    def __len__(self) -> int:
        return len(self._data)

    def lookup(self, lock: int) -> Optional[int]:
        """Return the cached key for ``lock`` or None on miss."""
        if self._entries == 0:
            self._misses.value += 1
            return None
        key = self._data.get(lock)
        if key is None:
            self._misses.value += 1
            return None
        if self._policy == "lru":
            self._data.move_to_end(lock)
        self._hits.value += 1
        return key

    def fill(self, lock: int, key: int) -> Optional[int]:
        """Install a freshly loaded key, evicting the victim on overflow.

        Returns the evicted lock (None when nothing was evicted) so the
        machine can trace keybuffer evictions.
        """
        if self._entries == 0:
            return None
        fresh = lock not in self._data
        self._data[lock] = key
        if fresh or self._policy == "lru":
            self._data.move_to_end(lock)
        evicted = None
        while len(self._data) > self._entries:
            evicted, _ = self._data.popitem(last=False)
            self._evictions.value += 1
        return evicted

    def locks(self) -> list:
        """Resident lock addresses, in insertion/recency order
        (deterministic — used by seeded fault injectors)."""
        return list(self._data)

    def peek(self, lock: int) -> Optional[int]:
        """Cached key for ``lock`` without touching hit/miss accounting
        or the replacement order (inspection/fault-injection hook)."""
        return self._data.get(lock)

    def poison(self, lock: int, key: int):
        """Fault-injection hook: overwrite the cached key of ``lock``
        (or force-install a bogus entry) without touching the hit/miss
        accounting. Models a corrupted or stale translation."""
        if self._entries == 0:
            return
        self._data[lock] = key
        while len(self._data) > self._entries:
            self._data.popitem(last=False)

    def invalidate(self, lock: int):
        """Drop a single entry (a new key was written to its lock)."""
        self._data.pop(lock, None)

    def clear(self):
        """Flush everything (a pointer was freed)."""
        if self._data:
            self._data.clear()
        self._clears.value += 1
