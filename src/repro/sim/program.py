"""Linked program images for the simulator.

A :class:`Program` is what the codegen/linker produces: a flat list of
instructions placed at ``text_base``, initialised data segments, a symbol
table, and the memory layout it was linked against. The machine loads
segments into memory and starts at ``entry`` (the ``_start`` stub, which
calls ``main`` and issues the exit ecall).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.instructions import Instr
from repro.sim.memory import DEFAULT_LAYOUT, Memory, MemoryLayout


@dataclass
class Segment:
    """One initialised data region."""

    addr: int
    data: bytes
    name: str = "data"

    @property
    def end(self) -> int:
        return self.addr + len(self.data)


@dataclass
class Program:
    """A linked, loadable program."""

    instrs: List[Instr]
    entry: int
    text_base: int = DEFAULT_LAYOUT.text_base
    segments: List[Segment] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    layout: MemoryLayout = DEFAULT_LAYOUT
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def text_size(self) -> int:
        return 4 * len(self.instrs)

    @property
    def text_end(self) -> int:
        return self.text_base + self.text_size

    def pc_of(self, name: str) -> int:
        """Address of a function symbol."""
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"no symbol named {name!r}") from None

    def index_of(self, pc: int) -> int:
        """Instruction index of ``pc``, or -1 when outside text (the
        translator's fetch primitive — one definition of 'in text')."""
        index = (pc - self.text_base) >> 2
        if 0 <= index < len(self.instrs):
            return index
        return -1

    def instr_at(self, pc: int) -> Optional[Instr]:
        index = self.index_of(pc)
        return self.instrs[index] if index >= 0 else None

    def load_into(self, memory: Memory):
        """Map the layout and copy data segments into ``memory``."""
        memory.map_layout(self.layout)
        for segment in self.segments:
            memory.store_bytes(segment.addr, segment.data)

    def listing(self, start: int = 0, count: Optional[int] = None) -> str:
        """Assembly listing with addresses and symbol markers."""
        addr_to_sym = {}
        for name, addr in self.symbols.items():
            if self.text_base <= addr < self.text_end:
                addr_to_sym.setdefault(addr, []).append(name)
        lines = []
        end = len(self.instrs) if count is None else min(len(self.instrs),
                                                         start + count)
        for index in range(start, end):
            pc = self.text_base + 4 * index
            for name in addr_to_sym.get(pc, ()):
                lines.append(f"{name}:")
            lines.append(f"  {pc:#8x}: {self.instrs[index]}")
        return "\n".join(lines)
