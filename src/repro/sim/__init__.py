"""Functional simulation substrate: memory, ISS, keybuffer, programs.

* :mod:`repro.sim.memory` — paged byte-addressable memory with mapped
  regions (unmapped access faults, which is how null derefs surface on
  the unprotected baseline);
* :mod:`repro.sim.keybuffer` — the TLB-like lock->key buffer from
  Section 3.5;
* :mod:`repro.sim.program` — linked program images (text + data + symbols);
* :mod:`repro.sim.machine` — the instruction-set simulator executing the
  RV64 subset plus the HWST128/MPX/AVX extensions, in the role the
  augmented SPIKE plays in the paper.
"""

from repro.sim.memory import Memory, MemoryLayout
from repro.sim.keybuffer import KeyBuffer
from repro.sim.program import Program, Segment
from repro.sim.machine import Machine, RunResult

__all__ = [
    "Memory",
    "MemoryLayout",
    "KeyBuffer",
    "Program",
    "Segment",
    "Machine",
    "RunResult",
]
