"""Functional simulation substrate: memory, ISS, keybuffer, programs.

* :mod:`repro.sim.memory` — paged byte-addressable memory with mapped
  regions (unmapped access faults, which is how null derefs surface on
  the unprotected baseline);
* :mod:`repro.sim.keybuffer` — the TLB-like lock->key buffer from
  Section 3.5;
* :mod:`repro.sim.program` — linked program images (text + data + symbols);
* :mod:`repro.sim.machine` — the instruction-set simulator executing the
  RV64 subset plus the HWST128/MPX/AVX extensions, in the role the
  augmented SPIKE plays in the paper (the *reference engine*);
* :mod:`repro.sim.fastmachine` — the translation-cached superblock
  engine, architecturally identical to the reference but decoding each
  basic block once (``--engine fast``).
"""

from repro.sim.memory import Memory, MemoryLayout
from repro.sim.keybuffer import KeyBuffer
from repro.sim.program import Program, Segment
from repro.sim.machine import Machine, RunResult
from repro.sim.fastmachine import FastMachine

#: Engine registry: name -> Machine class. "ref" is the golden
#: fetch/decode/execute interpreter; "fast" the translation-cached one.
ENGINES = {
    "ref": Machine,
    "fast": FastMachine,
}
DEFAULT_ENGINE = "ref"


def make_machine(engine: str = DEFAULT_ENGINE, **kwargs) -> Machine:
    """Construct a simulator by engine name (``ref`` | ``fast``).

    Every keyword argument is forwarded to the engine's constructor —
    the two engines take identical arguments by design.
    """
    try:
        cls = ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; choose from "
            f"{', '.join(sorted(ENGINES))}") from None
    return cls(**kwargs)


__all__ = [
    "Memory",
    "MemoryLayout",
    "KeyBuffer",
    "Program",
    "Segment",
    "Machine",
    "FastMachine",
    "RunResult",
    "ENGINES",
    "DEFAULT_ENGINE",
    "make_machine",
]
