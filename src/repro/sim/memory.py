"""Byte-addressable paged memory with explicit mapped regions.

Pages are allocated lazily inside mapped regions, so the 4x-sized
linear-mapped shadow region costs nothing until metadata is written.
Accesses outside every mapped region raise :class:`MemoryFault` — the
simulated equivalent of a SIGSEGV, which is what an unprotected baseline
run produces on a null dereference.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import MemoryFault

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


@dataclass(frozen=True)
class MemoryLayout:
    """Address-space layout of the simulated machine.

    The lock table overlays the shadow of the .text window (the paper's
    embedded-workload optimisation), so user data segments start above
    ``lock_shadow_guard`` to keep their shadow clear of the lock table.
    """

    text_base: int = 0x0001_0000
    data_base: int = 0x0020_0000
    heap_base: int = 0x0040_0000
    heap_top: int = 0x00D0_0000
    stack_top: int = 0x00F0_0000     # grows down
    stack_size: int = 0x0010_0000
    user_top: int = 0x0100_0000
    shadow_offset: int = 0x1000_0000

    @property
    def stack_base(self) -> int:
        return self.stack_top - self.stack_size

    @property
    def shadow_top(self) -> int:
        return self.shadow_offset + (self.user_top << 2)


DEFAULT_LAYOUT = MemoryLayout()


class Memory:
    """Paged memory. All loads/stores are little-endian."""

    def __init__(self):
        self._pages: Dict[int, bytearray] = {}
        self._regions: List[Tuple[int, int, str]] = []  # (start, end, name)
        # Coalesced union of the mapped regions: adjacent/overlapping
        # regions merge into one span, so an access straddling a
        # text/data or data/heap boundary (every byte mapped) succeeds.
        self._spans: List[Tuple[int, int]] = []
        self.shadow_bytes_touched = 0
        self._shadow_range: Optional[Tuple[int, int]] = None
        # Fast path: the two most recently hit spans (a 2-entry MRU).
        # Instrumented runs alternate between a user segment and its
        # shadow — one hot span would thrash on every metadata access.
        self._hot = (1, 0)  # impossible range -> first access misses
        self._hot2 = (1, 0)
        # Optional store watch: (lo, hi, callback) — the fast engine
        # registers the text window here so stores into it invalidate
        # translated blocks. None keeps the store path at a single
        # attribute test.
        self._store_watch: Optional[Tuple[int, int, object]] = None

    def watch_stores(self, lo: int, hi: int, callback) -> None:
        """Invoke ``callback(addr, size)`` on every store overlapping
        ``[lo, hi)`` (one watch window; None callback clears it)."""
        self._store_watch = None if callback is None else (lo, hi, callback)

    # -- region management --------------------------------------------------

    def map_region(self, start: int, size: int, name: str = ""):
        """Declare ``[start, start+size)`` as accessible."""
        if size <= 0:
            raise ValueError(f"region size must be positive: {size}")
        self._regions.append((start, start + size, name))
        if name == "shadow":
            self._shadow_range = (start, start + size)
        self._coalesce_spans()

    def _coalesce_spans(self):
        spans: List[Tuple[int, int]] = []
        for start, end, _ in sorted(self._regions):
            if spans and start <= spans[-1][1]:
                if end > spans[-1][1]:
                    spans[-1] = (spans[-1][0], end)
            else:
                spans.append((start, end))
        self._spans = spans
        self._hot = (1, 0)
        self._hot2 = (1, 0)

    def map_layout(self, layout: MemoryLayout):
        """Map the standard user segments + shadow region of ``layout``."""
        self.map_region(layout.text_base,
                        layout.data_base - layout.text_base, "text")
        self.map_region(layout.data_base,
                        layout.heap_base - layout.data_base, "data")
        self.map_region(layout.heap_base,
                        layout.heap_top - layout.heap_base, "heap")
        self.map_region(layout.stack_base, layout.stack_size, "stack")
        self.map_region(layout.shadow_offset,
                        layout.shadow_top - layout.shadow_offset, "shadow")

    def region_of(self, addr: int) -> Optional[str]:
        """Name of the region containing ``addr`` (None when unmapped)."""
        for start, end, name in self._regions:
            if start <= addr < end:
                return name
        return None

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        """True when every byte of ``[addr, addr+size)`` is mapped
        (spans of adjacent regions count as one)."""
        for start, end in self._spans:
            if start <= addr and addr + size <= end:
                return True
        return False

    def _find_span(self, addr: int, size: int):
        """Both MRU spans missed: full lookup, promoting the hit."""
        for start, end in self._spans:
            if start <= addr and addr + size <= end:
                self._hot2 = self._hot
                self._hot = (start, end)
                return
        raise MemoryFault(addr, f"unmapped {size}-byte access")

    def _check(self, addr: int, size: int):
        hot = self._hot
        if addr < hot[0] or addr + size > hot[1]:
            hot2 = self._hot2
            if hot2[0] <= addr and addr + size <= hot2[1]:
                self._hot = hot2
                self._hot2 = hot
            else:
                self._find_span(addr, size)
        if self._shadow_range and \
                self._shadow_range[0] <= addr < self._shadow_range[1]:
            self.shadow_bytes_touched += size

    def _page(self, page_index: int) -> bytearray:
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_index] = page
        return page

    @property
    def pages_allocated(self) -> int:
        return len(self._pages)

    # -- scalar accessors ----------------------------------------------------

    def load_bytes(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        out = bytearray()
        remaining = size
        while remaining:
            page = self._page(addr >> PAGE_SHIFT)
            offset = addr & PAGE_MASK
            take = min(remaining, PAGE_SIZE - offset)
            out += page[offset:offset + take]
            addr += take
            remaining -= take
        return bytes(out)

    def store_bytes(self, addr: int, data: bytes):
        self._check(addr, len(data))
        watch = self._store_watch
        if watch is not None and addr < watch[1] and \
                addr + len(data) > watch[0]:
            watch[2](addr, len(data))
        pos = 0
        remaining = len(data)
        while remaining:
            page = self._page(addr >> PAGE_SHIFT)
            offset = addr & PAGE_MASK
            take = min(remaining, PAGE_SIZE - offset)
            page[offset:offset + take] = data[pos:pos + take]
            addr += take
            pos += take
            remaining -= take

    def load_uint(self, addr: int, size: int) -> int:
        """Unsigned little-endian load of ``size`` bytes.

        The scalar accessors are the ISS data path — :meth:`_check` and
        :meth:`_page` are inlined here (hot-span hit, resident page) so
        the common access is one call deep.
        """
        hot = self._hot
        if hot[0] > addr or addr + size > hot[1]:
            hot2 = self._hot2
            if hot2[0] <= addr and addr + size <= hot2[1]:
                self._hot = hot2
                self._hot2 = hot
            else:
                self._find_span(addr, size)
        shadow = self._shadow_range
        if shadow is not None and shadow[0] <= addr < shadow[1]:
            self.shadow_bytes_touched += size
        offset = addr & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            index = addr >> PAGE_SHIFT
            page = self._pages.get(index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[index] = page
            return int.from_bytes(page[offset:offset + size], "little")
        return int.from_bytes(self.load_bytes(addr, size), "little")

    def store_uint(self, addr: int, size: int, value: int):
        """Little-endian store of the low ``size`` bytes of ``value``."""
        hot = self._hot
        if hot[0] > addr or addr + size > hot[1]:
            hot2 = self._hot2
            if hot2[0] <= addr and addr + size <= hot2[1]:
                self._hot = hot2
                self._hot2 = hot
            else:
                self._find_span(addr, size)
        shadow = self._shadow_range
        if shadow is not None and shadow[0] <= addr < shadow[1]:
            self.shadow_bytes_touched += size
        value &= (1 << (8 * size)) - 1
        offset = addr & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            watch = self._store_watch
            if watch is not None and addr < watch[1] and \
                    addr + size > watch[0]:
                watch[2](addr, size)
            index = addr >> PAGE_SHIFT
            page = self._pages.get(index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[index] = page
            page[offset:offset + size] = value.to_bytes(size, "little")
        else:
            self.store_bytes(addr, value.to_bytes(size, "little"))

    def load_u64(self, addr: int) -> int:
        return self.load_uint(addr, 8)

    def store_u64(self, addr: int, value: int):
        self.store_uint(addr, 8, value)

    def load_u32(self, addr: int) -> int:
        return self.load_uint(addr, 4)

    def store_u32(self, addr: int, value: int):
        self.store_uint(addr, 4, value)

    def load_u8(self, addr: int) -> int:
        return self.load_uint(addr, 1)

    def store_u8(self, addr: int, value: int):
        self.store_uint(addr, 1, value)

    # -- inspection (fault injection / differential oracle) ------------------

    def hash_range(self, start: int, end: int) -> str:
        """Content digest of ``[start, end)``, unallocated bytes = 0.

        Pages that were never touched and pages holding only zeros hash
        identically (both contribute nothing), so the digest depends
        only on the observable memory contents — the differential
        oracle compares final heap images with it.
        """
        hasher = hashlib.sha256()
        first = start >> PAGE_SHIFT
        last = (end - 1) >> PAGE_SHIFT
        for index in sorted(self._pages):
            if index < first or index > last:
                continue
            page_base = index << PAGE_SHIFT
            lo = max(start, page_base)
            hi = min(end, page_base + PAGE_SIZE)
            chunk = self._pages[index][lo - page_base:hi - page_base]
            if chunk.count(0) == len(chunk):
                continue
            hasher.update(lo.to_bytes(8, "little"))
            hasher.update(chunk)
        return hasher.hexdigest()

    def nonzero_u64_addrs(self, start: int, end: int,
                          limit: int = 65536) -> List[int]:
        """Addresses of nonzero 8-byte-aligned words in ``[start, end)``.

        Deterministic (sorted) — fault injectors pick a corruption
        target from this list with a seeded index. Only allocated pages
        are scanned; at most ``limit`` addresses are returned.
        """
        out: List[int] = []
        first = start >> PAGE_SHIFT
        last = (end - 1) >> PAGE_SHIFT
        for index in sorted(self._pages):
            if index < first or index > last:
                continue
            page = self._pages[index]
            if page.count(0) == PAGE_SIZE:
                continue
            page_base = index << PAGE_SHIFT
            lo = max(start, page_base)
            hi = min(end, page_base + PAGE_SIZE)
            for addr in range((lo + 7) & ~7, hi - 7, 8):
                offset = addr - page_base
                if page[offset:offset + 8].count(0) != 8:
                    out.append(addr)
                    if len(out) >= limit:
                        return out
        return out

    #: Marker appended when ``load_cstring(allow_truncated=True)`` hits
    #: its limit before a NUL, so diagnostics never look complete when
    #: they are not.
    TRUNCATION_MARKER = b"...[truncated]"

    def load_cstring(self, addr: int, limit: int = 4096,
                     allow_truncated: bool = False) -> bytes:
        """Read a NUL-terminated byte string (diagnostics/syscalls).

        When no NUL appears within ``limit`` bytes the string is not
        actually terminated: by default that raises
        :class:`MemoryFault` instead of silently returning a prefix;
        with ``allow_truncated`` the prefix comes back with
        :data:`TRUNCATION_MARKER` appended.
        """
        out = bytearray()
        for i in range(limit):
            byte = self.load_u8(addr + i)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        if allow_truncated:
            return bytes(out) + self.TRUNCATION_MARKER
        raise MemoryFault(
            addr, f"unterminated C string: no NUL within {limit} bytes")
