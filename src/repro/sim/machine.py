"""Instruction-set simulator for the RV64 subset + HWST128 extension.

Functionally this is the paper's SPIKE-augmented-with-HWST128: it executes
programs, maintains the shadow register file (SRF) with SHORE-style
in-pipeline metadata propagation, performs the fused spatial checks
(SCU), the keybuffer-assisted temporal check (TCU), and the shadow-memory
metadata moves through the SMAC address mapping. A timing model can be
attached to convert the retired instruction stream into cycle counts
(the FPGA role).

SRF propagation rules (Section 3.2 "in-pipeline propagation"):

* ALU register-register ops propagate the metadata of ``rs1`` when bound,
  else of ``rs2`` — pointer arithmetic keeps its object's metadata;
* ALU register-immediate ops propagate ``rs1``;
* everything else that writes ``rd`` (plain loads, ``lui``, ``jal[r]``,
  CSR reads, …) invalidates ``SRF[rd]``; metadata re-enters registers
  only through ``bndr[s/t]`` or the shadow loads ``lbd[l/u]s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable, Dict, List, Optional, Tuple

from repro import bits
from repro.core.compression import MetadataCompressor
from repro.core.config import HwstConfig
from repro.core.shadow import ShadowMap
from repro.errors import (
    EcallAbort,
    EcallExit,
    IllegalInstruction,
    MemoryFault,
    ShadowMemoryExhausted,
    SimLimitExceeded,
    SimTrap,
    SpatialViolation,
    TemporalViolation,
)
from repro.isa import csr as csrdef
from repro.isa.instructions import Instr, SPEC_TABLE
from repro.obs.host import observe_host
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.timing import BREAKDOWN_KEYS
from repro.sim.keybuffer import KeyBuffer
from repro.sim.memory import Memory
from repro.sim.program import Program

# Machine-level event counters, in registry order (``sim.<name>``).
# The legacy ``RunResult.stats`` keys are these same short names.
SIM_COUNTERS = ("loads", "stores", "branches", "taken",
                "hwst_ops", "shadow_ops", "tchk", "calls")

# SRF entry: (lower, upper, spatial_valid, temporal_valid)
SRF_INVALID: Tuple[int, int, bool, bool] = (0, 0, False, False)

# Syscall numbers (proxy-kernel flavoured).
SYS_WRITE = 64
SYS_EXIT = 93
SYS_ABORT = 1000
# Classified safety traps raised by software protection runtimes
# (SBCETS check failures, ASAN reports, canary smashes).
SYS_TRAP_SPATIAL = 1001
SYS_TRAP_TEMPORAL = 1002
SYS_TRAP_ASAN = 1003
SYS_TRAP_CANARY = 1004

STATUS_EXIT = "exit"
STATUS_SPATIAL = "spatial_violation"
STATUS_TEMPORAL = "temporal_violation"
STATUS_FAULT = "memory_fault"
STATUS_ABORT = "abort"
STATUS_LIMIT = "limit"
STATUS_ILLEGAL = "illegal_instruction"
STATUS_OOM = "shadow_oom"

# Uniform SimTrap -> RunResult.status mapping (looked up through the
# trap's MRO so subclasses inherit their parent's status). EcallExit is
# handled separately — a requested exit is not a trap.
STATUS_BY_TRAP = {
    SpatialViolation: STATUS_SPATIAL,
    TemporalViolation: STATUS_TEMPORAL,
    ShadowMemoryExhausted: STATUS_OOM,
    MemoryFault: STATUS_FAULT,
    EcallAbort: STATUS_ABORT,
    IllegalInstruction: STATUS_ILLEGAL,
    SimLimitExceeded: STATUS_LIMIT,
}


@dataclass
class RunResult:
    """Outcome of one simulated program execution."""

    status: str
    exit_code: int = 0
    detail: str = ""
    instret: int = 0
    cycles: int = 0
    output: bytes = b""
    stats: Dict[str, int] = dc_field(default_factory=dict)
    # Flat metric snapshot (``sim.*`` + ``pipeline.*``) of the run; the
    # legacy ``stats`` dict is a view of the same counters.
    metrics: Dict[str, object] = dc_field(default_factory=dict)
    # Trap classification, populated uniformly for *every* SimTrap
    # subclass: the class name and the faulting pc (the trap's own
    # ``pc`` attribute when it carries one, else the machine pc at the
    # moment the trap fired). Empty/None on a clean exit.
    trap_class: str = ""
    trap_pc: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_EXIT and self.exit_code == 0

    @property
    def detected_violation(self) -> bool:
        """True when a memory-safety check fired (spatial or temporal)."""
        return self.status in (STATUS_SPATIAL, STATUS_TEMPORAL)

    def output_text(self) -> str:
        return self.output.decode("utf-8", errors="replace")


class Machine:
    """Functional RV64 + HWST128 simulator."""

    def __init__(self, config: Optional[HwstConfig] = None, timing=None,
                 trace_depth: int = 0,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None, profiler=None):
        self.config = config or HwstConfig()
        self.timing = timing
        # Optional ring buffer of the last N retired (pc, Instr) pairs
        # for post-mortem debugging (see trace_text()).
        self.trace_depth = trace_depth
        self._trace: List[Tuple[int, Instr]] = []
        # Telemetry (repro.obs). Machine counters live under ``sim.*``;
        # handlers capture the Counter objects at dispatch-build time so
        # the hot loop pays one attribute store per event. ``tracer``
        # and ``profiler`` stay None by default — the null-sink fast
        # path is a single ``is not None`` test per retire.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._sim = self.metrics.scope("sim")
        self._ct = {name: self._sim.counter(name) for name in SIM_COUNTERS}
        self.tracer = tracer
        self._tracer_retire = tracer if (
            tracer is not None and tracer.wants("retire")) else None
        self._tracer_kb = tracer if (
            tracer is not None and tracer.wants("kb")) else None
        self._tracer_shadow = tracer if (
            tracer is not None and tracer.wants("shadow")) else None
        self.profiler = profiler
        self.memory = Memory()
        self.keybuffer = KeyBuffer(self.config.keybuffer_entries,
                                   self.config.keybuffer_policy,
                                   metrics=self._sim.scope("kb"))
        self.compressor = MetadataCompressor(self.config)
        self.shadow = ShadowMap.from_config(self.config)
        self.regs: List[int] = [0] * 32
        self.srf: List[Tuple[int, int, bool, bool]] = [SRF_INVALID] * 32
        self.srf_wide: List[Optional[Tuple[int, int, int, int]]] = [None] * 32
        self.pc = 0
        self.csrs: Dict[int, int] = {}
        self.instret = 0
        self.output = bytearray()
        self.program: Optional[Program] = None
        # Fault-injection hook (repro.faultinject): when set, called as
        # ``hook(self)`` once per instruction, before dispatch. The
        # normal path pays one ``is not None`` test per retire.
        self.fault_hook: Optional[Callable[["Machine"], None]] = None
        self._lock_lo = self.config.lock_base
        self._lock_hi = self.config.lock_limit
        self._dispatch: Dict[str, Callable[[Instr], Optional[int]]] = \
            self._build_dispatch()

    @property
    def stats(self) -> Dict[str, int]:
        """Back-compat view of the ``sim.*`` event counters."""
        return {name: counter.value for name, counter in self._ct.items()}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def reset(self):
        self.memory = Memory()
        # Zero every ``sim.*`` metric in place (handlers hold direct
        # references to the Counter objects), then re-attach the
        # keybuffer to the same scope.
        self.metrics.reset(prefix="sim")
        self.keybuffer = KeyBuffer(self.config.keybuffer_entries,
                                   self.config.keybuffer_policy,
                                   metrics=self._sim.scope("kb"))
        # NB: handlers close over self.regs — mutate it in place.
        self.regs[:] = [0] * 32
        self.srf[:] = [SRF_INVALID] * 32
        self.srf_wide[:] = [None] * 32
        self.pc = 0
        self.instret = 0
        self.output = bytearray()
        self.csrs = {
            csrdef.HWST_SM_OFFSET: self.config.shadow_offset,
            csrdef.HWST_META_WIDTHS: csrdef.pack_meta_widths(
                self.config.widths.base, self.config.widths.range,
                self.config.widths.lock, self.config.widths.key),
            csrdef.HWST_LOCK_BASE: self.config.lock_base,
            csrdef.HWST_LOCK_LIMIT: self.config.lock_limit,
            csrdef.HWST_STATUS: 0x3,
        }
        if self.timing is not None:
            self.timing.reset()
        if self.profiler is not None:
            self.profiler.reset()

    def load(self, program: Program):
        """Reset and load ``program`` (segments + registers + pc)."""
        self.reset()
        self.program = program
        program.load_into(self.memory)
        # sp: leave headroom below stack_top so wild stack writes above
        # the frame stay in mapped memory (silent corruption, like a
        # real process), rather than faulting artificially.
        self.regs[2] = program.layout.stack_top - 4096
        self.pc = program.entry

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, program: Program,
            max_instructions: int = 200_000_000) -> RunResult:
        """Execute ``program`` to completion and summarise the outcome."""
        self.load(program)
        status, code, detail = STATUS_EXIT, 0, ""
        trap_class: str = ""
        trap_pc: Optional[int] = None
        try:
            self._exec_loop(max_instructions)
        except EcallExit as trap:
            code = trap.code
        except SimTrap as trap:
            for cls in type(trap).__mro__:
                mapped = STATUS_BY_TRAP.get(cls)
                if mapped is not None:
                    status = mapped
                    break
            else:
                raise  # unknown SimTrap subclass: not a machine outcome
            detail = str(trap)
            trap_class = type(trap).__name__
            pc = getattr(trap, "pc", None)
            trap_pc = pc if pc is not None else self.pc
        stats = self.stats
        stats["kb_hits"] = self.keybuffer.hits
        stats["kb_misses"] = self.keybuffer.misses
        stats["shadow_bytes"] = self.memory.shadow_bytes_touched
        # Eq. 3-6 census (Fig. 2): largest object range and highest
        # lock_location index the compressor packed on this run.
        stats["comp_max_range"] = self.compressor.max_range_seen
        stats["comp_max_lock_index"] = self.compressor.max_lock_index_seen
        cycles = self.timing.cycles if self.timing is not None else self.instret
        # Timing-model keys are always present (zeroed without a timing
        # model) so consumers never need key-existence checks.
        stats["dcache_hits"] = 0
        stats["dcache_misses"] = 0
        for key in BREAKDOWN_KEYS:
            stats[f"cyc_{key}"] = 0
        if self.timing is not None:
            stats.update(self.timing.stats())
        tracer = self.tracer
        if tracer is not None:
            if status != STATUS_EXIT and tracer.wants("trap"):
                tracer.emit("trap", status, ts=cycles,
                            args={"pc": self.pc, "detail": detail})
            if tracer.wants("sim"):
                tracer.emit("sim", "run", ts=0, dur=cycles,
                            args={"status": status,
                                  "instret": self.instret})
            # Surface ring-buffer overflow: a truncated trace silently
            # lies about the run, so the loss count rides in the metric
            # snapshot (and `repro run --trace-out` warns on it).
            self.metrics.counter("obs.trace.dropped").value = \
                tracer.dropped
        sim = self._sim
        sim.gauge("instret").set(self.instret)
        sim.gauge("cycles").set(cycles)
        sim.scope("shadow").gauge("bytes_touched").set(
            self.memory.shadow_bytes_touched)
        sim.scope("mem").gauge("pages_allocated").set(
            self.memory.pages_allocated)
        # Host-side gauges (bench envelopes and campaign heartbeats
        # read the same helpers — one source of truth).
        observe_host(self.metrics.scope("host"))
        return RunResult(
            status=status, exit_code=code, detail=detail,
            instret=self.instret, cycles=cycles,
            output=bytes(self.output), stats=stats,
            metrics=self.metrics_snapshot(),
            trap_class=trap_class, trap_pc=trap_pc,
        )

    def _exec_loop(self, max_instructions: int) -> None:
        """Engine hook: execute the loaded program until a
        :class:`SimTrap` ends the run (``run()``'s epilogue catches it).
        Subclasses (the fast engine) override this — everything outside
        it (load, trap classification, stats, result assembly) is
        engine-independent by construction."""
        self._dispatch_loop(max_instructions, max_instructions)

    def _dispatch_loop(self, budget: int, limit: Optional[int]) -> None:
        """The classic fetch/decode/execute loop — the *reference
        engine*, and the one single-instruction path in the machine.

        Executes at most ``budget`` instructions. On budget exhaustion
        raises :class:`SimLimitExceeded` carrying ``limit`` (the
        run-level budget, so a partial-budget call from the fast
        engine's tail reports the same limit the reference run would),
        or returns when ``limit`` is None (``step()``'s contract).
        """
        program = self.program
        instrs = program.instrs
        text_base = program.text_base
        dispatch = self._dispatch
        fault_hook = self.fault_hook
        trace_depth = self.trace_depth
        remaining = budget
        while True:
            if remaining <= 0:
                if limit is None:
                    return
                raise SimLimitExceeded(limit)
            index = (self.pc - text_base) >> 2
            if index < 0 or index >= len(instrs):
                raise MemoryFault(self.pc, "pc outside text")
            ins = instrs[index]
            handler = dispatch.get(ins.op)
            if handler is None:
                raise IllegalInstruction(self.pc, ins.op)
            if trace_depth:
                self._trace.append((self.pc, ins))
                if len(self._trace) > trace_depth:
                    del self._trace[0]
            if fault_hook is not None:
                fault_hook(self)
            next_pc = handler(ins)
            self.pc = self.pc + 4 if next_pc is None else next_pc
            self.instret += 1
            remaining -= 1

    def metrics_snapshot(self) -> Dict[str, object]:
        """Combined flat snapshot of the machine's registry plus the
        timing model's (when the pipeline keeps its own registry)."""
        snap = self.metrics.snapshot()
        timing = self.timing
        if timing is not None:
            treg = getattr(timing, "metrics", None)
            if treg is not None and treg is not self.metrics:
                snap.update(treg.snapshot())
        return snap

    def trace_text(self) -> str:
        """Render the retired-instruction ring buffer (needs a Machine
        constructed with ``trace_depth > 0``)."""
        lines = []
        symbols = {}
        if self.program is not None:
            symbols = {addr: name for name, addr
                       in self.program.symbols.items()
                       if self.program.instr_at(addr) is not None}
        for pc, ins in self._trace:
            label = symbols.get(pc)
            if label:
                lines.append(f"{label}:")
            lines.append(f"  {pc:#8x}: {ins}")
        return "\n".join(lines)

    def step(self):
        """Execute a single instruction (testing hook).

        Routes through the same :meth:`_dispatch_loop` ``run()`` uses,
        so stepping and running cannot drift apart semantically — the
        lockstep oracle relies on there being exactly one
        single-instruction path.
        """
        assert self.program is not None, "load a program first"
        self._dispatch_loop(1, None)

    # ------------------------------------------------------------------
    # Timing hook
    # ------------------------------------------------------------------

    def _now(self) -> int:
        """Current simulated timestamp (cycles, or instret untimed)."""
        return self.timing.cycles if self.timing is not None \
            else self.instret

    def _retire(self, ins: Instr, mem_addr: Optional[int] = None,
                is_store: bool = False, taken: bool = False,
                kb_hit: Optional[bool] = None,
                mem2: Optional[int] = None):
        timing = self.timing
        if timing is not None:
            cost = timing.retire(ins, mem_addr, is_store, taken, kb_hit,
                                 mem2)
        else:
            cost = 1
        profiler = self.profiler
        if profiler is not None:
            profiler.record(self.pc, cost)
        tracer = self._tracer_retire
        if tracer is not None:
            end = timing.cycles if timing is not None else self.instret
            tracer.emit("retire", ins.op, ts=end - cost, dur=cost,
                        args={"pc": self.pc})

    # ------------------------------------------------------------------
    # SRF helpers
    # ------------------------------------------------------------------

    def _srf_propagate_r(self, rd: int, rs1: int, rs2: int):
        if rd == 0:
            return
        entry = self.srf[rs1]
        if entry[2] or entry[3] or self.srf_wide[rs1] is not None:
            self.srf[rd] = entry
            self.srf_wide[rd] = self.srf_wide[rs1]
            return
        entry = self.srf[rs2]
        if entry[2] or entry[3] or self.srf_wide[rs2] is not None:
            self.srf[rd] = entry
            self.srf_wide[rd] = self.srf_wide[rs2]
            return
        self.srf[rd] = SRF_INVALID
        self.srf_wide[rd] = None

    def _srf_propagate_i(self, rd: int, rs1: int):
        if rd == 0:
            return
        self.srf[rd] = self.srf[rs1]
        self.srf_wide[rd] = self.srf_wide[rs1]

    def _srf_invalidate(self, rd: int):
        if rd == 0:
            return
        self.srf[rd] = SRF_INVALID
        self.srf_wide[rd] = None

    def srf_metadata(self, reg: int):
        """Decompressed metadata bound to ``reg`` (testing/debug hook)."""
        lower, upper, lvalid, uvalid = self.srf[reg]
        base, bound = (self.compressor.decompress_spatial(lower)
                       if lvalid else (0, 0))
        key, lock = (self.compressor.decompress_temporal(upper)
                     if uvalid else (0, 0))
        return base, bound, key, lock

    # ------------------------------------------------------------------
    # Check units
    # ------------------------------------------------------------------

    def _spatial_fail(self, addr: int, base: int, bound: int):
        """The one place a spatial check reports: every checker raises
        through here so the ``(addr, base, bound)`` fields of
        :class:`SpatialViolation` are populated consistently."""
        raise SpatialViolation(self.pc, addr, base, bound)

    def _temporal_fail(self, key: int, stored: int, lock: int):
        """Single raise site for temporal violations (see
        :meth:`_spatial_fail`)."""
        raise TemporalViolation(self.pc, key, stored, lock)

    def _spatial_bounds(self, reg: int, addr: int) -> Tuple[int, int]:
        """Decompressed ``(base, bound)`` window of ``SRF[reg]``; an
        unbound pointer reports a zero-window violation at ``addr``."""
        lower, _, lvalid, _ = self.srf[reg]
        if not lvalid:
            self._spatial_fail(addr, 0, 0)
        return self.compressor.decompress_spatial(lower)

    def _spatial_check(self, reg: int, addr: int, nbytes: int):
        """SCU: fused bounds check of ``addr`` against SRF[reg]."""
        base, bound = self._spatial_bounds(reg, addr)
        if addr < base or addr + nbytes > bound:
            self._spatial_fail(addr, base, bound)

    def _temporal_check(self, reg: int):
        """TCU: keybuffer-assisted key/lock compare. Returns (kb_hit, mem2)."""
        _, upper, _, uvalid = self.srf[reg]
        if not uvalid:
            self._temporal_fail(0, 0, 0)
        key, lock = self.compressor.decompress_temporal(upper)
        if lock == 0:
            self._temporal_fail(key, 0, 0)
        cached = self.keybuffer.lookup(lock)
        if cached is not None:
            if cached != key:
                self._temporal_fail(key, cached, lock)
            return True, None
        stored = self.memory.load_u64(lock)
        evicted = self.keybuffer.fill(lock, stored)
        tracer = self._tracer_kb
        if tracer is not None:
            now = self._now()
            tracer.emit("kb", "fill", ts=now, args={"lock": lock})
            if evicted is not None:
                tracer.emit("kb", "evict", ts=now,
                            args={"lock": evicted})
        if stored != key:
            self._temporal_fail(key, stored, lock)
        return False, lock

    # ------------------------------------------------------------------
    # Shadow memory plumbing
    # ------------------------------------------------------------------

    def _smac(self, container: int) -> int:
        """Shadow-memory address calculation (Eq. 1) + budget guard."""
        addr = (container << 2) + self.csrs[csrdef.HWST_SM_OFFSET]
        budget = self.config.shadow_budget
        if budget and self.memory.shadow_bytes_touched > budget:
            raise ShadowMemoryExhausted(
                self.memory.shadow_bytes_touched, budget)
        return addr

    def _snoop_lock_store(self, addr: int, value: int):
        """Keep the keybuffer coherent with writes to the lock table."""
        if self._lock_lo <= addr < self._lock_hi:
            if value == 0:
                self.keybuffer.clear()      # a pointer was freed
            else:
                self.keybuffer.invalidate(addr)
            tracer = self._tracer_kb
            if tracer is not None:
                tracer.emit("kb", "clear" if value == 0 else "invalidate",
                            ts=self._now(), args={"lock": addr})

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _build_dispatch(self) -> Dict[str, Callable[[Instr], Optional[int]]]:
        d: Dict[str, Callable[[Instr], Optional[int]]] = {}

        for op in ("add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra",
                   "or", "and", "addw", "subw", "sllw", "srlw", "sraw",
                   "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem",
                   "remu", "mulw", "divw", "divuw", "remw", "remuw"):
            d[op] = self._make_alu_r(op)
        for op in ("addi", "slti", "sltiu", "xori", "ori", "andi",
                   "slli", "srli", "srai", "addiw", "slliw", "srliw",
                   "sraiw"):
            d[op] = self._make_alu_i(op)
        for op, spec in SPEC_TABLE.items():
            if spec.is_load and spec.opcode == 0x03:
                d[op] = self._make_load(op, spec.mem_bytes, spec.mem_signed)
            elif spec.is_store and spec.opcode == 0x23:
                d[op] = self._make_store(op, spec.mem_bytes)
            elif spec.checked and spec.is_load:
                d[op] = self._make_checked_load(op, spec.mem_bytes,
                                                spec.mem_signed)
            elif spec.checked and spec.is_store:
                d[op] = self._make_checked_store(op, spec.mem_bytes)
        for op in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            d[op] = self._make_branch(op)
        d["jal"] = self._op_jal
        d["jalr"] = self._op_jalr
        d["lui"] = self._op_lui
        d["auipc"] = self._op_auipc
        d["ecall"] = self._op_ecall
        d["ebreak"] = self._op_ebreak
        d["fence"] = self._op_fence
        d["csrrw"] = self._make_csr("w")
        d["csrrs"] = self._make_csr("s")
        d["csrrc"] = self._make_csr("c")
        # HWST128 extension.
        d["bndrs"] = self._op_bndrs
        d["bndrt"] = self._op_bndrt
        d["tchk"] = self._op_tchk
        d["sbdl"] = self._make_sbd(upper=False)
        d["sbdu"] = self._make_sbd(upper=True)
        d["lbdls"] = self._make_lbds(upper=False)
        d["lbdus"] = self._make_lbds(upper=True)
        d["lbas"] = self._make_meta_gpr_load("base")
        d["lbnd"] = self._make_meta_gpr_load("bound")
        d["lkey"] = self._make_meta_gpr_load("key")
        d["lloc"] = self._make_meta_gpr_load("lock")
        # MPX comparator model.
        d["bndcl"] = self._op_bndcl
        d["bndcu"] = self._op_bndcu
        d["bndldx"] = self._op_bndldx
        d["bndstx"] = self._op_bndstx
        # AVX comparator model.
        d["vld256"] = self._op_vld256
        d["vst256"] = self._op_vst256
        d["vchk"] = self._op_vchk
        return d

    # -- ALU -----------------------------------------------------------

    #: Memoized mnemonic -> binary-function table (built on first use;
    #: dispatch/translation factories look ops up per instruction, and
    #: rebuilding the 50-lambda table each time dominated translation).
    _ALU_TABLE: Optional[Dict[str, Callable[[int, int], int]]] = None

    @classmethod
    def _alu_fn(cls, op: str):
        table = cls._ALU_TABLE
        if table is None:
            table = Machine._ALU_TABLE = cls._build_alu_table()
        return table[op]

    @staticmethod
    def _build_alu_table() -> Dict[str, Callable[[int, int], int]]:
        U, S = bits.to_u64, bits.to_s64

        def div64(a, b):
            # RISC-V DIV truncates toward zero; Python // floors, and
            # float division loses precision past 2**53, so negate into
            # the positive quadrant for exact truncating division.
            a, b = S(a), S(b)
            if b == 0:
                return bits.MASK64
            if a == -(1 << 63) and b == -1:
                return U(a)
            q = abs(a) // abs(b)
            return U(-q if (a < 0) != (b < 0) else q)

        def rem64(a, b):
            a, b = S(a), S(b)
            if b == 0:
                return U(a)
            if a == -(1 << 63) and b == -1:
                return 0
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            return U(a - q * b)

        table = {
            "add": lambda a, b: U(a + b),
            "sub": lambda a, b: U(a - b),
            "sll": lambda a, b: U(a << (b & 63)),
            "slt": lambda a, b: int(S(a) < S(b)),
            "sltu": lambda a, b: int(a < b),
            "xor": lambda a, b: a ^ b,
            "srl": lambda a, b: a >> (b & 63),
            "sra": lambda a, b: U(S(a) >> (b & 63)),
            "or": lambda a, b: a | b,
            "and": lambda a, b: a & b,
            "addw": lambda a, b: U(bits.sext(a + b, 32)),
            "subw": lambda a, b: U(bits.sext(a - b, 32)),
            "sllw": lambda a, b: U(bits.sext(a << (b & 31), 32)),
            "srlw": lambda a, b: U(bits.sext((a & bits.MASK32) >> (b & 31), 32)),
            "sraw": lambda a, b: U(bits.to_s32(a) >> (b & 31)),
            "mul": lambda a, b: U(a * b),
            "mulh": lambda a, b: U((S(a) * S(b)) >> 64),
            "mulhu": lambda a, b: (a * b) >> 64,
            "mulhsu": lambda a, b: U((S(a) * b) >> 64),
            "div": div64,
            "divu": lambda a, b: bits.MASK64 if b == 0 else a // b,
            "rem": rem64,
            "remu": lambda a, b: a if b == 0 else a % b,
            "mulw": lambda a, b: U(bits.sext(a * b, 32)),
            "divw": lambda a, b: U(bits.sext(
                div64(U(bits.to_s32(a)), U(bits.to_s32(b))), 32)),
            "divuw": lambda a, b: bits.MASK64 if (b & bits.MASK32) == 0
            else U(bits.sext((a & bits.MASK32) // (b & bits.MASK32), 32)),
            "remw": lambda a, b: U(bits.sext(
                rem64(U(bits.to_s32(a)), U(bits.to_s32(b))), 32)),
            "remuw": lambda a, b: U(bits.sext(a & bits.MASK32, 32))
            if (b & bits.MASK32) == 0
            else U(bits.sext((a & bits.MASK32) % (b & bits.MASK32), 32)),
            # immediate variants share the binary function:
            "addi": lambda a, b: U(a + b),
            "slti": lambda a, b: int(S(a) < S(b)),
            "sltiu": lambda a, b: int(a < b),
            "xori": lambda a, b: a ^ b,
            "ori": lambda a, b: a | b,
            "andi": lambda a, b: a & b,
            "slli": lambda a, b: U(a << (b & 63)),
            "srli": lambda a, b: a >> (b & 63),
            "srai": lambda a, b: U(S(a) >> (b & 63)),
            "addiw": lambda a, b: U(bits.sext(a + b, 32)),
            "slliw": lambda a, b: U(bits.sext(a << (b & 31), 32)),
            "srliw": lambda a, b: U(bits.sext((a & bits.MASK32) >> (b & 31), 32)),
            "sraiw": lambda a, b: U(bits.to_s32(a) >> (b & 31)),
        }
        return table

    def _make_alu_r(self, op: str):
        fn = self._alu_fn(op)
        regs = self.regs

        def handler(ins: Instr):
            rd = ins.rd
            if rd:
                regs[rd] = fn(regs[ins.rs1], regs[ins.rs2])
                self._srf_propagate_r(rd, ins.rs1, ins.rs2)
            self._retire(ins)
            return None

        return handler

    def _make_alu_i(self, op: str):
        fn = self._alu_fn(op)
        regs = self.regs

        def handler(ins: Instr):
            rd = ins.rd
            if rd:
                regs[rd] = fn(regs[ins.rs1], bits.to_u64(ins.imm))
                self._srf_propagate_i(rd, ins.rs1)
            self._retire(ins)
            return None

        return handler

    # -- memory ----------------------------------------------------------

    def _make_load(self, op: str, nbytes: int, signed: bool):
        ct_loads = self._ct["loads"]

        def handler(ins: Instr):
            addr = bits.to_u64(self.regs[ins.rs1] + ins.imm)
            value = self.memory.load_uint(addr, nbytes)
            if signed:
                value = bits.to_u64(bits.sext(value, 8 * nbytes))
            if ins.rd:
                self.regs[ins.rd] = value
                self._srf_invalidate(ins.rd)
            ct_loads.value += 1
            self._retire(ins, mem_addr=addr)
            return None

        return handler

    def _make_store(self, op: str, nbytes: int):
        ct_stores = self._ct["stores"]

        def handler(ins: Instr):
            addr = bits.to_u64(self.regs[ins.rs1] + ins.imm)
            value = self.regs[ins.rs2]
            self.memory.store_uint(addr, nbytes, value)
            if nbytes == 8:
                self._snoop_lock_store(addr, value)
            ct_stores.value += 1
            self._retire(ins, mem_addr=addr, is_store=True)
            return None

        return handler

    def _make_checked_load(self, op: str, nbytes: int, signed: bool):
        ct_loads = self._ct["loads"]
        ct_hwst = self._ct["hwst_ops"]

        def handler(ins: Instr):
            addr = bits.to_u64(self.regs[ins.rs1] + ins.imm)
            self._spatial_check(ins.rs1, addr, nbytes)
            value = self.memory.load_uint(addr, nbytes)
            if signed:
                value = bits.to_u64(bits.sext(value, 8 * nbytes))
            if ins.rd:
                self.regs[ins.rd] = value
                self._srf_invalidate(ins.rd)
            ct_loads.value += 1
            ct_hwst.value += 1
            self._retire(ins, mem_addr=addr)
            return None

        return handler

    def _make_checked_store(self, op: str, nbytes: int):
        ct_stores = self._ct["stores"]
        ct_hwst = self._ct["hwst_ops"]

        def handler(ins: Instr):
            addr = bits.to_u64(self.regs[ins.rs1] + ins.imm)
            self._spatial_check(ins.rs1, addr, nbytes)
            value = self.regs[ins.rs2]
            self.memory.store_uint(addr, nbytes, value)
            if nbytes == 8:
                self._snoop_lock_store(addr, value)
            ct_stores.value += 1
            ct_hwst.value += 1
            self._retire(ins, mem_addr=addr, is_store=True)
            return None

        return handler

    # -- control flow -------------------------------------------------------

    def _make_branch(self, op: str):
        S = bits.to_s64
        compare = {
            "beq": lambda a, b: a == b,
            "bne": lambda a, b: a != b,
            "blt": lambda a, b: S(a) < S(b),
            "bge": lambda a, b: S(a) >= S(b),
            "bltu": lambda a, b: a < b,
            "bgeu": lambda a, b: a >= b,
        }[op]

        ct_branches = self._ct["branches"]
        ct_taken = self._ct["taken"]

        def handler(ins: Instr):
            taken = compare(self.regs[ins.rs1], self.regs[ins.rs2])
            ct_branches.value += 1
            if taken:
                ct_taken.value += 1
            self._retire(ins, taken=taken)
            return bits.to_u64(self.pc + ins.imm) if taken else None

        return handler

    def _op_jal(self, ins: Instr):
        if ins.rd:
            self.regs[ins.rd] = bits.to_u64(self.pc + 4)
            self._srf_invalidate(ins.rd)
        self._ct["calls"].value += 1
        self._retire(ins, taken=True)
        return bits.to_u64(self.pc + ins.imm)

    def _op_jalr(self, ins: Instr):
        target = bits.to_u64(self.regs[ins.rs1] + ins.imm) & ~1
        if ins.rd:
            self.regs[ins.rd] = bits.to_u64(self.pc + 4)
            self._srf_invalidate(ins.rd)
        self._retire(ins, taken=True)
        return target

    def _op_lui(self, ins: Instr):
        if ins.rd:
            self.regs[ins.rd] = bits.to_u64(bits.sext(ins.imm << 12, 32))
            self._srf_invalidate(ins.rd)
        self._retire(ins)
        return None

    def _op_auipc(self, ins: Instr):
        if ins.rd:
            self.regs[ins.rd] = bits.to_u64(
                self.pc + bits.sext(ins.imm << 12, 32))
            self._srf_invalidate(ins.rd)
        self._retire(ins)
        return None

    def _op_fence(self, ins: Instr):
        self._retire(ins)
        return None

    def _op_ebreak(self, ins: Instr):
        raise EcallAbort("ebreak")

    def _op_ecall(self, ins: Instr):
        number = self.regs[17]  # a7
        if number == SYS_EXIT:
            raise EcallExit(bits.to_s64(self.regs[10]))
        if number == SYS_WRITE:
            buf, length = self.regs[11], self.regs[12]
            self.output += self.memory.load_bytes(buf, length)
            self.regs[10] = length
            # Retire only on the path that returns: a trapping ecall is
            # never counted in instret, so the profiler and the timing
            # model must not see it either (retire fires exactly once
            # per *retired* instruction — the fast engine relies on
            # this invariant at trap boundaries).
            self._retire(ins)
            return None
        if number == SYS_ABORT:
            raise EcallAbort("program abort")
        if number == SYS_TRAP_SPATIAL:
            raise SpatialViolation(self.pc, self.regs[10], 0, 0)
        if number == SYS_TRAP_TEMPORAL:
            raise TemporalViolation(self.pc, self.regs[10], 0, 0)
        if number == SYS_TRAP_ASAN:
            raise EcallAbort("asan-report")
        if number == SYS_TRAP_CANARY:
            raise EcallAbort("stack-smashing-detected")
        raise IllegalInstruction(self.pc, f"unknown ecall {number}")

    def _make_csr(self, kind: str):
        def handler(ins: Instr):
            addr = ins.imm
            old = self._csr_read(addr)
            src = self.regs[ins.rs1]
            if kind == "w":
                self._csr_write(addr, src)
            elif kind == "s" and ins.rs1 != 0:
                self._csr_write(addr, old | src)
            elif kind == "c" and ins.rs1 != 0:
                self._csr_write(addr, old & ~src)
            if ins.rd:
                self.regs[ins.rd] = old
                self._srf_invalidate(ins.rd)
            self._retire(ins)
            return None

        return handler

    def _csr_read(self, addr: int) -> int:
        if addr == csrdef.CYCLE:
            return self.timing.cycles if self.timing is not None else self.instret
        if addr in (csrdef.TIME, csrdef.INSTRET):
            return self.instret
        return self.csrs.get(addr, 0)

    def _csr_write(self, addr: int, value: int):
        value = bits.to_u64(value)
        self.csrs[addr] = value
        if addr == csrdef.HWST_LOCK_BASE:
            self._lock_lo = value
        elif addr == csrdef.HWST_LOCK_LIMIT:
            self._lock_hi = value

    # -- HWST128 ---------------------------------------------------------

    def _op_bndrs(self, ins: Instr):
        base, bound = self.regs[ins.rs1], self.regs[ins.rs2]
        lower = self.compressor.compress_spatial(base, bound)
        _, upper, _, uvalid = self.srf[ins.rd]
        self.srf[ins.rd] = (lower, upper, True, uvalid)
        self.srf_wide[ins.rd] = None
        self._ct["hwst_ops"].value += 1
        self._retire(ins)
        return None

    def _op_bndrt(self, ins: Instr):
        key, lock = self.regs[ins.rs1], self.regs[ins.rs2]
        upper = self.compressor.compress_temporal(key, lock)
        lower, _, lvalid, _ = self.srf[ins.rd]
        self.srf[ins.rd] = (lower, upper, lvalid, True)
        self._ct["hwst_ops"].value += 1
        self._retire(ins)
        return None

    def _op_tchk(self, ins: Instr):
        self._ct["tchk"].value += 1
        self._ct["hwst_ops"].value += 1
        kb_hit, mem2 = self._temporal_check(ins.rs1)
        self._retire(ins, kb_hit=kb_hit, mem2=mem2)
        return None

    def _make_sbd(self, upper: bool):
        ct_stores = self._ct["stores"]
        ct_hwst = self._ct["hwst_ops"]
        ct_shadow = self._ct["shadow_ops"]

        def handler(ins: Instr):
            container = bits.to_u64(self.regs[ins.rs1] + ins.imm)
            shadow_addr = self._smac(container) + (8 if upper else 0)
            lower_v, upper_v, lvalid, uvalid = self.srf[ins.rs2]
            if upper:
                value = upper_v if uvalid else 0
            else:
                value = lower_v if lvalid else 0
            self.memory.store_u64(shadow_addr, value)
            ct_stores.value += 1
            ct_hwst.value += 1
            ct_shadow.value += 1
            tracer = self._tracer_shadow
            if tracer is not None:
                tracer.emit("shadow", "store" if value else "clear",
                            ts=self._now(),
                            args={"container": container,
                                  "half": "upper" if upper else "lower"})
            self._retire(ins, mem_addr=shadow_addr, is_store=True)
            return None

        return handler

    def _make_lbds(self, upper: bool):
        ct_loads = self._ct["loads"]
        ct_hwst = self._ct["hwst_ops"]
        ct_shadow = self._ct["shadow_ops"]

        def handler(ins: Instr):
            container = bits.to_u64(self.regs[ins.rs1] + ins.imm)
            shadow_addr = self._smac(container) + (8 if upper else 0)
            value = self.memory.load_u64(shadow_addr)
            lower_v, upper_v, lvalid, uvalid = self.srf[ins.rd]
            if upper:
                self.srf[ins.rd] = (lower_v, value, lvalid, True)
            else:
                self.srf[ins.rd] = (value, upper_v, True, uvalid)
            self.srf_wide[ins.rd] = None
            ct_loads.value += 1
            ct_hwst.value += 1
            ct_shadow.value += 1
            tracer = self._tracer_shadow
            if tracer is not None:
                tracer.emit("shadow", "load", ts=self._now(),
                            args={"container": container,
                                  "half": "upper" if upper else "lower"})
            self._retire(ins, mem_addr=shadow_addr)
            return None

        return handler

    def _make_meta_gpr_load(self, which: str):
        temporal = which in ("key", "lock")
        ct_loads = self._ct["loads"]
        ct_hwst = self._ct["hwst_ops"]
        ct_shadow = self._ct["shadow_ops"]

        def handler(ins: Instr):
            container = bits.to_u64(self.regs[ins.rs1] + ins.imm)
            shadow_addr = self._smac(container) + (8 if temporal else 0)
            value = self.memory.load_u64(shadow_addr)
            if temporal:
                key, lock = self.compressor.decompress_temporal(value)
                result = key if which == "key" else lock
            else:
                base, bound = self.compressor.decompress_spatial(value)
                result = base if which == "base" else bound
            if ins.rd:
                self.regs[ins.rd] = bits.to_u64(result)
                self._srf_invalidate(ins.rd)
            ct_loads.value += 1
            ct_hwst.value += 1
            ct_shadow.value += 1
            self._retire(ins, mem_addr=shadow_addr)
            return None

        return handler

    # -- MPX comparator model ---------------------------------------------

    def _op_bndcl(self, ins: Instr):
        addr = self.regs[ins.rs2]
        base, bound = self._spatial_bounds(ins.rs1, addr)
        if addr < base:
            self._spatial_fail(addr, base, bound)
        self._retire(ins)
        return None

    def _op_bndcu(self, ins: Instr):
        addr = self.regs[ins.rs2]
        base, bound = self._spatial_bounds(ins.rs1, addr)
        if addr >= bound:
            self._spatial_fail(addr, base, bound)
        self._retire(ins)
        return None

    def _op_bndldx(self, ins: Instr):
        container = bits.to_u64(self.regs[ins.rs1] + ins.imm)
        shadow_addr = self._smac(container)
        value = self.memory.load_u64(shadow_addr)
        _, upper_v, _, uvalid = self.srf[ins.rd]
        self.srf[ins.rd] = (value, upper_v, True, uvalid)
        self._ct["loads"].value += 2  # MPX bound-table walk: two accesses
        self._ct["shadow_ops"].value += 1
        self._retire(ins, mem_addr=shadow_addr, mem2=shadow_addr + 8)
        return None

    def _op_bndstx(self, ins: Instr):
        container = bits.to_u64(self.regs[ins.rs1] + ins.imm)
        shadow_addr = self._smac(container)
        lower_v, _, lvalid, _ = self.srf[ins.rs2]
        self.memory.store_u64(shadow_addr, lower_v if lvalid else 0)
        self._ct["stores"].value += 2
        self._ct["shadow_ops"].value += 1
        self._retire(ins, mem_addr=shadow_addr, is_store=True,
                     mem2=shadow_addr + 8)
        return None

    # -- AVX comparator model -----------------------------------------------

    def _op_vld256(self, ins: Instr):
        container = bits.to_u64(self.regs[ins.rs1] + ins.imm)
        shadow_addr = self._smac(container)
        fields = tuple(self.memory.load_u64(shadow_addr + 8 * i)
                       for i in range(4))
        self.srf_wide[ins.rd] = fields  # (base, bound, key, lock)
        self.srf[ins.rd] = SRF_INVALID
        self._ct["loads"].value += 1
        self._ct["shadow_ops"].value += 1
        self._retire(ins, mem_addr=shadow_addr)
        return None

    def _op_vst256(self, ins: Instr):
        container = bits.to_u64(self.regs[ins.rs1] + ins.imm)
        shadow_addr = self._smac(container)
        fields = self.srf_wide[ins.rs2] or (0, 0, 0, 0)
        for i, value in enumerate(fields):
            self.memory.store_u64(shadow_addr + 8 * i, value)
        self._ct["stores"].value += 1
        self._ct["shadow_ops"].value += 1
        self._retire(ins, mem_addr=shadow_addr, is_store=True)
        return None

    def _op_vchk(self, ins: Instr):
        """WDL wide check: spatial + temporal in one vector operation."""
        wide = self.srf_wide[ins.rs1]
        addr = self.regs[ins.rs2]
        if wide is None:
            self._spatial_fail(addr, 0, 0)
        base, bound, key, lock = wide
        if addr < base or addr >= bound:
            self._spatial_fail(addr, base, bound)
        mem2 = None
        if lock:
            stored = self.memory.load_u64(lock)
            mem2 = lock
            if stored != key:
                self._temporal_fail(key, stored, lock)
        self._retire(ins, mem2=mem2)
        return None
