"""Experiment harness: runners, coverage evaluation, figure tables.

* :mod:`repro.harness.runner` — compile-and-run helpers with caching,
  perf.oh (Eq. 7) and speedup (Eq. 8) math, detection classification;
* :mod:`repro.harness.coverage` — Fig. 6 Juliet coverage evaluation;
* :mod:`repro.harness.experiments` — one entry point per paper artefact
  (``python -m repro.harness.experiments --list``).
"""

from repro.harness.runner import (
    detected,
    perf_overhead_pct,
    run_program,
    run_workload,
    speedup,
)
from repro.harness.coverage import evaluate_coverage, CoverageResult

__all__ = [
    "detected",
    "perf_overhead_pct",
    "run_program",
    "run_workload",
    "speedup",
    "evaluate_coverage",
    "CoverageResult",
]
