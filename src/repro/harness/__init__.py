"""Experiment harness: runners, sweeps, coverage, figure tables.

* :mod:`repro.harness.runner` — compile-and-run helpers,
  perf.oh (Eq. 7) and speedup (Eq. 8) math, detection classification;
* :mod:`repro.harness.parallel` — process-pool sweep executor with
  per-cell failure envelopes (``--jobs N``);
* :mod:`repro.harness.compile_cache` — content-addressed compile cache
  (``compile.cache.*`` counters);
* :mod:`repro.harness.coverage` — Fig. 6 Juliet coverage evaluation;
* :mod:`repro.harness.experiments` — one entry point per paper artefact
  (``python -m repro.harness.experiments --list``).
"""

from repro.harness.runner import (
    detected,
    perf_overhead_pct,
    run_program,
    run_workload,
    speedup,
)
from repro.harness.compile_cache import CompileCache, process_cache
from repro.harness.coverage import evaluate_coverage, CoverageResult
from repro.harness.parallel import (
    CellResult,
    CellSpec,
    SweepExecutor,
    run_cells,
)

__all__ = [
    "detected",
    "perf_overhead_pct",
    "run_program",
    "run_workload",
    "speedup",
    "evaluate_coverage",
    "CoverageResult",
    "CellResult",
    "CellSpec",
    "SweepExecutor",
    "run_cells",
    "CompileCache",
    "process_cache",
]
