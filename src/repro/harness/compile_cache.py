"""Content-addressed compile cache for sweep-style evaluation.

Every figure of the paper is a sweep of (workload x scheme x config)
cells, and most cells share compilation work: the per-scheme runtime
unit is identical across all workloads, the front-end result of a
workload source is identical across all schemes, and whole programs
repeat verbatim across experiments (fig4's baseline build is fig2's,
abl_compression's and abl_shadow's too). :class:`CompileCache` keys
each artefact by SHA-256 of everything that can change it and stores
*pickled* blobs, so a hit always hands back a fresh object graph that
downstream passes may mutate freely:

* **unit tier** — the front-end ``Module`` (lex/parse/sema/irgen) of
  one translation unit, keyed by source text + unit name. Scheme- and
  config-independent: instrumentation runs after this stage.
* **program tier** — the fully linked ``Program``, keyed by source +
  scheme + a fingerprint of the complete :class:`HwstConfig` (any
  config change conservatively invalidates, including runtime-only
  knobs like ``keybuffer_entries`` — the unit tier still hits).

Counters land under ``compile.cache.*`` (``hits`` = unit + program
hits) via :meth:`CompileCache.stats_snapshot`, which the sweep
executor merges into the parent registry.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import asdict
from typing import Dict, Optional

from repro.core.config import HwstConfig

__all__ = ["CompileCache", "config_fingerprint", "process_cache"]


def config_fingerprint(config: HwstConfig) -> str:
    """Deterministic serialisation of every config field."""
    return json.dumps(asdict(config), sort_keys=True, default=str)


def _digest(*parts: str) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        blob = part.encode("utf-8")
        hasher.update(len(blob).to_bytes(8, "little"))
        hasher.update(blob)
    return hasher.hexdigest()


#: Bump when the shape of cached entries changes: entries written by
#: an older layout are treated as corrupt (-> recompile), never
#: unpickled blind.
CACHE_FORMAT = 1


def _seal(payload) -> tuple:
    """Wrap a pickled artefact with its format version + fingerprint."""
    blob = pickle.dumps(payload)
    return (CACHE_FORMAT, hashlib.sha256(blob).hexdigest(), blob)


class CompileCache:
    """Two-tier content-addressed cache of compile artefacts.

    One instance is process-local (see :func:`process_cache`); pool
    workers each grow their own copy, and the sweep executor folds the
    per-worker counters back into the parent's registry.
    """

    def __init__(self, max_entries: int = 1024):
        self.max_entries = max_entries
        # key -> (format_version, sha256-of-blob, pickled blob). The
        # guard tuple is checked on every load so a corrupt or
        # stale-format entry falls back to recompilation instead of
        # raising UnpicklingError mid-sweep.
        self._programs: Dict[str, tuple] = {}
        self._units: Dict[str, tuple] = {}
        self.program_hits = 0
        self.unit_hits = 0
        self.misses = 0
        self.unit_misses = 0
        self.corrupt = 0

    def _open(self, store: Dict[str, tuple], key: str):
        """Verified unpickle of a cached entry.

        Returns None (and bumps the ``compile.cache.corrupt`` counter,
        dropping the entry) when the format version or the content
        fingerprint does not match, or the blob fails to unpickle —
        the caller then recompiles as if the entry never existed.
        """
        entry = store.get(key)
        if entry is None:
            return None
        try:
            version, fingerprint, blob = entry
            if version != CACHE_FORMAT or \
                    hashlib.sha256(blob).hexdigest() != fingerprint:
                raise ValueError("cache entry failed integrity check")
            return pickle.loads(blob)
        except Exception:
            self.corrupt += 1
            store.pop(key, None)
            return None

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def program_key(source: str, scheme: str, config: HwstConfig) -> str:
        return _digest("program", source, scheme,
                       config_fingerprint(config))

    @staticmethod
    def unit_key(source: str, name: str) -> str:
        return _digest("unit", source, name)

    # -- unit tier (used by schemes.compile_source) -------------------------

    def load_unit(self, source: str, name: str):
        """Fresh front-end ``Module`` for ``source``, or None on miss."""
        module = self._open(self._units, self.unit_key(source, name))
        if module is None:
            self.unit_misses += 1
            return None
        self.unit_hits += 1
        return module

    def store_unit(self, source: str, name: str, module) -> None:
        if len(self._units) < self.max_entries:
            self._units[self.unit_key(source, name)] = _seal(module)

    # -- program tier -------------------------------------------------------

    def compile(self, source: str, scheme: str,
                config: Optional[HwstConfig] = None,
                program_name: str = "program",
                metrics=None, tracer=None):
        """Compile ``source`` under ``scheme``, reusing cached artefacts.

        On a program-tier hit the stored analysis summary (check
        elision counts) is replayed into ``metrics`` so the
        ``compile.analyze.*`` counters read the same whether the build
        was cached or fresh; phase wall-times are only recorded for
        work actually performed.
        """
        from repro.schemes import compile_source

        config = config or HwstConfig()
        key = self.program_key(source, scheme, config)
        program = self._open(self._programs, key)
        if program is not None:
            self.program_hits += 1
            self._replay_analyze(program, metrics)
            return program
        self.misses += 1
        phases = None
        if metrics is not None:
            from repro.obs.phases import PhaseTimers

            phases = PhaseTimers(metrics=metrics, tracer=tracer)
        program = compile_source(source, scheme, config, program_name,
                                 phases=phases, unit_cache=self)
        if len(self._programs) < self.max_entries:
            self._programs[key] = _seal(program)
        return program

    @staticmethod
    def _replay_analyze(program, metrics) -> None:
        if metrics is None:
            return
        summary = program.meta.get("analyze")
        if not isinstance(summary, dict):
            return
        scope = metrics.scope("compile.analyze")
        for key, value in summary.items():
            scope.counter(key).inc(int(value))

    # -- accounting ---------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.program_hits + self.unit_hits

    def stats_snapshot(self) -> Dict[str, int]:
        """Flat ``compile.cache.*`` counter snapshot (mergeable)."""
        return {
            "compile.cache.hits": self.hits,
            "compile.cache.program_hits": self.program_hits,
            "compile.cache.unit_hits": self.unit_hits,
            "compile.cache.misses": self.misses,
            "compile.cache.unit_misses": self.unit_misses,
            "compile.cache.corrupt": self.corrupt,
        }

    def clear(self) -> None:
        self._programs.clear()
        self._units.clear()
        self.program_hits = self.unit_hits = 0
        self.misses = self.unit_misses = 0
        self.corrupt = 0


_PROCESS_CACHE: Optional[CompileCache] = None


def process_cache() -> CompileCache:
    """The per-process cache shared by every sweep in this process."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = CompileCache()
    return _PROCESS_CACHE
