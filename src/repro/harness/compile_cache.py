"""Content-addressed compile cache for sweep-style evaluation.

Every figure of the paper is a sweep of (workload x scheme x config)
cells, and most cells share compilation work: the per-scheme runtime
unit is identical across all workloads, the front-end result of a
workload source is identical across all schemes, and whole programs
repeat verbatim across experiments (fig4's baseline build is fig2's,
abl_compression's and abl_shadow's too). :class:`CompileCache` keys
each artefact by SHA-256 of everything that can change it and stores
*pickled* blobs, so a hit always hands back a fresh object graph that
downstream passes may mutate freely:

* **unit tier** — the front-end ``Module`` (lex/parse/sema/irgen) of
  one translation unit, keyed by source text + unit name. Scheme- and
  config-independent: instrumentation runs after this stage.
* **program tier** — the fully linked ``Program``, keyed by source +
  scheme + a fingerprint of the complete :class:`HwstConfig` (any
  config change conservatively invalidates, including runtime-only
  knobs like ``keybuffer_entries`` — the unit tier still hits).

Counters land under ``compile.cache.*`` (``hits`` = unit + program
hits) via :meth:`CompileCache.stats_snapshot`, which the sweep
executor merges into the parent registry.

A third, **cross-process** tier is optional: :class:`DiskArtifactStore`
is an on-disk content-addressed store of the same sealed blobs, shared
by every worker of a ``repro serve`` pool (and any other process
pointed at the same directory). It is hardened for long-lived service
use:

* **atomic publishes** — artifacts are written to a temp file and
  ``os.replace``\\ d into place, so a reader never observes a partial
  write;
* **advisory per-key file locks with stale-lock recovery** — a
  compiling process takes ``<key>.lock`` (``O_CREAT|O_EXCL`` with its
  pid inside) so racing processes wait for the artifact instead of
  duplicating the compile; a lock whose holder is dead (or that is
  older than ``stale_lock_s``) is broken and counted
  (``compile.cache.disk_lock_breaks``);
* **corruption means repair, not failure** — a blob that fails the
  format-version/sha-256 guard (or does not unpickle) is deleted and
  recompiled, and the fresh artifact is re-published
  (``compile.cache.disk_corrupt`` counts the repair);
* **size-capped LRU eviction** — reads refresh the artifact mtime;
  when the store grows past ``max_bytes`` the oldest artifacts are
  evicted (``compile.cache.disk_evictions``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

from repro.core.config import HwstConfig

__all__ = ["CompileCache", "DiskArtifactStore", "config_fingerprint",
           "configure_process_cache", "process_cache"]


def config_fingerprint(config: HwstConfig) -> str:
    """Deterministic serialisation of every config field."""
    return json.dumps(asdict(config), sort_keys=True, default=str)


def _digest(*parts: str) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        blob = part.encode("utf-8")
        hasher.update(len(blob).to_bytes(8, "little"))
        hasher.update(blob)
    return hasher.hexdigest()


#: Bump when the shape of cached entries changes: entries written by
#: an older layout are treated as corrupt (-> recompile), never
#: unpickled blind.
CACHE_FORMAT = 1


def _seal(payload) -> tuple:
    """Wrap a pickled artefact with its format version + fingerprint."""
    blob = pickle.dumps(payload)
    return (CACHE_FORMAT, hashlib.sha256(blob).hexdigest(), blob)


def _unseal(entry) -> object:
    """Verified unpickle of a sealed entry; raises on any corruption."""
    version, fingerprint, blob = entry
    if version != CACHE_FORMAT or \
            hashlib.sha256(blob).hexdigest() != fingerprint:
        raise ValueError("cache entry failed integrity check")
    return pickle.loads(blob)


class DiskArtifactStore:
    """Cross-process on-disk content-addressed artifact store.

    Artifacts live under ``root/objects/<key>.art`` as pickled sealed
    entries (format version + sha-256 fingerprint + blob). See the
    module docstring for the hardening contract (atomic publish,
    advisory locks with stale recovery, repair-on-corruption, LRU
    eviction). All counters are process-local and folded into the
    parent registry the same way the in-memory tiers' are.
    """

    def __init__(self, root, max_bytes: int = 256 * 1024 * 1024,
                 stale_lock_s: float = 30.0,
                 lock_wait_s: float = 60.0,
                 poll_s: float = 0.02):
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.stale_lock_s = stale_lock_s
        self.lock_wait_s = lock_wait_s
        self.poll_s = poll_s
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evictions = 0
        self.lock_breaks = 0
        self.lock_waits = 0

    # -- paths --------------------------------------------------------------

    def _artifact(self, key: str) -> Path:
        return self.objects / f"{key}.art"

    def _lockfile(self, key: str) -> Path:
        return self.objects / f"{key}.lock"

    # -- artifacts ----------------------------------------------------------

    def load(self, key: str):
        """Verified load; None on miss. Corruption deletes the artifact
        (the caller recompiles and re-publishes: repair, not failure)."""
        return self._read(key, count_miss=True)

    def _read(self, key: str, count_miss: bool):
        path = self._artifact(key)
        try:
            entry = pickle.loads(path.read_bytes())
            payload = _unseal(entry)
        except FileNotFoundError:
            if count_miss:
                self.misses += 1
            return None
        except Exception:
            self.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        try:                       # LRU touch; best-effort under races
            os.utime(path)
        except OSError:
            pass
        return payload

    def store(self, key: str, payload) -> None:
        """Atomically publish ``payload`` under ``key``, then evict."""
        data = pickle.dumps(_seal(payload))
        fd, tmp = tempfile.mkstemp(dir=self.objects, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, self._artifact(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._evict()

    def _evict(self) -> None:
        """Drop oldest artifacts until the store fits ``max_bytes``."""
        entries = []
        total = 0
        for path in self.objects.glob("*.art"):
            try:
                stat = path.stat()
            except OSError:        # concurrently evicted
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        for _mtime, size, path in sorted(entries):
            try:
                path.unlink()
            except OSError:
                continue
            self.evictions += 1
            total -= size
            if total <= self.max_bytes:
                return

    # -- advisory locks -----------------------------------------------------

    def _try_lock(self, key: str) -> bool:
        """O_CREAT|O_EXCL lockfile containing our pid; False if held."""
        try:
            fd = os.open(self._lockfile(key),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(f"{os.getpid()}\n")
        return True

    def _unlock(self, key: str) -> None:
        try:
            self._lockfile(key).unlink()
        except OSError:
            pass

    def _lock_is_stale(self, key: str) -> bool:
        """A lock is stale when its holder is dead or it outlived
        ``stale_lock_s`` (crashed holder mid-write / clock-skewed NFS)."""
        path = self._lockfile(key)
        try:
            stat = path.stat()
            pid_text = path.read_text().strip()
        except OSError:
            return False           # released under us: not stale, gone
        if time.time() - stat.st_mtime > self.stale_lock_s:
            return True
        if pid_text.isdigit():
            pid = int(pid_text)
            if pid == os.getpid():
                return False
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True        # holder crashed without unlocking
            except (OSError, PermissionError):
                return False       # alive (or unknowable): trust it
        return False

    def _break_stale_lock(self, key: str) -> None:
        self.lock_breaks += 1
        self._unlock(key)

    def acquire(self, key: str) -> bool:
        """Acquire the per-key compile lock; True when we hold it.

        False means another live process holds it — the caller should
        poll :meth:`wait_for` for the artifact the holder is about to
        publish. Stale locks (dead holder / too old) are broken and
        re-tried.
        """
        while True:
            if self._try_lock(key):
                return True
            if self._lock_is_stale(key):
                self._break_stale_lock(key)
                continue
            return False

    def wait_for(self, key: str):
        """Poll for ``key`` while another process compiles it.

        Returns the artifact, or None when the holder crashed (its
        stale lock gets broken — our caller then compiles) or the wait
        budget ran out.
        """
        self.lock_waits += 1
        deadline = time.monotonic() + self.lock_wait_s
        while time.monotonic() < deadline:
            payload = self._read(key, count_miss=False)
            if payload is not None:
                return payload
            if self._lock_is_stale(key):
                self._break_stale_lock(key)
                return None
            if not self._lockfile(key).exists():
                # Holder released without publishing (its compile
                # failed); don't spin the rest of the budget.
                return self.load(key)
            time.sleep(self.poll_s)
        return None

    # -- accounting ---------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, int]:
        return {
            "compile.cache.disk_hits": self.hits,
            "compile.cache.disk_misses": self.misses,
            "compile.cache.disk_corrupt": self.corrupt,
            "compile.cache.disk_evictions": self.evictions,
            "compile.cache.disk_lock_breaks": self.lock_breaks,
            "compile.cache.disk_lock_waits": self.lock_waits,
        }


class CompileCache:
    """Two-tier content-addressed cache of compile artefacts.

    One instance is process-local (see :func:`process_cache`); pool
    workers each grow their own copy, and the sweep executor folds the
    per-worker counters back into the parent's registry.
    """

    def __init__(self, max_entries: int = 1024,
                 disk: Optional[DiskArtifactStore] = None):
        self.max_entries = max_entries
        # Optional cross-process tier for the program artefacts (the
        # unit tier stays process-local: units are cheap relative to
        # linked programs and are subsumed by program-tier hits).
        self.disk = disk
        # key -> (format_version, sha256-of-blob, pickled blob). The
        # guard tuple is checked on every load so a corrupt or
        # stale-format entry falls back to recompilation instead of
        # raising UnpicklingError mid-sweep.
        self._programs: Dict[str, tuple] = {}
        self._units: Dict[str, tuple] = {}
        self.program_hits = 0
        self.unit_hits = 0
        self.misses = 0
        self.unit_misses = 0
        self.corrupt = 0

    def _open(self, store: Dict[str, tuple], key: str):
        """Verified unpickle of a cached entry.

        Returns None (and bumps the ``compile.cache.corrupt`` counter,
        dropping the entry) when the format version or the content
        fingerprint does not match, or the blob fails to unpickle —
        the caller then recompiles as if the entry never existed.
        """
        entry = store.get(key)
        if entry is None:
            return None
        try:
            version, fingerprint, blob = entry
            if version != CACHE_FORMAT or \
                    hashlib.sha256(blob).hexdigest() != fingerprint:
                raise ValueError("cache entry failed integrity check")
            return pickle.loads(blob)
        except Exception:
            self.corrupt += 1
            store.pop(key, None)
            return None

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def program_key(source: str, scheme: str, config: HwstConfig) -> str:
        return _digest("program", source, scheme,
                       config_fingerprint(config))

    @staticmethod
    def unit_key(source: str, name: str) -> str:
        return _digest("unit", source, name)

    # -- unit tier (used by schemes.compile_source) -------------------------

    def load_unit(self, source: str, name: str):
        """Fresh front-end ``Module`` for ``source``, or None on miss."""
        module = self._open(self._units, self.unit_key(source, name))
        if module is None:
            self.unit_misses += 1
            return None
        self.unit_hits += 1
        return module

    def store_unit(self, source: str, name: str, module) -> None:
        if len(self._units) < self.max_entries:
            self._units[self.unit_key(source, name)] = _seal(module)

    # -- program tier -------------------------------------------------------

    def compile(self, source: str, scheme: str,
                config: Optional[HwstConfig] = None,
                program_name: str = "program",
                metrics=None, tracer=None):
        """Compile ``source`` under ``scheme``, reusing cached artefacts.

        On a program-tier hit the stored analysis summary (check
        elision counts) is replayed into ``metrics`` so the
        ``compile.analyze.*`` counters read the same whether the build
        was cached or fresh; phase wall-times are only recorded for
        work actually performed.

        With a :class:`DiskArtifactStore` attached, a memory miss
        consults the shared store next (corrupt entries are repaired:
        deleted, recompiled, re-published), and a fresh compile is
        published for every other process — under a per-key advisory
        lock so concurrent identical compiles coalesce into one.
        """
        config = config or HwstConfig()
        key = self.program_key(source, scheme, config)
        program = self._open(self._programs, key)
        if program is not None:
            self.program_hits += 1
            self._replay_analyze(program, metrics)
            return program
        if self.disk is not None:
            program = self.disk.load(key)
            if program is not None:
                if len(self._programs) < self.max_entries:
                    self._programs[key] = _seal(program)
                self._replay_analyze(program, metrics)
                return program
        self.misses += 1
        program = self._compile_and_publish(
            source, scheme, config, key, program_name, metrics, tracer)
        if len(self._programs) < self.max_entries:
            self._programs[key] = _seal(program)
        return program

    def _compile_and_publish(self, source, scheme, config, key,
                             program_name, metrics, tracer):
        """Compile (coalescing with concurrent processes via the disk
        store's per-key lock when one is attached) and publish."""
        if self.disk is None:
            return self._compile(source, scheme, config, program_name,
                                 metrics, tracer)
        if not self.disk.acquire(key):
            # Another live process is compiling this very key: wait for
            # its publish instead of duplicating the work. A crashed
            # holder leaves a stale lock; wait_for breaks it and
            # returns None — then we compile (holding no lock: worst
            # case two processes publish the same bytes atomically).
            program = self.disk.wait_for(key)
            if program is not None:
                return program
            return self._publish(key, self._compile(
                source, scheme, config, program_name, metrics, tracer))
        try:
            # Double-check under the lock: the artifact may have been
            # published between our miss and the acquire.
            program = self.disk._read(key, count_miss=False)
            if program is not None:
                return program
            return self._publish(key, self._compile(
                source, scheme, config, program_name, metrics, tracer))
        finally:
            self.disk._unlock(key)

    def _publish(self, key, program):
        try:
            self.disk.store(key, program)
        except OSError:
            pass                   # store full/unwritable: serve anyway
        return program

    def _compile(self, source, scheme, config, program_name, metrics,
                 tracer):
        from repro.schemes import compile_source

        phases = None
        if metrics is not None:
            from repro.obs.phases import PhaseTimers

            phases = PhaseTimers(metrics=metrics, tracer=tracer)
        return compile_source(source, scheme, config, program_name,
                              phases=phases, unit_cache=self)

    @staticmethod
    def _replay_analyze(program, metrics) -> None:
        if metrics is None:
            return
        summary = program.meta.get("analyze")
        if not isinstance(summary, dict):
            return
        scope = metrics.scope("compile.analyze")
        for key, value in summary.items():
            scope.counter(key).inc(int(value))

    # -- accounting ---------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.program_hits + self.unit_hits

    def stats_snapshot(self) -> Dict[str, int]:
        """Flat ``compile.cache.*`` counter snapshot (mergeable)."""
        snap = {
            "compile.cache.hits": self.hits,
            "compile.cache.program_hits": self.program_hits,
            "compile.cache.unit_hits": self.unit_hits,
            "compile.cache.misses": self.misses,
            "compile.cache.unit_misses": self.unit_misses,
            "compile.cache.corrupt": self.corrupt,
        }
        if self.disk is not None:
            snap.update(self.disk.stats_snapshot())
        return snap

    def clear(self) -> None:
        self._programs.clear()
        self._units.clear()
        self.program_hits = self.unit_hits = 0
        self.misses = self.unit_misses = 0
        self.corrupt = 0


_PROCESS_CACHE: Optional[CompileCache] = None


def process_cache() -> CompileCache:
    """The per-process cache shared by every sweep in this process."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = CompileCache()
    return _PROCESS_CACHE


def configure_process_cache(disk_root=None,
                            max_bytes: int = 256 * 1024 * 1024,
                            stale_lock_s: float = 30.0) -> CompileCache:
    """(Re)build the process cache, optionally with a shared disk tier.

    ``repro serve`` worker initialisers call this so every worker of a
    pool shares one on-disk artifact store; ``disk_root=None`` resets
    to a plain in-memory cache. Returns the new cache.
    """
    global _PROCESS_CACHE
    disk = None
    if disk_root is not None:
        disk = DiskArtifactStore(disk_root, max_bytes=max_bytes,
                                 stale_lock_s=stale_lock_s)
    _PROCESS_CACHE = CompileCache(disk=disk)
    return _PROCESS_CACHE
