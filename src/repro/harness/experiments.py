"""Figure/table regeneration entry points.

Each ``fig*``/``tab*``/``abl*`` function reproduces one paper artefact
and returns structured data; ``main`` renders text tables. Usage::

    python -m repro.harness.experiments --list
    python -m repro.harness.experiments fig4 --scale small
    python -m repro.harness.experiments fig4 --scale small --jobs 4
    python -m repro.harness.experiments all --scale small

``scale`` selects workload inputs: "default" is the calibrated
configuration used for EXPERIMENTS.md; "small" is a fast smoke
configuration (same shapes, looser numbers).

Every experiment fans its (workload x scheme x config) cells through
:class:`repro.harness.parallel.SweepExecutor` — ``--jobs N`` runs them
on N worker processes, ``--jobs 1`` (the default) runs serially and
produces bit-identical dicts either way. Failed cells no longer abort
a sweep: the surviving rows are reported, the casualties land under
the experiment's ``"failures"`` key (rendered to stderr by ``main``,
which then exits non-zero).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Dict, List, Optional, Sequence

from repro.core.config import HwstConfig, derive_field_widths
from repro.harness.coverage import (
    PAPER_COVERAGE, coverage_table, evaluate_coverage,
)
from repro.harness.parallel import (
    CellSpec, CellResult, SweepExecutor, run_cells,
)
from repro.harness.runner import perf_overhead_pct, speedup
from repro.pipeline.hwcost import HardwareCostModel
from repro.pipeline.timing import TimingParams
from repro.workloads import SPEC_FIG5, WORKLOADS
from repro.workloads.juliet import corpus_counts

# Paper reference numbers -----------------------------------------------------

PAPER_FIG4_GEOMEAN = {"sbcets": 441.45, "hwst128": 152.91,
                      "hwst128_tchk": 94.89}
PAPER_FIG5_GEOMEAN = {"bogo": 1.31, "wdl_narrow": 1.58,
                      "wdl_wide": 1.64, "hwst128_tchk": 3.74}
PAPER_FIG5_HIGHLIGHTS = {"bzip2": 7.98, "hmmer": 7.78}
PAPER_HWCOST = {"luts": 1536, "lut_pct": 4.11, "ffs": 112,
                "ff_pct": 0.66, "cp_before": 5.26, "cp_after": 6.45}


def _geomean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError(
            "geometric mean of an empty selection — no successful "
            "measurements to aggregate")
    return math.prod(values) ** (1.0 / len(values))


def _select_workloads(workloads: Optional[Sequence[str]],
                      default: Sequence[str]) -> List[str]:
    """Validated workload selection (None means ``default``).

    An explicitly empty selection and unknown names both raise — a
    silent fallback here used to turn typos into -100% geomeans.
    """
    names = list(default if workloads is None else workloads)
    if not names:
        raise ValueError("empty workload selection")
    unknown = [name for name in names if name not in WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown workload(s): {', '.join(unknown)}; known: "
            f"{', '.join(sorted(WORKLOADS))}")
    return names


def _attach_failures(data: Dict, failures: Sequence[CellResult]) -> Dict:
    """Record failed cells on the experiment dict (only when present,
    so an all-green sweep's dict is unchanged from the serial era)."""
    if failures:
        data["failures"] = [cell.failure_line() for cell in failures]
    return data


# ---------------------------------------------------------------------------
# FIG2 — metadata compression widths (Eq. 3-6 census)
# ---------------------------------------------------------------------------

def fig2_compression(scale: str = "default",
                     workloads: Optional[Sequence[str]] = None,
                     executor: Optional[SweepExecutor] = None,
                     jobs: int = 1) -> Dict:
    """Derive the compressed field widths from a workload census.

    Mirrors Section 3.3: run the suite, record the largest object and
    the number of lock_locations used, then apply Eq. 3-6 for both the
    paper's platform (256 GiB / 1 M locks -> 35/29/20/44) and the
    simulated platform.
    """
    names = _select_workloads(workloads, WORKLOADS)
    config = HwstConfig()
    cells = [CellSpec(workload=name, scheme="hwst128_tchk", scale=scale,
                      timing=False, tag=name) for name in names]
    results = run_cells(cells, executor, jobs)
    failures = [cell for cell in results if not cell.ok]
    max_range = 8
    max_locks = 1
    for cell in results:
        if not cell.ok:
            continue
        max_range = max(max_range, cell.stats.get("comp_max_range", 0))
        max_locks = max(max_locks,
                        cell.stats.get("comp_max_lock_index", 0))
    paper = derive_field_widths(256 << 30, 1 << 28, 1_000_000)
    ours = derive_field_widths(config.user_top, max_range,
                               max(max_locks, 2))
    data = {
        "census": {"max_object_bytes": max_range,
                   "lock_locations_used": max_locks,
                   "workloads": len(names)},
        "paper_platform": {"base": paper.base, "range": paper.range,
                           "lock": paper.lock, "key": paper.key},
        "sim_platform": {"base": ours.base, "range": ours.range,
                         "lock": ours.lock, "key": ours.key},
        "paper_reference": {"base": 35, "range": 29, "lock": 20,
                            "key": 44, "min_range_bits_for_spec": 25},
    }
    return _attach_failures(data, failures)


# ---------------------------------------------------------------------------
# FIG4 — performance overhead (Eq. 7)
# ---------------------------------------------------------------------------

FIG4_SCHEMES = ("sbcets", "hwst128", "hwst128_tchk")

# Extra configuration beyond the paper's: full HWST128 with the static
# redundant-check eliminator (--elide-checks) switched on.
FIG4_ELIDE = "hwst128_tchk_elide"


def fig4_overhead(scale: str = "default",
                  workloads: Optional[Sequence[str]] = None,
                  timing_params: Optional[TimingParams] = None,
                  collect_metrics: bool = False,
                  include_elide: bool = True,
                  executor: Optional[SweepExecutor] = None,
                  jobs: int = 1) -> Dict:
    """Fig. 4: perf.oh of SBCETS / HWST128 / HWST128_tchk per workload.

    With ``include_elide`` (default) every workload also runs under
    ``hwst128_tchk`` with static check elision; the row then carries
    ``checks_elided`` (the ``compile.analyze.checks_elided`` counter).
    With ``collect_metrics`` every row carries the per-run metric
    snapshots (``RunResult.metrics``, keyed by scheme), which the
    ``benchmarks/`` suite saves next to the overhead numbers.

    A workload whose cells did not all run cleanly is dropped from the
    rows (and the geomean) and listed under ``"failures"`` instead of
    aborting the sweep.
    """
    names = _select_workloads(workloads, WORKLOADS)
    schemes = FIG4_SCHEMES + ((FIG4_ELIDE,) if include_elide else ())
    cells = []
    for name in names:
        for scheme in ("baseline",) + FIG4_SCHEMES:
            cells.append(CellSpec(
                workload=name, scheme=scheme, scale=scale,
                timing_params=timing_params, tag=f"{name}/{scheme}"))
        if include_elide:
            cells.append(CellSpec(
                workload=name, scheme="hwst128_tchk", scale=scale,
                timing_params=timing_params,
                config=HwstConfig(elide_checks=True),
                collect_registry=True, group=name,
                tag=f"{name}/{FIG4_ELIDE}"))
    by_tag = {cell.tag: cell for cell in run_cells(cells, executor, jobs)}
    rows, failures = [], []
    ratios = {scheme: [] for scheme in schemes}
    for name in names:
        row_cells = [by_tag[f"{name}/baseline"]] + \
            [by_tag[f"{name}/{scheme}"] for scheme in schemes]
        bad = [cell for cell in row_cells if not cell.ok]
        if bad:
            failures.extend(bad)
            continue
        base = by_tag[f"{name}/baseline"]
        row = {"workload": name, "group": WORKLOADS[name].group,
               "baseline_cycles": base.cycles}
        snapshots = {"baseline": base.metrics}
        for scheme in FIG4_SCHEMES:
            run = by_tag[f"{name}/{scheme}"]
            row[scheme] = perf_overhead_pct(run.cycles, base.cycles)
            ratios[scheme].append(run.cycles / base.cycles)
            snapshots[scheme] = run.metrics
        if include_elide:
            run = by_tag[f"{name}/{FIG4_ELIDE}"]
            row[FIG4_ELIDE] = perf_overhead_pct(run.cycles, base.cycles)
            row["checks_elided"] = int(
                run.obs.get("compile.analyze.checks_elided", 0))
            ratios[FIG4_ELIDE].append(run.cycles / base.cycles)
            snapshots[FIG4_ELIDE] = run.metrics
        if collect_metrics:
            row["metrics"] = snapshots
        rows.append(row)
    geomean = {scheme: 100.0 * (_geomean(values) - 1.0)
               for scheme, values in ratios.items()} if rows else {}
    data = {"rows": rows, "geomean": geomean,
            "paper_geomean": dict(PAPER_FIG4_GEOMEAN)}
    return _attach_failures(data, failures)


# ---------------------------------------------------------------------------
# FIG5 — speedup factors (Eq. 8)
# ---------------------------------------------------------------------------

FIG5_SCHEMES = ("bogo", "wdl_narrow", "wdl_wide", "hwst128_tchk")


def fig5_speedup(scale: str = "default",
                 workloads: Optional[Sequence[str]] = None,
                 executor: Optional[SweepExecutor] = None,
                 jobs: int = 1) -> Dict:
    """Fig. 5: speedup over SBCETS for the acceleration schemes.

    Note (EXPERIMENTS.md): the paper's BOGO/WDL bars are literature
    values measured on x86 against x86 SBCETS; we re-implement the
    mechanisms on the simulated RISC-V pipeline, so our measured
    factors differ in level while HWST128 remains the fastest.
    """
    names = _select_workloads(workloads, SPEC_FIG5)
    cells = []
    for name in names:
        for scheme in ("sbcets",) + FIG5_SCHEMES:
            cells.append(CellSpec(workload=name, scheme=scheme,
                                  scale=scale, tag=f"{name}/{scheme}"))
    by_tag = {cell.tag: cell for cell in run_cells(cells, executor, jobs)}
    rows, failures = [], []
    ratios = {scheme: [] for scheme in FIG5_SCHEMES}
    for name in names:
        row_cells = [by_tag[f"{name}/{scheme}"]
                     for scheme in ("sbcets",) + FIG5_SCHEMES]
        bad = [cell for cell in row_cells if not cell.ok]
        if bad:
            failures.extend(bad)
            continue
        sbcets = by_tag[f"{name}/sbcets"]
        row = {"workload": name, "sbcets_cycles": sbcets.cycles}
        for scheme in FIG5_SCHEMES:
            run = by_tag[f"{name}/{scheme}"]
            row[scheme] = speedup(sbcets.cycles, run.cycles)
            ratios[scheme].append(row[scheme])
        rows.append(row)
    geomean = {scheme: _geomean(values)
               for scheme, values in ratios.items()} if rows else {}
    data = {"rows": rows, "geomean": geomean,
            "paper_geomean": dict(PAPER_FIG5_GEOMEAN),
            "paper_highlights": dict(PAPER_FIG5_HIGHLIGHTS)}
    return _attach_failures(data, failures)


# ---------------------------------------------------------------------------
# FIG6 — Juliet security coverage
# ---------------------------------------------------------------------------

FIG6_SCHEMES = ("gcc", "asan", "sbcets", "hwst128_tchk")


def fig6_coverage(fraction: float = 0.03,
                  schemes: Sequence[str] = FIG6_SCHEMES,
                  executor: Optional[SweepExecutor] = None,
                  jobs: int = 1) -> Dict:
    """Fig. 6: coverage of GCC/ASAN/SBCETS/HWST128 on the corpus."""
    results = evaluate_coverage(schemes, fraction=fraction,
                                executor=executor, jobs=jobs)
    counts = corpus_counts()
    data = {
        "corpus": counts,
        "paper_corpus": {"spatial": 7074, "temporal": 1292,
                         "total": 8366},
        "fraction": fraction,
        "coverage": {s: r.coverage_pct for s, r in results.items()},
        "per_cwe": {s: {cwe: r.cwe_coverage_pct(cwe)
                        for cwe in sorted(r.per_cwe)}
                    for s, r in results.items()},
        "paper_coverage": dict(PAPER_COVERAGE),
        "table": coverage_table(results),
    }
    sweep_errors = [line for result in results.values()
                    for line in result.failures if "sweep error" in line]
    if sweep_errors:
        data["failures"] = sweep_errors
    return data


# ---------------------------------------------------------------------------
# TAB-HW — Section 5.3 hardware cost
# ---------------------------------------------------------------------------

def hwcost_table(config: Optional[HwstConfig] = None) -> Dict:
    report = HardwareCostModel(config or HwstConfig()).report()
    return {
        "added_luts": report.added_luts,
        "lut_overhead_pct": round(report.lut_overhead_pct, 2),
        "added_ffs": report.added_ffs,
        "ff_overhead_pct": round(report.ff_overhead_pct, 2),
        "critical_path_before_ns": report.baseline_critical_path_ns,
        "critical_path_after_ns": report.critical_path_ns,
        "paper": dict(PAPER_HWCOST),
        "components": [(c.name, c.luts, c.ffs)
                       for c in report.components],
        "table": report.table(),
    }


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

def abl_keybuffer(sizes: Sequence[int] = (0, 1, 2, 4, 8, 16, 32),
                  workloads: Sequence[str] = ("bzip2", "hmmer", "tsp"),
                  scale: str = "default",
                  policies: Sequence[str] = ("lru",),
                  collect_metrics: bool = False,
                  executor: Optional[SweepExecutor] = None,
                  jobs: int = 1) -> Dict:
    """ABL-KB: keybuffer size/policy sweep (design choice of §3.5)."""
    names = _select_workloads(workloads, workloads)
    cells = []
    for policy in policies:
        for size in sizes:
            for name in names:
                cells.append(CellSpec(
                    workload=name, scheme="hwst128_tchk", scale=scale,
                    config=HwstConfig(keybuffer_entries=size,
                                      keybuffer_policy=policy),
                    group=name, tag=f"{name}/kb{size}/{policy}"))
    by_tag = {cell.tag: cell for cell in run_cells(cells, executor, jobs)}
    rows, failures = [], []
    for policy in policies:
        for size in sizes:
            entry = {"entries": size, "policy": policy}
            for name in names:
                run = by_tag[f"{name}/kb{size}/{policy}"]
                if not run.ok:
                    failures.append(run)
                    continue
                hits = run.stats.get("kb_hits", 0)
                misses = run.stats.get("kb_misses", 0)
                entry[name] = {
                    "cycles": run.cycles,
                    "hit_rate": hits / (hits + misses) if hits + misses
                    else 0.0,
                }
                if collect_metrics:
                    entry[name]["metrics"] = run.metrics
            rows.append(entry)
    data = {"rows": rows, "workloads": list(names),
            "policies": list(policies)}
    return _attach_failures(data, failures)


def abl_compression(workloads: Sequence[str] = ("tsp", "health",
                                                "bzip2"),
                    scale: str = "default",
                    executor: Optional[SweepExecutor] = None,
                    jobs: int = 1) -> Dict:
    """ABL-COMP: compressed 128-bit metadata (HWST128) vs uncompressed
    256-bit metadata (the WDL-wide datapath) — half the through-memory
    metadata traffic is the compression win of Section 3.3.

    Every cell's ``ok`` is checked: a faulted or aborted run lands in
    ``"failures"`` instead of feeding bogus cycles into the overheads.
    """
    names = _select_workloads(workloads, workloads)
    cells = []
    for name in names:
        for scheme in ("baseline", "hwst128_tchk", "wdl_wide"):
            cells.append(CellSpec(workload=name, scheme=scheme,
                                  scale=scale, tag=f"{name}/{scheme}"))
    by_tag = {cell.tag: cell for cell in run_cells(cells, executor, jobs)}
    rows, failures = [], []
    for name in names:
        base = by_tag[f"{name}/baseline"]
        compressed = by_tag[f"{name}/hwst128_tchk"]
        uncompressed = by_tag[f"{name}/wdl_wide"]
        bad = [cell for cell in (base, compressed, uncompressed)
               if not cell.ok]
        if bad:
            failures.extend(bad)
            continue
        rows.append({
            "workload": name,
            "compressed_oh": perf_overhead_pct(compressed.cycles,
                                               base.cycles),
            "uncompressed_oh": perf_overhead_pct(uncompressed.cycles,
                                                 base.cycles),
            "compressed_shadow_bytes": compressed.stats["shadow_bytes"],
            "uncompressed_shadow_bytes":
                uncompressed.stats["shadow_bytes"],
        })
    return _attach_failures({"rows": rows}, failures)


def abl_shadow_map(workloads: Sequence[str] = ("tsp", "health",
                                               "bzip2"),
                   scale: str = "default",
                   executor: Optional[SweepExecutor] = None,
                   jobs: int = 1) -> Dict:
    """ABL-LMSM: SBCETS with its two-level trie vs the linear-mapped
    shadow memory (the paper's hardware-friendly choice, Section 2).

    Like :func:`abl_compression`, rows are built only from cells that
    ran cleanly; the rest are reported as failures.
    """
    names = _select_workloads(workloads, workloads)
    cells = []
    for name in names:
        for scheme in ("baseline", "sbcets", "sbcets_lmsm"):
            cells.append(CellSpec(workload=name, scheme=scheme,
                                  scale=scale, tag=f"{name}/{scheme}"))
    by_tag = {cell.tag: cell for cell in run_cells(cells, executor, jobs)}
    rows, failures = [], []
    for name in names:
        base = by_tag[f"{name}/baseline"]
        trie = by_tag[f"{name}/sbcets"]
        linear = by_tag[f"{name}/sbcets_lmsm"]
        bad = [cell for cell in (base, trie, linear) if not cell.ok]
        if bad:
            failures.extend(bad)
            continue
        rows.append({
            "workload": name,
            "trie_oh": perf_overhead_pct(trie.cycles, base.cycles),
            "linear_oh": perf_overhead_pct(linear.cycles, base.cycles),
        })
    return _attach_failures({"rows": rows}, failures)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

EXPERIMENTS = {
    "fig2": lambda args: fig2_compression(
        scale=args.scale, workloads=args.workload_list,
        executor=args.executor),
    "fig4": lambda args: fig4_overhead(
        scale=args.scale, workloads=args.workload_list,
        collect_metrics=args.metrics, executor=args.executor),
    "fig5": lambda args: fig5_speedup(
        scale=args.scale, workloads=args.workload_list,
        executor=args.executor),
    "fig6": lambda args: fig6_coverage(fraction=args.fraction,
                                       executor=args.executor),
    "hwcost": lambda args: hwcost_table(),
    "abl_keybuffer": lambda args: abl_keybuffer(
        scale=args.scale, collect_metrics=args.metrics,
        executor=args.executor),
    "abl_compression": lambda args: abl_compression(
        scale=args.scale, executor=args.executor),
    "abl_shadow": lambda args: abl_shadow_map(scale=args.scale,
                                              executor=args.executor),
}


def _render(name: str, data: Dict) -> str:
    if "table" in data:
        return data["table"]
    return json.dumps(data, indent=2, default=str)


def _render_failures(name: str, failures: Sequence[str]) -> str:
    lines = [f"{name}: {len(failures)} failed cell(s):"]
    lines += [f"  {line}" for line in failures]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate HWST128 paper figures")
    parser.add_argument("experiment", nargs="?", default="all",
                        help="fig2|fig4|fig5|fig6|hwcost|abl_*|all")
    parser.add_argument("--scale", default="default",
                        choices=("default", "small"))
    parser.add_argument("--fraction", type=float, default=0.03,
                        help="Juliet corpus sample fraction")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep cells "
                        "(1 = serial, bit-identical results either way)")
    parser.add_argument("--workloads", metavar="A,B,...",
                        help="comma-separated workload subset "
                        "(fig2/fig4/fig5)")
    parser.add_argument("--metrics", action="store_true",
                        help="attach per-run metric snapshots to the "
                        "experiment data (fig4, abl_keybuffer)")
    parser.add_argument("--list", action="store_true")
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    args.workload_list = args.workloads.split(",") if args.workloads \
        else None
    selected = list(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in selected:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 1
    exit_code = 0
    with SweepExecutor(jobs=args.jobs) as executor:
        args.executor = executor
        for name in selected:
            print(f"=== {name} ===")
            try:
                data = EXPERIMENTS[name](args)
            except ValueError as err:
                print(f"error: {err}", file=sys.stderr)
                return 2
            print(_render(name, data))
            print()
            failures = data.get("failures")
            if failures:
                print(_render_failures(name, failures), file=sys.stderr)
                exit_code = 1
        print(executor.summary(), file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
