"""Figure/table regeneration entry points.

Each ``fig*``/``tab*``/``abl*`` function reproduces one paper artefact
and returns structured data; ``main`` renders text tables. Usage::

    python -m repro.harness.experiments --list
    python -m repro.harness.experiments fig4 --scale small
    python -m repro.harness.experiments all --scale small

``scale`` selects workload inputs: "default" is the calibrated
configuration used for EXPERIMENTS.md; "small" is a fast smoke
configuration (same shapes, looser numbers).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import HwstConfig, derive_field_widths
from repro.harness.coverage import (
    PAPER_COVERAGE, coverage_table, evaluate_coverage,
)
from repro.harness.runner import perf_overhead_pct, run_workload, speedup
from repro.pipeline.hwcost import HardwareCostModel
from repro.pipeline.timing import InOrderPipeline, TimingParams
from repro.schemes import compile_source
from repro.sim.machine import Machine
from repro.workloads import SPEC_FIG5, WORKLOADS
from repro.workloads.juliet import corpus_counts

# Paper reference numbers -----------------------------------------------------

PAPER_FIG4_GEOMEAN = {"sbcets": 441.45, "hwst128": 152.91,
                      "hwst128_tchk": 94.89}
PAPER_FIG5_GEOMEAN = {"bogo": 1.31, "wdl_narrow": 1.58,
                      "wdl_wide": 1.64, "hwst128_tchk": 3.74}
PAPER_FIG5_HIGHLIGHTS = {"bzip2": 7.98, "hmmer": 7.78}
PAPER_HWCOST = {"luts": 1536, "lut_pct": 4.11, "ffs": 112,
                "ff_pct": 0.66, "cp_before": 5.26, "cp_after": 6.45}


def _geomean(values: Sequence[float]) -> float:
    return math.prod(values) ** (1.0 / len(values)) if values else 0.0


# ---------------------------------------------------------------------------
# FIG2 — metadata compression widths (Eq. 3-6 census)
# ---------------------------------------------------------------------------

def fig2_compression(scale: str = "default",
                     workloads: Optional[Sequence[str]] = None) -> Dict:
    """Derive the compressed field widths from a workload census.

    Mirrors Section 3.3: run the suite, record the largest object and
    the number of lock_locations used, then apply Eq. 3-6 for both the
    paper's platform (256 GiB / 1 M locks -> 35/29/20/44) and the
    simulated platform.
    """
    names = list(workloads) if workloads else list(WORKLOADS)
    max_range = 8
    max_locks = 1
    config = HwstConfig()
    for name in names:
        machine = Machine(config=config)
        program = compile_source(WORKLOADS[name].source(scale),
                                 "hwst128_tchk", config)
        machine.run(program)
        comp = machine.compressor
        max_range = max(max_range, comp.max_range_seen)
        max_locks = max(max_locks, comp.max_lock_index_seen)
    paper = derive_field_widths(256 << 30, 1 << 28, 1_000_000)
    ours = derive_field_widths(config.user_top, max_range,
                               max(max_locks, 2))
    return {
        "census": {"max_object_bytes": max_range,
                   "lock_locations_used": max_locks,
                   "workloads": len(names)},
        "paper_platform": {"base": paper.base, "range": paper.range,
                           "lock": paper.lock, "key": paper.key},
        "sim_platform": {"base": ours.base, "range": ours.range,
                         "lock": ours.lock, "key": ours.key},
        "paper_reference": {"base": 35, "range": 29, "lock": 20,
                            "key": 44, "min_range_bits_for_spec": 25},
    }


# ---------------------------------------------------------------------------
# FIG4 — performance overhead (Eq. 7)
# ---------------------------------------------------------------------------

FIG4_SCHEMES = ("sbcets", "hwst128", "hwst128_tchk")

# Extra configuration beyond the paper's: full HWST128 with the static
# redundant-check eliminator (--elide-checks) switched on.
FIG4_ELIDE = "hwst128_tchk_elide"


def fig4_overhead(scale: str = "default",
                  workloads: Optional[Sequence[str]] = None,
                  timing_params: Optional[TimingParams] = None,
                  collect_metrics: bool = False,
                  include_elide: bool = True) -> Dict:
    """Fig. 4: perf.oh of SBCETS / HWST128 / HWST128_tchk per workload.

    With ``include_elide`` (default) every workload also runs under
    ``hwst128_tchk`` with static check elision; the row then carries
    ``checks_elided`` (the ``compile.analyze.checks_elided`` counter).
    With ``collect_metrics`` every row carries the per-run metric
    snapshots (``RunResult.metrics``, keyed by scheme), which the
    ``benchmarks/`` suite saves next to the overhead numbers.
    """
    names = list(workloads) if workloads else list(WORKLOADS)
    rows = []
    schemes = FIG4_SCHEMES + ((FIG4_ELIDE,) if include_elide else ())
    ratios = {scheme: [] for scheme in schemes}
    for name in names:
        base = run_workload(name, "baseline", scale=scale,
                            timing_params=timing_params)
        if not base.ok:
            raise RuntimeError(f"{name} baseline failed: {base.status}")
        row = {"workload": name, "group": WORKLOADS[name].group,
               "baseline_cycles": base.cycles}
        snapshots = {"baseline": base.metrics}
        for scheme in FIG4_SCHEMES:
            run = run_workload(name, scheme, scale=scale,
                               timing_params=timing_params)
            if not run.ok:
                raise RuntimeError(f"{name}/{scheme}: {run.status}")
            row[scheme] = perf_overhead_pct(run.cycles, base.cycles)
            ratios[scheme].append(run.cycles / base.cycles)
            snapshots[scheme] = run.metrics
        if include_elide:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            run = run_workload(name, "hwst128_tchk", scale=scale,
                               timing_params=timing_params,
                               config=HwstConfig(elide_checks=True),
                               metrics=registry)
            if not run.ok:
                raise RuntimeError(f"{name}/{FIG4_ELIDE}: {run.status}")
            row[FIG4_ELIDE] = perf_overhead_pct(run.cycles, base.cycles)
            row["checks_elided"] = registry.counter(
                "compile.analyze.checks_elided").value
            ratios[FIG4_ELIDE].append(run.cycles / base.cycles)
            snapshots[FIG4_ELIDE] = run.metrics
        if collect_metrics:
            row["metrics"] = snapshots
        rows.append(row)
    geomean = {scheme: 100.0 * (_geomean(values) - 1.0)
               for scheme, values in ratios.items()}
    return {"rows": rows, "geomean": geomean,
            "paper_geomean": dict(PAPER_FIG4_GEOMEAN)}


# ---------------------------------------------------------------------------
# FIG5 — speedup factors (Eq. 8)
# ---------------------------------------------------------------------------

FIG5_SCHEMES = ("bogo", "wdl_narrow", "wdl_wide", "hwst128_tchk")


def fig5_speedup(scale: str = "default",
                 workloads: Optional[Sequence[str]] = None) -> Dict:
    """Fig. 5: speedup over SBCETS for the acceleration schemes.

    Note (EXPERIMENTS.md): the paper's BOGO/WDL bars are literature
    values measured on x86 against x86 SBCETS; we re-implement the
    mechanisms on the simulated RISC-V pipeline, so our measured
    factors differ in level while HWST128 remains the fastest.
    """
    names = list(workloads) if workloads else list(SPEC_FIG5)
    rows = []
    ratios = {scheme: [] for scheme in FIG5_SCHEMES}
    for name in names:
        sbcets = run_workload(name, "sbcets", scale=scale)
        if not sbcets.ok:
            raise RuntimeError(f"{name}/sbcets: {sbcets.status}")
        row = {"workload": name, "sbcets_cycles": sbcets.cycles}
        for scheme in FIG5_SCHEMES:
            run = run_workload(name, scheme, scale=scale)
            if not run.ok:
                raise RuntimeError(f"{name}/{scheme}: {run.status}")
            row[scheme] = speedup(sbcets.cycles, run.cycles)
            ratios[scheme].append(row[scheme])
        rows.append(row)
    geomean = {scheme: _geomean(values)
               for scheme, values in ratios.items()}
    return {"rows": rows, "geomean": geomean,
            "paper_geomean": dict(PAPER_FIG5_GEOMEAN),
            "paper_highlights": dict(PAPER_FIG5_HIGHLIGHTS)}


# ---------------------------------------------------------------------------
# FIG6 — Juliet security coverage
# ---------------------------------------------------------------------------

FIG6_SCHEMES = ("gcc", "asan", "sbcets", "hwst128_tchk")


def fig6_coverage(fraction: float = 0.03,
                  schemes: Sequence[str] = FIG6_SCHEMES) -> Dict:
    """Fig. 6: coverage of GCC/ASAN/SBCETS/HWST128 on the corpus."""
    results = evaluate_coverage(schemes, fraction=fraction)
    counts = corpus_counts()
    return {
        "corpus": counts,
        "paper_corpus": {"spatial": 7074, "temporal": 1292,
                         "total": 8366},
        "fraction": fraction,
        "coverage": {s: r.coverage_pct for s, r in results.items()},
        "per_cwe": {s: {cwe: r.cwe_coverage_pct(cwe)
                        for cwe in sorted(r.per_cwe)}
                    for s, r in results.items()},
        "paper_coverage": dict(PAPER_COVERAGE),
        "table": coverage_table(results),
    }


# ---------------------------------------------------------------------------
# TAB-HW — Section 5.3 hardware cost
# ---------------------------------------------------------------------------

def hwcost_table(config: Optional[HwstConfig] = None) -> Dict:
    report = HardwareCostModel(config or HwstConfig()).report()
    return {
        "added_luts": report.added_luts,
        "lut_overhead_pct": round(report.lut_overhead_pct, 2),
        "added_ffs": report.added_ffs,
        "ff_overhead_pct": round(report.ff_overhead_pct, 2),
        "critical_path_before_ns": report.baseline_critical_path_ns,
        "critical_path_after_ns": report.critical_path_ns,
        "paper": dict(PAPER_HWCOST),
        "components": [(c.name, c.luts, c.ffs)
                       for c in report.components],
        "table": report.table(),
    }


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

def abl_keybuffer(sizes: Sequence[int] = (0, 1, 2, 4, 8, 16, 32),
                  workloads: Sequence[str] = ("bzip2", "hmmer", "tsp"),
                  scale: str = "default",
                  policies: Sequence[str] = ("lru",),
                  collect_metrics: bool = False) -> Dict:
    """ABL-KB: keybuffer size/policy sweep (design choice of §3.5)."""
    rows = []
    for policy in policies:
        for size in sizes:
            config = HwstConfig(keybuffer_entries=size,
                                keybuffer_policy=policy)
            entry = {"entries": size, "policy": policy}
            for name in workloads:
                run = run_workload(name, "hwst128_tchk", scale=scale,
                                   config=config)
                if not run.ok:
                    raise RuntimeError(f"{name}/kb={size}: {run.status}")
                hits = run.stats.get("kb_hits", 0)
                misses = run.stats.get("kb_misses", 0)
                entry[name] = {
                    "cycles": run.cycles,
                    "hit_rate": hits / (hits + misses) if hits + misses
                    else 0.0,
                }
                if collect_metrics:
                    entry[name]["metrics"] = run.metrics
            rows.append(entry)
    return {"rows": rows, "workloads": list(workloads),
            "policies": list(policies)}


def abl_compression(workloads: Sequence[str] = ("tsp", "health",
                                                "bzip2"),
                    scale: str = "default") -> Dict:
    """ABL-COMP: compressed 128-bit metadata (HWST128) vs uncompressed
    256-bit metadata (the WDL-wide datapath) — half the through-memory
    metadata traffic is the compression win of Section 3.3."""
    rows = []
    for name in workloads:
        base = run_workload(name, "baseline", scale=scale)
        compressed = run_workload(name, "hwst128_tchk", scale=scale)
        uncompressed = run_workload(name, "wdl_wide", scale=scale)
        rows.append({
            "workload": name,
            "compressed_oh": perf_overhead_pct(compressed.cycles,
                                               base.cycles),
            "uncompressed_oh": perf_overhead_pct(uncompressed.cycles,
                                                 base.cycles),
            "compressed_shadow_bytes": compressed.stats["shadow_bytes"],
            "uncompressed_shadow_bytes":
                uncompressed.stats["shadow_bytes"],
        })
    return {"rows": rows}


def abl_shadow_map(workloads: Sequence[str] = ("tsp", "health",
                                               "bzip2"),
                   scale: str = "default") -> Dict:
    """ABL-LMSM: SBCETS with its two-level trie vs the linear-mapped
    shadow memory (the paper's hardware-friendly choice, Section 2)."""
    rows = []
    for name in workloads:
        base = run_workload(name, "baseline", scale=scale)
        trie = run_workload(name, "sbcets", scale=scale)
        linear = run_workload(name, "sbcets_lmsm", scale=scale)
        rows.append({
            "workload": name,
            "trie_oh": perf_overhead_pct(trie.cycles, base.cycles),
            "linear_oh": perf_overhead_pct(linear.cycles, base.cycles),
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

EXPERIMENTS = {
    "fig2": lambda args: fig2_compression(scale=args.scale),
    "fig4": lambda args: fig4_overhead(scale=args.scale,
                                       collect_metrics=args.metrics),
    "fig5": lambda args: fig5_speedup(scale=args.scale),
    "fig6": lambda args: fig6_coverage(fraction=args.fraction),
    "hwcost": lambda args: hwcost_table(),
    "abl_keybuffer": lambda args: abl_keybuffer(
        scale=args.scale, collect_metrics=args.metrics),
    "abl_compression": lambda args: abl_compression(scale=args.scale),
    "abl_shadow": lambda args: abl_shadow_map(scale=args.scale),
}


def _render(name: str, data: Dict) -> str:
    if "table" in data:
        return data["table"]
    return json.dumps(data, indent=2, default=str)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate HWST128 paper figures")
    parser.add_argument("experiment", nargs="?", default="all",
                        help="fig2|fig4|fig5|fig6|hwcost|abl_*|all")
    parser.add_argument("--scale", default="default",
                        choices=("default", "small"))
    parser.add_argument("--fraction", type=float, default=0.03,
                        help="Juliet corpus sample fraction")
    parser.add_argument("--metrics", action="store_true",
                        help="attach per-run metric snapshots to the "
                        "experiment data (fig4, abl_keybuffer)")
    parser.add_argument("--list", action="store_true")
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    selected = list(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in selected:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 1
        print(f"=== {name} ===")
        print(_render(name, EXPERIMENTS[name](args)))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
