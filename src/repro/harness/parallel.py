"""Process-pool sweep executor with per-cell fault tolerance.

Every paper artefact is a sweep over (workload x scheme x config x
scale) cells. This module runs those cells through one engine:

* **Job specs are picklable.** A :class:`CellSpec` names either a
  registered workload or carries raw source, plus the scheme, scale,
  config and simulation knobs. Workers rebuild everything else.
* **Cells never abort the sweep.** Each cell returns a
  :class:`CellResult` envelope (``ok``/``status``/``error``/``cycles``/
  ``stats``/``metrics``); exceptions — compile errors, simulator bugs,
  bad configs — are caught in the worker and come back as
  ``status="error"`` with the traceback in ``error``. The experiment
  layer assembles rows from the survivors and reports the casualties.
* **Compilation is cached.** Workers share a per-process
  :class:`~repro.harness.compile_cache.CompileCache`; cells are grouped
  (by workload, by default) so one worker sees all schemes of a
  workload and compiles its front end exactly once.
* **Telemetry flows home.** Worker-side registry snapshots and cache
  counters merge into the parent executor's ``MetricsRegistry``
  (``compile.cache.hits`` etc.) and its merged ``obs`` snapshot.

``jobs=1`` runs every cell inline in the parent process — same code
path, no pool — and produces bit-identical experiment dicts to the
pre-executor serial harness.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import HwstConfig
from repro.harness.compile_cache import process_cache
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.pipeline.timing import TimingParams

__all__ = ["CellSpec", "CellResult", "SweepExecutor", "run_cells"]


@dataclass(frozen=True)
class CellSpec:
    """One picklable sweep cell: what to compile, how to run it.

    Exactly one of ``workload`` (registered name, rendered at
    ``scale``) or ``source`` (raw mini-C text) must be set. ``tag`` is
    the caller's cookie for finding this cell among the results;
    ``group`` keys worker affinity (cells sharing a group run on the
    same worker, in order, maximising compile-cache locality).
    """

    scheme: str
    workload: Optional[str] = None
    source: Optional[str] = None
    scale: str = "default"
    config: Optional[HwstConfig] = None
    timing: bool = True
    timing_params: Optional[TimingParams] = None
    max_instructions: int = 200_000_000
    collect_registry: bool = False
    group: Optional[str] = None
    tag: str = ""

    def __post_init__(self):
        if (self.workload is None) == (self.source is None):
            raise ValueError(
                "CellSpec needs exactly one of workload= or source=")

    @property
    def group_key(self) -> str:
        if self.group is not None:
            return self.group
        return self.workload if self.workload is not None else self.tag

    @property
    def label(self) -> str:
        name = self.workload if self.workload is not None else \
            (self.tag or "<source>")
        return f"{name}/{self.scheme}"


@dataclass
class CellResult:
    """Result envelope of one cell — failure is data, not control flow.

    ``error`` is non-empty only for infrastructure failures (the cell
    raised instead of producing a ``RunResult``); a simulated trap
    (violation, fault, abort) is a *measured* outcome with ``ok`` False
    and ``error`` empty.
    """

    tag: str
    workload: Optional[str]
    scheme: str
    ok: bool
    status: str
    exit_code: int = 0
    detail: str = ""
    error: str = ""
    cycles: int = 0
    instret: int = 0
    stats: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    obs: Dict[str, object] = field(default_factory=dict)

    @property
    def measured(self) -> bool:
        """True when the simulator produced a result (even a trap)."""
        return not self.error

    def failure_line(self) -> str:
        """One-line summary for the sweep failure report."""
        name = self.workload or self.tag or "<source>"
        if self.error:
            reason = self.error.strip().splitlines()[-1]
        else:
            reason = self.status
            if self.status == "exit":
                reason = f"exit code {self.exit_code}"
            if self.detail:
                reason += f" ({self.detail})"
        return f"{name}/{self.scheme}: {reason}"


def _execute_cell(spec: CellSpec) -> CellResult:
    """Run one cell in this process; never raises."""
    from repro.pipeline.timing import InOrderPipeline
    from repro.sim.machine import Machine
    from repro.workloads import WORKLOADS

    try:
        if spec.source is not None:
            source = spec.source
        else:
            workload = WORKLOADS.get(spec.workload)
            if workload is None:
                raise ValueError(
                    f"unknown workload {spec.workload!r}; known: "
                    f"{sorted(WORKLOADS)}")
            source = workload.source(spec.scale)
        config = spec.config or HwstConfig()
        registry = MetricsRegistry() if spec.collect_registry else None
        program = process_cache().compile(source, spec.scheme, config,
                                          metrics=registry)
        pipeline = InOrderPipeline(spec.timing_params, metrics=registry) \
            if spec.timing else None
        machine = Machine(config=config, timing=pipeline, metrics=registry)
        result = machine.run(program,
                             max_instructions=spec.max_instructions)
        return CellResult(
            tag=spec.tag, workload=spec.workload, scheme=spec.scheme,
            ok=result.ok, status=result.status,
            exit_code=result.exit_code, detail=result.detail,
            cycles=result.cycles, instret=result.instret,
            stats=result.stats, metrics=result.metrics,
            obs=registry.snapshot() if registry is not None else {})
    except Exception:
        return CellResult(
            tag=spec.tag, workload=spec.workload, scheme=spec.scheme,
            ok=False, status="error", error=traceback.format_exc())


def _run_group(specs: Sequence[CellSpec]
               ) -> Tuple[List[CellResult], Dict[str, int]]:
    """Worker entry point: run a group of cells on one process.

    Returns the envelopes plus the *delta* of this process's compile
    cache counters, so the parent can aggregate cache behaviour across
    a pool without double counting earlier groups.
    """
    cache = process_cache()
    before = cache.stats_snapshot()
    results = [_execute_cell(spec) for spec in specs]
    delta = {name: value - before[name]
             for name, value in cache.stats_snapshot().items()}
    return results, delta


class SweepExecutor:
    """Fan (workload, scheme, config, scale) cells across processes.

    ``jobs=1`` executes inline (deterministically identical to the old
    serial harness); ``jobs>1`` keeps a ``ProcessPoolExecutor`` alive
    across :meth:`run` calls so worker-side compile caches persist
    between experiments of an ``all`` sweep. Use as a context manager
    or call :meth:`close`.
    """

    def __init__(self, jobs: int = 1,
                 registry: Optional[MetricsRegistry] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.obs: Dict[str, object] = {}
        self.cells_run = 0
        self.cells_failed = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ---------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self):
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- execution ---------------------------------------------------------

    def run(self, cells: Sequence[CellSpec]) -> List[CellResult]:
        """Run every cell; results come back in input order."""
        cells = list(cells)
        groups: Dict[str, List[int]] = {}
        for index, spec in enumerate(cells):
            groups.setdefault(spec.group_key, []).append(index)
        results: List[Optional[CellResult]] = [None] * len(cells)
        if self.jobs == 1:
            for indices in groups.values():
                envelopes, delta = _run_group([cells[i] for i in indices])
                self._place(results, indices, envelopes, delta)
        else:
            pool = self._ensure_pool()
            futures = {
                pool.submit(_run_group, [cells[i] for i in indices]):
                indices for indices in groups.values()}
            for future in as_completed(futures):
                envelopes, delta = future.result()
                self._place(results, futures[future], envelopes, delta)
        done = [result for result in results if result is not None]
        assert len(done) == len(cells)
        self.cells_run += len(done)
        # Only infrastructure failures count against the sweep: a
        # simulated trap is a measurement (fig6 cells are *supposed*
        # to trap), not a failed cell.
        self.cells_failed += sum(1 for r in done if not r.measured)
        return done

    def _place(self, results, indices, envelopes, delta):
        for index, envelope in zip(indices, envelopes):
            results[index] = envelope
        self._absorb(delta)
        for envelope in envelopes:
            if envelope.obs:
                self.obs = merge_snapshots(self.obs, envelope.obs)

    def _absorb(self, delta: Dict[str, int]):
        """Fold a worker's cache-counter delta into the parent registry."""
        for name, value in delta.items():
            if isinstance(value, int) and value > 0:
                self.registry.counter(name).inc(value)
        self.obs = merge_snapshots(self.obs, delta)

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        hits = self.registry.counter("compile.cache.hits").value
        misses = self.registry.counter("compile.cache.misses").value
        return (f"sweep: cells={self.cells_run} "
                f"failed={self.cells_failed} jobs={self.jobs} "
                f"compile-cache hits={hits} misses={misses}")


def run_cells(cells: Sequence[CellSpec],
              executor: Optional[SweepExecutor] = None,
              jobs: int = 1) -> List[CellResult]:
    """Run cells on ``executor``, or a transient one (closed after)."""
    if executor is not None:
        return executor.run(cells)
    with SweepExecutor(jobs=jobs) as transient:
        return transient.run(cells)
