"""Process-pool sweep executor with per-cell fault tolerance.

Every paper artefact is a sweep over (workload x scheme x config x
scale) cells. This module runs those cells through one engine:

* **Job specs are picklable.** A :class:`CellSpec` names either a
  registered workload or carries raw source, plus the scheme, scale,
  config and simulation knobs. Workers rebuild everything else. Any
  other picklable object exposing ``execute() -> CellResult`` (plus
  ``tag``/``scheme``/``group_key``) runs through the same machinery —
  the fault-injection campaign's cells take this path.
* **Cells never abort the sweep.** Each cell returns a
  :class:`CellResult` envelope (``ok``/``status``/``error``/``cycles``/
  ``stats``/``metrics``); exceptions — compile errors, simulator bugs,
  bad configs — are caught in the worker and come back as
  ``status="error"`` with the traceback in ``error``. The experiment
  layer assembles rows from the survivors and reports the casualties.
* **Cells are bounded in time.** ``max_instructions`` is the
  deterministic step budget (the simulator raises SimLimitExceeded);
  ``wallclock_budget`` arms a per-cell thread-based deadline watchdog
  in the worker, so a wedged cell comes back as ``status="hang"``
  instead of stalling the sweep. The watchdog works off the main
  thread (unlike the SIGALRM timer it replaced), which is what lets
  ``repro.serve`` run deadline-bounded cells inside server workers.
* **Worker deaths are retried once.** A group whose worker process
  dies (BrokenProcessPool) is resubmitted exactly once on a fresh
  pool; a second death produces ``status="worker_died"`` envelopes.
  Retries are counted under ``sweep.worker_retries``.
* **Compilation is cached.** Workers share a per-process
  :class:`~repro.harness.compile_cache.CompileCache`; cells are grouped
  (by workload, by default) so one worker sees all schemes of a
  workload and compiles its front end exactly once.
* **Telemetry flows home.** Worker-side registry snapshots and cache
  counters merge into the parent executor's ``MetricsRegistry``
  (``compile.cache.hits`` etc.) and its merged ``obs`` snapshot.

``jobs=1`` runs every cell inline in the parent process — same code
path, no pool — and produces bit-identical experiment dicts to the
pre-executor serial harness.
"""

from __future__ import annotations

import ctypes
import threading
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import HwstConfig
from repro.harness.compile_cache import process_cache
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.pipeline.timing import TimingParams

__all__ = ["CellSpec", "CellResult", "SweepExecutor", "run_cells",
           "WallclockTimeout", "wallclock_guard", "DeadlineGuard",
           "STATUS_HANG", "STATUS_WORKER_DIED"]

#: Envelope statuses minted by the executor itself (never by the
#: simulator): the per-cell watchdog fired / the worker process died
#: twice.
STATUS_HANG = "hang"
STATUS_WORKER_DIED = "worker_died"


class WallclockTimeout(Exception):
    """Raised inside a worker when the per-cell watchdog fires.

    ``budget`` is optional because the asynchronous delivery path
    (``PyThreadState_SetAsyncExc``) instantiates the class with no
    arguments; :func:`wallclock_guard` re-raises with the budget
    attached so envelopes keep their informative detail line.
    """

    def __init__(self, budget: Optional[float] = None):
        if budget is None:
            super().__init__("wallclock budget exceeded")
        else:
            super().__init__(f"wallclock budget {budget:g}s exceeded")
        self.budget = budget


#: Asynchronous cross-thread raises need the CPython C API; on any
#: other interpreter the watchdog degrades to a no-op (the
#: deterministic step budget still bounds every cell).
_CAN_ASYNC_RAISE = hasattr(ctypes, "pythonapi") and \
    hasattr(ctypes.pythonapi, "PyThreadState_SetAsyncExc")


def _async_raise(tid: int, exc_type) -> int:
    """Schedule ``exc_type`` to be raised in thread ``tid`` at its next
    bytecode boundary. Returns the number of thread states modified."""
    modified = ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_ulong(tid), ctypes.py_object(exc_type))
    if modified > 1:           # invalid tid matched several states:
        _clear_async_raise(tid)  # undo, never poison a random thread
    return modified


def _clear_async_raise(tid: int) -> None:
    ctypes.pythonapi.PyThreadState_SetAsyncExc(ctypes.c_ulong(tid), None)


class DeadlineGuard:
    """One armed deadline for the *current* thread.

    A daemon :class:`threading.Timer` fires after ``budget`` seconds
    and schedules :class:`WallclockTimeout` in the guarded thread via
    ``PyThreadState_SetAsyncExc`` — no signals, no main-thread
    requirement, so it works inside pool workers and server threads
    alike. The fire/disarm race is resolved under a lock: once
    :meth:`disarm` returns, the timer can no longer raise, and a fire
    that won the race but whose exception has not surfaced yet is
    converted into a deterministic raise by the caller
    (:func:`wallclock_guard`).
    """

    __slots__ = ("budget", "_tid", "_lock", "_state", "_timer")

    def __init__(self, budget: float):
        self.budget = budget
        self._tid = threading.get_ident()
        self._lock = threading.Lock()
        self._state = "armed"          # armed -> fired | disarmed
        self._timer = threading.Timer(budget, self._fire)
        self._timer.daemon = True

    def start(self):
        self._timer.start()

    def _fire(self):
        with self._lock:
            if self._state != "armed":
                return
            self._state = "fired"
            _async_raise(self._tid, WallclockTimeout)

    def disarm(self) -> bool:
        """Cancel the timer; True when it already fired."""
        with self._lock:
            fired = self._state == "fired"
            self._state = "disarmed"
        self._timer.cancel()
        return fired


@contextmanager
def wallclock_guard(budget: Optional[float]):
    """Arm a deadline watchdog for ``budget`` seconds around a cell.

    Yields True when the watchdog is armed. Degrades to a no-op (yields
    False) when no budget is set or asynchronous cross-thread raises
    are unavailable (non-CPython) — the deterministic step budget still
    bounds the cell in that case. Unlike the SIGALRM watchdog this
    replaces, the guard works on *any* thread, which is what lets
    ``repro.serve`` enforce per-request deadlines inside worker
    processes and threads.
    """
    usable = budget is not None and budget > 0 and _CAN_ASYNC_RAISE
    if not usable:
        yield False
        return

    guard = DeadlineGuard(budget)
    guard.start()
    delivered = False
    try:
        yield True
    except WallclockTimeout:
        delivered = True
        # Normalise: the async path raises the bare class; re-raise
        # with the budget attached for an informative envelope detail.
        raise WallclockTimeout(budget) from None
    finally:
        fired = guard.disarm()
        if fired and not delivered:
            # The timer won the race but its exception has not surfaced
            # in the body (it would detonate at some later bytecode
            # boundary — possibly far outside this guard). Clear the
            # pending raise and convert it into a deterministic one.
            _clear_async_raise(threading.get_ident())
            raise WallclockTimeout(budget)


@dataclass(frozen=True)
class CellSpec:
    """One picklable sweep cell: what to compile, how to run it.

    Exactly one of ``workload`` (registered name, rendered at
    ``scale``) or ``source`` (raw mini-C text) must be set. ``tag`` is
    the caller's cookie for finding this cell among the results;
    ``group`` keys worker affinity (cells sharing a group run on the
    same worker, in order, maximising compile-cache locality).
    """

    scheme: str
    workload: Optional[str] = None
    source: Optional[str] = None
    scale: str = "default"
    config: Optional[HwstConfig] = None
    timing: bool = True
    timing_params: Optional[TimingParams] = None
    max_instructions: int = 200_000_000
    # Per-cell wallclock watchdog (seconds); None leaves only the
    # deterministic step budget above. See wallclock_guard().
    wallclock_budget: Optional[float] = None
    collect_registry: bool = False
    group: Optional[str] = None
    tag: str = ""

    def __post_init__(self):
        if (self.workload is None) == (self.source is None):
            raise ValueError(
                "CellSpec needs exactly one of workload= or source=")

    @property
    def group_key(self) -> str:
        if self.group is not None:
            return self.group
        return self.workload if self.workload is not None else self.tag

    @property
    def label(self) -> str:
        name = self.workload if self.workload is not None else \
            (self.tag or "<source>")
        return f"{name}/{self.scheme}"


@dataclass
class CellResult:
    """Result envelope of one cell — failure is data, not control flow.

    ``error`` is non-empty only for infrastructure failures (the cell
    raised instead of producing a ``RunResult``); a simulated trap
    (violation, fault, abort) is a *measured* outcome with ``ok`` False
    and ``error`` empty.
    """

    tag: str
    workload: Optional[str]
    scheme: str
    ok: bool
    status: str
    exit_code: int = 0
    detail: str = ""
    error: str = ""
    cycles: int = 0
    instret: int = 0
    stats: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    obs: Dict[str, object] = field(default_factory=dict)
    # Uniform trap classification (RunResult.trap_class/trap_pc).
    trap_class: str = ""
    trap_pc: Optional[int] = None
    # Free-form payload for generic cells (fault-injection verdicts …).
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def measured(self) -> bool:
        """True when the simulator produced a result (even a trap)."""
        return not self.error and self.status not in (
            STATUS_HANG, STATUS_WORKER_DIED)

    def failure_line(self) -> str:
        """One-line summary for the sweep failure report."""
        name = self.workload or self.tag or "<source>"
        if self.error:
            reason = self.error.strip().splitlines()[-1]
        else:
            reason = self.status
            if self.status == "exit":
                reason = f"exit code {self.exit_code}"
            if self.detail:
                reason += f" ({self.detail})"
        return f"{name}/{self.scheme}: {reason}"


def _spec_identity(spec) -> Tuple[str, Optional[str], str]:
    """(tag, workload, scheme) for envelope construction, tolerant of
    generic (non-CellSpec) job specs."""
    return (getattr(spec, "tag", "") or "",
            getattr(spec, "workload", None),
            getattr(spec, "scheme", "") or "")


def _run_cellspec(spec: CellSpec) -> CellResult:
    """The classic compile-and-simulate cell body (may raise)."""
    from repro.pipeline.timing import InOrderPipeline
    from repro.sim.machine import Machine
    from repro.workloads import WORKLOADS

    if spec.source is not None:
        source = spec.source
    else:
        workload = WORKLOADS.get(spec.workload)
        if workload is None:
            raise ValueError(
                f"unknown workload {spec.workload!r}; known: "
                f"{sorted(WORKLOADS)}")
        source = workload.source(spec.scale)
    config = spec.config or HwstConfig()
    registry = MetricsRegistry() if spec.collect_registry else None
    program = process_cache().compile(source, spec.scheme, config,
                                      metrics=registry)
    pipeline = InOrderPipeline(spec.timing_params, metrics=registry) \
        if spec.timing else None
    machine = Machine(config=config, timing=pipeline, metrics=registry)
    result = machine.run(program,
                         max_instructions=spec.max_instructions)
    return CellResult(
        tag=spec.tag, workload=spec.workload, scheme=spec.scheme,
        ok=result.ok, status=result.status,
        exit_code=result.exit_code, detail=result.detail,
        cycles=result.cycles, instret=result.instret,
        stats=result.stats, metrics=result.metrics,
        trap_class=result.trap_class, trap_pc=result.trap_pc,
        obs=registry.snapshot() if registry is not None else {})


def _execute_cell(spec) -> CellResult:
    """Run one cell in this process; never raises.

    ``spec`` is either a :class:`CellSpec` or any picklable object with
    an ``execute() -> CellResult`` method (generic cells — e.g.
    fault-injection jobs). Both run under the wallclock watchdog when
    the spec carries a ``wallclock_budget``.
    """
    tag, workload, scheme = _spec_identity(spec)
    budget = getattr(spec, "wallclock_budget", None)
    try:
        with wallclock_guard(budget):
            execute = getattr(spec, "execute", None)
            if execute is not None:
                return execute()
            return _run_cellspec(spec)
    except WallclockTimeout as timeout:
        return CellResult(
            tag=tag, workload=workload, scheme=scheme,
            ok=False, status=STATUS_HANG, detail=str(timeout),
            extra={"watchdog_fired": True})
    except Exception:
        return CellResult(
            tag=tag, workload=workload, scheme=scheme,
            ok=False, status="error", error=traceback.format_exc())


def _run_group(specs: Sequence[CellSpec]
               ) -> Tuple[List[CellResult], Dict[str, int]]:
    """Worker entry point: run a group of cells on one process.

    Returns the envelopes plus the *delta* of this process's compile
    cache counters, so the parent can aggregate cache behaviour across
    a pool without double counting earlier groups.
    """
    cache = process_cache()
    before = cache.stats_snapshot()
    results = [_execute_cell(spec) for spec in specs]
    delta = {name: value - before[name]
             for name, value in cache.stats_snapshot().items()}
    return results, delta


class SweepExecutor:
    """Fan (workload, scheme, config, scale) cells across processes.

    ``jobs=1`` executes inline (deterministically identical to the old
    serial harness); ``jobs>1`` keeps a ``ProcessPoolExecutor`` alive
    across :meth:`run` calls so worker-side compile caches persist
    between experiments of an ``all`` sweep. Use as a context manager
    or call :meth:`close`.
    """

    def __init__(self, jobs: int = 1,
                 registry: Optional[MetricsRegistry] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.obs: Dict[str, object] = {}
        self.cells_run = 0
        self.cells_failed = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._progress: Optional[Callable[[int, int], None]] = None
        self._progress_done = 0
        self._progress_total = 0

    # -- lifecycle ---------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self):
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- execution ---------------------------------------------------------

    def run(self, cells: Sequence[CellSpec],
            progress: Optional[Callable[[int, int], None]] = None,
            ) -> List[CellResult]:
        """Run every cell; results come back in input order.

        ``progress(done, total)`` — when given — is called in the
        parent process after each cell *group* completes (in
        completion order under a pool), with the running count of
        finished cells. Campaign heartbeats hang off this hook; a
        callback that raises aborts the sweep, so keep it cheap.
        """
        cells = list(cells)
        groups: Dict[str, List[int]] = {}
        for index, spec in enumerate(cells):
            key = getattr(spec, "group_key", None)
            if key is None:
                key = getattr(spec, "tag", "") or str(index)
            groups.setdefault(key, []).append(index)
        results: List[Optional[CellResult]] = [None] * len(cells)
        self._progress_done = 0
        self._progress = progress
        self._progress_total = len(cells)
        if self.jobs == 1:
            for indices in groups.values():
                envelopes, delta = _run_group([cells[i] for i in indices])
                self._place(results, indices, envelopes, delta)
        else:
            self._run_pooled(cells, list(groups.values()), results)
        self._progress = None
        done = [result for result in results if result is not None]
        assert len(done) == len(cells)
        self.cells_run += len(done)
        # Only infrastructure failures count against the sweep: a
        # simulated trap is a measurement (fig6 cells are *supposed*
        # to trap), not a failed cell.
        self.cells_failed += sum(1 for r in done if not r.measured)
        return done

    def _run_pooled(self, cells, pending: List[List[int]], results):
        """Fan groups over the pool; retry dead workers exactly once.

        A worker process dying (os._exit, segfault, OOM-kill) breaks
        the whole ProcessPoolExecutor: *every* unfinished future raises
        instead of returning envelopes — including groups that were
        merely queued behind the culprit. Each failed group is
        therefore retried once in its own isolated single-worker pool,
        so a persistently dying group cannot poison a healthy group's
        retry. The cells are deterministic, so a *transient* death
        (e.g. memory pressure) recovers with identical results; a group
        that dies again on its isolated retry gets
        ``status="worker_died"`` envelopes.
        """
        pool = self._ensure_pool()
        futures = {
            pool.submit(_run_group, [cells[i] for i in indices]):
            indices for indices in pending}
        failed: List[List[int]] = []
        for future in as_completed(futures):
            try:
                envelopes, delta = future.result()
            except Exception:
                failed.append(futures[future])
                continue
            self._place(results, futures[future], envelopes, delta)
        if not failed:
            return
        # The shared pool is broken; drop it (the next run() call
        # rebuilds it lazily) and retry each casualty in isolation.
        self.close()
        self.registry.counter("sweep.worker_retries").inc(len(failed))
        for indices in failed:
            try:
                with ProcessPoolExecutor(max_workers=1) as solo:
                    envelopes, delta = solo.submit(
                        _run_group,
                        [cells[i] for i in indices]).result()
            except Exception:
                for i in indices:
                    tag, workload, scheme = _spec_identity(cells[i])
                    results[i] = CellResult(
                        tag=tag, workload=workload, scheme=scheme,
                        ok=False, status=STATUS_WORKER_DIED,
                        error="worker process died twice running "
                              "this cell group")
                self._note_progress(len(indices))
                continue
            self._place(results, indices, envelopes, delta)

    def _place(self, results, indices, envelopes, delta):
        for index, envelope in zip(indices, envelopes):
            results[index] = envelope
        self._absorb(delta)
        for envelope in envelopes:
            if envelope.obs:
                self.obs = merge_snapshots(self.obs, envelope.obs)
        self._note_progress(len(envelopes))

    def _note_progress(self, completed: int):
        self._progress_done += completed
        if self._progress is not None:
            self._progress(self._progress_done, self._progress_total)

    def _absorb(self, delta: Dict[str, int]):
        """Fold a worker's cache-counter delta into the parent registry."""
        for name, value in delta.items():
            if isinstance(value, int) and value > 0:
                self.registry.counter(name).inc(value)
        self.obs = merge_snapshots(self.obs, delta)

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        hits = self.registry.counter("compile.cache.hits").value
        misses = self.registry.counter("compile.cache.misses").value
        line = (f"sweep: cells={self.cells_run} "
                f"failed={self.cells_failed} jobs={self.jobs} "
                f"compile-cache hits={hits} misses={misses}")
        retries = self.registry.counter("sweep.worker_retries").value
        if retries:
            line += f" worker-retries={retries}"
        return line


def run_cells(cells: Sequence[CellSpec],
              executor: Optional[SweepExecutor] = None,
              jobs: int = 1,
              progress: Optional[Callable[[int, int], None]] = None,
              ) -> List[CellResult]:
    """Run cells on ``executor``, or a transient one (closed after)."""
    if executor is not None:
        return executor.run(cells, progress=progress)
    with SweepExecutor(jobs=jobs) as transient:
        return transient.run(cells, progress=progress)
