"""Run helpers and the paper's evaluation math (Eq. 7/8)."""

from __future__ import annotations

import gc
import time
from typing import Dict, Optional, Tuple

from repro.core.config import HwstConfig
from repro.pipeline.timing import InOrderPipeline, TimingParams
from repro.schemes import compile_source
from repro.sim.machine import (
    Machine, RunResult, STATUS_ABORT, STATUS_FAULT, STATUS_SPATIAL,
    STATUS_TEMPORAL,
)
from repro.workloads import WORKLOADS


def run_program(source: str, scheme: str,
                config: Optional[HwstConfig] = None,
                timing: bool = True,
                timing_params: Optional[TimingParams] = None,
                max_instructions: int = 200_000_000,
                metrics=None, tracer=None, profiler=None,
                phases=None, cache=None,
                engine: str = "ref") -> RunResult:
    """Compile + execute one program under one scheme.

    Observability hooks (``metrics``/``tracer``/``profiler``/compile
    ``phases``) are optional and off by default; when a shared
    registry is passed, compile-phase, simulator and pipeline metrics
    all land in the same snapshot (``RunResult.metrics``).

    ``cache`` (a :class:`repro.harness.compile_cache.CompileCache`)
    reuses an identical compiled ``Program`` instead of rebuilding it;
    a custom ``phases`` object is ignored on that path (the cache
    times only work it actually performs).

    ``engine`` selects the execution core (``ref`` | ``fast``, see
    :func:`repro.sim.make_machine`); every architecturally visible
    outcome is engine-independent.
    """
    from repro.sim import make_machine

    config = config or HwstConfig()
    if cache is not None:
        program = cache.compile(source, scheme, config,
                                metrics=metrics, tracer=tracer)
    else:
        if phases is None and metrics is not None:
            from repro.obs.phases import PhaseTimers
            phases = PhaseTimers(metrics=metrics, tracer=tracer)
        program = compile_source(source, scheme, config, phases=phases)
    pipeline = InOrderPipeline(timing_params, metrics=metrics) \
        if timing else None
    machine = make_machine(engine, config=config, timing=pipeline,
                           metrics=metrics, tracer=tracer,
                           profiler=profiler)
    return machine.run(program, max_instructions=max_instructions)


def run_workload(name: str, scheme: str, scale: str = "default",
                 **kwargs) -> RunResult:
    """Run a registered benchmark workload under a scheme.

    Keyword arguments (including ``cache=``) pass through to
    :func:`run_program`.
    """
    return run_program(WORKLOADS[name].source(scale), scheme, **kwargs)


def timed_run(source: str, scheme: str,
              config: Optional[HwstConfig] = None,
              timing: bool = True,
              max_instructions: int = 200_000_000,
              profile: bool = False,
              engine: str = "ref") -> Tuple[RunResult, Dict]:
    """One *measured* compile+run: the bench runner's unit of work.

    Compiles without any cache (so compile-phase wall time is real
    work, not a pickle load), times ``Machine.run`` with
    ``perf_counter``, and returns ``(result, sample)`` where
    ``sample`` carries the host-side measurements of this repetition:

    * ``wall_s`` — wall-clock seconds of the simulation loop only (the
      cyclic collector is drained before the clock starts and disabled
      while it runs, so neither a previous rep's garbage nor a gen2
      pass over the process heap bills its pauses to this rep);
    * ``compile_s`` / ``phases_ms`` — compile wall time, total and per
      phase (lex/parse/…/link, from :class:`PhaseTimers`);
    * ``peak_rss_kb`` / ``gc_collections`` — host gauges sampled after
      the run (:mod:`repro.obs.host`, the same source of truth the
      machine stamps into ``RunResult.metrics``);
    * ``profile`` (only with ``profile=True``) — the deterministic
      per-function cycle list
      (:meth:`~repro.obs.profiler.ProfileReport.function_summary`).
    """
    from repro.obs.host import gc_collections, peak_rss_kb
    from repro.obs.phases import PhaseTimers
    from repro.obs.profiler import CycleProfiler
    from repro.sim import make_machine

    config = config or HwstConfig()
    phases = PhaseTimers()
    program = compile_source(source, scheme, config, phases=phases)
    profiler = CycleProfiler() if profile else None
    pipeline = InOrderPipeline() if timing else None
    machine = make_machine(engine, config=config, timing=pipeline,
                           profiler=profiler)
    # Measurement isolation: drain the cyclic collector (the previous
    # rep's dead machine and this rep's compile garbage otherwise pay
    # their collector pauses inside *this* rep's timed region), then
    # keep it off for the run itself — a translation cache allocating
    # thousands of closures triggers full gen2 passes over the whole
    # process heap, a double-digit-millisecond pause billed to whatever
    # rep it lands in.  Exactly one machine lives inside the disabled
    # window, so the deferred garbage is bounded.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        t0 = time.perf_counter()
        result = machine.run(program, max_instructions=max_instructions)
        wall = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    sample: Dict = {
        "wall_s": wall,
        "compile_s": sum(phases.seconds.values()),
        "phases_ms": phases.summary(),
        "peak_rss_kb": peak_rss_kb(),
        "gc_collections": gc_collections(),
    }
    if profiler is not None:
        sample["profile"] = profiler.report(program).function_summary()
    return result, sample


def perf_overhead_pct(instrumented_cycles: int,
                      baseline_cycles: int) -> float:
    """Eq. 7: perf.oh(%) = (instrumented/baseline - 1) * 100."""
    if baseline_cycles <= 0:
        raise ValueError("baseline cycles must be positive")
    return (instrumented_cycles / baseline_cycles - 1.0) * 100.0


def speedup(sbcets_cycles: int, accelerated_cycles: int) -> float:
    """Eq. 8: speedup(x) = SBCETS_cycles / accelerated_cycles."""
    if accelerated_cycles <= 0:
        raise ValueError("accelerated cycles must be positive")
    return sbcets_cycles / accelerated_cycles


# Detection classification (Section 4: "parsing the output of the test
# case to observe if any violation is detected" — a report counts, a
# silent crash does not).

def detected(scheme: str, result: RunResult) -> bool:
    """Did this scheme's tooling *report* a violation on this run?"""
    if scheme in ("sbcets", "sbcets_lmsm", "hwst128", "hwst128_tchk",
                  "bogo", "wdl_narrow", "wdl_wide"):
        return result.status in (STATUS_SPATIAL, STATUS_TEMPORAL)
    if scheme == "asan":
        # ASAN prints a report for its own checks and for SEGV.
        if result.status == STATUS_ABORT and "asan" in result.detail:
            return True
        return result.status == STATUS_FAULT
    if scheme == "gcc":
        return result.status == STATUS_ABORT and \
            "smash" in result.detail
    return False  # baseline: crashes produce no diagnostic
