"""Fig. 6: Juliet security-coverage evaluation.

Runs every (sampled) bad case under each scheme, classifies detections
with :func:`repro.harness.runner.detected`, and aggregates coverage per
CWE and overall — the percentages of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.harness.parallel import CellSpec, SweepExecutor, run_cells
from repro.harness.runner import detected
from repro.workloads.juliet import (
    JulietCase, SPATIAL_CWES, TEMPORAL_CWES, generate_corpus,
)

# Paper Fig. 6 overall coverage (% of 8366 cases).
PAPER_COVERAGE = {
    "gcc": 11.20,
    "asan": 58.08,
    "sbcets": 64.49,
    "hwst128_tchk": 63.63,
}


@dataclass
class CoverageResult:
    scheme: str
    total: int = 0
    detected: int = 0
    per_cwe: Dict[int, List[int]] = field(default_factory=dict)
    # case_id -> status string, for drill-down
    failures: List[str] = field(default_factory=list)

    @property
    def coverage_pct(self) -> float:
        return 100.0 * self.detected / self.total if self.total else 0.0

    def cwe_coverage_pct(self, cwe: int) -> float:
        det, tot = self.per_cwe.get(cwe, (0, 0))
        return 100.0 * det / tot if tot else 0.0

    def record(self, case: JulietCase, was_detected: bool):
        self.total += 1
        det, tot = self.per_cwe.get(case.cwe, (0, 0))
        self.per_cwe[case.cwe] = (det + int(was_detected), tot + 1)
        if was_detected:
            self.detected += 1


def evaluate_coverage(schemes: Iterable[str],
                      fraction: float = 0.05,
                      cases: Optional[List[JulietCase]] = None,
                      check_good: bool = False,
                      max_instructions: int = 5_000_000,
                      executor: Optional[SweepExecutor] = None,
                      jobs: int = 1) -> Dict[str, CoverageResult]:
    """Measure Fig. 6 coverage for the given schemes.

    ``fraction`` selects a stratified sample preserving the corpus
    proportions; ``check_good`` additionally runs every good variant
    and records false positives in ``failures``. (case, scheme) cells
    fan out through ``executor`` (or a transient one with ``jobs``
    workers); a cell whose toolchain raised — as opposed to a simulated
    trap, which is a measured outcome — counts as not-detected and is
    recorded as a ``sweep error`` line in ``failures``.
    """
    if cases is None:
        cases = generate_corpus(fraction=fraction)
    schemes = list(schemes)
    cells = []
    for scheme in schemes:
        for case in cases:
            cells.append(CellSpec(
                source=case.bad_source, scheme=scheme, timing=False,
                max_instructions=max_instructions,
                group=case.case_id, tag=f"{scheme}/{case.case_id}/bad"))
            if check_good:
                cells.append(CellSpec(
                    source=case.good_source, scheme=scheme,
                    timing=False, max_instructions=max_instructions,
                    group=case.case_id,
                    tag=f"{scheme}/{case.case_id}/good"))
    by_tag = {cell.tag: cell for cell in run_cells(cells, executor, jobs)}
    results: Dict[str, CoverageResult] = {}
    for scheme in schemes:
        result = CoverageResult(scheme=scheme)
        for case in cases:
            run = by_tag[f"{scheme}/{case.case_id}/bad"]
            if not run.measured:
                result.record(case, False)
                result.failures.append(
                    f"{case.case_id}: sweep error -> "
                    f"{run.failure_line()}")
            else:
                result.record(case, detected(scheme, run))
            if check_good:
                good = by_tag[f"{scheme}/{case.case_id}/good"]
                if not (good.status == "exit" and good.exit_code == 0):
                    result.failures.append(
                        f"{case.case_id}: good variant -> {good.status}")
        results[scheme] = result
    return results


def coverage_table(results: Dict[str, CoverageResult]) -> str:
    """Render the Fig. 6 comparison table (measured vs paper)."""
    lines = [f"{'scheme':14s} {'measured':>9s} {'paper':>7s}   per-CWE"]
    for scheme, result in results.items():
        paper = PAPER_COVERAGE.get(scheme)
        paper_s = f"{paper:6.2f}%" if paper is not None else "    -  "
        cwes = " ".join(
            f"{cwe}:{result.cwe_coverage_pct(cwe):.0f}%"
            for cwe in (*SPATIAL_CWES, *TEMPORAL_CWES)
            if cwe in result.per_cwe
        )
        lines.append(
            f"{scheme:14s} {result.coverage_pct:8.2f}% {paper_s}   {cwes}")
    return "\n".join(lines)
