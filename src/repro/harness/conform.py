"""Conformance campaign: the executable spec against the ISS engines.

This is the harness side of ``repro.spec`` — the only layer that knows
both worlds. It builds picklable cells for the sweep executor:

* :class:`ConformEquivCell` — one mnemonic's per-instruction
  equivalence battery (``repro.spec.equiv``) against a real machine,
  across all four compression geometries;
* :class:`ConformLockstepCell` — one program (workload kernel or fuzz
  program) co-simulated instruction-by-instruction against the
  reference engine, then replayed end-to-end on the fast engine with
  the run-level observables (status / exit code / instret / output /
  trap class / trap pc) compared against the agreed outcome.

:func:`run_conform` fans the cells through :class:`SweepExecutor`
(same heartbeat + telemetry discipline as the fuzz and fault-injection
campaigns) and folds the envelopes into a deterministic
``repro.spec/v1`` report: results appear in cell input order, no
timestamps or host state, so same-seed runs are byte-identical at any
``--jobs``.

Divergence is *data* here (campaigns complete and report), and becomes
an exit code only at the CLI (``repro conform`` exits
``EXIT_SPEC_DIVERGENCE``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import FieldWidths, HwstConfig
from repro.harness.compile_cache import process_cache
from repro.harness.parallel import CellResult, SweepExecutor
from repro.harness.runner import WORKLOADS
from repro.isa.instructions import SPEC_TABLE
from repro.obs.heartbeat import Heartbeat
from repro.obs.metrics import MetricsRegistry
from repro.spec import geometry
from repro.spec.equiv import all_mnemonics, run_mnemonic
from repro.spec.lockstep import classify_trap, run_lockstep
from repro.spec.state import STATUS_BY_KIND

REPORT_SCHEMA = "repro.spec/v1"
DEFAULT_SEED = 20260807
DEFAULT_FUZZ_COUNT = 200
DEFAULT_MAX_INSTRUCTIONS = 2_000_000

#: Scheme selection for lockstep: the full HWST128 pipeline with
#: temporal checks, plus the MPX- and AVX-comparator extensions, so
#: every custom instruction class appears in real instruction streams.
CONFORM_SCHEMES: Tuple[str, ...] = ("hwst128_tchk", "bogo", "wdl_wide")
FUZZ_SCHEME = "hwst128"

__all__ = [
    "REPORT_SCHEMA", "DEFAULT_SEED", "CONFORM_SCHEMES", "EquivBench",
    "ConformEquivCell", "ConformLockstepCell", "build_cells",
    "run_conform", "report_to_json", "divergences_of",
]


def widths_of(config: HwstConfig) -> Tuple[int, int, int, int]:
    w = config.widths
    return (w.base, w.range, w.lock, w.key)


# ---------------------------------------------------------------------------
# Equivalence bench (the machine factory injected into repro.spec.equiv)
# ---------------------------------------------------------------------------

class EquivBench:
    """Per-geometry machines for single-instruction cases.

    One machine per compression geometry, reused across cases —
    ``machine.load`` fully resets architectural state, so each case
    starts from reset with exactly one instruction at ``text_base``.
    """

    def __init__(self, engine: str = "ref"):
        self.engine = engine
        self._machines: Dict[int, object] = {}

    def machine_for(self, geom: int, ins):
        from repro.sim import make_machine
        from repro.sim.memory import DEFAULT_LAYOUT
        from repro.sim.program import Program

        machine = self._machines.get(geom)
        if machine is None:
            widths = geometry.GEOMETRIES[geom]
            config = HwstConfig(
                widths=FieldWidths(*widths),
                lock_entries=min(1 << widths[2], 1 << 20))
            machine = make_machine(self.engine, config=config, timing=None)
            self._machines[geom] = machine
        program = Program(instrs=[ins], entry=DEFAULT_LAYOUT.text_base)
        machine.load(program)
        return machine


@dataclass(frozen=True)
class ConformEquivCell:
    """Sweep cell: one mnemonic's full equivalence battery."""

    mnemonic: str
    seed: int
    engine: str = "ref"

    @property
    def tag(self) -> str:
        return f"equiv/{self.mnemonic}"

    @property
    def workload(self) -> Optional[str]:
        return None

    @property
    def scheme(self) -> str:
        return "equiv"

    @property
    def group_key(self) -> str:
        return self.tag

    def execute(self) -> CellResult:
        bench = EquivBench(self.engine)
        result = run_mnemonic(self.mnemonic, self.seed, bench)
        divergences = result["divergences"]
        return CellResult(
            tag=self.tag, workload=None, scheme="equiv",
            ok=not divergences,
            status="ok" if not divergences else "divergence",
            stats={"cases": result["cases"],
                   "divergences": len(divergences)},
            extra={"mnemonic": self.mnemonic,
                   "cases": result["cases"],
                   "divergences": divergences})


# ---------------------------------------------------------------------------
# Lockstep cells
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ConformLockstepCell:
    """Sweep cell: one program in lockstep against the reference
    engine, then the fast engine compared at run level."""

    tag: str
    source: str
    scheme: str
    workload: Optional[str] = None
    engines: Tuple[str, ...] = ("ref", "fast")
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS

    @property
    def group_key(self) -> str:
        return self.workload or self.tag

    def execute(self) -> CellResult:
        from repro.sim import make_machine

        config = HwstConfig()
        program = process_cache().compile(self.source, self.scheme, config)
        machine = make_machine("ref", config=config, timing=None)
        result = run_lockstep(
            machine, program, widths=widths_of(config),
            lock_base=config.lock_base,
            shadow_budget=config.shadow_budget,
            max_instructions=self.max_instructions)
        divergence = result.divergence
        outcome = result.outcome
        if divergence is None and "fast" in self.engines:
            fast_deltas = self._compare_fast(config, program, outcome)
            if fast_deltas:
                divergence = {"reason": "fast-engine mismatch",
                              "retire": result.retires,
                              "pc": hex(outcome.trap_pc or 0),
                              "mnemonic": "<run>",
                              "deltas": fast_deltas}
        return CellResult(
            tag=self.tag, workload=self.workload, scheme=self.scheme,
            ok=divergence is None,
            status="divergence" if divergence else outcome.status,
            exit_code=outcome.exit_code,
            detail=outcome.detail,
            instret=result.retires,
            stats={"retires": result.retires,
                   "mnemonics": len(result.mnemonics)},
            trap_class=outcome.trap_class,
            trap_pc=outcome.trap_pc,
            extra={"divergence": divergence,
                   "mnemonics": list(result.mnemonics)})

    def _compare_fast(self, config, program, outcome) -> List[dict]:
        """Run the fast engine end-to-end and diff the run-level
        observables against the spec/reference agreed outcome."""
        from repro.sim import make_machine

        fast = make_machine("fast", config=config, timing=None)
        try:
            rr = fast.run(program, max_instructions=self.max_instructions)
        except Exception as exc:  # noqa: BLE001 — classified below
            kind = classify_trap(exc)
            if kind is None:
                raise
            status = STATUS_BY_KIND[kind]
            if status != outcome.status:
                return [{"field": "fast.status", "spec": outcome.status,
                         "iss": status}]
            return []
        deltas: List[dict] = []
        pairs = (
            ("status", outcome.status, rr.status),
            ("exit_code", outcome.exit_code, rr.exit_code),
            ("instret", outcome.instret, rr.instret),
            ("output", outcome.output, rr.output),
            ("trap_class", outcome.trap_class, rr.trap_class),
            ("trap_pc", outcome.trap_pc, rr.trap_pc),
        )
        for name, spec_value, fast_value in pairs:
            if spec_value != fast_value:
                deltas.append({"field": f"fast.{name}",
                               "spec": repr(spec_value),
                               "iss": repr(fast_value)})
        return deltas


# ---------------------------------------------------------------------------
# Corpus assembly and campaign
# ---------------------------------------------------------------------------

def build_cells(workloads: Optional[Sequence[str]] = None,
                schemes: Sequence[str] = CONFORM_SCHEMES,
                scale: str = "small",
                fuzz_count: int = DEFAULT_FUZZ_COUNT,
                seed: int = DEFAULT_SEED,
                equiv: bool = True,
                lockstep: bool = True,
                max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                ) -> List[object]:
    """The campaign's cell list, in deterministic report order:
    equivalence batteries first, then workload lockstep, then the
    fuzz-program lockstep corpus."""
    cells: List[object] = []
    if equiv:
        cells.extend(ConformEquivCell(mnemonic=m, seed=seed)
                     for m in all_mnemonics())
    if lockstep:
        names = sorted(workloads) if workloads else sorted(WORKLOADS)
        for scheme in schemes:
            for name in names:
                cells.append(ConformLockstepCell(
                    tag=f"lockstep/{scheme}/{name}",
                    source=WORKLOADS[name].source(scale),
                    scheme=scheme, workload=name,
                    max_instructions=max_instructions))
        if fuzz_count:
            from repro.fuzz.gen import generate_program, plan_programs
            for index, kind in plan_programs(seed, fuzz_count):
                generated = generate_program(seed, index, kind)
                cells.append(ConformLockstepCell(
                    tag=f"lockstep/fuzz/{generated.name}",
                    source=generated.source, scheme=FUZZ_SCHEME,
                    max_instructions=max_instructions))
    return cells


def _fold_report(cells: Sequence[object], results: Sequence[CellResult],
                 seed: int, corpus: dict) -> dict:
    equiv_section: Dict[str, dict] = {}
    lockstep_rows: List[dict] = []
    exercised: set = set()
    total_retires = 0
    total_cases = 0
    total_divergences = 0
    for cell, result in zip(cells, results):
        if isinstance(cell, ConformEquivCell):
            divergences = result.extra.get("divergences", [])
            if result.status in ("error", "hang", "worker_died"):
                divergences = [{"case": cell.mnemonic,
                                "deltas": [{"field": "cell.status",
                                            "spec": "ok",
                                            "iss": result.status}],
                                "error": result.error}]
            cases = result.extra.get("cases", 0)
            equiv_section[cell.mnemonic] = {
                "cases": cases, "divergences": divergences}
            total_cases += cases
            total_divergences += len(divergences)
        else:
            divergence = result.extra.get("divergence")
            if result.status in ("error", "hang", "worker_died"):
                divergence = {"reason": result.status,
                              "error": result.error}
            row = {
                "tag": result.tag,
                "scheme": result.scheme,
                "status": result.status,
                "exit_code": result.exit_code,
                "retires": result.instret,
                "trap_class": result.trap_class,
                "trap_pc": result.trap_pc,
                "divergence": divergence,
            }
            lockstep_rows.append(row)
            exercised.update(result.extra.get("mnemonics", ()))
            total_retires += result.instret
            if divergence is not None:
                total_divergences += 1
    never = sorted(set(SPEC_TABLE) - exercised)
    report = {
        "schema": REPORT_SCHEMA,
        "seed": seed,
        "corpus": corpus,
        "equiv": equiv_section,
        "lockstep": lockstep_rows,
        "coverage": {
            "exercised": sorted(exercised),
            "never_exercised": never,
        },
        "totals": {
            "cells": len(lockstep_rows) + len(equiv_section),
            "equiv_cases": total_cases,
            "retires": total_retires,
            "divergences": total_divergences,
            "mnemonics_covered": len(exercised),
        },
    }
    return report


def run_conform(workloads: Optional[Sequence[str]] = None,
                schemes: Sequence[str] = CONFORM_SCHEMES,
                scale: str = "small",
                fuzz_count: int = DEFAULT_FUZZ_COUNT,
                seed: int = DEFAULT_SEED,
                jobs: int = 1,
                equiv: bool = True,
                lockstep: bool = True,
                max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                heartbeat_s: float = 15.0,
                registry: Optional[MetricsRegistry] = None,
                heartbeat_stream=None,
                executor: Optional[SweepExecutor] = None) -> dict:
    """Run the conformance campaign; returns the ``repro.spec/v1``
    report (divergence is data here, the CLI turns it into an exit
    code). Byte-identical for a fixed seed at any ``jobs``."""
    registry = registry if registry is not None else MetricsRegistry()
    cells = build_cells(workloads=workloads, schemes=schemes, scale=scale,
                        fuzz_count=fuzz_count, seed=seed, equiv=equiv,
                        lockstep=lockstep,
                        max_instructions=max_instructions)
    heartbeat = Heartbeat(total=len(cells), label="conform",
                          interval_s=heartbeat_s, stream=heartbeat_stream,
                          metrics=registry)
    own_executor = executor is None
    if executor is None:
        executor = SweepExecutor(jobs=jobs, registry=registry)
    try:
        results = executor.run(
            cells, progress=lambda done, total: heartbeat.tick(done))
    finally:
        if own_executor:
            executor.close()
    corpus = {
        "schemes": list(schemes) if lockstep else [],
        "scale": scale,
        "workloads": (sorted(workloads) if workloads
                      else sorted(WORKLOADS)) if lockstep else [],
        "fuzz_count": fuzz_count if lockstep else 0,
        "fuzz_scheme": FUZZ_SCHEME,
        "equiv_mnemonics": len(all_mnemonics()) if equiv else 0,
        "max_instructions": max_instructions,
    }
    report = _fold_report(cells, results, seed=seed, corpus=corpus)
    scope = registry.scope("spec")
    scope.counter("retires").inc(report["totals"]["retires"])
    scope.counter("divergences").inc(report["totals"]["divergences"])
    scope.gauge("mnemonics_covered").set(
        report["totals"]["mnemonics_covered"])
    return report


def divergences_of(report: dict) -> int:
    return int(report["totals"]["divergences"])


def report_to_json(report: dict) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
