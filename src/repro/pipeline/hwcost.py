"""Structural FPGA cost model for the HWST128 additions (Section 5.3).

The paper reports, on a Xilinx ZCU102 against the baseline Rocket Chip:
+1536 LUTs (+4.11 %), +112 FFs (+0.66 %), and a critical path stretched
from 5.26 ns to 6.45 ns by the metadata bypass (forwarding) network.

We reproduce this as a component-wise budget. Each microarchitectural
unit added by HWST128 is expressed in terms of primitive costs (LUTs per
adder/comparator/mux bit, LUTRAM for the shadow register file, CAM match
logic for the keybuffer), so ablations — e.g. growing the keybuffer or
widening the SRF — move the estimate the way they would move a Vivado
report. Primitive constants are calibrated against 6-input-LUT Xilinx
UltraScale+ fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.config import HwstConfig

# -- primitive estimators (UltraScale+ 6-LUT fabric) -------------------------

LUTS_PER_ADDER_BIT = 1.0        # carry-chain adder
LUTS_PER_CMP_BIT = 0.5          # comparator folds two bits per LUT
LUTS_PER_MUX2_BIT = 0.5         # one LUT6 implements two 2:1 mux bits
LUTS_PER_LUTRAM_BIT_PORT = 0.03125  # RAM32X1D: one LUT per 32x1 per port
MUX_LEVEL_DELAY_NS = 0.55       # one forwarding mux level + routing
LUT_LOGIC_DELAY_NS = 0.12


def adder_luts(width: int) -> int:
    return round(width * LUTS_PER_ADDER_BIT)


def comparator_luts(width: int) -> int:
    return round(width * LUTS_PER_CMP_BIT) + 2   # +2 for reduction tree


def mux2_luts(width: int) -> int:
    return round(width * LUTS_PER_MUX2_BIT)


def lutram_luts(depth: int, width: int, read_ports: int) -> int:
    """Distributed RAM cost: depth x width with N read ports."""
    banks = max(1, (depth + 31) // 32)
    return round(banks * width * read_ports * LUTS_PER_LUTRAM_BIT_PORT * 32)


def shifter_luts(width: int) -> int:
    """Configurable barrel shifter: log2(width) mux levels."""
    levels = max(1, width.bit_length() - 1)
    return mux2_luts(width) * levels // 2


@dataclass(frozen=True)
class Component:
    """One hardware unit with its LUT/FF budget."""

    name: str
    luts: int
    ffs: int
    note: str = ""


@dataclass
class CostReport:
    """Totals and per-component breakdown of the HWST128 additions."""

    components: List[Component]
    baseline_luts: int
    baseline_ffs: int
    baseline_critical_path_ns: float
    critical_path_ns: float

    @property
    def added_luts(self) -> int:
        return sum(c.luts for c in self.components)

    @property
    def added_ffs(self) -> int:
        return sum(c.ffs for c in self.components)

    @property
    def lut_overhead_pct(self) -> float:
        return 100.0 * self.added_luts / self.baseline_luts

    @property
    def ff_overhead_pct(self) -> float:
        return 100.0 * self.added_ffs / self.baseline_ffs

    def table(self) -> str:
        lines = [f"{'component':<26} {'LUTs':>6} {'FFs':>5}  note"]
        for c in self.components:
            lines.append(f"{c.name:<26} {c.luts:>6} {c.ffs:>5}  {c.note}")
        lines.append(
            f"{'TOTAL':<26} {self.added_luts:>6} {self.added_ffs:>5}  "
            f"(+{self.lut_overhead_pct:.2f}% LUTs, "
            f"+{self.ff_overhead_pct:.2f}% FFs)"
        )
        lines.append(
            f"critical path: {self.baseline_critical_path_ns:.2f} ns -> "
            f"{self.critical_path_ns:.2f} ns"
        )
        return "\n".join(lines)


def rocket_baseline() -> Tuple[int, int, float]:
    """Baseline Rocket Chip utilisation on the ZCU102 (LUTs, FFs, ns).

    Derived from the paper's percentages: 1536 LUTs is +4.11 % and
    112 FFs is +0.66 %, giving ~37.4 k LUTs and ~17.0 k FFs, consistent
    with published Rocket RV64GC builds on UltraScale+ parts.
    """
    return 37_372, 16_970, 5.26


class HardwareCostModel:
    """Builds the Section 5.3 cost report for a given configuration."""

    def __init__(self, config: HwstConfig = HwstConfig()):
        self.config = config

    def components(self) -> List[Component]:
        widths = self.config.widths
        kb = self.config.keybuffer_entries
        srf_width = 128
        out = [
            Component(
                "SRF (32x128 LUTRAM)",
                lutram_luts(32, srf_width, read_ports=2),
                0,
                "shadow register file, 2R1W",
            ),
            Component(
                "SRF bypass network",
                3 * mux2_luts(srf_width) + 24,
                32,
                "EX/MEM/WB forwarding of metadata (critical path)",
            ),
            Component(
                "COMP unit",
                shifter_luts(widths.base + widths.range)
                + mux2_luts(64) + 16,
                8,
                "256->128 bit field packer (CSR-configured widths)",
            ),
            Component(
                "DECOMP unit",
                shifter_luts(widths.base + widths.range)
                + mux2_luts(64) + 16,
                8,
                "128->256 bit field unpacker",
            ),
            Component(
                "SMAC",
                adder_luts(64) + 12,
                0,
                "shadow address calc: (addr<<2)+csr.sm.offset (Eq. 1)",
            ),
            Component(
                "SCU",
                2 * comparator_luts(64) + adder_luts(64),
                8,
                "base/bound compare fused with AGU output",
            ),
            Component(
                "TCU",
                comparator_luts(64) + 8,
                4,
                "key compare for tchk",
            ),
            Component(
                f"keybuffer ({kb} entries)",
                kb * (comparator_luts(widths.lock) + 4)
                + mux2_luts(widths.key) * max(1, kb.bit_length() - 1)
                + 48,
                kb + 2 * kb + 4,   # valid bits + LRU state + fill ctl
                "TLB-like lock->key CAM",
            ),
            Component(
                "decode/control + CSRs",
                160,
                24,
                "22 new opcodes incl. .chk variants, hwst CSRs",
            ),
            Component(
                "violation traps + redirect",
                120,
                0,
                "spatial/temporal trap cause mux into the PC redirect",
            ),
        ]
        return out

    def report(self) -> CostReport:
        base_luts, base_ffs, base_ns = rocket_baseline()
        # The metadata forwarding network adds two mux levels plus the
        # SCU compare into the EX stage timing path.
        critical = base_ns + 2 * MUX_LEVEL_DELAY_NS + LUT_LOGIC_DELAY_NS
        return CostReport(
            components=self.components(),
            baseline_luts=base_luts,
            baseline_ffs=base_ffs,
            baseline_critical_path_ns=base_ns,
            critical_path_ns=round(critical, 2),
        )
