"""Trace-driven timing model of the 5-stage in-order HWST128 pipeline.

The machine (functional ISS) retires instructions in program order and
hands each one to :meth:`InOrderPipeline.retire`. The model charges:

* one base cycle per instruction (in-order, single-issue);
* a load-use bubble when an instruction consumes the result of the
  immediately preceding load (data arrives from MEM, bypass covers
  everything else);
* a redirect penalty for taken branches and jumps (branches resolve in
  EX with a static not-taken predictor, Rocket-style);
* multiplier/divider occupancy;
* data-cache miss penalties for every memory access, including the
  shadow-memory metadata traffic;
* the temporal-check cost: a ``tchk`` whose lock hits the keybuffer is a
  single cycle, a miss performs the key load through the D-cache
  (Section 3.5 — the keybuffer bypasses the DCache access on a hit).

Fused-check accesses (``ld.chk`` …) cost the same as plain accesses: the
SCU compares in EX off the decompressed SRF metadata, in parallel with
address generation, which is exactly the SHORE/HWST128 design point (the
price is paid in critical-path ns, not cycles — see ``hwcost``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.instructions import Instr, SPEC_TABLE
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.cache import CacheParams, DataCache

# Legacy breakdown keys (the ``cyc_*`` stats) and the registry metric
# each one lives under. ``dmiss`` keeps its paper-facing name
# ``pipeline.dcache.miss_penalty_cycles`` — it is a D-cache property,
# not a pipeline-stage one.
BREAKDOWN_METRICS = {
    "base": "cycles.base",
    "load_use": "cycles.load_use",
    "redirect": "cycles.redirect",
    "muldiv": "cycles.muldiv",
    "dmiss": "dcache.miss_penalty_cycles",
    "tchk_miss": "cycles.tchk_miss",
    "wide": "cycles.wide",
}
BREAKDOWN_KEYS = tuple(BREAKDOWN_METRICS)


@dataclass(frozen=True)
class TimingParams:
    """Latency/penalty knobs of the pipeline model.

    Defaults are calibrated for the scaled-down workloads: the cache is
    shrunk in proportion to the inputs (2 KiB vs the paper's SPEC-sized
    footprints against a Rocket L1) and the miss penalty reflects the
    ZCU102's DDR latency. ``EXPERIMENTS.md`` records the calibration.
    """

    branch_penalty: int = 2      # taken-branch redirect (resolve in EX)
    jump_penalty: int = 2        # jal/jalr redirect
    load_use_stall: int = 1      # load -> immediate consumer bubble
    mul_latency: int = 3         # extra cycles occupying EX
    div_latency: int = 24
    dcache_miss_penalty: int = 60
    bind_extra: int = 1          # COMP packing before the SRF writeback
    smac_extra: int = 1          # SMAC shift+add in front of the AGU
    srf_load_use_stall: int = 1  # lbd[l/u]s -> checked-use interlock
    tchk_occupancy: int = 2      # tchk uses the MEM stage (CAM lookup)
    keybuffer_miss_extra: int = 1   # fill cycle on top of the key load
    wide_access_extra: int = 3      # 256-bit access: 4 beats on a 64-bit bus
    mpx_walk_extra: int = 4         # MPX two-level bound-table walk
    avx_check_extra: int = 2        # vchk: 4-field vector compare
    cache: CacheParams = field(default_factory=lambda: CacheParams(
        size_bytes=2048, ways=2, line_bytes=32))


class InOrderPipeline:
    """Cycle accumulator fed by the ISS retire stream."""

    def __init__(self, params: Optional[TimingParams] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.params = params or TimingParams()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._scope = self.metrics.scope("pipeline")
        # Breakdown counters live in the registry; handlers bump the
        # captured Counter objects directly (as cheap as the dict they
        # replace).
        self._bk = {key: self._scope.counter(name)
                    for key, name in BREAKDOWN_METRICS.items()}
        self.dcache = DataCache(self.params.cache,
                                metrics=self._scope.scope("dcache"))
        self.cycles = 0
        self._last_load_rd = -1
        self._last_srf_load_rd = -1

    @property
    def breakdown(self) -> Dict[str, int]:
        """Back-compat view of the per-cause cycle counters."""
        return {key: counter.value for key, counter in self._bk.items()}

    def reset(self):
        self.dcache = DataCache(self.params.cache,
                                metrics=self._scope.scope("dcache"))
        self.cycles = 0
        self._last_load_rd = -1
        self._last_srf_load_rd = -1
        for counter in self._bk.values():
            counter.reset()

    def retire(self, ins: Instr, mem_addr: Optional[int], is_store: bool,
               taken: bool, kb_hit: Optional[bool],
               mem2: Optional[int]) -> int:
        """Account one retired instruction; returns its total cost in
        cycles (base + stalls + penalties) for cycle attribution."""
        params = self.params
        bk = self._bk
        spec = SPEC_TABLE[ins.op]
        cost = 1
        bk["base"].value += 1

        # Load-use interlock against the previous instruction.
        last = self._last_load_rd
        if last > 0 and (
            (spec.reads_rs1 and ins.rs1 == last)
            or (spec.reads_rs2 and ins.rs2 == last)
        ):
            cost += params.load_use_stall
            bk["load_use"].value += params.load_use_stall
        # (shadow metadata loads write the SRF, not the GPR file — they
        # are tracked by the SRF interlock below instead)
        self._last_load_rd = ins.rd if (
            spec.is_load and spec.writes_rd and not spec.srf_write) else -1

        # SRF load-use interlock: metadata arriving from the shadow
        # loads (lbdls/lbdus) is consumed by a fused check, tchk or sbd
        # in the very next cycle — the bypass network cannot cover a
        # MEM-stage producer.
        srf_last = self._last_srf_load_rd
        if srf_last >= 0:
            consumes_srf = (
                ((spec.checked or ins.op == "tchk") and ins.rs1 == srf_last)
                or (ins.op in ("sbdl", "sbdu") and ins.rs2 == srf_last)
            )
            if consumes_srf:
                cost += params.srf_load_use_stall
                bk["load_use"].value += params.srf_load_use_stall
        self._last_srf_load_rd = ins.rd if (spec.srf_write and spec.is_load) \
            else -1

        if spec.shadow_access:
            # Eq. 1 address generation (SMAC) in front of the AGU.
            cost += params.smac_extra
            bk["wide"].value += params.smac_extra
        if spec.ext == "mpx" and spec.shadow_access:
            # bndldx/bndstx: the MPX bound-table walk is slow silicon.
            cost += params.mpx_walk_extra
            bk["wide"].value += params.mpx_walk_extra
        elif spec.ext == "avx" and not spec.shadow_access:
            # vchk: compare all four metadata fields.
            cost += params.avx_check_extra
            bk["wide"].value += params.avx_check_extra

        if spec.mul_like:
            cost += params.mul_latency
            bk["muldiv"].value += params.mul_latency
        elif spec.div_like:
            cost += params.div_latency
            bk["muldiv"].value += params.div_latency

        if spec.srf_write and not spec.is_load:
            # bndrs/bndrt: the configurable field packer (COMP) sits in
            # front of the SRF write port.
            cost += params.bind_extra
            bk["wide"].value += params.bind_extra

        if taken and (spec.is_branch or spec.is_jump):
            penalty = params.branch_penalty if spec.is_branch \
                else params.jump_penalty
            cost += penalty
            bk["redirect"].value += penalty

        if mem_addr is not None:
            if not self.dcache.access(mem_addr, is_store):
                cost += params.dcache_miss_penalty
                bk["dmiss"].value += params.dcache_miss_penalty
            if spec.mem_bytes > 8:
                cost += params.wide_access_extra
                bk["wide"].value += params.wide_access_extra

        # tchk occupies the MEM stage for its keybuffer CAM lookup even
        # on a hit (the win is skipping the DCache access, Section 3.5).
        if kb_hit is not None:
            cost += params.tchk_occupancy
            bk["wide"].value += params.tchk_occupancy

        # Secondary access: tchk key load on keybuffer miss, MPX bound
        # table walk second beat, WDL in-check key load.
        if mem2 is not None:
            extra = 1  # the additional memory operation itself
            if not self.dcache.access(mem2, False):
                extra += params.dcache_miss_penalty
                bk["dmiss"].value += params.dcache_miss_penalty
            if kb_hit is False:
                extra += params.keybuffer_miss_extra
                bk["tchk_miss"].value += params.keybuffer_miss_extra + 1
            else:
                bk["wide"].value += 1
            cost += extra

        self.cycles += cost
        return cost

    def stats(self) -> Dict[str, int]:
        """Legacy stats view; also publishes the cycle-total gauge."""
        self._scope.gauge("cycles").set(self.cycles)
        out = {f"cyc_{name}": value for name, value in self.breakdown.items()}
        out["dcache_hits"] = self.dcache.hits
        out["dcache_misses"] = self.dcache.misses
        return out
