"""Trace-driven timing model of the 5-stage in-order HWST128 pipeline.

The machine (functional ISS) retires instructions in program order and
hands each one to :meth:`InOrderPipeline.retire`. The model charges:

* one base cycle per instruction (in-order, single-issue);
* a load-use bubble when an instruction consumes the result of the
  immediately preceding load (data arrives from MEM, bypass covers
  everything else);
* a redirect penalty for taken branches and jumps (branches resolve in
  EX with a static not-taken predictor, Rocket-style);
* multiplier/divider occupancy;
* data-cache miss penalties for every memory access, including the
  shadow-memory metadata traffic;
* the temporal-check cost: a ``tchk`` whose lock hits the keybuffer is a
  single cycle, a miss performs the key load through the D-cache
  (Section 3.5 — the keybuffer bypasses the DCache access on a hit).

Fused-check accesses (``ld.chk`` …) cost the same as plain accesses: the
SCU compares in EX off the decompressed SRF metadata, in parallel with
address generation, which is exactly the SHORE/HWST128 design point (the
price is paid in critical-path ns, not cycles — see ``hwcost``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.instructions import Instr, SPEC_TABLE
from repro.pipeline.cache import CacheParams, DataCache


@dataclass(frozen=True)
class TimingParams:
    """Latency/penalty knobs of the pipeline model.

    Defaults are calibrated for the scaled-down workloads: the cache is
    shrunk in proportion to the inputs (2 KiB vs the paper's SPEC-sized
    footprints against a Rocket L1) and the miss penalty reflects the
    ZCU102's DDR latency. ``EXPERIMENTS.md`` records the calibration.
    """

    branch_penalty: int = 2      # taken-branch redirect (resolve in EX)
    jump_penalty: int = 2        # jal/jalr redirect
    load_use_stall: int = 1      # load -> immediate consumer bubble
    mul_latency: int = 3         # extra cycles occupying EX
    div_latency: int = 24
    dcache_miss_penalty: int = 60
    bind_extra: int = 1          # COMP packing before the SRF writeback
    smac_extra: int = 1          # SMAC shift+add in front of the AGU
    srf_load_use_stall: int = 1  # lbd[l/u]s -> checked-use interlock
    tchk_occupancy: int = 2      # tchk uses the MEM stage (CAM lookup)
    keybuffer_miss_extra: int = 1   # fill cycle on top of the key load
    wide_access_extra: int = 3      # 256-bit access: 4 beats on a 64-bit bus
    mpx_walk_extra: int = 4         # MPX two-level bound-table walk
    avx_check_extra: int = 2        # vchk: 4-field vector compare
    cache: CacheParams = field(default_factory=lambda: CacheParams(
        size_bytes=2048, ways=2, line_bytes=32))


class InOrderPipeline:
    """Cycle accumulator fed by the ISS retire stream."""

    def __init__(self, params: Optional[TimingParams] = None):
        self.params = params or TimingParams()
        self.dcache = DataCache(self.params.cache)
        self.cycles = 0
        self._last_load_rd = -1
        self._last_srf_load_rd = -1
        self.breakdown: Dict[str, int] = {
            "base": 0, "load_use": 0, "redirect": 0,
            "muldiv": 0, "dmiss": 0, "tchk_miss": 0, "wide": 0,
        }

    def reset(self):
        self.dcache = DataCache(self.params.cache)
        self.cycles = 0
        self._last_load_rd = -1
        self._last_srf_load_rd = -1
        for key in self.breakdown:
            self.breakdown[key] = 0

    def retire(self, ins: Instr, mem_addr: Optional[int], is_store: bool,
               taken: bool, kb_hit: Optional[bool], mem2: Optional[int]):
        """Account one retired instruction."""
        params = self.params
        spec = SPEC_TABLE[ins.op]
        cost = 1
        self.breakdown["base"] += 1

        # Load-use interlock against the previous instruction.
        last = self._last_load_rd
        if last > 0 and (
            (spec.reads_rs1 and ins.rs1 == last)
            or (spec.reads_rs2 and ins.rs2 == last)
        ):
            cost += params.load_use_stall
            self.breakdown["load_use"] += params.load_use_stall
        # (shadow metadata loads write the SRF, not the GPR file — they
        # are tracked by the SRF interlock below instead)
        self._last_load_rd = ins.rd if (
            spec.is_load and spec.writes_rd and not spec.srf_write) else -1

        # SRF load-use interlock: metadata arriving from the shadow
        # loads (lbdls/lbdus) is consumed by a fused check, tchk or sbd
        # in the very next cycle — the bypass network cannot cover a
        # MEM-stage producer.
        srf_last = self._last_srf_load_rd
        if srf_last >= 0:
            consumes_srf = (
                ((spec.checked or ins.op == "tchk") and ins.rs1 == srf_last)
                or (ins.op in ("sbdl", "sbdu") and ins.rs2 == srf_last)
            )
            if consumes_srf:
                cost += params.srf_load_use_stall
                self.breakdown["load_use"] += params.srf_load_use_stall
        self._last_srf_load_rd = ins.rd if (spec.srf_write and spec.is_load) \
            else -1

        if spec.shadow_access:
            # Eq. 1 address generation (SMAC) in front of the AGU.
            cost += params.smac_extra
            self.breakdown["wide"] += params.smac_extra
        if spec.ext == "mpx" and spec.shadow_access:
            # bndldx/bndstx: the MPX bound-table walk is slow silicon.
            cost += params.mpx_walk_extra
            self.breakdown["wide"] += params.mpx_walk_extra
        elif spec.ext == "avx" and not spec.shadow_access:
            # vchk: compare all four metadata fields.
            cost += params.avx_check_extra
            self.breakdown["wide"] += params.avx_check_extra

        if spec.mul_like:
            cost += params.mul_latency
            self.breakdown["muldiv"] += params.mul_latency
        elif spec.div_like:
            cost += params.div_latency
            self.breakdown["muldiv"] += params.div_latency

        if spec.srf_write and not spec.is_load:
            # bndrs/bndrt: the configurable field packer (COMP) sits in
            # front of the SRF write port.
            cost += params.bind_extra
            self.breakdown["wide"] += params.bind_extra

        if taken and (spec.is_branch or spec.is_jump):
            penalty = params.branch_penalty if spec.is_branch \
                else params.jump_penalty
            cost += penalty
            self.breakdown["redirect"] += penalty

        if mem_addr is not None:
            if not self.dcache.access(mem_addr, is_store):
                cost += params.dcache_miss_penalty
                self.breakdown["dmiss"] += params.dcache_miss_penalty
            if spec.mem_bytes > 8:
                cost += params.wide_access_extra
                self.breakdown["wide"] += params.wide_access_extra

        # tchk occupies the MEM stage for its keybuffer CAM lookup even
        # on a hit (the win is skipping the DCache access, Section 3.5).
        if kb_hit is not None:
            cost += params.tchk_occupancy
            self.breakdown["wide"] += params.tchk_occupancy

        # Secondary access: tchk key load on keybuffer miss, MPX bound
        # table walk second beat, WDL in-check key load.
        if mem2 is not None:
            extra = 1  # the additional memory operation itself
            if not self.dcache.access(mem2, False):
                extra += params.dcache_miss_penalty
                self.breakdown["dmiss"] += params.dcache_miss_penalty
            if kb_hit is False:
                extra += params.keybuffer_miss_extra
                self.breakdown["tchk_miss"] += params.keybuffer_miss_extra + 1
            else:
                self.breakdown["wide"] += 1
            cost += extra

        self.cycles += cost

    def stats(self) -> Dict[str, int]:
        out = {f"cyc_{name}": value for name, value in self.breakdown.items()}
        out["dcache_hits"] = self.dcache.hits
        out["dcache_misses"] = self.dcache.misses
        return out
