"""Set-associative write-allocate data-cache timing model.

Only hit/miss behaviour matters for the figures (miss penalty is folded
into a single constant, covering writeback traffic), so the model tracks
tags and LRU order but no data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.stats import HitMissStats


@dataclass(frozen=True)
class CacheParams:
    """Geometry of the cache (defaults: Rocket-ish 16 KiB, 4-way, 64 B)."""

    size_bytes: int = 16 * 1024
    ways: int = 4
    line_bytes: int = 64

    def __post_init__(self):
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError("cache size must divide into ways * lines")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


class DataCache(HitMissStats):
    """LRU set-associative cache: ``access`` returns True on hit.

    Hit/miss accounting comes from :class:`repro.obs.stats.
    HitMissStats`; pass ``metrics`` (a registry scope, e.g.
    ``pipeline.dcache``) to surface the counters in metric snapshots.
    """

    def __init__(self, params: CacheParams = CacheParams(),
                 metrics=None):
        self.params = params
        self._line_shift = params.line_bytes.bit_length() - 1
        self._set_mask = params.sets - 1
        if params.sets & self._set_mask and params.sets != 1:
            raise ValueError("set count must be a power of two")
        # Per-set list of tags in LRU order (front = most recent).
        self._sets = [[] for _ in range(params.sets)]
        self._init_hit_miss(metrics)

    def access(self, addr: int, is_store: bool = False) -> bool:
        """Look up ``addr``; allocate on miss. Returns hit/miss."""
        line = addr >> self._line_shift
        index = line & self._set_mask
        tag = line >> (self._set_mask.bit_length())
        ways = self._sets[index]
        try:
            pos = ways.index(tag)
        except ValueError:
            self._misses.value += 1
            ways.insert(0, tag)
            if len(ways) > self.params.ways:
                ways.pop()
            return False
        self._hits.value += 1
        if pos:
            ways.insert(0, ways.pop(pos))
        return True

    def flush(self):
        for ways in self._sets:
            ways.clear()
