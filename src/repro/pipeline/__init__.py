"""Microarchitectural timing and hardware-cost models.

* :mod:`repro.pipeline.cache` — set-associative data-cache model;
* :mod:`repro.pipeline.timing` — trace-driven 5-stage in-order pipeline
  timing (the Rocket-class core the paper runs on its ZCU102 FPGA);
* :mod:`repro.pipeline.hwcost` — structural LUT/FF/critical-path
  estimator reproducing the Section 5.3 hardware-cost discussion.
"""

from repro.pipeline.cache import DataCache, CacheParams
from repro.pipeline.timing import InOrderPipeline, TimingParams
from repro.pipeline.hwcost import (
    HardwareCostModel,
    CostReport,
    rocket_baseline,
)

__all__ = [
    "DataCache",
    "CacheParams",
    "InOrderPipeline",
    "TimingParams",
    "HardwareCostModel",
    "CostReport",
    "rocket_baseline",
]
