"""Linear-mapped shadow memory (LMSM) address mapping.

Eq. 1 of the paper::

    Addr_LMSM = (Addr_ptr_container << 2) + CSR_offset

Every 8-byte pointer container in user memory owns a 32-byte shadow span;
the 128-bit compressed metadata occupies the first 16 bytes (lower half
first, matching the ``sbdl``/``sbdu`` split). The map is the functional
model of the shadow memory address calculator (SMAC) pipeline unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compression import CompressedMetadata
from repro.core.config import HwstConfig
from repro.errors import MemoryFault

CONTAINER_SHIFT = 2  # Eq. 1: container address is scaled by four


@dataclass(frozen=True)
class ShadowMap:
    """Maps user container addresses to their LMSM metadata slots."""

    offset: int
    user_top: int

    @classmethod
    def from_config(cls, config: HwstConfig) -> "ShadowMap":
        return cls(offset=config.shadow_offset, user_top=config.user_top)

    def shadow_addr(self, container: int) -> int:
        """Eq. 1: shadow address of a pointer container."""
        if not 0 <= container < self.user_top:
            raise MemoryFault(container, "container outside user memory")
        return (container << CONTAINER_SHIFT) + self.offset

    def lower_addr(self, container: int) -> int:
        """Address of the compressed lower (spatial) half."""
        return self.shadow_addr(container)

    def upper_addr(self, container: int) -> int:
        """Address of the compressed upper (temporal) half."""
        return self.shadow_addr(container) + 8

    def is_shadow_addr(self, addr: int) -> bool:
        """True when ``addr`` falls inside the shadow region."""
        return self.offset <= addr < self.offset + (self.user_top << CONTAINER_SHIFT)

    def container_of(self, shadow_addr: int) -> int:
        """Inverse of :meth:`shadow_addr` (for diagnostics)."""
        if not self.is_shadow_addr(shadow_addr):
            raise MemoryFault(shadow_addr, "not a shadow address")
        return (shadow_addr - self.offset) >> CONTAINER_SHIFT

    # -- memory plumbing ----------------------------------------------------

    def store(self, memory, container: int, compressed: CompressedMetadata):
        """Write both compressed halves for ``container`` (sbdl + sbdu)."""
        addr = self.shadow_addr(container)
        memory.store_u64(addr, compressed.lower)
        memory.store_u64(addr + 8, compressed.upper)

    def load(self, memory, container: int) -> CompressedMetadata:
        """Read both compressed halves for ``container`` (lbdls + lbdus)."""
        addr = self.shadow_addr(container)
        return CompressedMetadata(
            lower=memory.load_u64(addr),
            upper=memory.load_u64(addr + 8),
        )

    def clear(self, memory, container: int):
        """Zero the metadata slot (used when a non-pointer overwrites one)."""
        addr = self.shadow_addr(container)
        memory.store_u64(addr, 0)
        memory.store_u64(addr + 8, 0)
