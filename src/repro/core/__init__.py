"""HWST128 core library: metadata, compression, shadow memory, locks.

This package is the paper's primary contribution in reusable form:

* :mod:`repro.core.metadata` — base/bound/key/lock pointer metadata;
* :mod:`repro.core.compression` — the configurable 256-bit -> 128-bit
  metadata compression scheme (Fig. 2, Eq. 2-6);
* :mod:`repro.core.shadow` — the linear-mapped shadow memory map (Eq. 1);
* :mod:`repro.core.locks` — lock_location allocation and unique key
  generation for temporal safety;
* :mod:`repro.core.config` — the HWST128 configuration consumed by the
  CSRs, the compiler and the microarchitecture.
"""

from repro.core.config import HwstConfig, derive_field_widths, FieldWidths
from repro.core.metadata import PointerMetadata
from repro.core.compression import (
    CompressedMetadata,
    MetadataCompressor,
    MetadataRangeError,
)
from repro.core.shadow import ShadowMap
from repro.core.locks import LockAllocator, LockTableFull

__all__ = [
    "HwstConfig",
    "FieldWidths",
    "derive_field_widths",
    "PointerMetadata",
    "CompressedMetadata",
    "MetadataCompressor",
    "MetadataRangeError",
    "ShadowMap",
    "LockAllocator",
    "LockTableFull",
]
