"""HWST128 configuration: metadata field widths and memory map knobs.

The paper sets the compressed layout for general-purpose applications to
``base=35, range=29, lock=20, key=44`` (Fig. 2) and derives those widths
from the platform with Eq. 3-6:

* Eq. 3 — ``BIT_base  = ceil(log2(memory_size)) - 3`` (8-byte alignment
  recovers three bits);
* Eq. 4 — ``BIT_range = ceil(log2(max object size)) - 3``;
* Eq. 5 — ``BIT_lock  = ceil(log2(lock entries))``;
* Eq. 6 — ``BIT_key   = 128 - BIT_base - BIT_range - BIT_lock``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

SRF_BITS = 128           # shadow register width inherited from SHORE
ALIGN_SHIFT = 3          # RV64 8-byte alignment recovers 3 bits
HALF_BITS = 64           # compressed metadata is split in two 64-bit halves


@dataclass(frozen=True)
class FieldWidths:
    """Bit widths of the four compressed metadata fields."""

    base: int = 35
    range: int = 29
    lock: int = 20
    key: int = 44

    def __post_init__(self):
        for name in ("base", "range", "lock", "key"):
            width = getattr(self, name)
            if width <= 0:
                raise ValueError(f"{name} width must be positive, got {width}")
        if self.base + self.range != HALF_BITS:
            raise ValueError(
                f"spatial half must pack into 64 bits: "
                f"base({self.base}) + range({self.range}) != 64"
            )
        if self.lock + self.key != HALF_BITS:
            raise ValueError(
                f"temporal half must pack into 64 bits: "
                f"lock({self.lock}) + key({self.key}) != 64"
            )

    @property
    def total(self) -> int:
        return self.base + self.range + self.lock + self.key

    def max_base(self) -> int:
        """Largest representable base address (byte units)."""
        return ((1 << self.base) - 1) << ALIGN_SHIFT

    def max_range(self) -> int:
        """Largest representable object size in bytes."""
        return ((1 << self.range) - 1) << ALIGN_SHIFT

    def max_locks(self) -> int:
        """Number of addressable lock_location entries."""
        return 1 << self.lock


def derive_field_widths(memory_size: int, max_object_size: int,
                        lock_entries: int) -> FieldWidths:
    """Apply Eq. 3-6 to derive a compressed layout for a platform.

    The spatial half is padded so ``base + range == 64`` by growing the
    range field (spare bits go to range, as in the paper's 35/29 layout
    where only 25 range bits were strictly needed for SPEC2006), and the
    temporal half gives every spare bit to the key (Eq. 6).

    >>> w = derive_field_widths(256 << 30, 1 << 28, 1_000_000)
    >>> (w.base, w.range, w.lock, w.key)
    (35, 29, 20, 44)
    """
    if memory_size <= 0 or max_object_size <= 0 or lock_entries <= 0:
        raise ValueError("memory size, object size and lock entries must be positive")
    bit_base = max(1, math.ceil(math.log2(memory_size)) - ALIGN_SHIFT)
    bit_range_min = max(1, math.ceil(math.log2(max_object_size)) - ALIGN_SHIFT)
    bit_lock = max(1, math.ceil(math.log2(lock_entries)))
    if bit_base + bit_range_min > HALF_BITS:
        raise ValueError(
            f"spatial metadata does not fit in 64 bits: "
            f"base={bit_base}, range>={bit_range_min}"
        )
    bit_range = HALF_BITS - bit_base
    bit_key = SRF_BITS - bit_base - bit_range - bit_lock  # Eq. 6
    if bit_key <= 0:
        raise ValueError(f"no key bits left (lock={bit_lock})")
    return FieldWidths(base=bit_base, range=bit_range,
                       lock=bit_lock, key=bit_key)


@dataclass(frozen=True)
class HwstConfig:
    """Platform configuration shared by compiler, runtime and hardware.

    The defaults describe the simulated machine: a 16 MiB user region
    whose linear-mapped shadow (Eq. 1 maps each byte to four) starts at
    ``shadow_offset``, a lock table carved out of the start of shadow
    space (the paper's embedded-workload optimisation maps the lock table
    over the .text shadow), and the paper's 35/29/20/44 field widths.
    """

    widths: FieldWidths = field(default_factory=FieldWidths)
    user_top: int = 0x0100_0000          # user addresses live in [0, 16 MiB)
    shadow_offset: int = 0x1000_0000     # csr.sm.offset
    lock_base: int = 0x1000_0000         # lock table overlays .text shadow
    lock_entries: int = 1 << 20          # paper: SPEC needs ~1 M locks
    keybuffer_entries: int = 8           # TLB-like keybuffer size
    keybuffer_policy: str = "lru"        # "lru" | "fifo" (ablation knob)
    shadow_budget: int = 0               # 0 = unlimited (bytes of S.Mem)
    elide_checks: bool = False           # static redundant-check elision

    def __post_init__(self):
        if self.user_top <= 0:
            raise ValueError("user_top must be positive")
        if self.shadow_offset < self.user_top:
            raise ValueError("shadow region must not overlap user memory")
        if self.lock_entries > self.widths.max_locks():
            raise ValueError(
                f"lock_entries {self.lock_entries} exceeds addressable "
                f"locks {self.widths.max_locks()}"
            )

    @property
    def lock_limit(self) -> int:
        """One past the last lock_location address (8 bytes per lock)."""
        return self.lock_base + 8 * self.lock_entries

    @property
    def shadow_top(self) -> int:
        """End of the linear-mapped shadow region."""
        return self.shadow_offset + (self.user_top << 2)
