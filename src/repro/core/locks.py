"""Lock_location allocation and unique key generation.

Temporal safety binds each allocation to a ``(key, lock)`` pair: the key
is a unique integer, the lock is the address of a lock_location holding
the key. Freeing erases the key, so any surviving pointer fails the
compare when dereferenced (Section 3.1).

This allocator is the host-side reference model; the simulated runtime
(`__lock_alloc`/`__lock_free` in the mini-C runtime) implements the same
free-list policy as instructions so that its cost shows up in the
performance figures. The model is used directly by unit tests, by the
Juliet functional harness, and by API users embedding HWST128 semantics
without the ISS.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import HwstConfig
from repro.core.metadata import INVALID_KEY
from repro.errors import ReproError


class LockTableFull(ReproError):
    """No free lock_location entries remain."""


class LockAllocator:
    """Free-list allocator over the lock table region.

    Keys increase monotonically from 1 and are never reused, so a stale
    pointer can never be revalidated by a later allocation that happens
    to receive the same lock_location (the paper: "the new allocation
    will have a different unique key").
    """

    def __init__(self, config: HwstConfig, memory=None):
        self._base = config.lock_base
        self._entries = config.lock_entries
        self._memory = memory
        self._next_fresh = 0            # bump pointer into the table
        self._free: List[int] = []      # recycled lock addresses
        self._next_key = 1
        self._live: dict = {}           # lock addr -> key
        self.stats_allocs = 0
        self.stats_frees = 0
        self.stats_max_live = 0

    @property
    def live_count(self) -> int:
        return len(self._live)

    def allocate(self):
        """Return ``(lock_addr, key)`` for a fresh allocation."""
        if self._free:
            lock = self._free.pop()
        elif self._next_fresh < self._entries:
            lock = self._base + 8 * self._next_fresh
            self._next_fresh += 1
        else:
            raise LockTableFull(
                f"all {self._entries} lock_locations are live"
            )
        key = self._next_key
        self._next_key += 1
        self._live[lock] = key
        self.stats_allocs += 1
        self.stats_max_live = max(self.stats_max_live, len(self._live))
        if self._memory is not None:
            self._memory.store_u64(lock, key)
        return lock, key

    def free(self, lock: int):
        """Erase the key at ``lock`` and recycle the lock_location."""
        if lock not in self._live:
            raise ReproError(f"lock {lock:#x} is not live (double free?)")
        del self._live[lock]
        self._free.append(lock)
        self.stats_frees += 1
        if self._memory is not None:
            self._memory.store_u64(lock, INVALID_KEY)

    def key_at(self, lock: int) -> int:
        """Current key stored in a lock_location (0 when freed)."""
        if self._memory is not None:
            return self._memory.load_u64(lock)
        return self._live.get(lock, INVALID_KEY)

    def check(self, key: int, lock: int) -> bool:
        """Temporal check: does the pointer's key still match its lock?"""
        if lock == 0:
            return False
        return key != INVALID_KEY and self.key_at(lock) == key

    def reset(self):
        """Drop all state (new program run)."""
        self._next_fresh = 0
        self._free.clear()
        self._live.clear()
        self._next_key = 1
        self.stats_allocs = 0
        self.stats_frees = 0
        self.stats_max_live = 0
