"""Configurable metadata compression (Fig. 2, Eq. 2-6).

The 256-bit metadata (four 64-bit fields) is compressed into 128 bits:

* the **lower half** packs ``base`` (address right-shifted by the 8-byte
  alignment) and ``range = bound - base`` (rounded **up** to the next
  8-byte multiple so legal last-byte accesses never trap — the cost is
  that overflows smaller than the padding escape the spatial check,
  which is exactly why the paper's HWST128 trails SoftboundCETS on a few
  CWE122 heap-overflow cases);
* the **upper half** packs ``lock`` (stored as an index into the lock
  table) and ``key``.

Compression and decompression are performed by the COMP/DECOMP pipeline
units; this module is their functional model and is also used by the
compiler runtime lowering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ALIGN_SHIFT, FieldWidths, HwstConfig
from repro.core.metadata import PointerMetadata
from repro.errors import ReproError

MASK64 = (1 << 64) - 1


class MetadataRangeError(ReproError):
    """A metadata field does not fit its configured compressed width."""


@dataclass(frozen=True)
class CompressedMetadata:
    """The 128-bit SRF image of one pointer's metadata."""

    lower: int  # base | range  (spatial half)
    upper: int  # lock | key    (temporal half)

    def __post_init__(self):
        if not 0 <= self.lower <= MASK64:
            raise ValueError(f"lower half not a u64: {self.lower:#x}")
        if not 0 <= self.upper <= MASK64:
            raise ValueError(f"upper half not a u64: {self.upper:#x}")


class MetadataCompressor:
    """Pack/unpack pointer metadata according to a field-width config."""

    def __init__(self, config: HwstConfig):
        self._config = config
        self._widths = config.widths
        self._base_mask = (1 << self._widths.base) - 1
        self._range_mask = (1 << self._widths.range) - 1
        self._lock_mask = (1 << self._widths.lock) - 1
        self._key_mask = (1 << self._widths.key) - 1
        # Census counters for the Eq. 3-6 width derivation (Fig. 2).
        self.max_range_seen = 0
        self.max_base_seen = 0
        self.max_key_seen = 0
        self.max_lock_index_seen = 0

    @property
    def widths(self) -> FieldWidths:
        return self._widths

    # -- spatial half -----------------------------------------------------

    def compress_spatial(self, base: int, bound: int) -> int:
        """Compress ``base``/``bound`` into the 64-bit lower half.

        The base is rounded down and the bound rounded up to the 8-byte
        grid, so the represented region always covers the requested one.
        """
        if bound < base:
            raise MetadataRangeError(
                f"bound {bound:#x} precedes base {base:#x}"
            )
        base_c = base >> ALIGN_SHIFT
        aligned_base = base_c << ALIGN_SHIFT
        range_c = (bound - aligned_base + 7) >> ALIGN_SHIFT
        if bound - base > self.max_range_seen:
            self.max_range_seen = bound - base
        if base > self.max_base_seen:
            self.max_base_seen = base
        if base_c > self._base_mask:
            raise MetadataRangeError(
                f"base {base:#x} needs more than {self._widths.base} bits"
            )
        if range_c > self._range_mask:
            raise MetadataRangeError(
                f"object size {bound - base} needs more than "
                f"{self._widths.range} range bits"
            )
        return base_c | (range_c << self._widths.base)

    def decompress_spatial(self, lower: int):
        """Unpack the lower half into ``(base, bound)`` byte addresses."""
        base = (lower & self._base_mask) << ALIGN_SHIFT
        range_c = (lower >> self._widths.base) & self._range_mask
        return base, base + (range_c << ALIGN_SHIFT)

    # -- temporal half ----------------------------------------------------

    def compress_temporal(self, key: int, lock: int) -> int:
        """Compress ``key``/``lock`` into the 64-bit upper half.

        The lock address is stored as an 8-byte index relative to the
        lock-table base; a null lock (no temporal metadata) stays zero.
        """
        if lock == 0:
            lock_idx = 0
        else:
            offset = lock - self._config.lock_base
            if offset < 0 or offset % 8:
                raise MetadataRangeError(
                    f"lock {lock:#x} outside the lock table"
                )
            lock_idx = offset >> 3
            if lock_idx >= self._lock_mask:
                raise MetadataRangeError(
                    f"lock index {lock_idx} needs more than "
                    f"{self._widths.lock} bits"
                )
            lock_idx += 1  # index 0 is reserved for "no lock"
            if lock_idx > self.max_lock_index_seen:
                self.max_lock_index_seen = lock_idx
        if key > self.max_key_seen:
            self.max_key_seen = key
        key_c = key & self._key_mask
        if key != key_c:
            raise MetadataRangeError(
                f"key {key:#x} needs more than {self._widths.key} bits"
            )
        return lock_idx | (key_c << self._widths.lock)

    def decompress_temporal(self, upper: int):
        """Unpack the upper half into ``(key, lock)``."""
        lock_idx = upper & self._lock_mask
        key = (upper >> self._widths.lock) & self._key_mask
        if lock_idx == 0:
            return key, 0
        return key, self._config.lock_base + ((lock_idx - 1) << 3)

    # -- full records -------------------------------------------------------

    def compress(self, meta: PointerMetadata) -> CompressedMetadata:
        """Compress a full metadata record into its 128-bit SRF image."""
        return CompressedMetadata(
            lower=self.compress_spatial(meta.base, meta.bound),
            upper=self.compress_temporal(meta.key, meta.lock),
        )

    def decompress(self, compressed: CompressedMetadata) -> PointerMetadata:
        """Expand a 128-bit SRF image back to the 256-bit record."""
        base, bound = self.decompress_spatial(compressed.lower)
        key, lock = self.decompress_temporal(compressed.upper)
        return PointerMetadata(base=base, bound=bound, key=key, lock=lock)

    # -- analysis helpers ---------------------------------------------------

    def spatial_slack(self, base: int, bound: int) -> int:
        """Bytes of over-approximation introduced by compression.

        This is the padding an overflow can land in without tripping the
        spatial check — the mechanistic source of the paper's CWE122 gap.
        """
        c_base, c_bound = self.decompress_spatial(
            self.compress_spatial(base, bound)
        )
        return (base - c_base) + (c_bound - bound)
