"""Uncompressed pointer metadata: base, bound, key, lock.

This is the 256-bit metadata of Fig. 2 before compression. A pointer is
spatially valid for an access of ``size`` bytes at ``addr`` when
``base <= addr`` and ``addr + size <= bound``; it is temporally valid
when the key stored at its lock_location still equals its own key.
"""

from __future__ import annotations

from dataclasses import dataclass

INVALID_KEY = 0  # a freed lock_location holds key 0


@dataclass(frozen=True)
class PointerMetadata:
    """Metadata bound to one pointer value."""

    base: int = 0
    bound: int = 0
    key: int = INVALID_KEY
    lock: int = 0

    def __post_init__(self):
        if self.base < 0 or self.bound < 0:
            raise ValueError("base/bound must be non-negative addresses")
        if self.bound < self.base:
            raise ValueError(
                f"bound {self.bound:#x} precedes base {self.base:#x}"
            )
        if self.key < 0 or self.lock < 0:
            raise ValueError("key/lock must be non-negative")

    @property
    def size(self) -> int:
        """Object size in bytes covered by the spatial metadata."""
        return self.bound - self.base

    def spatially_valid(self, addr: int, size: int = 1) -> bool:
        """True when ``[addr, addr+size)`` lies inside ``[base, bound)``."""
        return self.base <= addr and addr + size <= self.bound

    def is_null(self) -> bool:
        """Null-pointer metadata: zero-size object at address zero."""
        return self.base == 0 and self.bound == 0

    def with_temporal(self, key: int, lock: int) -> "PointerMetadata":
        """Copy with the temporal half replaced (bndrt semantics)."""
        return PointerMetadata(self.base, self.bound, key, lock)

    def with_spatial(self, base: int, bound: int) -> "PointerMetadata":
        """Copy with the spatial half replaced (bndrs semantics)."""
        return PointerMetadata(base, bound, self.key, self.lock)


NULL_METADATA = PointerMetadata(0, 0, INVALID_KEY, 0)
