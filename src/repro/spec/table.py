"""Table-driven executable specification of RV64 + HWST128.

One small pure function per mnemonic, keyed by the mnemonic string:
``SPEC_EXEC[op](state, ins, env)`` returns either the successor
:class:`~repro.spec.state.SpecState` (pc advanced, instret bumped,
memory effects in ``state.events``) or a
:class:`~repro.spec.state.SpecTrap`.

The semantics are written from ``docs/isa.md`` and the ``repro.isa``
encoding tables — deliberately *not* from the simulator — so the
conformance layer compares two independently derived implementations.
Notable architectural corners the ISA doc pins down and the spec
reproduces exactly:

* a trapping instruction never retires: pc/instret are untouched and no
  memory effect is emitted;
* ``x0`` is hard-wired for the integer file, but the SRF has no zero
  register: ``bndrs``/``bndrt``/``lbdls``/``lbdus``/``bndldx``/``vld256``
  write ``SRF[rd]`` even when ``rd == 0`` (propagation reads it back);
* SRF propagation: reg-reg ALU ops forward rs1's metadata when bound,
  else rs2's; reg-imm ALU ops forward rs1 unconditionally; every other
  rd-writer invalidates;
* the COMP/DECOMP geometry is fixed by the platform config — CSR writes
  to the lock-base/limit CSRs move the keybuffer snoop window (a
  non-architectural structure) but never re-parameterise compression;
* ``SYS_WRITE`` returns the requested length in ``a0`` *without*
  invalidating its SRF entry (the syscall stub's register file is not
  re-derived metadata).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from repro.isa.instructions import Instr, SPEC_TABLE
from repro.spec import geometry
from repro.spec.state import (
    KIND_ABORT,
    KIND_EXIT,
    KIND_FAULT,
    KIND_ILLEGAL,
    KIND_META_RANGE,
    KIND_OOM,
    KIND_SPATIAL,
    KIND_TEMPORAL,
    MemEvent,
    SRF_INVALID,
    SpecEnv,
    SpecState,
    SpecTrap,
)

StepResult = Union[SpecState, SpecTrap]
Handler = Callable[[SpecState, Instr, SpecEnv], StepResult]

_M64 = (1 << 64) - 1
_M32 = (1 << 32) - 1

# CSR addresses (docs/isa.md CSR map).
_CSR_CYCLE = 0xC00
_CSR_TIME = 0xC01
_CSR_INSTRET = 0xC02
_CSR_SM_OFFSET = 0x800

# Proxy-kernel syscall numbers.
_SYS_WRITE = 64
_SYS_EXIT = 93
_SYS_ABORT = 1000
_SYS_TRAP_SPATIAL = 1001
_SYS_TRAP_TEMPORAL = 1002
_SYS_TRAP_ASAN = 1003
_SYS_TRAP_CANARY = 1004


def _u64(v: int) -> int:
    return v & _M64


def _s64(v: int) -> int:
    v &= _M64
    return v - (1 << 64) if v >> 63 else v


def _s32(v: int) -> int:
    v &= _M32
    return v - (1 << 32) if v >> 31 else v


def _sx32(v: int) -> int:
    """Sign-extend the low 32 bits of ``v`` into a u64."""
    return _u64(_s32(v))


def _set(tup: tuple, index: int, value) -> tuple:
    return tup[:index] + (value,) + tup[index + 1:]


# ---------------------------------------------------------------------------
# SRF propagation (Section 3.2 in-pipeline rules)
# ---------------------------------------------------------------------------

def _bound(state: SpecState, reg: int) -> bool:
    entry = state.srf[reg]
    return entry[2] or entry[3] or state.srf_wide[reg] is not None


def _prop_r(state: SpecState, srf: tuple, wide: tuple,
            rd: int, rs1: int, rs2: int) -> Tuple[tuple, tuple]:
    if rd == 0:
        return srf, wide
    if _bound(state, rs1):
        return (_set(srf, rd, state.srf[rs1]),
                _set(wide, rd, state.srf_wide[rs1]))
    if _bound(state, rs2):
        return (_set(srf, rd, state.srf[rs2]),
                _set(wide, rd, state.srf_wide[rs2]))
    return _set(srf, rd, SRF_INVALID), _set(wide, rd, None)


def _prop_i(state: SpecState, srf: tuple, wide: tuple,
            rd: int, rs1: int) -> Tuple[tuple, tuple]:
    if rd == 0:
        return srf, wide
    return (_set(srf, rd, state.srf[rs1]),
            _set(wide, rd, state.srf_wide[rs1]))


def _invalidate(srf: tuple, wide: tuple, rd: int) -> Tuple[tuple, tuple]:
    if rd == 0:
        return srf, wide
    return _set(srf, rd, SRF_INVALID), _set(wide, rd, None)


# ---------------------------------------------------------------------------
# Trap constructors
# ---------------------------------------------------------------------------

def _fault(pc: int, addr: int, detail: str = "unmapped access") -> SpecTrap:
    return SpecTrap(KIND_FAULT, pc, detail=detail,
                    fields=(("addr", addr),))


def _spatial(pc: int, addr: int, base: int, bound: int) -> SpecTrap:
    return SpecTrap(KIND_SPATIAL, pc,
                    detail=f"addr {addr:#x} outside [{base:#x},{bound:#x})",
                    fields=(("addr", addr), ("base", base),
                            ("bound", bound)))


def _temporal(pc: int, key: int, stored: int, lock: int) -> SpecTrap:
    return SpecTrap(KIND_TEMPORAL, pc,
                    detail=f"key {key:#x} != lock[{lock:#x}] {stored:#x}",
                    fields=(("ptr_key", key), ("lock_key", stored),
                            ("lock", lock)))


# ---------------------------------------------------------------------------
# ALU semantics (independent formulations; exact integer arithmetic)
# ---------------------------------------------------------------------------

def _divq(a: int, b: int) -> int:
    """Signed quotient truncated toward zero (``b != 0``)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _div64(a: int, b: int) -> int:
    sa, sb = _s64(a), _s64(b)
    if sb == 0:
        return _M64
    if sa == -(1 << 63) and sb == -1:
        return _u64(sa)
    return _u64(_divq(sa, sb))


def _rem64(a: int, b: int) -> int:
    sa, sb = _s64(a), _s64(b)
    if sb == 0:
        return _u64(sa)
    if sa == -(1 << 63) and sb == -1:
        return 0
    return _u64(sa - _divq(sa, sb) * sb)


def _divw(a: int, b: int) -> int:
    sa, sb = _s32(a), _s32(b)
    if sb == 0:
        return _M64
    return _u64(_s32(_divq(sa, sb)))


def _remw(a: int, b: int) -> int:
    sa, sb = _s32(a), _s32(b)
    if sb == 0:
        return _u64(sa)
    return _u64(sa - _divq(sa, sb) * sb)


_ALU_FN: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: _u64(a + b),
    "sub": lambda a, b: _u64(a - b),
    "sll": lambda a, b: _u64(a << (b & 63)),
    "slt": lambda a, b: int(_s64(a) < _s64(b)),
    "sltu": lambda a, b: int(a < b),
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: a >> (b & 63),
    "sra": lambda a, b: _u64(_s64(a) >> (b & 63)),
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "addw": lambda a, b: _sx32(a + b),
    "subw": lambda a, b: _sx32(a - b),
    "sllw": lambda a, b: _sx32(a << (b & 31)),
    "srlw": lambda a, b: _sx32((a & _M32) >> (b & 31)),
    "sraw": lambda a, b: _u64(_s32(a) >> (b & 31)),
    "mul": lambda a, b: _u64(a * b),
    "mulh": lambda a, b: _u64((_s64(a) * _s64(b)) >> 64),
    "mulhsu": lambda a, b: _u64((_s64(a) * b) >> 64),
    "mulhu": lambda a, b: (a * b) >> 64,
    "div": _div64,
    "divu": lambda a, b: _M64 if b == 0 else a // b,
    "rem": _rem64,
    "remu": lambda a, b: a if b == 0 else a % b,
    "mulw": lambda a, b: _sx32(a * b),
    "divw": _divw,
    "divuw": lambda a, b: _M64 if (b & _M32) == 0
    else _sx32((a & _M32) // (b & _M32)),
    "remw": _remw,
    "remuw": lambda a, b: _sx32(a & _M32) if (b & _M32) == 0
    else _sx32((a & _M32) % (b & _M32)),
}

#: reg-imm mnemonics share the binary function of their reg-reg twin.
_ALU_I: Dict[str, str] = {
    "addi": "add", "slti": "slt", "sltiu": "sltu", "xori": "xor",
    "ori": "or", "andi": "and", "slli": "sll", "srli": "srl",
    "srai": "sra", "addiw": "addw", "slliw": "sllw", "srliw": "srlw",
    "sraiw": "sraw",
}

_BRANCH_FN: Dict[str, Callable[[int, int], bool]] = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _s64(a) < _s64(b),
    "bge": lambda a, b: _s64(a) >= _s64(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}


# ---------------------------------------------------------------------------
# Shadow-memory helpers
# ---------------------------------------------------------------------------

def _shadow_bytes(env: SpecEnv, addr: int, size: int) -> int:
    """Bytes this access adds to the shadow-traffic census (the window
    test matches the platform's: start byte inside the shadow range)."""
    return size if env.shadow_lo <= addr < env.shadow_hi else 0


def _smac(state: SpecState, env: SpecEnv,
          container: int) -> Union[int, SpecTrap]:
    """Shadow-memory address calculation (Eq. 1) + budget guard."""
    if env.shadow_budget and state.shadow_touched > env.shadow_budget:
        return SpecTrap(KIND_OOM, state.pc,
                        detail=f"shadow budget {env.shadow_budget} "
                               f"exhausted ({state.shadow_touched})")
    # Deliberately unwrapped: Eq. 1 is plain address arithmetic, so a
    # container above the user range yields an out-of-range shadow
    # address that faults as-is.
    return (container << 2) + state.csrs[_CSR_SM_OFFSET]


def _spatial_window(state: SpecState, env: SpecEnv, reg: int,
                    addr: int) -> Union[Tuple[int, int], SpecTrap]:
    """Decompressed (base, bound) of SRF[reg]; an unbound pointer is a
    zero-window violation at ``addr``."""
    lower, _, lvalid, _ = state.srf[reg]
    if not lvalid:
        return _spatial(state.pc, addr, 0, 0)
    base_b, range_b, _, _ = env.widths
    return geometry.spatial_unpack(lower, base_b, range_b)


# ---------------------------------------------------------------------------
# Handlers
# ---------------------------------------------------------------------------

def _exec_alu_r(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    rd = ins.rd
    regs, srf, wide = state.regs, state.srf, state.srf_wide
    if rd:
        fn = _ALU_FN[ins.op]
        regs = _set(regs, rd, fn(regs[ins.rs1], regs[ins.rs2]))
        srf, wide = _prop_r(state, srf, wide, rd, ins.rs1, ins.rs2)
    return state.evolve(pc=state.pc + 4, regs=regs, srf=srf,
                        srf_wide=wide, instret=state.instret + 1,
                        events=())


def _exec_alu_i(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    rd = ins.rd
    regs, srf, wide = state.regs, state.srf, state.srf_wide
    if rd:
        fn = _ALU_FN[_ALU_I[ins.op]]
        regs = _set(regs, rd, fn(regs[ins.rs1], _u64(ins.imm)))
        srf, wide = _prop_i(state, srf, wide, rd, ins.rs1)
    return state.evolve(pc=state.pc + 4, regs=regs, srf=srf,
                        srf_wide=wide, instret=state.instret + 1,
                        events=())


def _make_load(nbytes: int, signed: bool, checked: bool) -> Handler:
    def handler(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
        addr = _u64(state.regs[ins.rs1] + ins.imm)
        if checked:
            window = _spatial_window(state, env, ins.rs1, addr)
            if isinstance(window, SpecTrap):
                return window
            base, bound = window
            if addr < base or addr + nbytes > bound:
                return _spatial(state.pc, addr, base, bound)
        value = env.load(addr, nbytes)
        if value is None:
            return _fault(state.pc, addr)
        if signed and value >> (8 * nbytes - 1):
            value = _u64(value - (1 << 8 * nbytes))
        regs, srf, wide = state.regs, state.srf, state.srf_wide
        if ins.rd:
            regs = _set(regs, ins.rd, value)
            srf, wide = _invalidate(srf, wide, ins.rd)
        return state.evolve(
            pc=state.pc + 4, regs=regs, srf=srf, srf_wide=wide,
            instret=state.instret + 1, events=(),
            shadow_touched=state.shadow_touched
            + _shadow_bytes(env, addr, nbytes))

    return handler


def _make_store(nbytes: int, checked: bool) -> Handler:
    mask = (1 << 8 * nbytes) - 1

    def handler(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
        addr = _u64(state.regs[ins.rs1] + ins.imm)
        if checked:
            window = _spatial_window(state, env, ins.rs1, addr)
            if isinstance(window, SpecTrap):
                return window
            base, bound = window
            if addr < base or addr + nbytes > bound:
                return _spatial(state.pc, addr, base, bound)
        if not env.is_mapped(addr, nbytes):
            return _fault(state.pc, addr)
        value = state.regs[ins.rs2] & mask
        return state.evolve(
            pc=state.pc + 4, instret=state.instret + 1,
            events=(MemEvent(addr, nbytes, value),),
            shadow_touched=state.shadow_touched
            + _shadow_bytes(env, addr, nbytes))

    return handler


def _exec_branch(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    taken = _BRANCH_FN[ins.op](state.regs[ins.rs1], state.regs[ins.rs2])
    pc = _u64(state.pc + ins.imm) if taken else state.pc + 4
    return state.evolve(pc=pc, instret=state.instret + 1, events=())


def _exec_jal(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    regs, srf, wide = state.regs, state.srf, state.srf_wide
    if ins.rd:
        regs = _set(regs, ins.rd, _u64(state.pc + 4))
        srf, wide = _invalidate(srf, wide, ins.rd)
    return state.evolve(pc=_u64(state.pc + ins.imm), regs=regs, srf=srf,
                        srf_wide=wide, instret=state.instret + 1,
                        events=())


def _exec_jalr(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    target = _u64(state.regs[ins.rs1] + ins.imm) & ~1
    regs, srf, wide = state.regs, state.srf, state.srf_wide
    if ins.rd:
        regs = _set(regs, ins.rd, _u64(state.pc + 4))
        srf, wide = _invalidate(srf, wide, ins.rd)
    return state.evolve(pc=target, regs=regs, srf=srf, srf_wide=wide,
                        instret=state.instret + 1, events=())


def _exec_lui(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    regs, srf, wide = state.regs, state.srf, state.srf_wide
    if ins.rd:
        regs = _set(regs, ins.rd, _sx32(ins.imm << 12))
        srf, wide = _invalidate(srf, wide, ins.rd)
    return state.evolve(pc=state.pc + 4, regs=regs, srf=srf,
                        srf_wide=wide, instret=state.instret + 1,
                        events=())


def _exec_auipc(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    regs, srf, wide = state.regs, state.srf, state.srf_wide
    if ins.rd:
        regs = _set(regs, ins.rd, _u64(state.pc + _s32(ins.imm << 12)))
        srf, wide = _invalidate(srf, wide, ins.rd)
    return state.evolve(pc=state.pc + 4, regs=regs, srf=srf,
                        srf_wide=wide, instret=state.instret + 1,
                        events=())


def _exec_fence(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    return state.evolve(pc=state.pc + 4, instret=state.instret + 1,
                        events=())


def _exec_ebreak(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    return SpecTrap(KIND_ABORT, state.pc, detail="ebreak")


def _exec_ecall(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    number = state.regs[17]  # a7
    if number == _SYS_EXIT:
        return SpecTrap(KIND_EXIT, state.pc,
                        exit_code=_s64(state.regs[10]))
    if number == _SYS_WRITE:
        buf, length = state.regs[11], state.regs[12]
        data = env.load_bytes(buf, length)
        if data is None:
            return _fault(state.pc, buf)
        # a0 reports the length written; the syscall does *not*
        # invalidate a0's SRF entry (no metadata is derived here).
        regs = _set(state.regs, 10, length)
        return state.evolve(
            pc=state.pc + 4, regs=regs, instret=state.instret + 1,
            output=state.output + data, events=(),
            shadow_touched=state.shadow_touched
            + _shadow_bytes(env, buf, length))
    if number == _SYS_ABORT:
        return SpecTrap(KIND_ABORT, state.pc, detail="program abort")
    if number == _SYS_TRAP_SPATIAL:
        return _spatial(state.pc, state.regs[10], 0, 0)
    if number == _SYS_TRAP_TEMPORAL:
        return _temporal(state.pc, state.regs[10], 0, 0)
    if number == _SYS_TRAP_ASAN:
        return SpecTrap(KIND_ABORT, state.pc, detail="asan-report")
    if number == _SYS_TRAP_CANARY:
        return SpecTrap(KIND_ABORT, state.pc,
                        detail="stack-smashing-detected")
    return SpecTrap(KIND_ILLEGAL, state.pc,
                    detail=f"unknown ecall {number}")


def _csr_read(state: SpecState, addr: int) -> int:
    # Untimed platform: the cycle counter advances with instret.
    if addr in (_CSR_CYCLE, _CSR_TIME, _CSR_INSTRET):
        return state.instret
    return state.csrs.get(addr, 0)


def _make_csr(kind: str) -> Handler:
    def handler(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
        addr = ins.imm
        old = _csr_read(state, addr)
        src = state.regs[ins.rs1]
        csrs = state.csrs
        if kind == "w":
            csrs = dict(csrs)
            csrs[addr] = _u64(src)
        elif kind == "s" and ins.rs1 != 0:
            csrs = dict(csrs)
            csrs[addr] = _u64(old | src)
        elif kind == "c" and ins.rs1 != 0:
            csrs = dict(csrs)
            csrs[addr] = _u64(old & ~src)
        regs, srf, wide = state.regs, state.srf, state.srf_wide
        if ins.rd:
            regs = _set(regs, ins.rd, old)
            srf, wide = _invalidate(srf, wide, ins.rd)
        return state.evolve(pc=state.pc + 4, regs=regs, srf=srf,
                            srf_wide=wide, csrs=csrs,
                            instret=state.instret + 1, events=())

    return handler


# -- HWST128 -----------------------------------------------------------------

def _exec_bndrs(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    base_b, range_b, _, _ = env.widths
    try:
        lower = geometry.spatial_pack(state.regs[ins.rs1],
                                      state.regs[ins.rs2],
                                      base_b, range_b)
    except geometry.GeometryError as exc:
        return SpecTrap(KIND_META_RANGE, state.pc, detail=str(exc))
    _, upper, _, uvalid = state.srf[ins.rd]
    # The SRF has no zero register: rd == x0 still writes entry 0.
    srf = _set(state.srf, ins.rd, (lower, upper, True, uvalid))
    wide = _set(state.srf_wide, ins.rd, None)
    return state.evolve(pc=state.pc + 4, srf=srf, srf_wide=wide,
                        instret=state.instret + 1, events=())


def _exec_bndrt(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    _, _, lock_b, key_b = env.widths
    try:
        upper = geometry.temporal_pack(state.regs[ins.rs1],
                                       state.regs[ins.rs2],
                                       lock_b, key_b, env.lock_base)
    except geometry.GeometryError as exc:
        return SpecTrap(KIND_META_RANGE, state.pc, detail=str(exc))
    lower, _, lvalid, _ = state.srf[ins.rd]
    srf = _set(state.srf, ins.rd, (lower, upper, lvalid, True))
    return state.evolve(pc=state.pc + 4, srf=srf,
                        instret=state.instret + 1, events=())


def _exec_tchk(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    _, upper, _, uvalid = state.srf[ins.rs1]
    if not uvalid:
        return _temporal(state.pc, 0, 0, 0)
    _, _, lock_b, key_b = env.widths
    key, lock = geometry.temporal_unpack(upper, lock_b, key_b,
                                         env.lock_base)
    if lock == 0:
        return _temporal(state.pc, key, 0, 0)
    stored = env.load(lock, 8)
    if stored is None:
        return _fault(state.pc, lock)
    if stored != key:
        return _temporal(state.pc, key, stored, lock)
    return state.evolve(pc=state.pc + 4, instret=state.instret + 1,
                        events=(),
                        shadow_touched=state.shadow_touched
                        + _shadow_bytes(env, lock, 8))


def _make_sbd(upper: bool) -> Handler:
    def handler(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
        container = _u64(state.regs[ins.rs1] + ins.imm)
        shadow = _smac(state, env, container)
        if isinstance(shadow, SpecTrap):
            return shadow
        shadow += 8 if upper else 0
        lower_v, upper_v, lvalid, uvalid = state.srf[ins.rs2]
        value = (upper_v if uvalid else 0) if upper \
            else (lower_v if lvalid else 0)
        if not env.is_mapped(shadow, 8):
            return _fault(state.pc, shadow)
        return state.evolve(pc=state.pc + 4,
                            instret=state.instret + 1,
                            events=(MemEvent(shadow, 8, value),),
                            shadow_touched=state.shadow_touched
                            + _shadow_bytes(env, shadow, 8))

    return handler


def _make_lbds(upper: bool) -> Handler:
    def handler(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
        container = _u64(state.regs[ins.rs1] + ins.imm)
        shadow = _smac(state, env, container)
        if isinstance(shadow, SpecTrap):
            return shadow
        shadow += 8 if upper else 0
        value = env.load(shadow, 8)
        if value is None:
            return _fault(state.pc, shadow)
        lower_v, upper_v, lvalid, uvalid = state.srf[ins.rd]
        entry = (lower_v, value, lvalid, True) if upper \
            else (value, upper_v, True, uvalid)
        srf = _set(state.srf, ins.rd, entry)
        wide = _set(state.srf_wide, ins.rd, None)
        return state.evolve(pc=state.pc + 4, srf=srf, srf_wide=wide,
                            instret=state.instret + 1, events=(),
                            shadow_touched=state.shadow_touched
                            + _shadow_bytes(env, shadow, 8))

    return handler


def _make_meta_gpr_load(which: str) -> Handler:
    temporal = which in ("key", "lock")

    def handler(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
        container = _u64(state.regs[ins.rs1] + ins.imm)
        shadow = _smac(state, env, container)
        if isinstance(shadow, SpecTrap):
            return shadow
        shadow += 8 if temporal else 0
        value = env.load(shadow, 8)
        if value is None:
            return _fault(state.pc, shadow)
        base_b, range_b, lock_b, key_b = env.widths
        if temporal:
            key, lock = geometry.temporal_unpack(value, lock_b, key_b,
                                                 env.lock_base)
            result = key if which == "key" else lock
        else:
            base, bound = geometry.spatial_unpack(value, base_b, range_b)
            result = base if which == "base" else bound
        regs, srf, wide = state.regs, state.srf, state.srf_wide
        if ins.rd:
            regs = _set(regs, ins.rd, _u64(result))
            srf, wide = _invalidate(srf, wide, ins.rd)
        return state.evolve(pc=state.pc + 4, regs=regs, srf=srf,
                            srf_wide=wide, instret=state.instret + 1,
                            events=(),
                            shadow_touched=state.shadow_touched
                            + _shadow_bytes(env, shadow, 8))

    return handler


# -- MPX comparator model ----------------------------------------------------

def _make_bndc(upper: bool) -> Handler:
    def handler(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
        addr = state.regs[ins.rs2]
        window = _spatial_window(state, env, ins.rs1, addr)
        if isinstance(window, SpecTrap):
            return window
        base, bound = window
        if (addr >= bound) if upper else (addr < base):
            return _spatial(state.pc, addr, base, bound)
        return state.evolve(pc=state.pc + 4, instret=state.instret + 1,
                            events=())

    return handler


def _exec_bndldx(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    container = _u64(state.regs[ins.rs1] + ins.imm)
    shadow = _smac(state, env, container)
    if isinstance(shadow, SpecTrap):
        return shadow
    value = env.load(shadow, 8)
    if value is None:
        return _fault(state.pc, shadow)
    _, upper_v, _, uvalid = state.srf[ins.rd]
    srf = _set(state.srf, ins.rd, (value, upper_v, True, uvalid))
    return state.evolve(pc=state.pc + 4, srf=srf,
                        instret=state.instret + 1, events=(),
                        shadow_touched=state.shadow_touched
                        + _shadow_bytes(env, shadow, 8))


def _exec_bndstx(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    container = _u64(state.regs[ins.rs1] + ins.imm)
    shadow = _smac(state, env, container)
    if isinstance(shadow, SpecTrap):
        return shadow
    lower_v, _, lvalid, _ = state.srf[ins.rs2]
    if not env.is_mapped(shadow, 8):
        return _fault(state.pc, shadow)
    return state.evolve(pc=state.pc + 4, instret=state.instret + 1,
                        events=(MemEvent(shadow, 8,
                                         lower_v if lvalid else 0),),
                        shadow_touched=state.shadow_touched
                        + _shadow_bytes(env, shadow, 8))


# -- AVX comparator model ----------------------------------------------------

def _exec_vld256(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    container = _u64(state.regs[ins.rs1] + ins.imm)
    shadow = _smac(state, env, container)
    if isinstance(shadow, SpecTrap):
        return shadow
    fields = []
    touched = state.shadow_touched
    for i in range(4):
        value = env.load(shadow + 8 * i, 8)
        if value is None:
            return _fault(state.pc, shadow + 8 * i)
        touched += _shadow_bytes(env, shadow + 8 * i, 8)
        fields.append(value)
    wide = _set(state.srf_wide, ins.rd, tuple(fields))
    srf = _set(state.srf, ins.rd, SRF_INVALID)
    return state.evolve(pc=state.pc + 4, srf=srf, srf_wide=wide,
                        instret=state.instret + 1, events=(),
                        shadow_touched=touched)


def _exec_vst256(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    container = _u64(state.regs[ins.rs1] + ins.imm)
    shadow = _smac(state, env, container)
    if isinstance(shadow, SpecTrap):
        return shadow
    fields = state.srf_wide[ins.rs2] or (0, 0, 0, 0)
    events = []
    touched = state.shadow_touched
    for i, value in enumerate(fields):
        addr = shadow + 8 * i
        if not env.is_mapped(addr, 8):
            return _fault(state.pc, addr)
        events.append(MemEvent(addr, 8, value))
        touched += _shadow_bytes(env, addr, 8)
    return state.evolve(pc=state.pc + 4, instret=state.instret + 1,
                        events=tuple(events), shadow_touched=touched)


def _exec_vchk(state: SpecState, ins: Instr, env: SpecEnv) -> StepResult:
    wide = state.srf_wide[ins.rs1]
    addr = state.regs[ins.rs2]
    if wide is None:
        return _spatial(state.pc, addr, 0, 0)
    base, bound, key, lock = wide
    if addr < base or addr >= bound:
        return _spatial(state.pc, addr, base, bound)
    touched = state.shadow_touched
    if lock:
        stored = env.load(lock, 8)
        if stored is None:
            return _fault(state.pc, lock)
        if stored != key:
            return _temporal(state.pc, key, stored, lock)
        touched += _shadow_bytes(env, lock, 8)
    return state.evolve(pc=state.pc + 4, instret=state.instret + 1,
                        events=(), shadow_touched=touched)


# ---------------------------------------------------------------------------
# Table assembly
# ---------------------------------------------------------------------------

def _build_table() -> Dict[str, Handler]:
    table: Dict[str, Handler] = {}
    for op in _ALU_FN:
        table[op] = _exec_alu_r
    for op in _ALU_I:
        table[op] = _exec_alu_i
    # Memory mnemonics (plain and checked) come from the encoding
    # tables: opcode 0x03/0x23 are the RV64I forms, the ``.chk``
    # variants carry the fused SCU bounds check.
    for op, spec in SPEC_TABLE.items():
        if spec.is_load and spec.mem_bytes and not spec.shadow_access:
            table[op] = _make_load(spec.mem_bytes, spec.mem_signed,
                                   spec.checked)
        elif spec.is_store and spec.mem_bytes and not spec.shadow_access:
            table[op] = _make_store(spec.mem_bytes, spec.checked)
    for op in _BRANCH_FN:
        table[op] = _exec_branch
    table["jal"] = _exec_jal
    table["jalr"] = _exec_jalr
    table["lui"] = _exec_lui
    table["auipc"] = _exec_auipc
    table["fence"] = _exec_fence
    table["ecall"] = _exec_ecall
    table["ebreak"] = _exec_ebreak
    table["csrrw"] = _make_csr("w")
    table["csrrs"] = _make_csr("s")
    table["csrrc"] = _make_csr("c")
    table["bndrs"] = _exec_bndrs
    table["bndrt"] = _exec_bndrt
    table["tchk"] = _exec_tchk
    table["sbdl"] = _make_sbd(upper=False)
    table["sbdu"] = _make_sbd(upper=True)
    table["lbdls"] = _make_lbds(upper=False)
    table["lbdus"] = _make_lbds(upper=True)
    table["lbas"] = _make_meta_gpr_load("base")
    table["lbnd"] = _make_meta_gpr_load("bound")
    table["lkey"] = _make_meta_gpr_load("key")
    table["lloc"] = _make_meta_gpr_load("lock")
    table["bndcl"] = _make_bndc(upper=False)
    table["bndcu"] = _make_bndc(upper=True)
    table["bndldx"] = _exec_bndldx
    table["bndstx"] = _exec_bndstx
    table["vld256"] = _exec_vld256
    table["vst256"] = _exec_vst256
    table["vchk"] = _exec_vchk
    return table


#: mnemonic -> pure step function; the spec's entire dispatch surface.
SPEC_EXEC: Dict[str, Handler] = _build_table()


def spec_step(state: SpecState, ins: Optional[Instr],
              env: SpecEnv) -> StepResult:
    """Execute one instruction of the specification.

    ``ins`` is the decoded instruction at ``state.pc`` (``None`` when
    the pc points outside text — an instruction fetch fault).
    """
    if ins is None:
        return _fault(state.pc, state.pc, detail="pc outside text")
    handler = SPEC_EXEC.get(ins.op)
    if handler is None:
        return SpecTrap(KIND_ILLEGAL, state.pc, detail=ins.op)
    return handler(state, ins, env)


__all__ = ["SPEC_EXEC", "spec_step", "Handler", "StepResult"]
