"""Per-instruction equivalence: spec vs ISS over operand edge cases.

For every mnemonic in the encoding tables the driver generates a
deterministic, seeded battery of single-instruction cases — sign
boundaries, shift-amount extremes, metadata field extremes, all four
compression geometries, keybuffer lock-index bounds, mapped/unmapped
address corners — executes each case once on the spec and once on an
injected ISS machine from an identical architectural pre-state, and
diffs the outcome (retired state or trap, field by field).

Case generation is pure: seeded ``random.Random`` instances keyed by
``(seed, mnemonic)``, never the global generator, so a sweep is
byte-deterministic at any ``--jobs``. The platform memory map used to
pick interesting addresses is the documented layout from
``docs/isa.md``; machines are injected by ``repro.harness.conform`` so
this module imports nothing from ``repro.sim``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instr, SPEC_TABLE
from repro.spec import geometry
from repro.spec.lockstep import (
    classify_trap,
    diff_retire,
    diff_trap,
    make_env,
    snapshot_state,
)
from repro.spec.state import SpecTrap, SrfEntry
from repro.spec.table import _ALU_FN, _ALU_I, _BRANCH_FN, spec_step

_M64 = (1 << 64) - 1

# Documented platform memory map (docs/isa.md) — the address corners
# the sweep probes. These are layout constants, not simulator state.
TEXT_BASE = 0x0001_0000
DATA_BASE = 0x0020_0000
HEAP_BASE = 0x0040_0000
HEAP_TOP = 0x00D0_0000
STACK_TOP = 0x00F0_0000
USER_TOP = 0x0100_0000
SHADOW_OFFSET = 0x1000_0000
SHADOW_TOP = SHADOW_OFFSET + (USER_TOP << 2)
LOCK_BASE = SHADOW_OFFSET

_EDGE64 = (0, 1, 2, 7, 8, 0x7F, 0x80,
           0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 1 << 32,
           0x7FFFFFFFFFFFFFFF, 1 << 63, (1 << 63) + 1, _M64 - 1, _M64)
_SHAMT = (0, 1, 31, 32, 63, 64, 127, _M64)
_IMM12 = (-2048, -1, 0, 1, 7, 2047)
_ADDR_POOL = (DATA_BASE, HEAP_BASE, HEAP_BASE + 4096, HEAP_TOP - 8,
              HEAP_TOP - 1, HEAP_TOP, STACK_TOP - 4096, TEXT_BASE,
              0, USER_TOP, 0xFFFF_FFFF_FFFF_F000)
_SEED_WORDS = (0x8877665544332211, 0xFFFFFFFFFFFFFFFF,
               0x7FEDCBA987654321, 0x0000000080000000)


@dataclass(frozen=True)
class EquivCase:
    """One single-instruction equivalence case (picklable plain data)."""

    mnemonic: str
    geom: int = 0                     # index into geometry.GEOMETRIES
    rd: int = 10
    rs1: int = 5
    rs2: int = 6
    imm: int = 0
    regs: Tuple[Tuple[int, int], ...] = ()
    srf: Tuple[Tuple[int, SrfEntry], ...] = ()
    wide: Tuple[Tuple[int, Tuple[int, int, int, int]], ...] = ()
    mem: Tuple[Tuple[int, int], ...] = ()    # (addr, u64) seeds, mapped

    def describe(self) -> str:
        return (f"{self.mnemonic} geom={self.geom} rd={self.rd} "
                f"rs1={self.rs1} rs2={self.rs2} imm={self.imm}")


def _rng(seed: int, mnemonic: str) -> random.Random:
    return random.Random(f"spec-equiv/{seed}/{mnemonic}")


def _alu_pools(op: str, rng: random.Random) -> Tuple[Tuple[int, ...],
                                                     Tuple[int, ...]]:
    a_pool = _EDGE64 + tuple(rng.getrandbits(64) for _ in range(4))
    if op in ("sll", "srl", "sra", "sllw", "srlw", "sraw"):
        return a_pool, _SHAMT
    if op in ("div", "divu", "rem", "remu", "divw", "divuw",
              "remw", "remuw", "mulh", "mulhu", "mulhsu", "mul", "mulw"):
        b_pool = (0, 1, 2, 3, 5, _M64, 1 << 63, (1 << 63) + 1,
                  0x7FFFFFFFFFFFFFFF, 0xFFFFFFFF, 0x80000000,
                  rng.getrandbits(64))
        return a_pool, b_pool
    return a_pool, (0, 1, 8, 0x7FFFFFFF, 0x80000000,
                    1 << 63, _M64, rng.getrandbits(64))


def _spatial_windows(addr: int, nbytes: int) -> Tuple[Tuple[int, int], ...]:
    """Interesting (base, bound) windows around an access at ``addr``."""
    return (
        (addr, addr + nbytes),              # exact fit
        (addr & ~7, (addr + nbytes + 7) & ~7),
        (addr + 8, addr + 64),              # addr below base
        (max(0, addr - 64), max(0, addr - 16) & ~7),  # bound below addr
        (0, _M64 >> 8),                     # huge window
    )


def _geom_lock_edges(geom: int) -> Tuple[int, ...]:
    """Lock addresses at and beyond the representable index bound."""
    lock_bits = geometry.GEOMETRIES[geom][2]
    mask = (1 << lock_bits) - 1
    return (0, LOCK_BASE, LOCK_BASE + 8, LOCK_BASE + 4, LOCK_BASE - 8,
            LOCK_BASE + 8 * (mask - 1),     # last representable index
            LOCK_BASE + 8 * mask)           # one past: meta_range


def cases_for(mnemonic: str, seed: int) -> Tuple[EquivCase, ...]:
    """The deterministic case battery for one mnemonic."""
    rng = _rng(seed, mnemonic)
    spec = SPEC_TABLE[mnemonic]
    cases: List[EquivCase] = []
    add = cases.append

    def C(**kw) -> EquivCase:
        return EquivCase(mnemonic=mnemonic, **kw)

    if mnemonic in _ALU_FN:
        a_pool, b_pool = _alu_pools(mnemonic, rng)
        for a in a_pool:
            for b in b_pool:
                add(C(regs=((5, a), (6, b))))
        add(C(rd=0, regs=((5, 3), (6, 5))))
        add(C(rd=5, regs=((5, 9), (6, 4))))          # rd aliases rs1
        add(C(rs2=5, regs=((5, rng.getrandbits(64)),)))  # rs1 == rs2
        # metadata propagation: rs1-bound, rs2-bound, both, wide-only
        entry = (0x1234, 0x99, True, False)
        add(C(regs=((5, 1), (6, 2)), srf=((5, entry),)))
        add(C(regs=((5, 1), (6, 2)), srf=((6, entry),)))
        add(C(regs=((5, 1), (6, 2)),
              srf=((5, (0, 7, False, True)), (6, entry))))
        add(C(regs=((5, 1), (6, 2)), wide=((6, (1, 2, 3, 4)),)))
    elif mnemonic in _ALU_I:
        base_op = _ALU_I[mnemonic]
        shift = base_op in ("sll", "srl", "sra", "sllw", "srlw", "sraw")
        imm_pool = (0, 1, 5, 31, 63) if shift else _IMM12
        a_pool = _EDGE64 + tuple(rng.getrandbits(64) for _ in range(4))
        for a in a_pool:
            for imm in imm_pool:
                add(C(imm=imm, regs=((5, a),)))
        add(C(rd=0, imm=1, regs=((5, 3),)))
        add(C(imm=4, regs=((5, 8),),
              srf=((5, (0xBEEF, 0, True, False)),)))  # propagation
    elif mnemonic in _BRANCH_FN:
        pairs = ((0, 0), (1, 2), (2, 1), (_M64, 0), (0, _M64),
                 (1 << 63, 1), (1, 1 << 63), (_M64, _M64),
                 (rng.getrandbits(64), rng.getrandbits(64)))
        for a, b in pairs:
            for imm in (-8, 4, 8, 0x1000):
                add(C(imm=imm, regs=((5, a), (6, b))))
    elif mnemonic == "jal":
        for rd in (0, 1, 10):
            for imm in (-4, 4, 8, 0x2000):
                add(C(rd=rd, imm=imm))
    elif mnemonic == "jalr":
        for base in (TEXT_BASE + 8, TEXT_BASE + 9, 0, _M64):
            for imm in (-1, 0, 1, 4):
                add(C(imm=imm, regs=((5, base),)))
        add(C(rd=0, regs=((5, TEXT_BASE),)))
        add(C(rd=5, regs=((5, TEXT_BASE + 4),)))
    elif mnemonic in ("lui", "auipc"):
        for imm in (0, 1, 0x7FFFF, 0x80000, 0xFFFFF):
            add(C(imm=imm))
        add(C(rd=0, imm=0x12345))
    elif mnemonic == "fence":
        add(C())
    elif mnemonic == "ebreak":
        add(C())
    elif mnemonic == "ecall":
        for a0 in (0, 1, 255, _M64, 1 << 63):
            add(C(regs=((17, 93), (10, a0))))
        writes = ((DATA_BASE, 0), (DATA_BASE, 16), (HEAP_TOP - 8, 8),
                  (HEAP_TOP - 8, 16), (0, 8), (SHADOW_OFFSET, 8),
                  (STACK_TOP - 64, 3))
        for buf, length in writes:
            add(C(regs=((17, 64), (11, buf), (12, length)),
                  mem=((DATA_BASE, _SEED_WORDS[0]),
                       (DATA_BASE + 8, _SEED_WORDS[1]))))
        for number in (1000, 1001, 1002, 1003, 1004, 0, 2, 9999):
            add(C(regs=((17, number), (10, 0xABC))))
    elif mnemonic in ("csrrw", "csrrs", "csrrc"):
        for addr in (0xC00, 0xC01, 0xC02, 0x800, 0x801, 0x802,
                     0x804, 0x123):
            for src in (0, 1, _M64, 0x12345678):
                add(C(imm=addr, regs=((5, src),)))
            add(C(imm=addr, rs1=0))              # rs1=x0: no write (s/c)
            add(C(imm=addr, rd=0, regs=((5, 0xF0),)))
    elif spec.is_load and spec.mem_bytes and not spec.shadow_access \
            and not spec.checked:
        nb = spec.mem_bytes
        for i, base in enumerate(_ADDR_POOL):
            for imm in (-8, -1, 0, 1, 2047, -2048):
                seeds = _mapped_seeds(base + imm, nb, i)
                add(C(imm=imm, regs=((5, base),), mem=seeds))
        add(C(rd=0, regs=((5, DATA_BASE),),
              mem=((DATA_BASE, _SEED_WORDS[0]),)))
        add(C(regs=((5, DATA_BASE),),
              srf=((10, (1, 2, True, True)),),
              mem=((DATA_BASE, _SEED_WORDS[2]),)))   # rd invalidation
    elif spec.is_store and spec.mem_bytes and not spec.shadow_access \
            and not spec.checked:
        for base in _ADDR_POOL:
            for imm in (-8, 0, 1, 2047):
                for value in (0, _M64, 0x0123456789ABCDEF):
                    add(C(imm=imm, regs=((5, base), (6, value))))
        # an 8-byte store into the lock table (keybuffer snoop window)
        if spec.mem_bytes == 8:
            add(C(regs=((5, LOCK_BASE + 16), (6, 0))))
            add(C(regs=((5, LOCK_BASE + 16), (6, 77))))
    elif spec.checked and (spec.is_load or spec.is_store):
        nb = spec.mem_bytes
        target = HEAP_BASE + 16
        for geom in range(len(geometry.GEOMETRIES)):
            base_b, range_b = geometry.GEOMETRIES[geom][:2]
            for imm in (-8, 0, 8):
                addr = target + imm
                for win_base, win_bound in _spatial_windows(addr, nb):
                    try:
                        lower = geometry.spatial_pack(
                            win_base, win_bound, base_b, range_b)
                    except geometry.GeometryError:
                        continue
                    regs = ((5, target), (6, 0xAB))
                    add(C(geom=geom, imm=imm, regs=regs,
                          srf=((5, (lower, 0, True, False)),),
                          mem=_mapped_seeds(addr, nb, geom)))
            add(C(geom=geom, regs=((5, target), (6, 1)),
                  srf=((5, (0, 0, False, False)),)))     # unbound
            add(C(geom=geom, regs=((5, target), (6, 1)),
                  srf=((5, (0xDEADBEEFDEADBEEF, 0, True, False)),)))
    elif mnemonic == "bndrs":
        for geom in range(len(geometry.GEOMETRIES)):
            pairs = ((0, 0), (0, 8), (HEAP_BASE, HEAP_BASE + 64),
                     (HEAP_BASE + 3, HEAP_BASE + 13),
                     (8, 0),                      # bound < base
                     (1 << 40, (1 << 40) + 8),    # base overflow (g0)
                     (0, 1 << 36),                # range overflow (g0)
                     (0, _M64))
            for base, bound in pairs:
                add(C(geom=geom, regs=((5, base), (6, bound)),
                      srf=((10, (0, 0x77, False, True)),),
                      wide=((10, (9, 9, 9, 9)),)))
            add(C(geom=geom, rd=0, regs=((5, 0), (6, 8))))
    elif mnemonic == "bndrt":
        for geom in range(len(geometry.GEOMETRIES)):
            key_bits = geometry.GEOMETRIES[geom][3]
            keys = (0, 1, (1 << key_bits) - 1, 1 << key_bits, _M64)
            for key in keys:
                for lock in _geom_lock_edges(geom):
                    add(C(geom=geom, regs=((5, key), (6, lock & _M64)),
                          srf=((10, (0x55, 0, True, False)),)))
            add(C(geom=geom, rd=0, regs=((5, 1), (6, 0))))
    elif mnemonic == "tchk":
        for geom in range(len(geometry.GEOMETRIES)):
            lock_b, key_b = geometry.GEOMETRIES[geom][2:]
            good = LOCK_BASE + 8
            far = LOCK_BASE + 8 * ((1 << lock_b) - 2)
            batt = (
                (7, good, 7, True),       # key matches stored
                (7, good, 8, True),       # mismatch
                (0, good, 0, True),       # zero key matches zero store
                (7, 0, 0, True),          # null lock
                (9, far, 9, far < SHADOW_TOP - 8),  # index bound
            )
            for key, lock, stored, seed_mem in batt:
                upper = geometry.temporal_pack(key, lock, lock_b, key_b,
                                               LOCK_BASE)
                mem = ((lock, stored),) if (lock and seed_mem) else ()
                add(C(geom=geom, srf=((5, (0, upper, False, True)),),
                      mem=mem))
            add(C(geom=geom, srf=((5, (0, 0, True, False)),)))  # no uvalid
            add(C(geom=geom,
                  srf=((5, (0, 0xDEADBEEFDEADBEEF, False, True)),)))
    elif mnemonic in ("sbdl", "sbdu", "lbdls", "lbdus", "lbas", "lbnd",
                      "lkey", "lloc", "bndldx", "bndstx", "vld256",
                      "vst256"):
        containers = (HEAP_BASE, HEAP_BASE + 8, USER_TOP - 8, 0,
                      STACK_TOP, _M64, 1 << 62)
        entries = ((0x1111, 0x2222, True, True),
                   (0x1111, 0x2222, True, False),
                   (0x1111, 0x2222, False, True),
                   (0, 0, False, False))
        for geom in (0, 1):
            for container in containers:
                shadow = (container << 2) + SHADOW_OFFSET
                seeds = ()
                if shadow + 32 <= SHADOW_TOP:
                    seeds = tuple((shadow + 8 * i, _SEED_WORDS[i])
                                  for i in range(4))
                for imm in (0, -8):
                    for entry in entries[:2]:
                        add(C(geom=geom, imm=imm,
                              regs=((5, container),),
                              srf=((6, entry), (10, entries[2])),
                              wide=((6, (5, 6, 7, 8)),
                                    (10, (1, 2, 3, 4))),
                              mem=seeds))
                add(C(geom=geom, regs=((5, container),),
                      srf=((6, entries[3]),), mem=seeds))
        add(C(rd=0, regs=((5, HEAP_BASE),),
              mem=(((HEAP_BASE << 2) + SHADOW_OFFSET, 0x1234),)))
    elif mnemonic in ("bndcl", "bndcu"):
        target = HEAP_BASE + 32
        for geom in range(len(geometry.GEOMETRIES)):
            base_b, range_b = geometry.GEOMETRIES[geom][:2]
            lower = geometry.spatial_pack(target - 16, target + 16,
                                          base_b, range_b)
            for addr in (target - 17, target - 16, target, target + 15,
                         target + 16, 0, _M64):
                add(C(geom=geom, regs=((6, addr),),
                      srf=((5, (lower, 0, True, False)),)))
            add(C(geom=geom, regs=((6, target),),
                  srf=((5, (0, 0, False, False)),)))
    elif mnemonic == "vchk":
        locks = (0, LOCK_BASE + 8, 0x123)
        for base, bound in ((HEAP_BASE, HEAP_BASE + 64), (0, 0)):
            for addr in (base - 1 if base else _M64, base,
                         bound - 1 if bound else 0, bound):
                for lock in locks:
                    mem = ((lock, 0xFEED),) if lock >= LOCK_BASE else ()
                    for key in (0xFEED, 0xBAD):
                        add(C(regs=((6, addr & _M64),),
                              wide=((5, (base, bound, key, lock)),),
                              mem=mem))
        add(C(regs=((6, HEAP_BASE),)))               # wide unset
    else:  # pragma: no cover — a new mnemonic must be given cases
        raise KeyError(f"no equivalence cases for mnemonic {mnemonic!r}")
    return tuple(cases)


def _mapped_seeds(addr: int, nbytes: int,
                  salt: int) -> Tuple[Tuple[int, int], ...]:
    """8-byte seed words covering [addr, addr+nbytes), only for
    addresses inside the always-mapped user segments."""
    lo = addr & ~7
    if not (DATA_BASE <= lo and lo + 16 <= HEAP_TOP) \
            and not (TEXT_BASE <= lo and lo + 16 <= DATA_BASE):
        return ()
    return ((lo, _SEED_WORDS[salt % len(_SEED_WORDS)]),
            (lo + 8, _SEED_WORDS[(salt + 1) % len(_SEED_WORDS)]))


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def run_case(case: EquivCase, bench) -> Optional[dict]:
    """Execute one case on the spec and the injected ISS; returns a
    divergence record or None.

    ``bench`` (see ``repro.harness.conform.EquivBench``) provides
    ``machine_for(geom)`` — a loaded machine whose program is the
    single instruction of the case — without this module importing any
    simulator code.
    """
    ins = Instr(op=case.mnemonic, rd=case.rd, rs1=case.rs1, rs2=case.rs2,
                imm=case.imm)
    machine = bench.machine_for(case.geom, ins)
    for reg, value in case.regs:
        machine.regs[reg] = value
    for reg, entry in case.srf:
        machine.srf[reg] = tuple(entry)
    for reg, wide in case.wide:
        machine.srf_wide[reg] = tuple(wide)
    for addr, value in case.mem:
        machine.memory.store_uint(addr, 8, value)
    state = snapshot_state(machine)
    env = make_env(machine.memory, geometry.GEOMETRIES[case.geom],
                   LOCK_BASE, SHADOW_OFFSET, SHADOW_TOP)
    spec_out = spec_step(state, ins, env)
    exc: Optional[BaseException] = None
    try:
        machine.step()
    except Exception as caught:  # noqa: BLE001 — classified below
        if classify_trap(caught) is None:
            raise
        exc = caught
    if isinstance(spec_out, SpecTrap):
        if exc is None:
            deltas = [{"field": "trap.kind", "spec": spec_out.kind,
                       "iss": None}]
        else:
            deltas = diff_trap(spec_out, exc, machine.pc)
    elif exc is not None:
        deltas = [{"field": "trap.kind", "spec": None,
                   "iss": classify_trap(exc)}]
    else:
        deltas = diff_retire(spec_out, machine)
    if not deltas:
        return None
    return {"case": case.describe(), "deltas": deltas}


def run_mnemonic(mnemonic: str, seed: int, bench) -> Dict[str, object]:
    """All cases for one mnemonic; deterministic result envelope."""
    divergences: List[dict] = []
    cases = cases_for(mnemonic, seed)
    for case in cases:
        record = run_case(case, bench)
        if record is not None:
            divergences.append(record)
    return {"mnemonic": mnemonic, "cases": len(cases),
            "divergences": divergences}


def all_mnemonics() -> Tuple[str, ...]:
    return tuple(sorted(SPEC_TABLE))
