"""`repro.spec` — the executable golden specification of RV64+HWST128.

A second, independent, deliberately-naive implementation of the ISA:

* :mod:`repro.spec.geometry` — the metadata compression geometry
  (Eq. 2-6) as standalone pure bit functions;
* :mod:`repro.spec.state` — the architectural-state records
  (:class:`SpecState`, :class:`SpecTrap`, memory-effect events);
* :mod:`repro.spec.table` — one pure function per mnemonic
  (``SPEC_EXEC``), plus the :func:`spec_step` dispatcher;
* :mod:`repro.spec.lockstep` — lockstep co-simulation against an ISS
  engine, diffing full architectural state at every retire;
* :mod:`repro.spec.equiv` — per-instruction operand-edge-case
  equivalence sweeps over all compression geometries.

Design rule (enforced by ``tests/test_conform.py``): nothing in this
package imports from ``repro.sim`` — engines are injected as opaque
objects by the conformance harness (``repro.harness.conform``), so the
spec stays an independent oracle. See ``docs/conformance.md``.
"""

from repro.spec.state import (  # noqa: F401
    MemEvent,
    SpecEnv,
    SpecState,
    SpecTrap,
)
from repro.spec.table import SPEC_EXEC, spec_step  # noqa: F401
