"""Architectural state records for the executable ISA specification.

The spec models one instruction as a pure function
``(SpecState, Instr, SpecEnv) -> SpecState | SpecTrap``:

* :class:`SpecState` is the complete architectural state — pc, the
  32 x-registers, the 32-entry shadow register file (compressed 128-bit
  images plus the wide AVX-comparator slots), CSRs, retired-instruction
  count, accumulated console output — plus the *memory effects* of the
  step as an explicit event list (:class:`MemEvent`). The spec never
  mutates memory itself; the events are what an implementation must
  perform, and the lockstep harness checks them against the ISS.
* :class:`SpecTrap` is the other possible outcome: the architectural
  classification of why execution stopped at this instruction. A
  trapping instruction never retires and produces no effects.
* :class:`SpecEnv` carries the *environment* of a step: side-effect-free
  memory reads (pre-state), the mapping predicate, and the static
  platform geometry (field widths, lock-table base, shadow budget).

Everything is an immutable value; handlers build new records with
:func:`dataclasses.replace`. This module imports nothing from
``repro.sim`` — the spec is an independent implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

#: SRF entry: (lower, upper, spatial_valid, temporal_valid) — the
#: compressed 128-bit image of one pointer's metadata.
SrfEntry = Tuple[int, int, bool, bool]
SRF_INVALID: SrfEntry = (0, 0, False, False)

#: Trap kinds, in the spec's own vocabulary. STATUS_BY_KIND maps them
#: to the ISS RunResult.status strings, CLASS_BY_KIND to the trap class
#: names the ISS stamps into RunResult.trap_class.
KIND_EXIT = "exit"
KIND_SPATIAL = "spatial"
KIND_TEMPORAL = "temporal"
KIND_FAULT = "fault"
KIND_ABORT = "abort"
KIND_ILLEGAL = "illegal"
KIND_OOM = "shadow_oom"
KIND_META_RANGE = "meta_range"
KIND_LIMIT = "limit"

STATUS_BY_KIND: Dict[str, str] = {
    KIND_EXIT: "exit",
    KIND_SPATIAL: "spatial_violation",
    KIND_TEMPORAL: "temporal_violation",
    KIND_FAULT: "memory_fault",
    KIND_ABORT: "abort",
    KIND_ILLEGAL: "illegal_instruction",
    KIND_OOM: "shadow_oom",
    KIND_META_RANGE: "meta_range",
    KIND_LIMIT: "limit",
}

CLASS_BY_KIND: Dict[str, str] = {
    KIND_SPATIAL: "SpatialViolation",
    KIND_TEMPORAL: "TemporalViolation",
    KIND_FAULT: "MemoryFault",
    KIND_ABORT: "EcallAbort",
    KIND_ILLEGAL: "IllegalInstruction",
    KIND_OOM: "ShadowMemoryExhausted",
    KIND_META_RANGE: "MetadataRangeError",
    KIND_LIMIT: "SimLimitExceeded",
    KIND_EXIT: "",  # a requested exit is not a trap
}


@dataclass(frozen=True)
class MemEvent:
    """One store the instruction performs: ``size`` bytes of ``value``
    (already masked to size) at ``addr``, little-endian."""

    addr: int
    size: int
    value: int


@dataclass(frozen=True)
class SpecTrap:
    """The architectural outcome of an instruction that does not retire."""

    kind: str
    pc: int
    detail: str = ""
    #: Requested exit status (KIND_EXIT only), as a signed value.
    exit_code: int = 0
    #: Check-unit operands, populated for spatial/temporal kinds so the
    #: lockstep diff can compare them against the ISS trap fields.
    fields: Tuple[Tuple[str, int], ...] = ()

    @property
    def status(self) -> str:
        return STATUS_BY_KIND[self.kind]

    @property
    def trap_class(self) -> str:
        return CLASS_BY_KIND[self.kind]


@dataclass(frozen=True)
class SpecState:
    """Complete architectural state between two instructions."""

    pc: int
    regs: Tuple[int, ...]                       # 32 x-registers, u64
    srf: Tuple[SrfEntry, ...]                   # 32 compressed images
    srf_wide: Tuple[Optional[Tuple[int, int, int, int]], ...]
    csrs: Dict[int, int]                        # copy-on-write
    instret: int = 0
    output: bytes = b""
    #: Bytes of shadow-region traffic so far (the SMAC budget input).
    shadow_touched: int = 0
    #: Memory effects of the *last* step only.
    events: Tuple[MemEvent, ...] = ()

    def evolve(self, **changes) -> "SpecState":
        return replace(self, **changes)


@dataclass(frozen=True)
class SpecEnv:
    """Read-only environment one step executes against.

    ``load``/``load_bytes`` observe the pre-state of memory and return
    ``None`` for an unmapped access (the spec turns that into a
    :data:`KIND_FAULT` trap); ``is_mapped`` is the pure mapping
    predicate used before emitting a store event.
    """

    load: Callable[[int, int], Optional[int]]
    load_bytes: Callable[[int, int], Optional[bytes]]
    is_mapped: Callable[[int, int], bool]
    #: (base_bits, range_bits, lock_bits, key_bits) — the compression
    #: geometry the COMP/DECOMP units are configured with.
    widths: Tuple[int, int, int, int]
    lock_base: int
    #: Shadow-region window [lo, hi) for SMAC traffic accounting, and
    #: the byte budget (0 = unlimited) guarded at each SMAC use.
    shadow_lo: int = 0
    shadow_hi: int = 0
    shadow_budget: int = 0


def init_state(entry: int, sp: int, csrs: Dict[int, int]) -> SpecState:
    """Post-reset architectural state: zero registers except ``sp``,
    invalid SRF, the platform CSR image, pc at ``entry``."""
    regs = [0] * 32
    regs[2] = sp
    return SpecState(
        pc=entry,
        regs=tuple(regs),
        srf=(SRF_INVALID,) * 32,
        srf_wide=(None,) * 32,
        csrs=dict(csrs),
    )


def reset_csrs(widths: Tuple[int, int, int, int], shadow_offset: int,
               lock_base: int, lock_limit: int) -> Dict[int, int]:
    """The CSR image the platform guarantees after reset (docs/isa.md):
    SMAC offset, packed field widths, lock-table window, status=ready."""
    base_b, range_b, lock_b, key_b = widths
    packed = (base_b & 0x3F) | ((range_b & 0x3F) << 6) \
        | ((lock_b & 0x3F) << 12) | ((key_b & 0x3F) << 18)
    return {
        0x800: shadow_offset,
        0x801: packed,
        0x802: lock_base,
        0x803: lock_limit,
        0x804: 0x3,
    }


__all__ = [
    "SRF_INVALID", "SrfEntry", "MemEvent", "SpecTrap", "SpecState",
    "SpecEnv", "init_state", "reset_csrs", "STATUS_BY_KIND",
    "CLASS_BY_KIND", "KIND_EXIT", "KIND_SPATIAL", "KIND_TEMPORAL",
    "KIND_FAULT", "KIND_ABORT", "KIND_ILLEGAL", "KIND_OOM",
    "KIND_META_RANGE", "KIND_LIMIT",
]
