"""Lockstep co-simulation: the spec against an ISS engine, per retire.

The harness drives an *injected* machine object (any engine exposing
the reference stepping surface: ``load``/``step``/``pc``/``regs``/
``srf``/``srf_wide``/``csrs``/``instret``/``output``/``memory``) and
the specification side by side, one instruction at a time:

1. the spec executes first, against the *pre-state* of the machine's
   memory (observed through a side-effect-free peek that bypasses the
   shadow-traffic counters);
2. the machine steps;
3. the full architectural state is diffed — pc, x-regs, SRF, wide SRF,
   CSRs, instret, console output — and every memory-effect event the
   spec emitted is checked against the machine's post-state memory.

The first divergence stops the run and is reported with pc, mnemonic
and field-level delta. This module imports nothing from ``repro.sim``:
machines are opaque duck-typed objects, and ISS traps are classified by
exception *class name* so no simulator types are needed.

For spec-only execution (no ISS at all) the module provides
:class:`SpecMemory` and :func:`run_spec` — a complete, standalone
interpreter over the spec tables, used by the ISA-semantics tests to
give hand-written expectation cases a second, independent oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.spec.state import (
    CLASS_BY_KIND,
    KIND_EXIT,
    KIND_LIMIT,
    STATUS_BY_KIND,
    SpecEnv,
    SpecState,
    SpecTrap,
    init_state,
    reset_csrs,
)
from repro.spec.table import spec_step

_PAGE_SHIFT = 12
_PAGE_SIZE = 1 << _PAGE_SHIFT

#: ISS trap class name -> spec trap kind (looked up along the MRO so
#: subclasses inherit their parent's classification).
KIND_BY_CLASS: Dict[str, str] = {
    "EcallExit": "exit",
    "SpatialViolation": "spatial",
    "TemporalViolation": "temporal",
    "MemoryFault": "fault",
    "EcallAbort": "abort",
    "IllegalInstruction": "illegal",
    "ShadowMemoryExhausted": "shadow_oom",
    "MetadataRangeError": "meta_range",
    "SimLimitExceeded": "limit",
}


def classify_trap(exc: BaseException) -> Optional[str]:
    """Spec trap kind of an ISS exception, or None when unknown."""
    for cls in type(exc).__mro__:
        kind = KIND_BY_CLASS.get(cls.__name__)
        if kind is not None:
            return kind
    return None


# ---------------------------------------------------------------------------
# Side-effect-free memory observation
# ---------------------------------------------------------------------------

def peek_bytes(memory, addr: int, size: int) -> bytes:
    """Read ``size`` bytes at ``addr`` from a paged memory without
    touching access counters or MRU state (missing pages read as 0)."""
    pages = memory._pages
    out = bytearray()
    remaining = size
    while remaining:
        page = pages.get(addr >> _PAGE_SHIFT)
        offset = addr & (_PAGE_SIZE - 1)
        take = min(remaining, _PAGE_SIZE - offset)
        if page is None:
            out += b"\x00" * take
        else:
            out += page[offset:offset + take]
        addr += take
        remaining -= take
    return bytes(out)


def peek_uint(memory, addr: int, size: int) -> int:
    return int.from_bytes(peek_bytes(memory, addr, size), "little")


def make_env(memory, widths: Tuple[int, int, int, int], lock_base: int,
             shadow_lo: int, shadow_hi: int,
             shadow_budget: int = 0) -> SpecEnv:
    """A :class:`SpecEnv` observing ``memory`` (ISS ``Memory`` or
    :class:`SpecMemory`) without side effects."""
    is_mapped = memory.is_mapped

    def load(addr: int, size: int) -> Optional[int]:
        if not is_mapped(addr, size):
            return None
        return peek_uint(memory, addr, size)

    def load_bytes(addr: int, size: int) -> Optional[bytes]:
        if not is_mapped(addr, size):
            return None
        return peek_bytes(memory, addr, size)

    return SpecEnv(load=load, load_bytes=load_bytes, is_mapped=is_mapped,
                   widths=widths, lock_base=lock_base,
                   shadow_lo=shadow_lo, shadow_hi=shadow_hi,
                   shadow_budget=shadow_budget)


class SpecMemory:
    """Standalone paged memory for spec-only runs.

    Mirrors the platform's mapping discipline (coalesced spans, zero
    fill) with none of the ISS's accounting; shares the ``_pages``
    layout so :func:`peek_bytes` works on both.
    """

    def __init__(self):
        self._pages: Dict[int, bytearray] = {}
        self._spans: List[Tuple[int, int]] = []

    def map_region(self, start: int, size: int):
        self._spans.append((start, start + size))
        merged: List[Tuple[int, int]] = []
        for lo, hi in sorted(self._spans):
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        self._spans = merged

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        for lo, hi in self._spans:
            if lo <= addr and addr + size <= hi:
                return True
        return False

    def store_bytes(self, addr: int, data: bytes):
        remaining = len(data)
        taken = 0
        while taken < remaining:
            index = addr >> _PAGE_SHIFT
            page = self._pages.get(index)
            if page is None:
                page = bytearray(_PAGE_SIZE)
                self._pages[index] = page
            offset = addr & (_PAGE_SIZE - 1)
            take = min(remaining - taken, _PAGE_SIZE - offset)
            page[offset:offset + take] = data[taken:taken + take]
            addr += take
            taken += take

    def apply(self, event):
        """Perform one spec :class:`MemEvent` store."""
        self.store_bytes(event.addr,
                         event.value.to_bytes(event.size, "little"))

    @classmethod
    def from_program(cls, program) -> "SpecMemory":
        """Map the program's layout and copy its data segments (the
        spec-side twin of ``Program.load_into``)."""
        layout = program.layout
        mem = cls()
        mem.map_region(layout.text_base,
                       layout.data_base - layout.text_base)
        mem.map_region(layout.data_base,
                       layout.heap_base - layout.data_base)
        mem.map_region(layout.heap_base, layout.heap_top - layout.heap_base)
        mem.map_region(layout.stack_top - layout.stack_size,
                       layout.stack_size)
        mem.map_region(layout.shadow_offset,
                       layout.shadow_top - layout.shadow_offset)
        for segment in program.segments:
            mem.store_bytes(segment.addr, segment.data)
        return mem


# ---------------------------------------------------------------------------
# Outcomes and diffing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SpecOutcome:
    """Run-level observables of a spec execution (the spec's twin of
    the ISS RunResult surface the conformance layer compares)."""

    status: str
    exit_code: int = 0
    detail: str = ""
    instret: int = 0
    output: bytes = b""
    trap_class: str = ""
    trap_pc: Optional[int] = None


def outcome_of(trap: SpecTrap, instret: int, output: bytes) -> SpecOutcome:
    if trap.kind == KIND_EXIT:
        return SpecOutcome(status="exit", exit_code=trap.exit_code,
                           instret=instret, output=output)
    return SpecOutcome(status=STATUS_BY_KIND[trap.kind],
                       detail=trap.detail, instret=instret, output=output,
                       trap_class=CLASS_BY_KIND[trap.kind],
                       trap_pc=trap.pc)


def _hx(value) -> str:
    if isinstance(value, bool) or value is None:
        return repr(value)
    if isinstance(value, int):
        return hex(value)
    return repr(value)


def _delta(field: str, spec_value, iss_value) -> dict:
    return {"field": field, "spec": _hx(spec_value), "iss": _hx(iss_value)}


def diff_retire(state: SpecState, machine) -> List[dict]:
    """Field-level delta between the spec state after a retire and the
    machine's architectural state (empty = equivalent)."""
    deltas: List[dict] = []
    if state.pc != machine.pc:
        deltas.append(_delta("pc", state.pc, machine.pc))
    if state.instret != machine.instret:
        deltas.append(_delta("instret", state.instret, machine.instret))
    for i in range(32):
        if state.regs[i] != machine.regs[i]:
            deltas.append(_delta(f"x{i}", state.regs[i], machine.regs[i]))
        if state.srf[i] != tuple(machine.srf[i]):
            deltas.append(_delta(f"srf[{i}]", state.srf[i],
                                 tuple(machine.srf[i])))
        spec_wide = state.srf_wide[i]
        iss_wide = machine.srf_wide[i]
        if spec_wide != (tuple(iss_wide) if iss_wide is not None else None):
            deltas.append(_delta(f"srf_wide[{i}]", spec_wide, iss_wide))
    if dict(state.csrs) != dict(machine.csrs):
        for addr in sorted(set(state.csrs) | set(machine.csrs)):
            sv = state.csrs.get(addr)
            mv = machine.csrs.get(addr)
            if sv != mv:
                deltas.append(_delta(f"csr[{addr:#x}]", sv, mv))
    if state.output != bytes(machine.output):
        deltas.append(_delta("output", state.output,
                             bytes(machine.output)))
    for event in state.events:
        stored = peek_uint(machine.memory, event.addr, event.size)
        if stored != event.value:
            deltas.append(_delta(f"mem[{event.addr:#x}:{event.size}]",
                                 event.value, stored))
    return deltas


def diff_trap(spec_trap: SpecTrap, exc: BaseException,
              machine_pc: int) -> List[dict]:
    """Field-level delta between a spec trap and an ISS exception."""
    deltas: List[dict] = []
    kind = classify_trap(exc)
    if kind != spec_trap.kind:
        deltas.append(_delta("trap.kind", spec_trap.kind, kind))
        return deltas
    iss_pc = getattr(exc, "pc", None)
    if iss_pc is None:
        iss_pc = machine_pc
    if spec_trap.kind != KIND_EXIT and spec_trap.pc != iss_pc:
        deltas.append(_delta("trap.pc", spec_trap.pc, iss_pc))
    if spec_trap.kind == KIND_EXIT:
        code = getattr(exc, "code", None)
        if code != spec_trap.exit_code:
            deltas.append(_delta("trap.exit_code", spec_trap.exit_code,
                                 code))
    for name, value in spec_trap.fields:
        iss_value = getattr(exc, name, None)
        if iss_value is not None and iss_value != value:
            deltas.append(_delta(f"trap.{name}", value, iss_value))
    return deltas


@dataclass
class LockstepResult:
    """Outcome of one lockstep run."""

    outcome: SpecOutcome
    divergence: Optional[dict]
    retires: int
    mnemonics: Tuple[str, ...]  # sorted set of retired mnemonics
    state: Optional[SpecState] = None


def _divergence(reason: str, retire: int, pc: int, op: Optional[str],
                deltas: List[dict]) -> dict:
    return {"reason": reason, "retire": retire, "pc": hex(pc),
            "mnemonic": op or "<fetch>", "deltas": deltas}


def run_lockstep(machine, program, widths: Tuple[int, int, int, int],
                 lock_base: int, shadow_budget: int = 0,
                 max_instructions: int = 2_000_000) -> LockstepResult:
    """Run ``program`` on the injected ``machine`` and the spec in
    lockstep, diffing at every retire; stops at the first divergence,
    a matching trap, or the instruction budget (status ``limit``)."""
    machine.load(program)
    layout = program.layout
    state = snapshot_state(machine)
    env = make_env(machine.memory, widths, lock_base,
                   layout.shadow_offset, layout.shadow_top, shadow_budget)
    mnemonics = set()
    retires = 0
    while retires < max_instructions:
        ins = program.instr_at(state.pc)
        spec_out = spec_step(state, ins, env)
        exc: Optional[BaseException] = None
        try:
            machine.step()
        except Exception as caught:  # noqa: BLE001 — classified below
            if classify_trap(caught) is None:
                raise
            exc = caught
        op = ins.op if ins is not None else None
        if isinstance(spec_out, SpecTrap):
            if exc is None:
                div = _divergence("spec trapped, iss retired", retires,
                                  spec_out.pc, op,
                                  [_delta("trap.kind", spec_out.kind,
                                          None)])
            else:
                deltas = diff_trap(spec_out, exc, machine.pc)
                div = _divergence("trap mismatch", retires, spec_out.pc,
                                  op, deltas) if deltas else None
            return LockstepResult(
                outcome=outcome_of(spec_out, state.instret, state.output),
                divergence=div, retires=retires,
                mnemonics=tuple(sorted(mnemonics)), state=state)
        if exc is not None:
            kind = classify_trap(exc)
            div = _divergence("iss trapped, spec retired", retires,
                              state.pc, op,
                              [_delta("trap.kind", None, kind)])
            return LockstepResult(
                outcome=outcome_of(
                    SpecTrap(kind, machine.pc, detail=str(exc)),
                    state.instret, state.output),
                divergence=div, retires=retires,
                mnemonics=tuple(sorted(mnemonics)), state=state)
        deltas = diff_retire(spec_out, machine)
        if deltas:
            div = _divergence("state mismatch", retires, state.pc, op,
                              deltas)
            return LockstepResult(
                outcome=SpecOutcome(status="divergence", instret=retires),
                divergence=div, retires=retires,
                mnemonics=tuple(sorted(mnemonics)), state=spec_out)
        mnemonics.add(op)
        retires += 1
        state = spec_out
    return LockstepResult(
        outcome=SpecOutcome(status=STATUS_BY_KIND[KIND_LIMIT],
                            detail=f"budget {max_instructions}",
                            instret=state.instret, output=state.output,
                            trap_class=CLASS_BY_KIND[KIND_LIMIT],
                            trap_pc=state.pc),
        divergence=None, retires=retires,
        mnemonics=tuple(sorted(mnemonics)), state=state)


def snapshot_state(machine) -> SpecState:
    """The machine's architectural state as an immutable SpecState."""
    return SpecState(
        pc=machine.pc,
        regs=tuple(machine.regs),
        srf=tuple(tuple(entry) for entry in machine.srf),
        srf_wide=tuple(tuple(w) if w is not None else None
                       for w in machine.srf_wide),
        csrs=dict(machine.csrs),
        instret=machine.instret,
        output=bytes(machine.output),
        shadow_touched=machine.memory.shadow_bytes_touched,
    )


# ---------------------------------------------------------------------------
# Standalone spec execution (no ISS involved)
# ---------------------------------------------------------------------------

def run_spec(program, widths: Tuple[int, int, int, int], lock_base: int,
             lock_limit: int, shadow_budget: int = 0,
             max_instructions: int = 2_000_000,
             ) -> Tuple[SpecOutcome, SpecState]:
    """Execute ``program`` purely on the spec tables.

    Returns the run-level outcome plus the final architectural state —
    a complete third implementation path (spec tables + SpecMemory)
    with no simulator in the loop.
    """
    layout = program.layout
    memory = SpecMemory.from_program(program)
    state = init_state(program.entry, layout.stack_top - 4096,
                       reset_csrs(widths, layout.shadow_offset,
                                  lock_base, lock_limit))
    env = make_env(memory, widths, lock_base, layout.shadow_offset,
                   layout.shadow_top, shadow_budget)
    retired = 0
    while retired < max_instructions:
        ins = program.instr_at(state.pc)
        result = spec_step(state, ins, env)
        if isinstance(result, SpecTrap):
            return (outcome_of(result, state.instret, state.output),
                    state)
        for event in result.events:
            memory.apply(event)
        state = result
        retired += 1
    return (SpecOutcome(status=STATUS_BY_KIND[KIND_LIMIT],
                        detail=f"budget {max_instructions}",
                        instret=state.instret, output=state.output,
                        trap_class=CLASS_BY_KIND[KIND_LIMIT],
                        trap_pc=state.pc),
            state)
