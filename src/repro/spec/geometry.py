"""Metadata compression geometry as standalone pure bit functions.

This is the *specification* of Eq. 2-6 (Fig. 2): how a 256-bit pointer
metadata record (base, bound, key, lock — four 64-bit fields) packs into
the 128-bit SRF image. It is written from ``docs/isa.md`` and the paper,
deliberately **not** from ``repro.core.compression`` — the two
implementations are compared by the conformance layer, so sharing code
would make the comparison vacuous.

Every function here is total over its documented domain, takes the field
widths as plain integers, and touches no global or mutable state.

Conventions (matching the ISA doc):

* addresses align on the 8-byte grid (``ALIGN_SHIFT = 3``): the base is
  rounded *down*, the bound *up*, so the represented window always
  covers the requested object;
* the lock is stored as a **1-based** 8-byte index into the lock table
  (index 0 is reserved for "no temporal metadata"), so a lock index must
  stay *strictly below* the all-ones field value;
* a field that does not fit its width raises :class:`GeometryError` —
  the spec-level twin of the COMP unit's metadata-range fault.
"""

from __future__ import annotations

from typing import Tuple

ALIGN_SHIFT = 3

#: The four compression geometries the equivalence sweep exercises,
#: as ``(base_bits, range_bits, lock_bits, key_bits)``. Each half must
#: pack into 64 bits (base+range == lock+key == 64). Geometry 0 is the
#: paper's default (Fig. 2 census), geometry 1 the fuzz oracle's
#: alternative packing; 2 and 3 stress small-lock / wide-base corners.
GEOMETRIES: Tuple[Tuple[int, int, int, int], ...] = (
    (35, 29, 20, 44),
    (38, 26, 18, 46),
    (32, 32, 16, 48),
    (40, 24, 24, 40),
)


class GeometryError(ValueError):
    """A metadata field does not fit its configured compressed width."""


def spatial_pack(base: int, bound: int,
                 base_bits: int, range_bits: int) -> int:
    """Pack ``base``/``bound`` into the 64-bit spatial (lower) half.

    ``lower = (base >> 3) | (ceil8(bound - align8(base)) >> 3) << base_bits``
    """
    if bound < base:
        raise GeometryError(f"bound {bound:#x} precedes base {base:#x}")
    base_c = base >> ALIGN_SHIFT
    range_c = (bound - (base_c << ALIGN_SHIFT) + 7) >> ALIGN_SHIFT
    if base_c > (1 << base_bits) - 1:
        raise GeometryError(f"base {base:#x} exceeds {base_bits} bits")
    if range_c > (1 << range_bits) - 1:
        raise GeometryError(
            f"range {bound - base} exceeds {range_bits} bits")
    return base_c | (range_c << base_bits)


def spatial_unpack(lower: int, base_bits: int,
                   range_bits: int) -> Tuple[int, int]:
    """Unpack the spatial half into ``(base, bound)`` byte addresses."""
    base = (lower & ((1 << base_bits) - 1)) << ALIGN_SHIFT
    range_c = (lower >> base_bits) & ((1 << range_bits) - 1)
    return base, base + (range_c << ALIGN_SHIFT)


def temporal_pack(key: int, lock: int, lock_bits: int, key_bits: int,
                  lock_base: int) -> int:
    """Pack ``key``/``lock`` into the 64-bit temporal (upper) half.

    The lock byte address becomes a 1-based 8-byte index relative to
    ``lock_base``; a null lock stays index 0.
    """
    if lock == 0:
        lock_idx = 0
    else:
        offset = lock - lock_base
        if offset < 0 or offset % 8:
            raise GeometryError(f"lock {lock:#x} outside the lock table")
        lock_idx = offset >> 3
        if lock_idx >= (1 << lock_bits) - 1:
            raise GeometryError(
                f"lock index {lock_idx} exceeds {lock_bits} bits")
        lock_idx += 1
    if key > (1 << key_bits) - 1:
        raise GeometryError(f"key {key:#x} exceeds {key_bits} bits")
    return lock_idx | (key << lock_bits)


def temporal_unpack(upper: int, lock_bits: int, key_bits: int,
                    lock_base: int) -> Tuple[int, int]:
    """Unpack the temporal half into ``(key, lock)``."""
    lock_idx = upper & ((1 << lock_bits) - 1)
    key = (upper >> lock_bits) & ((1 << key_bits) - 1)
    if lock_idx == 0:
        return key, 0
    return key, lock_base + ((lock_idx - 1) << 3)
