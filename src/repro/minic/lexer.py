"""Tokenizer for the mini-C subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import LexError

KEYWORDS = frozenset([
    "void", "char", "short", "int", "long", "signed", "unsigned",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "struct", "sizeof", "typedef", "static", "const", "goto", "switch",
    "case", "default", "enum", "union", "extern",
])

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]

TOK_EOF = "eof"
TOK_IDENT = "ident"
TOK_KEYWORD = "keyword"
TOK_INT = "int"
TOK_STRING = "string"
TOK_CHAR = "char"
TOK_OP = "op"

_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


@dataclass(frozen=True)
class Token:
    kind: str
    value: object     # str for ident/op/keyword/string, int for numbers
    line: int
    col: int

    def __str__(self):
        return f"{self.kind}({self.value!r})"


class _Cursor:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def advance(self, count: int = 1) -> str:
        text = self.source[self.pos:self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return text

    def at_end(self) -> bool:
        return self.pos >= len(self.source)

    def startswith(self, text: str) -> bool:
        return self.source.startswith(text, self.pos)


def _read_escape(cur: _Cursor) -> int:
    cur.advance()  # backslash
    ch = cur.peek()
    if ch == "x":
        cur.advance()
        digits = ""
        while cur.peek() and cur.peek() in "0123456789abcdefABCDEF":
            digits += cur.advance()
        if not digits:
            raise LexError("empty hex escape", cur.line, cur.col)
        return int(digits, 16) & 0xFF
    if ch in _ESCAPES:
        cur.advance()
        return _ESCAPES[ch]
    raise LexError(f"unknown escape \\{ch}", cur.line, cur.col)


def tokenize(source: str) -> List[Token]:
    """Convert mini-C source text into a token list (EOF-terminated)."""
    cur = _Cursor(source)
    tokens: List[Token] = []
    while not cur.at_end():
        ch = cur.peek()
        # Whitespace.
        if ch in " \t\r\n":
            cur.advance()
            continue
        # Comments.
        if cur.startswith("//"):
            while not cur.at_end() and cur.peek() != "\n":
                cur.advance()
            continue
        if cur.startswith("/*"):
            start_line, start_col = cur.line, cur.col
            cur.advance(2)
            while not cur.startswith("*/"):
                if cur.at_end():
                    raise LexError("unterminated comment",
                                   start_line, start_col)
                cur.advance()
            cur.advance(2)
            continue
        line, col = cur.line, cur.col
        # Identifiers / keywords.
        if ch.isalpha() or ch == "_":
            name = ""
            while cur.peek().isalnum() or cur.peek() == "_":
                name += cur.advance()
            kind = TOK_KEYWORD if name in KEYWORDS else TOK_IDENT
            tokens.append(Token(kind, name, line, col))
            continue
        # Numbers.
        if ch.isdigit():
            if cur.startswith("0x") or cur.startswith("0X"):
                cur.advance(2)
                digits = ""
                while cur.peek() and cur.peek() in "0123456789abcdefABCDEF":
                    digits += cur.advance()
                if not digits:
                    raise LexError("empty hex literal", line, col)
                value = int(digits, 16)
            else:
                digits = ""
                while cur.peek().isdigit():
                    digits += cur.advance()
                value = int(digits, 10)
            # Swallow integer suffixes (uUlL) — all ints are modelled.
            while cur.peek() and cur.peek() in "uUlL":
                cur.advance()
            tokens.append(Token(TOK_INT, value, line, col))
            continue
        # Character literals.
        if ch == "'":
            cur.advance()
            if cur.peek() == "\\":
                value = _read_escape(cur)
            elif cur.peek() == "'":
                raise LexError("empty character literal", line, col)
            else:
                value = ord(cur.advance())
            if cur.peek() != "'":
                raise LexError("unterminated character literal", line, col)
            cur.advance()
            tokens.append(Token(TOK_CHAR, value, line, col))
            continue
        # String literals (with adjacent-literal concatenation).
        if ch == '"':
            data = bytearray()
            while cur.peek() == '"':
                cur.advance()
                while cur.peek() != '"':
                    if cur.at_end() or cur.peek() == "\n":
                        raise LexError("unterminated string literal",
                                       line, col)
                    if cur.peek() == "\\":
                        data.append(_read_escape(cur))
                    else:
                        data.append(ord(cur.advance()))
                cur.advance()
                # Skip whitespace between adjacent literals.
                while cur.peek() and cur.peek() in " \t\r\n":
                    cur.advance()
            tokens.append(Token(TOK_STRING, bytes(data), line, col))
            continue
        # Operators / punctuation.
        for op in OPERATORS:
            if cur.startswith(op):
                cur.advance(len(op))
                tokens.append(Token(TOK_OP, op, line, col))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TOK_EOF, None, cur.line, cur.col))
    return tokens
