"""AST node definitions for the mini-C front end.

Nodes carry source positions for diagnostics; the semantic analyzer
annotates expression nodes with ``ctype`` (and lvalue-ness) in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.minic.types import CType


@dataclass
class Node:
    line: int = 0
    col: int = 0


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr(Node):
    ctype: Optional[CType] = None
    is_lvalue: bool = False


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    value: bytes = b""
    symbol: str = ""   # assigned by sema: name of the backing global


@dataclass
class Ident(Expr):
    name: str = ""
    # Filled by sema: "local", "param", "global", "func", "enum"
    binding: str = ""
    enum_value: int = 0


@dataclass
class Unary(Expr):
    op: str = ""          # - ! ~ * & ++pre --pre
    operand: Optional[Expr] = None


@dataclass
class PostIncDec(Expr):
    op: str = ""          # ++ or --
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""          # + - * / % << >> & | ^ < <= > >= == != && ||
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    op: str = "="         # = += -= *= /= %= &= |= ^= <<= >>=
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Cond(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    other: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Member(Expr):
    base: Optional[Expr] = None
    name: str = ""
    arrow: bool = False   # True for ->, False for .


@dataclass
class Cast(Expr):
    target_type: Optional[CType] = None
    operand: Optional[Expr] = None


@dataclass
class SizeofType(Expr):
    query_type: Optional[CType] = None


@dataclass
class SizeofExpr(Expr):
    operand: Optional[Expr] = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class VarDecl(Stmt):
    name: str = ""
    var_type: Optional[CType] = None
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None   # array/struct initialisers
    is_static: bool = False


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None       # VarDecl or ExprStmt or None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------

@dataclass
class Param(Node):
    name: str = ""
    ctype: Optional[CType] = None


@dataclass
class FuncDef(Node):
    name: str = ""
    ret_type: Optional[CType] = None
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None
    is_static: bool = False


@dataclass
class GlobalVar(Node):
    name: str = ""
    var_type: Optional[CType] = None
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None
    init_string: Optional[bytes] = None


@dataclass
class TranslationUnit(Node):
    functions: List[FuncDef] = field(default_factory=list)
    globals: List[GlobalVar] = field(default_factory=list)
    # struct/typedef/enum tables live in the sema Scope; kept here for
    # listing/debug purposes.
    struct_names: List[str] = field(default_factory=list)
