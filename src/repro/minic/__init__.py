"""Mini-C front end: the language the workloads are written in.

A C subset sufficient for the MiBench/Olden/SPEC-style kernels and the
Juliet-style security cases: integer types (char/short/int/long,
signed/unsigned), pointers, arrays, structs, typedefs, functions,
control flow (if/while/for/do/break/continue/return), sizeof, string
literals, and the usual expression operators. No floating point (the
reproduction substitutes fixed point — see DESIGN.md), no function
pointers, no varargs.

Pipeline: :func:`tokenize` -> :func:`parse` -> :func:`analyze`
producing a typed AST consumed by :mod:`repro.ir.irgen`.
"""

from repro.minic.lexer import Token, tokenize
from repro.minic.parser import parse
from repro.minic.sema import analyze
from repro.minic import ast, types

__all__ = ["Token", "tokenize", "parse", "analyze", "ast", "types"]
