"""Deterministic pretty-printer for the mini-C AST.

``pretty(unit)`` renders a :class:`~repro.minic.ast.TranslationUnit`
back to compilable source such that ``parse(pretty(unit))`` is
structurally identical to ``unit`` (see :func:`ast_equal`).  The fuzzer
reducer leans on this property: it mutates the AST, prints it, and
re-runs the toolchain on the printed text.

Determinism: output depends only on the AST (no ids, no dict iteration
over unordered sets), so the same tree always prints byte-identically.

Printable subset
----------------
The printer covers everything :func:`repro.minic.parser.parse` can
produce, with two deliberate exceptions that raise :class:`PrettyError`:

* statement bodies whose ``then`` branch ends in an else-less ``if``
  while the outer ``if`` has an ``else`` (the dangling-else shape cannot
  be printed without inserting a ``Block`` that would change the AST);
* types the declarator grammar cannot spell, e.g. a pointer *to* an
  array (``parse`` always yields ``Array**k(Pointer**m(base))``).

Parser-side normalisations are mirrored rather than fought: enum
references print as their integer value, ``++x`` prints as ``x += 1``
(that is what the parser stores), and string escapes are re-encoded so
the greedy ``\\x`` lexer rule cannot swallow a following hex digit.
"""

from __future__ import annotations

import string
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.minic import ast
from repro.minic.lexer import _ESCAPES
from repro.minic.parser import _BINOP_PREC
from repro.minic.types import (
    ArrayType, CType, FuncType, IntType, PointerType, StructType, VoidType,
)

INDENT = "    "

# Expression "production levels", mirroring the recursive-descent
# grammar.  A child is parenthesised when its own level is below the
# minimum level the parser would need to re-produce it in that slot.
_PREC_ASSIGN = 1
_PREC_COND = 2
_PREC_BINARY_BASE = 2          # binary op prec p parses at level p + 2
_PREC_UNARY = 13
_PREC_POSTFIX = 14
_PREC_PRIMARY = 15

_INT_NAMES = {1: "char", 2: "short", 4: "int", 8: "long"}

#: escape table inverted: byte value -> escape letter
_UNESCAPES = {value: key for key, value in _ESCAPES.items()
              if key not in ("'",)}  # ' needs no escape inside "..."

_HEX_DIGITS = frozenset(string.hexdigits)


class PrettyError(ReproError):
    """AST shape that cannot be printed without changing its meaning."""


# ---------------------------------------------------------------------------
# Types and declarators
# ---------------------------------------------------------------------------

def _split_declarator(ctype: CType) -> Tuple[CType, int, List[int]]:
    """Peel ``Array^k(Pointer^m(base))`` into (base, stars, dims)."""
    dims: List[int] = []
    while isinstance(ctype, ArrayType):
        dims.append(ctype.count)
        ctype = ctype.elem
    stars = 0
    while isinstance(ctype, PointerType):
        stars += 1
        ctype = ctype.pointee
    if isinstance(ctype, (ArrayType, PointerType)):
        raise PrettyError(f"undeclarable type shape: {ctype}")
    return ctype, stars, dims


def _base_name(ctype: CType) -> str:
    if isinstance(ctype, VoidType):
        return "void"
    if isinstance(ctype, IntType):
        prefix = "" if ctype.signed else "unsigned "
        return prefix + _INT_NAMES[ctype.size]
    if isinstance(ctype, StructType):
        return f"struct {ctype.name}"
    if isinstance(ctype, FuncType):
        raise PrettyError("function types have no declarator syntax")
    raise PrettyError(f"unprintable base type: {ctype!r}")


def format_decl(ctype: Optional[CType], name: str) -> str:
    """Render ``long **name[2][3]`` style declarations."""
    if ctype is None:
        raise PrettyError("declaration without a type")
    base, stars, dims = _split_declarator(ctype)
    suffix = "".join(f"[{dim}]" for dim in dims)
    decl = "*" * stars + name + suffix
    return f"{_base_name(base)} {decl}".rstrip()


def _type_name(ctype: CType) -> str:
    """Type-only spelling for casts and ``sizeof``."""
    return format_decl(ctype, "")


# ---------------------------------------------------------------------------
# String literals
# ---------------------------------------------------------------------------

def c_string(data: bytes) -> str:
    """Escape ``data`` as one (or several adjacent) C string literals.

    The lexer's ``\\x`` escape is greedy, so ``b"\\x01A"`` must not
    print as ``"\\x01A"`` (which would lex back as the single byte
    0x1A).  When a hex escape is followed by a hex-digit character the
    literal is closed and re-opened; adjacent literals concatenate.
    """
    parts = ['"']
    previous_was_hex = False
    for byte in data:
        ch = chr(byte)
        if previous_was_hex and ch in _HEX_DIGITS:
            parts.append('" "')
        previous_was_hex = False
        if ch in ('"', "\\"):
            parts.append("\\" + ch)
        elif 0x20 <= byte < 0x7F:
            parts.append(ch)
        elif byte in _UNESCAPES:
            parts.append("\\" + _UNESCAPES[byte])
        else:
            parts.append(f"\\x{byte:02x}")
            previous_was_hex = True
    parts.append('"')
    return "".join(parts)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

def _render(expr: ast.Expr) -> Tuple[str, int]:
    """Return (text, production level) for ``expr``."""
    if isinstance(expr, ast.IntLit):
        if expr.value < 0:
            return f"-{-expr.value}", _PREC_UNARY
        return str(expr.value), _PREC_PRIMARY
    if isinstance(expr, ast.StrLit):
        return c_string(expr.value), _PREC_PRIMARY
    if isinstance(expr, ast.Ident):
        if expr.binding == "enum":
            value = expr.enum_value
            if value < 0:
                return f"-{-value}", _PREC_UNARY
            return str(value), _PREC_PRIMARY
        return expr.name, _PREC_PRIMARY
    if isinstance(expr, ast.Unary):
        inner = _expr(expr.operand, _PREC_UNARY)
        spacer = " " if expr.op in ("-", "&") and \
            inner.startswith(expr.op[0]) else ""
        return f"{expr.op}{spacer}{inner}", _PREC_UNARY
    if isinstance(expr, ast.PostIncDec):
        return f"{_expr(expr.operand, _PREC_POSTFIX)}{expr.op}", \
            _PREC_POSTFIX
    if isinstance(expr, ast.Binary):
        prec = _BINOP_PREC[expr.op] + _PREC_BINARY_BASE
        left = _expr(expr.left, prec)
        right = _expr(expr.right, prec + 1)
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, ast.Assign):
        target = _expr(expr.target, _PREC_COND)
        value = _expr(expr.value, _PREC_ASSIGN)
        return f"{target} {expr.op} {value}", _PREC_ASSIGN
    if isinstance(expr, ast.Cond):
        cond = _expr(expr.cond, _PREC_BINARY_BASE + 1)
        then = _expr(expr.then, _PREC_ASSIGN)
        other = _expr(expr.other, _PREC_COND)
        return f"{cond} ? {then} : {other}", _PREC_COND
    if isinstance(expr, ast.Call):
        args = ", ".join(_expr(a, _PREC_ASSIGN) for a in expr.args)
        return f"{expr.name}({args})", _PREC_POSTFIX
    if isinstance(expr, ast.Index):
        base = _expr(expr.base, _PREC_POSTFIX)
        return f"{base}[{_expr(expr.index, _PREC_ASSIGN)}]", _PREC_POSTFIX
    if isinstance(expr, ast.Member):
        base = _expr(expr.base, _PREC_POSTFIX)
        return f"{base}{'->' if expr.arrow else '.'}{expr.name}", \
            _PREC_POSTFIX
    if isinstance(expr, ast.Cast):
        operand = _expr(expr.operand, _PREC_UNARY)
        return f"({_type_name(expr.target_type)}){operand}", _PREC_UNARY
    if isinstance(expr, ast.SizeofType):
        return f"sizeof({_type_name(expr.query_type)})", _PREC_PRIMARY
    if isinstance(expr, ast.SizeofExpr):
        # ``sizeof(x)`` — the parens belong to the operand, so the
        # whole form is self-delimiting.
        return f"sizeof({_expr(expr.operand, _PREC_ASSIGN)})", \
            _PREC_PRIMARY
    raise PrettyError(f"unprintable expression: {type(expr).__name__}")


def _expr(expr: Optional[ast.Expr], min_prec: int) -> str:
    if expr is None:
        raise PrettyError("missing expression operand")
    text, prec = _render(expr)
    return f"({text})" if prec < min_prec else text


def pretty_expr(expr: ast.Expr) -> str:
    """Render a standalone expression (statement / argument level)."""
    return _expr(expr, _PREC_ASSIGN)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

def _ends_with_open_if(stmt: Optional[ast.Stmt]) -> bool:
    """Would a trailing ``else`` attach to an ``if`` inside ``stmt``?"""
    if isinstance(stmt, ast.If):
        return stmt.other is None or _ends_with_open_if(stmt.other)
    if isinstance(stmt, (ast.While, ast.For)):
        return _ends_with_open_if(stmt.body)
    return False   # DoWhile ends with `while (...);` — closed


def _var_decl_text(decl: ast.VarDecl) -> str:
    text = format_decl(decl.var_type, decl.name)
    if decl.init is not None:
        text += f" = {_expr(decl.init, _PREC_ASSIGN)}"
    elif decl.init_list is not None:
        items = ", ".join(_expr(item, _PREC_ASSIGN)
                          for item in decl.init_list)
        text += " = { " + items + " }" if items else " = {}"
    return text


def _declarator_with_init(decl: ast.VarDecl) -> str:
    """Declarator-only spelling for ``for (long i = 0, j = 1; ...)``."""
    _, stars, dims = _split_declarator(decl.var_type)
    text = "*" * stars + decl.name + "".join(f"[{d}]" for d in dims)
    if decl.init is not None:
        text += f" = {_expr(decl.init, _PREC_ASSIGN)}"
    elif decl.init_list is not None:
        items = ", ".join(_expr(item, _PREC_ASSIGN)
                          for item in decl.init_list)
        text += " = { " + items + " }" if items else " = {}"
    return text


def _for_init_text(init: Optional[ast.Stmt]) -> str:
    if init is None:
        return ";"
    if isinstance(init, ast.ExprStmt):
        return f"{pretty_expr(init.expr)};"
    if isinstance(init, ast.VarDecl):
        return f"{_var_decl_text(init)};"
    if isinstance(init, ast.Block) and init.stmts and \
            all(isinstance(s, ast.VarDecl) for s in init.stmts):
        # Multi-declarator: every VarDecl must share the base type.
        bases = [_split_declarator(s.var_type)[0] for s in init.stmts]
        if any(not _ctype_equal(bases[0], b, set()) for b in bases[1:]):
            raise PrettyError("for-init declarators mix base types")
        decls = ", ".join(_declarator_with_init(s) for s in init.stmts)
        return f"{_base_name(bases[0])} {decls};"
    raise PrettyError(f"unprintable for-init: {type(init).__name__}")


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []

    # -- statement emission ------------------------------------------------

    def stmt(self, stmt: ast.Stmt, indent: int) -> None:
        pad = INDENT * indent
        if isinstance(stmt, ast.Block):
            if not stmt.stmts:
                self.lines.append(pad + ";")
                return
            self.lines.append(pad + "{")
            for inner in stmt.stmts:
                self.stmt(inner, indent + 1)
            self.lines.append(pad + "}")
        elif isinstance(stmt, ast.VarDecl):
            self.lines.append(pad + _var_decl_text(stmt) + ";")
        elif isinstance(stmt, ast.ExprStmt):
            self.lines.append(pad + pretty_expr(stmt.expr) + ";")
        elif isinstance(stmt, ast.If):
            self.if_stmt(stmt, indent)
        elif isinstance(stmt, ast.While):
            header = f"while ({pretty_expr(stmt.cond)})"
            self.attach_body(header, stmt.body, indent)
        elif isinstance(stmt, ast.DoWhile):
            tail = f"while ({pretty_expr(stmt.cond)});"
            if isinstance(stmt.body, ast.Block):
                self.lines.append(pad + "do {")
                for inner in stmt.body.stmts:
                    self.stmt(inner, indent + 1)
                self.lines.append(pad + "} " + tail)
            else:
                self.lines.append(pad + "do")
                self.stmt(stmt.body, indent + 1)
                self.lines.append(pad + tail)
        elif isinstance(stmt, ast.For):
            header = "for (" + _for_init_text(stmt.init)
            if stmt.cond is not None:
                header += f" {pretty_expr(stmt.cond)}"
            header += ";"
            if stmt.step is not None:
                header += f" {pretty_expr(stmt.step)}"
            header += ")"
            self.attach_body(header, stmt.body, indent)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.lines.append(pad + "return;")
            else:
                self.lines.append(pad + f"return {pretty_expr(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self.lines.append(pad + "break;")
        elif isinstance(stmt, ast.Continue):
            self.lines.append(pad + "continue;")
        else:
            raise PrettyError(f"unprintable statement: {type(stmt).__name__}")

    def attach_body(self, header: str, body: Optional[ast.Stmt],
                    indent: int) -> None:
        """Emit ``header { ... }`` for Block bodies, indented otherwise."""
        pad = INDENT * indent
        if body is None:
            raise PrettyError("loop/if without a body")
        if isinstance(body, ast.Block):
            self.lines.append(pad + header + " {")
            for inner in body.stmts:
                self.stmt(inner, indent + 1)
            self.lines.append(pad + "}")
        else:
            self.lines.append(pad + header)
            self.stmt(body, indent + 1)

    def if_stmt(self, stmt: ast.If, indent: int) -> None:
        pad = INDENT * indent
        if stmt.other is not None and not isinstance(stmt.then, ast.Block) \
                and _ends_with_open_if(stmt.then):
            raise PrettyError("dangling-else shape is not printable")
        header = f"if ({pretty_expr(stmt.cond)})"
        self.attach_body(header, stmt.then, indent)
        if stmt.other is None:
            return
        if isinstance(stmt.then, ast.Block):
            else_head = self.lines.pop() + " else"   # "... } else"
        else:
            else_head = pad + "else"
        if isinstance(stmt.other, ast.If):
            mark = len(self.lines)
            self.if_stmt(stmt.other, indent)
            self.lines[mark] = else_head + " " + self.lines[mark].lstrip()
        elif isinstance(stmt.other, ast.Block):
            self.lines.append(else_head + " {")
            for inner in stmt.other.stmts:
                self.stmt(inner, indent + 1)
            self.lines.append(pad + "}")
        else:
            self.lines.append(else_head)
            self.stmt(stmt.other, indent + 1)


# ---------------------------------------------------------------------------
# Struct collection
# ---------------------------------------------------------------------------

def _walk_types(unit: ast.TranslationUnit):
    """Yield every CType mentioned anywhere in the unit, in AST order."""

    def from_expr(expr):
        if expr is None:
            return
        if isinstance(expr, ast.Cast):
            yield expr.target_type
        if isinstance(expr, ast.SizeofType):
            yield expr.query_type
        for name in ("operand", "left", "right", "target", "value", "cond",
                     "then", "other", "base", "index"):
            child = getattr(expr, name, None)
            if isinstance(child, ast.Expr):
                yield from from_expr(child)
        for arg in getattr(expr, "args", []) or []:
            yield from from_expr(arg)

    def from_stmt(stmt):
        if stmt is None:
            return
        if isinstance(stmt, ast.VarDecl):
            yield stmt.var_type
            yield from from_expr(stmt.init)
            for item in stmt.init_list or []:
                yield from from_expr(item)
        elif isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                yield from from_stmt(inner)
        elif isinstance(stmt, ast.ExprStmt):
            yield from from_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            yield from from_expr(stmt.cond)
            yield from from_stmt(stmt.then)
            yield from from_stmt(stmt.other)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            yield from from_expr(stmt.cond)
            yield from from_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            yield from from_stmt(stmt.init)
            yield from from_expr(stmt.cond)
            yield from from_expr(stmt.step)
            yield from from_stmt(stmt.body)
        elif isinstance(stmt, ast.Return):
            yield from from_expr(stmt.value)

    for gvar in unit.globals:
        yield gvar.var_type
        yield from from_expr(gvar.init)
        for item in gvar.init_list or []:
            yield from from_expr(item)
    for func in unit.functions:
        yield func.ret_type
        for param in func.params:
            yield param.ctype
        yield from from_stmt(func.body)


def _collect_structs(unit: ast.TranslationUnit) -> List[StructType]:
    """Complete structs reachable from the unit, definition-ordered.

    Order: first-mention order, then topologically sorted so a struct
    embedding another *by value* is emitted after its dependency.
    """
    found: List[StructType] = []
    by_name = {}

    def note(ctype: Optional[CType]):
        stack = [ctype]
        while stack:
            current = stack.pop()
            if isinstance(current, ArrayType):
                stack.append(current.elem)
            elif isinstance(current, PointerType):
                stack.append(current.pointee)
            elif isinstance(current, StructType):
                known = by_name.get(current.name)
                if known is None:
                    by_name[current.name] = current
                    found.append(current)
                    for field_obj in current.fields:
                        stack.append(field_obj.ctype)
                elif known is not current:
                    raise PrettyError(
                        f"two distinct structs named {current.name!r}")

    for ctype in _walk_types(unit):
        note(ctype)

    complete = [s for s in found if s.complete]
    ordered: List[StructType] = []
    emitted = set()

    def emit(struct: StructType, trail: Tuple[str, ...]):
        if struct.name in emitted:
            return
        if struct.name in trail:
            raise PrettyError(f"struct value-cycle via {struct.name}")
        for field_obj in struct.fields:
            ctype = field_obj.ctype
            while isinstance(ctype, ArrayType):
                ctype = ctype.elem
            if isinstance(ctype, StructType) and ctype.complete:
                emit(ctype, trail + (struct.name,))
        emitted.add(struct.name)
        ordered.append(struct)

    for struct in complete:
        emit(struct, ())
    return ordered


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

def _global_text(gvar: ast.GlobalVar) -> str:
    text = format_decl(gvar.var_type, gvar.name)
    if gvar.init is not None:
        # Global initialisers parse at ternary level; the precedence
        # machinery parenthesises an Assign (level 1) automatically.
        text += f" = {_expr(gvar.init, _PREC_COND)}"
    elif gvar.init_list is not None:
        items = ", ".join(_expr(item, _PREC_ASSIGN)
                          for item in gvar.init_list)
        text += " = { " + items + " }" if items else " = {}"
    elif gvar.init_string is not None:
        data = gvar.init_string
        if not data.endswith(b"\x00"):
            raise PrettyError("init_string without trailing NUL")
        text += f" = {c_string(data[:-1])}"
    return text + ";"


def pretty(unit: ast.TranslationUnit) -> str:
    """Render ``unit`` so that ``parse(pretty(unit))`` equals ``unit``."""
    printer = _Printer()
    out = printer.lines
    for struct in _collect_structs(unit):
        out.append(f"struct {struct.name} {{")
        for field_obj in struct.fields:
            out.append(INDENT + format_decl(field_obj.ctype,
                                            field_obj.name) + ";")
        out.append("};")
        out.append("")
    for gvar in unit.globals:
        out.append(_global_text(gvar))
    if unit.globals:
        out.append("")
    for func in unit.functions:
        params = ", ".join(format_decl(p.ctype, p.name)
                           for p in func.params) or "void"
        out.append(f"{format_decl(func.ret_type, func.name)}({params}) {{")
        for inner in (func.body.stmts if func.body else []):
            printer.stmt(inner, 1)
        out.append("}")
        out.append("")
    while out and out[-1] == "":
        out.pop()
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# Structural AST equality
# ---------------------------------------------------------------------------

_SKIP_FIELDS = frozenset(["line", "col", "struct_names"])


def _norm(node):
    """Fold parser normalisations so equivalent spellings compare equal."""
    if isinstance(node, ast.Ident) and node.binding == "enum":
        return ast.IntLit(value=node.enum_value)
    if isinstance(node, ast.Unary) and node.op == "-":
        inner = _norm(node.operand)
        if isinstance(inner, ast.IntLit):
            return ast.IntLit(value=-inner.value)
    return node


def _ctype_equal(a: Optional[CType], b: Optional[CType], seen) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, VoidType):
        return True
    if isinstance(a, IntType):
        return a.size == b.size and a.signed == b.signed
    if isinstance(a, PointerType):
        return _ctype_equal(a.pointee, b.pointee, seen)
    if isinstance(a, ArrayType):
        return a.count == b.count and _ctype_equal(a.elem, b.elem, seen)
    if isinstance(a, StructType):
        key = (id(a), id(b))
        if key in seen:
            return True
        seen.add(key)
        if a.name != b.name or a.complete != b.complete or \
                len(a.fields) != len(b.fields):
            return False
        return all(fa.name == fb.name and fa.offset == fb.offset and
                   _ctype_equal(fa.ctype, fb.ctype, seen)
                   for fa, fb in zip(a.fields, b.fields))
    if isinstance(a, FuncType):
        return _ctype_equal(a.ret, b.ret, seen) and \
            len(a.params) == len(b.params) and \
            all(_ctype_equal(pa, pb, seen)
                for pa, pb in zip(a.params, b.params))
    return a == b


def _value_equal(a, b, seen) -> bool:
    if isinstance(a, ast.Node) or isinstance(b, ast.Node):
        return _node_equal(a, b, seen)
    if isinstance(a, CType) or isinstance(b, CType):
        if not (isinstance(a, CType) and isinstance(b, CType)):
            return False
        return _ctype_equal(a, b, seen)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and \
            all(_value_equal(x, y, seen) for x, y in zip(a, b))
    return a == b


def _node_equal(a, b, seen) -> bool:
    if a is None or b is None:
        return a is None and b is None
    a, b = _norm(a), _norm(b)
    if type(a) is not type(b):
        return False
    import dataclasses
    for field_info in dataclasses.fields(a):
        if field_info.name in _SKIP_FIELDS:
            continue
        if not _value_equal(getattr(a, field_info.name),
                            getattr(b, field_info.name), seen):
            return False
    return True


def ast_equal(a: Optional[ast.Node], b: Optional[ast.Node]) -> bool:
    """Structural equality ignoring positions and parser bookkeeping.

    StructTypes compare structurally (name + members) instead of by
    identity, enum identifiers compare equal to their integer value,
    and ``line``/``col``/``struct_names`` are ignored.
    """
    return _node_equal(a, b, set())
