"""Type system for the mini-C front end.

LP64 model: char=1, short=2, int=4, long=8, pointers=8 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SemanticError


class CType:
    """Base class; all types are immutable and compared structurally."""

    size: int = 0
    align: int = 1

    def is_integer(self) -> bool:
        return False

    def is_pointer(self) -> bool:
        return False

    def is_array(self) -> bool:
        return False

    def is_struct(self) -> bool:
        return False

    def is_void(self) -> bool:
        return False

    def is_scalar(self) -> bool:
        return self.is_integer() or self.is_pointer()


@dataclass(frozen=True)
class VoidType(CType):
    size: int = 0
    align: int = 1

    def is_void(self) -> bool:
        return True

    def __str__(self):
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    size: int = 4
    signed: bool = True
    align: int = 0  # computed in __post_init__

    def __post_init__(self):
        if self.size not in (1, 2, 4, 8):
            raise ValueError(f"bad integer size {self.size}")
        object.__setattr__(self, "align", self.size)

    def is_integer(self) -> bool:
        return True

    def __str__(self):
        names = {1: "char", 2: "short", 4: "int", 8: "long"}
        prefix = "" if self.signed else "unsigned "
        return prefix + names[self.size]


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType = field(default_factory=VoidType)
    size: int = 8
    align: int = 8

    def is_pointer(self) -> bool:
        return True

    def __str__(self):
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(CType):
    elem: CType = field(default_factory=lambda: IntType(4, True))
    count: int = 0
    size: int = 0
    align: int = 1

    def __post_init__(self):
        if self.count < 0:
            raise ValueError("array count must be non-negative")
        object.__setattr__(self, "size", self.elem.size * self.count)
        object.__setattr__(self, "align", self.elem.align)

    def is_array(self) -> bool:
        return True

    def decay(self) -> PointerType:
        return PointerType(self.elem)

    def __str__(self):
        return f"{self.elem}[{self.count}]"


@dataclass(frozen=True)
class StructField:
    name: str
    ctype: CType
    offset: int


class StructType(CType):
    """Struct with laid-out fields. Mutable during definition, then sealed."""

    def __init__(self, name: str):
        self.name = name
        self.fields: List[StructField] = []
        self._by_name: Dict[str, StructField] = {}
        self.size = 0
        self.align = 1
        self.complete = False

    def define(self, members: List[Tuple[str, CType]]):
        if self.complete:
            raise SemanticError(f"struct {self.name} redefined")
        offset = 0
        align = 1
        for member_name, ctype in members:
            if ctype.size == 0:
                raise SemanticError(
                    f"struct {self.name}: member {member_name} has "
                    f"incomplete type {ctype}"
                )
            if member_name in self._by_name:
                raise SemanticError(
                    f"struct {self.name}: duplicate member {member_name}"
                )
            offset = _align_up(offset, ctype.align)
            field_obj = StructField(member_name, ctype, offset)
            self.fields.append(field_obj)
            self._by_name[member_name] = field_obj
            offset += ctype.size
            align = max(align, ctype.align)
        self.size = _align_up(offset, align) if offset else 0
        self.align = align
        self.complete = True

    def field_named(self, name: str) -> StructField:
        try:
            return self._by_name[name]
        except KeyError:
            raise SemanticError(
                f"struct {self.name} has no member {name!r}"
            ) from None

    def is_struct(self) -> bool:
        return True

    def __str__(self):
        return f"struct {self.name}"

    def __eq__(self, other):
        return self is other  # structs are nominal

    def __hash__(self):
        return id(self)


@dataclass(frozen=True)
class FuncType(CType):
    ret: CType = field(default_factory=VoidType)
    params: Tuple[CType, ...] = ()
    size: int = 0
    align: int = 1

    def __str__(self):
        args = ", ".join(str(p) for p in self.params)
        return f"{self.ret}({args})"


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


# Canonical instances -------------------------------------------------------
VOID = VoidType()
CHAR = IntType(1, True)
UCHAR = IntType(1, False)
SHORT = IntType(2, True)
USHORT = IntType(2, False)
INT = IntType(4, True)
UINT = IntType(4, False)
LONG = IntType(8, True)
ULONG = IntType(8, False)
CHAR_PTR = PointerType(CHAR)
VOID_PTR = PointerType(VOID)


def common_type(a: CType, b: CType) -> CType:
    """Usual arithmetic conversions, simplified: widest wins, unsigned
    wins ties."""
    if not (a.is_integer() and b.is_integer()):
        raise SemanticError(f"no common type for {a} and {b}")
    size = max(a.size, b.size, 4)  # integer promotion to at least int
    signed = a.signed and b.signed
    if a.size == b.size and a.size >= 4:
        signed = a.signed and b.signed
    return IntType(size, signed)


def pointee_size(ptr: CType) -> int:
    """Element size for pointer arithmetic (void* scales by 1)."""
    if not ptr.is_pointer():
        raise SemanticError(f"{ptr} is not a pointer")
    size = ptr.pointee.size
    return size if size else 1
