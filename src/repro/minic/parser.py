"""Recursive-descent parser for the mini-C subset."""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ParseError
from repro.minic import ast
from repro.minic.lexer import (
    TOK_CHAR, TOK_EOF, TOK_IDENT, TOK_INT, TOK_KEYWORD, TOK_OP, TOK_STRING,
    Token, tokenize,
)
from repro.minic.types import (
    ArrayType, CType, IntType, PointerType, StructType, VoidType,
    CHAR, INT, LONG, SHORT, UCHAR, UINT, ULONG, USHORT, VOID,
)

_TYPE_KEYWORDS = frozenset([
    "void", "char", "short", "int", "long", "signed", "unsigned",
    "struct", "const", "enum", "union",
])

# Binary operator precedence (larger binds tighter).
_BINOP_PREC = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=",
                         "&=", "|=", "^=", "<<=", ">>="])


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.typedefs: Dict[str, CType] = {}
        self.structs: Dict[str, StructType] = {}
        self.enums: Dict[str, int] = {}

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != TOK_EOF:
            self.pos += 1
        return tok

    def at(self, kind: str, value=None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def at_op(self, value: str) -> bool:
        return self.at(TOK_OP, value)

    def accept_op(self, value: str) -> bool:
        if self.at_op(value):
            self.next()
            return True
        return False

    def accept_keyword(self, value: str) -> bool:
        if self.at(TOK_KEYWORD, value):
            self.next()
            return True
        return False

    def expect_op(self, value: str) -> Token:
        tok = self.peek()
        if not self.at_op(value):
            raise ParseError(f"expected {value!r}, got {tok}",
                             tok.line, tok.col)
        return self.next()

    def expect_keyword(self, value: str) -> Token:
        tok = self.peek()
        if not self.at(TOK_KEYWORD, value):
            raise ParseError(f"expected {value!r}, got {tok}",
                             tok.line, tok.col)
        return self.next()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != TOK_IDENT:
            raise ParseError(f"expected identifier, got {tok}",
                             tok.line, tok.col)
        return self.next()

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message + f" (got {tok})", tok.line, tok.col)

    # -- type parsing ---------------------------------------------------------

    def starts_type(self, offset: int = 0) -> bool:
        tok = self.peek(offset)
        if tok.kind == TOK_KEYWORD and tok.value in _TYPE_KEYWORDS:
            return True
        return tok.kind == TOK_IDENT and tok.value in self.typedefs

    def parse_base_type(self) -> CType:
        """Parse type specifiers (no declarator)."""
        tok = self.peek()
        while self.accept_keyword("const") or self.accept_keyword("static") \
                or self.accept_keyword("extern"):
            pass
        if self.at(TOK_KEYWORD, "struct") or self.at(TOK_KEYWORD, "union"):
            return self.parse_struct_type()
        if self.at(TOK_KEYWORD, "enum"):
            return self.parse_enum_type()
        if self.peek().kind == TOK_IDENT and \
                self.peek().value in self.typedefs:
            name = self.next().value
            return self.typedefs[name]
        # Collect primitive specifier words.
        words: List[str] = []
        while self.peek().kind == TOK_KEYWORD and self.peek().value in (
                "void", "char", "short", "int", "long",
                "signed", "unsigned", "const"):
            word = self.next().value
            if word != "const":
                words.append(word)
        if not words:
            raise ParseError(f"expected a type, got {tok}", tok.line, tok.col)
        if words == ["void"]:
            return VOID
        signed = "unsigned" not in words
        core = [w for w in words if w not in ("signed", "unsigned")]
        mapping = {
            (): INT if signed else UINT,
            ("char",): CHAR if signed else UCHAR,
            ("short",): SHORT if signed else USHORT,
            ("short", "int"): SHORT if signed else USHORT,
            ("int",): INT if signed else UINT,
            ("long",): LONG if signed else ULONG,
            ("long", "int"): LONG if signed else ULONG,
            ("long", "long"): LONG if signed else ULONG,
            ("long", "long", "int"): LONG if signed else ULONG,
        }
        key = tuple(core)
        if key not in mapping:
            raise ParseError(f"unsupported type {' '.join(words)}",
                             tok.line, tok.col)
        return mapping[key]

    def parse_struct_type(self) -> CType:
        tok = self.next()  # struct / union
        if tok.value == "union":
            raise ParseError("unions are not supported", tok.line, tok.col)
        name = None
        if self.peek().kind == TOK_IDENT:
            name = self.next().value
        if self.at_op("{"):
            struct = self._get_or_create_struct(name, tok)
            self.next()  # {
            members: List[Tuple[str, CType]] = []
            while not self.accept_op("}"):
                base = self.parse_base_type()
                while True:
                    member_type, member_name = self.parse_declarator(base)
                    if member_name is None:
                        raise self.error("struct member needs a name")
                    members.append((member_name, member_type))
                    if not self.accept_op(","):
                        break
                self.expect_op(";")
            struct.define(members)
            return struct
        if name is None:
            raise ParseError("anonymous struct must have a body",
                             tok.line, tok.col)
        return self._get_or_create_struct(name, tok)

    def _get_or_create_struct(self, name: Optional[str],
                              tok: Token) -> StructType:
        if name is None:
            name = f"__anon{len(self.structs)}"
        if name not in self.structs:
            self.structs[name] = StructType(name)
        return self.structs[name]

    def parse_enum_type(self) -> CType:
        self.expect_keyword("enum")
        if self.peek().kind == TOK_IDENT:
            self.next()  # tag name, ignored
        if self.accept_op("{"):
            value = 0
            while not self.accept_op("}"):
                name_tok = self.expect_ident()
                if self.accept_op("="):
                    value = self.parse_constant_expression()
                self.enums[name_tok.value] = value
                value += 1
                if not self.accept_op(","):
                    self.expect_op("}")
                    break
        return INT

    def parse_declarator(self, base: CType):
        """Parse ``* ... name [N]...`` returning (type, name|None)."""
        ctype = base
        while self.accept_op("*"):
            while self.accept_keyword("const"):
                pass
            ctype = PointerType(ctype)
        name = None
        if self.peek().kind == TOK_IDENT:
            name = self.next().value
        # Array suffixes bind outside-in: int a[2][3] is array of arrays.
        dims: List[int] = []
        while self.accept_op("["):
            if self.at_op("]"):
                dims.append(0)  # incomplete (param decay handles it)
            else:
                dims.append(self.parse_constant_expression())
            self.expect_op("]")
        for dim in reversed(dims):
            ctype = ArrayType(ctype, dim)
        return ctype, name

    def parse_constant_expression(self) -> int:
        expr = self.parse_ternary()
        value = _const_eval(expr, self.enums)
        if value is None:
            raise self.error("expected a constant expression")
        return value

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_ternary()
        tok = self.peek()
        if tok.kind == TOK_OP and tok.value in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            return ast.Assign(line=tok.line, col=tok.col, op=tok.value,
                              target=left, value=value)
        return left

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.at_op("?"):
            tok = self.next()
            then = self.parse_expression()
            self.expect_op(":")
            other = self.parse_ternary()
            return ast.Cond(line=tok.line, col=tok.col, cond=cond,
                            then=then, other=other)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != TOK_OP:
                return left
            prec = _BINOP_PREC.get(tok.value, 0)
            if prec == 0 or prec < min_prec:
                return left
            self.next()
            right = self.parse_binary(prec + 1)
            left = ast.Binary(line=tok.line, col=tok.col, op=tok.value,
                              left=left, right=right)

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == TOK_OP and tok.value in ("-", "!", "~", "*", "&", "+"):
            self.next()
            operand = self.parse_unary()
            if tok.value == "+":
                return operand
            return ast.Unary(line=tok.line, col=tok.col, op=tok.value,
                             operand=operand)
        if tok.kind == TOK_OP and tok.value in ("++", "--"):
            self.next()
            operand = self.parse_unary()
            # ++x desugars to (x += 1)
            op = "+=" if tok.value == "++" else "-="
            one = ast.IntLit(line=tok.line, col=tok.col, value=1)
            return ast.Assign(line=tok.line, col=tok.col, op=op,
                              target=operand, value=one)
        if tok.kind == TOK_KEYWORD and tok.value == "sizeof":
            self.next()
            if self.at_op("(") and self.starts_type(1):
                self.expect_op("(")
                qtype, _ = self.parse_declarator(self.parse_base_type())
                self.expect_op(")")
                return ast.SizeofType(line=tok.line, col=tok.col,
                                      query_type=qtype)
            operand = self.parse_unary()
            return ast.SizeofExpr(line=tok.line, col=tok.col,
                                  operand=operand)
        # Cast: "(" type ")" unary
        if self.at_op("(") and self.starts_type(1):
            self.expect_op("(")
            target, _ = self.parse_declarator(self.parse_base_type())
            self.expect_op(")")
            operand = self.parse_unary()
            return ast.Cast(line=tok.line, col=tok.col,
                            target_type=target, operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if self.accept_op("["):
                index = self.parse_expression()
                self.expect_op("]")
                expr = ast.Index(line=tok.line, col=tok.col, base=expr,
                                 index=index)
            elif self.accept_op("."):
                name = self.expect_ident().value
                expr = ast.Member(line=tok.line, col=tok.col, base=expr,
                                  name=name, arrow=False)
            elif self.accept_op("->"):
                name = self.expect_ident().value
                expr = ast.Member(line=tok.line, col=tok.col, base=expr,
                                  name=name, arrow=True)
            elif self.at_op("++") or self.at_op("--"):
                op = self.next().value
                expr = ast.PostIncDec(line=tok.line, col=tok.col, op=op,
                                      operand=expr)
            elif self.at_op("(") and isinstance(expr, ast.Ident):
                self.next()
                args: List[ast.Expr] = []
                if not self.at_op(")"):
                    args.append(self.parse_assignment())
                    while self.accept_op(","):
                        args.append(self.parse_assignment())
                self.expect_op(")")
                expr = ast.Call(line=tok.line, col=tok.col, name=expr.name,
                                args=args)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == TOK_INT or tok.kind == TOK_CHAR:
            self.next()
            return ast.IntLit(line=tok.line, col=tok.col, value=tok.value)
        if tok.kind == TOK_STRING:
            self.next()
            return ast.StrLit(line=tok.line, col=tok.col, value=tok.value)
        if tok.kind == TOK_IDENT:
            self.next()
            if tok.value in self.enums:
                return ast.Ident(line=tok.line, col=tok.col,
                                 name=tok.value, binding="enum",
                                 enum_value=self.enums[tok.value])
            return ast.Ident(line=tok.line, col=tok.col, name=tok.value)
        if self.accept_op("("):
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        raise self.error("expected an expression")

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if self.at_op("{"):
            return self.parse_block()
        if self.at(TOK_KEYWORD, "if"):
            self.next()
            self.expect_op("(")
            cond = self.parse_expression()
            self.expect_op(")")
            then = self.parse_statement()
            other = None
            if self.accept_keyword("else"):
                other = self.parse_statement()
            return ast.If(line=tok.line, col=tok.col, cond=cond,
                          then=then, other=other)
        if self.at(TOK_KEYWORD, "while"):
            self.next()
            self.expect_op("(")
            cond = self.parse_expression()
            self.expect_op(")")
            body = self.parse_statement()
            return ast.While(line=tok.line, col=tok.col, cond=cond,
                             body=body)
        if self.at(TOK_KEYWORD, "do"):
            self.next()
            body = self.parse_statement()
            self.expect_keyword("while")
            self.expect_op("(")
            cond = self.parse_expression()
            self.expect_op(")")
            self.expect_op(";")
            return ast.DoWhile(line=tok.line, col=tok.col, cond=cond,
                               body=body)
        if self.at(TOK_KEYWORD, "for"):
            self.next()
            self.expect_op("(")
            init: Optional[ast.Stmt] = None
            if not self.at_op(";"):
                if self.starts_type():
                    init = self.parse_declaration_statement()
                else:
                    expr = self.parse_expression()
                    self.expect_op(";")
                    init = ast.ExprStmt(line=tok.line, col=tok.col,
                                        expr=expr)
            else:
                self.next()
            cond = None
            if not self.at_op(";"):
                cond = self.parse_expression()
            self.expect_op(";")
            step = None
            if not self.at_op(")"):
                step = self.parse_expression()
            self.expect_op(")")
            body = self.parse_statement()
            return ast.For(line=tok.line, col=tok.col, init=init,
                           cond=cond, step=step, body=body)
        if self.at(TOK_KEYWORD, "return"):
            self.next()
            value = None
            if not self.at_op(";"):
                value = self.parse_expression()
            self.expect_op(";")
            return ast.Return(line=tok.line, col=tok.col, value=value)
        if self.at(TOK_KEYWORD, "break"):
            self.next()
            self.expect_op(";")
            return ast.Break(line=tok.line, col=tok.col)
        if self.at(TOK_KEYWORD, "continue"):
            self.next()
            self.expect_op(";")
            return ast.Continue(line=tok.line, col=tok.col)
        if self.at(TOK_KEYWORD, "switch") or self.at(TOK_KEYWORD, "goto"):
            raise ParseError(f"{tok.value} is not supported by mini-C",
                             tok.line, tok.col)
        if self.starts_type():
            return self.parse_declaration_statement()
        if self.accept_op(";"):
            return ast.Block(line=tok.line, col=tok.col, stmts=[])
        expr = self.parse_expression()
        self.expect_op(";")
        return ast.ExprStmt(line=tok.line, col=tok.col, expr=expr)

    def parse_block(self) -> ast.Block:
        tok = self.expect_op("{")
        stmts: List[ast.Stmt] = []
        while not self.accept_op("}"):
            stmts.append(self.parse_statement())
        return ast.Block(line=tok.line, col=tok.col, stmts=stmts)

    def parse_declaration_statement(self) -> ast.Stmt:
        """One or more local declarations: ``int a = 1, *p;``."""
        tok = self.peek()
        base = self.parse_base_type()
        decls: List[ast.Stmt] = []
        # `struct S { ... };` as a bare statement declares nothing.
        if self.accept_op(";"):
            return ast.Block(line=tok.line, col=tok.col, stmts=[])
        while True:
            var_type, name = self.parse_declarator(base)
            if name is None:
                raise self.error("declaration needs a name")
            init = None
            init_list = None
            if self.accept_op("="):
                if self.at_op("{"):
                    init_list = self.parse_initializer_list()
                else:
                    init = self.parse_assignment()
            decls.append(ast.VarDecl(line=tok.line, col=tok.col, name=name,
                                     var_type=var_type, init=init,
                                     init_list=init_list))
            if not self.accept_op(","):
                break
        self.expect_op(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(line=tok.line, col=tok.col, stmts=decls)

    def parse_initializer_list(self) -> List[ast.Expr]:
        self.expect_op("{")
        items: List[ast.Expr] = []
        while not self.accept_op("}"):
            if self.at_op("{"):
                # Flatten nested initialiser lists (row-major).
                items.extend(self.parse_initializer_list())
            else:
                items.append(self.parse_assignment())
            if not self.accept_op(","):
                self.expect_op("}")
                break
        return items

    # -- top level ----------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self.at(TOK_EOF):
            if self.accept_keyword("typedef"):
                base = self.parse_base_type()
                ctype, name = self.parse_declarator(base)
                if name is None:
                    raise self.error("typedef needs a name")
                self.typedefs[name] = ctype
                self.expect_op(";")
                continue
            tok = self.peek()
            base = self.parse_base_type()
            # `struct S { ... };` or `enum {...};` alone.
            if self.accept_op(";"):
                continue
            ctype, name = self.parse_declarator(base)
            if name is None:
                raise self.error("expected a declarator")
            if self.at_op("("):
                func = self.parse_function(ctype, name, tok)
                if func is not None:
                    unit.functions.append(func)
                continue
            # Global variable(s).
            while True:
                init = None
                init_list = None
                init_string = None
                if self.accept_op("="):
                    if self.at_op("{"):
                        init_list = self.parse_initializer_list()
                        if isinstance(ctype, ArrayType) and ctype.count == 0:
                            ctype = ArrayType(ctype.elem, len(init_list))
                    elif self.peek().kind == TOK_STRING and \
                            isinstance(ctype, ArrayType):
                        init_string = self.next().value + b"\x00"
                        if ctype.count == 0:
                            ctype = ArrayType(ctype.elem, len(init_string))
                    else:
                        init = self.parse_ternary()
                unit.globals.append(ast.GlobalVar(
                    line=tok.line, col=tok.col, name=name,
                    var_type=ctype, init=init, init_list=init_list,
                    init_string=init_string))
                if not self.accept_op(","):
                    break
                ctype, name = self.parse_declarator(base)
                if name is None:
                    raise self.error("expected a declarator")
            self.expect_op(";")
        unit.struct_names = sorted(self.structs)
        return unit

    def parse_function(self, ret_type: CType, name: str,
                       tok: Token) -> Optional[ast.FuncDef]:
        self.expect_op("(")
        params: List[ast.Param] = []
        if self.at(TOK_KEYWORD, "void") and self.peek(1).kind == TOK_OP \
                and self.peek(1).value == ")":
            self.next()
        elif not self.at_op(")"):
            while True:
                base = self.parse_base_type()
                ptype, pname = self.parse_declarator(base)
                if isinstance(ptype, ArrayType):
                    ptype = ptype.decay()  # array params decay
                params.append(ast.Param(line=tok.line, col=tok.col,
                                        name=pname or "", ctype=ptype))
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        if self.accept_op(";"):
            return None  # prototype only; sema resolves by definition
        body = self.parse_block()
        return ast.FuncDef(line=tok.line, col=tok.col, name=name,
                           ret_type=ret_type, params=params, body=body)


def _const_eval(expr: ast.Expr, enums: Dict[str, int]) -> Optional[int]:
    """Fold a constant expression at parse time (for array dims, enums)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Ident):
        return enums.get(expr.name)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _const_eval(expr.operand, enums)
        return None if inner is None else -inner
    if isinstance(expr, ast.Unary) and expr.op == "~":
        inner = _const_eval(expr.operand, enums)
        return None if inner is None else ~inner
    if isinstance(expr, ast.SizeofType):
        return expr.query_type.size
    if isinstance(expr, ast.Binary):
        left = _const_eval(expr.left, enums)
        right = _const_eval(expr.right, enums)
        if left is None or right is None:
            return None
        ops = {
            "+": lambda a, b: a + b, "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b if b else None,
            "%": lambda a, b: a % b if b else None,
            "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b,
            "&": lambda a, b: a & b, "|": lambda a, b: a | b,
            "^": lambda a, b: a ^ b,
        }
        fn = ops.get(expr.op)
        return fn(left, right) if fn else None
    return None


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C source into an (untyped) AST."""
    return Parser(tokenize(source)).parse_translation_unit()
