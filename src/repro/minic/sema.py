"""Semantic analysis: scopes, type checking, AST annotation.

``analyze`` walks the parsed AST and

* resolves identifiers (locals get function-unique names so the IR
  generator needs no scope handling),
* annotates every expression with its :class:`CType` and lvalue-ness,
* checks calls against definitions and the builtin runtime signatures,
* assigns string literals to synthetic global symbols.

Checking is deliberately lenient where C is lenient at -O0 (integer
width mixing, void* <-> T*), and strict where the IR generator needs
guarantees (struct member existence, call arity, lvalue targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SemanticError
from repro.minic import ast
from repro.minic.types import (
    ArrayType, CType, FuncType, IntType, PointerType, StructType,
    CHAR, INT, LONG, ULONG, VOID, VOID_PTR,
    common_type, pointee_size,
)

# Runtime library signatures visible to every program. Implementations
# live in repro.codegen.runtime (mini-C) or are lowered specially.
BUILTIN_FUNCS: Dict[str, FuncType] = {
    "malloc": FuncType(PointerType(VOID), (LONG,)),
    "calloc": FuncType(PointerType(VOID), (LONG, LONG)),
    "free": FuncType(VOID, (PointerType(VOID),)),
    "memcpy": FuncType(PointerType(VOID),
                       (PointerType(VOID), PointerType(VOID), LONG)),
    "memset": FuncType(PointerType(VOID),
                       (PointerType(VOID), INT, LONG)),
    "memcmp": FuncType(INT, (PointerType(VOID), PointerType(VOID), LONG)),
    "strlen": FuncType(LONG, (PointerType(CHAR),)),
    "strcpy": FuncType(PointerType(CHAR),
                       (PointerType(CHAR), PointerType(CHAR))),
    "strncpy": FuncType(PointerType(CHAR),
                        (PointerType(CHAR), PointerType(CHAR), LONG)),
    "strcmp": FuncType(INT, (PointerType(CHAR), PointerType(CHAR))),
    "strncmp": FuncType(INT, (PointerType(CHAR), PointerType(CHAR), LONG)),
    "strcat": FuncType(PointerType(CHAR),
                       (PointerType(CHAR), PointerType(CHAR))),
    "print_str": FuncType(VOID, (PointerType(CHAR),)),
    "print_int": FuncType(VOID, (LONG,)),
    "print_hex": FuncType(VOID, (ULONG,)),
    "print_char": FuncType(VOID, (INT,)),
    "exit": FuncType(VOID, (INT,)),
    "abort": FuncType(VOID, ()),
    "rand_next": FuncType(LONG, ()),        # deterministic LCG
    "rand_seed": FuncType(VOID, (LONG,)),
    # Platform stubs provided by the linker (asm veneers) — used by the
    # runtime library sources, not by workloads.
    "__ecall_write": FuncType(LONG, (INT, PointerType(CHAR), LONG)),
    "__heap_base": FuncType(LONG, ()),
    "__heap_end": FuncType(LONG, ()),
    "__lock_table_base": FuncType(LONG, ()),
    "__lock_table_end": FuncType(LONG, ()),
    "__shadow_offset": FuncType(LONG, ()),
    "__cycles": FuncType(LONG, ()),
    "__trap_spatial": FuncType(VOID, ()),
    "__trap_temporal": FuncType(VOID, ()),
    "__trap_asan": FuncType(VOID, ()),
    "__trap_canary": FuncType(VOID, ()),
    # Runtime-internal entry points referenced across scheme sources.
    "__rt_init": FuncType(VOID, ()),
    "__rt_scheme_init": FuncType(VOID, ()),
    "__lock_alloc": FuncType(LONG, ()),
    "__lock_free": FuncType(VOID, (LONG,)),
}


@dataclass
class FunctionInfo:
    """Per-function results: the typed body plus its local frame."""

    node: ast.FuncDef
    func_type: FuncType
    # unique local name -> type (params included, in order, first)
    locals: Dict[str, CType] = field(default_factory=dict)
    param_names: List[str] = field(default_factory=list)


@dataclass
class SemaResult:
    unit: ast.TranslationUnit
    functions: Dict[str, FunctionInfo]
    func_types: Dict[str, FuncType]
    globals: Dict[str, ast.GlobalVar]
    strings: Dict[str, bytes] = field(default_factory=dict)


_STRING_COUNTER = [0]


def _fresh_string_symbol() -> str:
    """Process-unique string-literal symbol (units are later linked)."""
    _STRING_COUNTER[0] += 1
    return f"__str{_STRING_COUNTER[0]}"


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, tuple] = {}  # name -> (unique, ctype, kind)

    def declare(self, name: str, unique: str, ctype: CType, kind: str):
        if name in self.names:
            raise SemanticError(f"redeclaration of {name!r}")
        self.names[name] = (unique, ctype, kind)

    def lookup(self, name: str):
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Analyzer:
    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.func_types: Dict[str, FuncType] = dict(BUILTIN_FUNCS)
        self.globals: Dict[str, ast.GlobalVar] = {}
        self.strings: Dict[str, bytes] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._current: Optional[FunctionInfo] = None
        self._scope: Optional[_Scope] = None
        self._unique_counter = 0
        self._loop_depth = 0

    # -- entry ------------------------------------------------------------

    def run(self) -> SemaResult:
        for gvar in self.unit.globals:
            if gvar.name in self.globals:
                raise SemanticError(f"global {gvar.name!r} redefined")
            if gvar.var_type.size == 0 and not gvar.var_type.is_void():
                raise SemanticError(
                    f"global {gvar.name!r} has incomplete type")
            self.globals[gvar.name] = gvar
        seen_defs = set()
        for func in self.unit.functions:
            ftype = FuncType(func.ret_type,
                             tuple(p.ctype for p in func.params))
            if func.name in seen_defs:
                raise SemanticError(f"function {func.name!r} redefined")
            seen_defs.add(func.name)
            # Re-declaring a builtin is fine: the runtime implements
            # most of them in mini-C.
            self.func_types[func.name] = ftype
        for gvar in self.unit.globals:
            self._check_global_init(gvar)
        for func in self.unit.functions:
            self._analyze_function(func)
        return SemaResult(unit=self.unit, functions=self.functions,
                          func_types=self.func_types, globals=self.globals,
                          strings=self.strings)

    # -- globals -------------------------------------------------------------

    def _check_global_init(self, gvar: ast.GlobalVar):
        if gvar.init is not None:
            self._type_expr(gvar.init)
        if gvar.init_list is not None:
            if not isinstance(gvar.var_type, ArrayType):
                raise SemanticError(
                    f"brace initialiser on non-array global {gvar.name!r}")
            for item in gvar.init_list:
                self._type_expr(item)
        if gvar.init_string is not None:
            if not isinstance(gvar.var_type, ArrayType):
                raise SemanticError(
                    f"string initialiser on non-array global {gvar.name!r}")
            if gvar.var_type.count == 0:
                gvar.var_type = ArrayType(gvar.var_type.elem,
                                          len(gvar.init_string))

    # -- functions -----------------------------------------------------------

    def _analyze_function(self, func: ast.FuncDef):
        info = FunctionInfo(node=func,
                            func_type=self.func_types[func.name])
        self._current = info
        self._scope = _Scope()
        self._unique_counter = 0
        for param in func.params:
            unique = self._declare_local(param.name, param.ctype, "param")
            info.param_names.append(unique)
        self._check_block(func.body)
        self.functions[func.name] = info
        self._current = None
        self._scope = None

    def _declare_local(self, name: str, ctype: CType, kind: str) -> str:
        if not name:
            raise SemanticError("nameless declaration")
        if ctype.is_void():
            raise SemanticError(f"variable {name!r} declared void")
        if ctype.size == 0:
            raise SemanticError(f"variable {name!r} has incomplete type")
        unique = name
        while unique in self._current.locals:
            self._unique_counter += 1
            unique = f"{name}.{self._unique_counter}"
        self._scope.declare(name, unique, ctype, kind)
        self._current.locals[unique] = ctype
        return unique

    # -- statements ---------------------------------------------------------

    def _check_block(self, block: ast.Block):
        self._scope = _Scope(self._scope)
        for stmt in block.stmts:
            self._check_stmt(stmt)
        self._scope = self._scope.parent

    def _check_stmt(self, stmt: ast.Stmt):
        if isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            unique = self._declare_local(stmt.name, stmt.var_type, "local")
            stmt.name = unique
            if stmt.init is not None:
                init_type = self._type_expr(stmt.init)
                self._check_assignable(stmt.var_type, init_type, stmt)
            if stmt.init_list is not None:
                if not isinstance(stmt.var_type, ArrayType):
                    raise SemanticError(
                        "brace initialiser on non-array local")
                for item in stmt.init_list:
                    self._type_expr(item)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._type_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._require_scalar(self._type_expr(stmt.cond), stmt)
            self._check_stmt(stmt.then)
            if stmt.other is not None:
                self._check_stmt(stmt.other)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self._require_scalar(self._type_expr(stmt.cond), stmt)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            self._scope = _Scope(self._scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._require_scalar(self._type_expr(stmt.cond), stmt)
            if stmt.step is not None:
                self._type_expr(stmt.step)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
            self._scope = self._scope.parent
        elif isinstance(stmt, ast.Return):
            ret = self._current.func_type.ret
            if stmt.value is not None:
                if ret.is_void():
                    raise SemanticError("returning a value from void function")
                value_type = self._type_expr(stmt.value)
                self._check_assignable(ret, value_type, stmt)
            elif not ret.is_void():
                raise SemanticError(
                    f"non-void function {self._current.node.name!r} "
                    f"returns nothing")
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise SemanticError("break/continue outside a loop")
        else:  # pragma: no cover
            raise SemanticError(f"unknown statement {type(stmt).__name__}")

    # -- expressions ----------------------------------------------------------

    def _type_expr(self, expr: ast.Expr) -> CType:
        ctype = self._type_expr_inner(expr)
        expr.ctype = ctype
        return ctype

    def _decayed(self, expr: ast.Expr) -> CType:
        """Type of expr in rvalue context (arrays decay to pointers)."""
        ctype = self._type_expr(expr)
        if isinstance(ctype, ArrayType):
            return ctype.decay()
        return ctype

    def _type_expr_inner(self, expr: ast.Expr) -> CType:
        if isinstance(expr, ast.IntLit):
            return LONG if abs(expr.value) > 0x7FFF_FFFF else INT
        if isinstance(expr, ast.StrLit):
            if not expr.symbol:
                expr.symbol = _fresh_string_symbol()
                self.strings[expr.symbol] = expr.value + b"\x00"
            return ArrayType(CHAR, len(expr.value) + 1)
        if isinstance(expr, ast.Ident):
            return self._type_ident(expr)
        if isinstance(expr, ast.Unary):
            return self._type_unary(expr)
        if isinstance(expr, ast.PostIncDec):
            operand_type = self._decayed(expr.operand)
            if not expr.operand.is_lvalue:
                raise SemanticError("++/-- needs an lvalue")
            if not operand_type.is_scalar():
                raise SemanticError("++/-- needs a scalar")
            return operand_type
        if isinstance(expr, ast.Binary):
            return self._type_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._type_assign(expr)
        if isinstance(expr, ast.Cond):
            self._require_scalar(self._decayed(expr.cond), expr)
            then_type = self._decayed(expr.then)
            other_type = self._decayed(expr.other)
            if then_type.is_pointer():
                return then_type
            if other_type.is_pointer():
                return other_type
            return common_type(then_type, other_type)
        if isinstance(expr, ast.Call):
            return self._type_call(expr)
        if isinstance(expr, ast.Index):
            base_type = self._decayed(expr.base)
            index_type = self._decayed(expr.index)
            if not base_type.is_pointer():
                raise SemanticError(f"cannot index {base_type}")
            if not index_type.is_integer():
                raise SemanticError("array index must be an integer")
            expr.is_lvalue = True
            return base_type.pointee
        if isinstance(expr, ast.Member):
            return self._type_member(expr)
        if isinstance(expr, ast.Cast):
            self._decayed(expr.operand)
            return expr.target_type
        if isinstance(expr, ast.SizeofType):
            return LONG
        if isinstance(expr, ast.SizeofExpr):
            self._type_expr(expr.operand)
            return LONG
        raise SemanticError(f"unknown expression {type(expr).__name__}")

    def _type_ident(self, expr: ast.Ident) -> CType:
        if expr.binding == "enum":
            return INT
        found = self._scope.lookup(expr.name) if self._scope else None
        if found is not None:
            unique, ctype, kind = found
            expr.name = unique
            expr.binding = kind
            expr.is_lvalue = True
            return ctype
        if expr.name in self.globals:
            expr.binding = "global"
            expr.is_lvalue = True
            return self.globals[expr.name].var_type
        if expr.name in self.func_types:
            expr.binding = "func"
            return self.func_types[expr.name]
        raise SemanticError(f"undeclared identifier {expr.name!r}")

    def _type_unary(self, expr: ast.Unary) -> CType:
        if expr.op == "&":
            operand_type = self._type_expr(expr.operand)
            if not expr.operand.is_lvalue:
                raise SemanticError("& needs an lvalue")
            if isinstance(operand_type, ArrayType):
                # &arr has type T(*)[N]; model as pointer to element,
                # which is what the workloads rely on.
                return PointerType(operand_type.elem)
            return PointerType(operand_type)
        if expr.op == "*":
            operand_type = self._decayed(expr.operand)
            if not operand_type.is_pointer():
                raise SemanticError(f"cannot dereference {operand_type}")
            if operand_type.pointee.is_void():
                raise SemanticError("cannot dereference void*")
            expr.is_lvalue = True
            return operand_type.pointee
        operand_type = self._decayed(expr.operand)
        if expr.op == "!":
            self._require_scalar(operand_type, expr)
            return INT
        if expr.op in ("-", "~"):
            if not operand_type.is_integer():
                raise SemanticError(f"unary {expr.op} needs an integer")
            return common_type(operand_type, INT)
        raise SemanticError(f"unknown unary operator {expr.op!r}")

    def _type_binary(self, expr: ast.Binary) -> CType:
        left = self._decayed(expr.left)
        right = self._decayed(expr.right)
        op = expr.op
        if op in ("&&", "||"):
            self._require_scalar(left, expr)
            self._require_scalar(right, expr)
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if left.is_pointer() or right.is_pointer():
                return INT
            common_type(left, right)
            return INT
        if op == "+":
            if left.is_pointer() and right.is_integer():
                return left
            if left.is_integer() and right.is_pointer():
                return right
            return common_type(left, right)
        if op == "-":
            if left.is_pointer() and right.is_pointer():
                return LONG
            if left.is_pointer() and right.is_integer():
                return left
            return common_type(left, right)
        if op in ("*", "/", "%", "&", "|", "^", "<<", ">>"):
            if not (left.is_integer() and right.is_integer()):
                raise SemanticError(f"operator {op} needs integers "
                                    f"({left} vs {right})")
            if op in ("<<", ">>"):
                return common_type(left, INT)
            return common_type(left, right)
        raise SemanticError(f"unknown binary operator {op!r}")

    def _type_assign(self, expr: ast.Assign) -> CType:
        target_type = self._type_expr(expr.target)
        if not expr.target.is_lvalue:
            raise SemanticError("assignment target is not an lvalue")
        if isinstance(target_type, ArrayType):
            raise SemanticError("cannot assign to an array")
        value_type = self._decayed(expr.value)
        if expr.op == "=":
            self._check_assignable(target_type, value_type, expr)
        else:
            binop = expr.op[:-1]
            if target_type.is_pointer():
                if binop not in ("+", "-") or not value_type.is_integer():
                    raise SemanticError(
                        f"bad compound assignment {expr.op} on pointer")
            elif not (target_type.is_integer() and value_type.is_integer()):
                raise SemanticError(
                    f"bad compound assignment {expr.op} "
                    f"({target_type} vs {value_type})")
        return target_type

    def _type_call(self, expr: ast.Call) -> CType:
        ftype = self.func_types.get(expr.name)
        if ftype is None:
            raise SemanticError(f"call to undeclared function {expr.name!r}")
        if len(expr.args) != len(ftype.params):
            raise SemanticError(
                f"{expr.name}() expects {len(ftype.params)} args, "
                f"got {len(expr.args)}")
        for arg, param_type in zip(expr.args, ftype.params):
            arg_type = self._decayed(arg)
            self._check_assignable(param_type, arg_type, expr)
        return ftype.ret

    def _type_member(self, expr: ast.Member) -> CType:
        base_type = self._type_expr(expr.base)
        if expr.arrow:
            if isinstance(base_type, ArrayType):
                base_type = base_type.decay()
            if not base_type.is_pointer() or \
                    not base_type.pointee.is_struct():
                raise SemanticError(f"-> on non-struct-pointer {base_type}")
            struct = base_type.pointee
        else:
            if not base_type.is_struct():
                raise SemanticError(f". on non-struct {base_type}")
            if not expr.base.is_lvalue:
                raise SemanticError(". on a non-lvalue struct")
            struct = base_type
        field_obj = struct.field_named(expr.name)
        expr.is_lvalue = True
        return field_obj.ctype

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _require_scalar(ctype: CType, node):
        if not ctype.is_scalar():
            raise SemanticError(f"expected a scalar, got {ctype}")

    @staticmethod
    def _check_assignable(target: CType, value: CType, node):
        if isinstance(value, ArrayType):
            value = value.decay()
        if target.is_integer() and value.is_integer():
            return
        if target.is_pointer() and value.is_pointer():
            return  # lenient: void* interconversion and T*/U* punning
        if target.is_pointer() and value.is_integer():
            return  # NULL (0) and deliberate int->ptr in test cases
        if target.is_integer() and value.is_pointer():
            return  # ptr->int casts used by allocator internals
        if target.is_struct() and value is target:
            return  # struct assignment (same type)
        raise SemanticError(f"cannot assign {value} to {target}")


def analyze(unit: ast.TranslationUnit) -> SemaResult:
    """Type-check and annotate ``unit``; returns the sema tables."""
    return Analyzer(unit).run()
