"""Binary encode/decode for the supported instruction subset.

Standard RISC-V 32-bit formats are used; the HWST128 and comparator
extensions live in the custom-0/1/2/3 opcode spaces with the same field
layout, which is how the paper's CHISEL implementation extends Rocket's
decoder. Encoding is primarily used for program images, round-trip
testing, and the disassembler; the ISS executes :class:`Instr` objects
directly for speed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro import bits
from repro.errors import IllegalInstruction
from repro.isa.instructions import (
    FMT_B, FMT_CSR, FMT_I, FMT_J, FMT_R, FMT_S, FMT_SYS, FMT_U,
    Instr, InstrSpec, SPEC_TABLE,
)

_SHIFT_IMM_OPS = frozenset(
    ["slli", "srli", "srai", "slliw", "srliw", "sraiw"]
)


def _check_reg(value: int, name: str) -> int:
    if not 0 <= value < 32:
        raise ValueError(f"{name} out of range: {value}")
    return value


def encode(instr: Instr) -> int:
    """Encode one instruction into its 32-bit word."""
    spec = SPEC_TABLE.get(instr.op)
    if spec is None:
        raise ValueError(f"unknown mnemonic: {instr.op}")
    rd = _check_reg(instr.rd, "rd")
    rs1 = _check_reg(instr.rs1, "rs1")
    rs2 = _check_reg(instr.rs2, "rs2")
    imm = instr.imm

    if spec.fmt == FMT_R:
        return (spec.funct7 << 25) | (rs2 << 20) | (rs1 << 15) | \
            (spec.funct3 << 12) | (rd << 7) | spec.opcode

    if spec.fmt == FMT_I:
        if instr.op in _SHIFT_IMM_OPS:
            max_shamt = 31 if instr.op.endswith("w") else 63
            if not 0 <= imm <= max_shamt:
                raise ValueError(f"{instr.op} shamt out of range: {imm}")
            imm_field = (spec.funct7 << 5) | imm
        else:
            if not bits.fits_signed(imm, 12):
                raise ValueError(f"{instr.op} immediate out of range: {imm}")
            imm_field = imm & 0xFFF
        return (imm_field << 20) | (rs1 << 15) | (spec.funct3 << 12) | \
            (rd << 7) | spec.opcode

    if spec.fmt == FMT_S:
        if not bits.fits_signed(imm, 12):
            raise ValueError(f"{instr.op} immediate out of range: {imm}")
        imm &= 0xFFF
        return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | \
            (spec.funct3 << 12) | ((imm & 0x1F) << 7) | spec.opcode

    if spec.fmt == FMT_B:
        if not bits.fits_signed(imm, 13) or imm & 1:
            raise ValueError(f"{instr.op} branch offset invalid: {imm}")
        imm &= 0x1FFF
        return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25) | \
            (rs2 << 20) | (rs1 << 15) | (spec.funct3 << 12) | \
            (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | spec.opcode

    if spec.fmt == FMT_U:
        if not 0 <= imm < (1 << 20):
            raise ValueError(f"{instr.op} immediate out of range: {imm}")
        return (imm << 12) | (rd << 7) | spec.opcode

    if spec.fmt == FMT_J:
        if not bits.fits_signed(imm, 21) or imm & 1:
            raise ValueError(f"{instr.op} jump offset invalid: {imm}")
        imm &= 0x1F_FFFF
        return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21) | \
            (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12) | \
            (rd << 7) | spec.opcode

    if spec.fmt == FMT_SYS:
        if instr.op == "ecall":
            return 0x0000_0073
        if instr.op == "ebreak":
            return 0x0010_0073
        if instr.op == "fence":
            return 0x0FF0_000F
        raise ValueError(f"unencodable system op: {instr.op}")

    if spec.fmt == FMT_CSR:
        if not 0 <= imm < (1 << 12):
            raise ValueError(f"csr address out of range: {imm:#x}")
        return (imm << 20) | (rs1 << 15) | (spec.funct3 << 12) | \
            (rd << 7) | spec.opcode

    raise ValueError(f"unknown format {spec.fmt}")


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

def _build_decode_index() -> Dict[Tuple[int, int], List[InstrSpec]]:
    index: Dict[Tuple[int, int], List[InstrSpec]] = {}
    for spec in SPEC_TABLE.values():
        if spec.fmt == FMT_SYS:
            continue  # handled explicitly
        index.setdefault((spec.opcode, spec.funct3), []).append(spec)
    return index


_DECODE_INDEX = _build_decode_index()


def decode(word: int, pc: int = 0) -> Instr:
    """Decode a 32-bit word back into an :class:`Instr`.

    ``pc`` is only used for error messages.
    """
    word &= 0xFFFF_FFFF
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    # System opcodes first: ecall/ebreak share (0x73, funct3=0).
    if opcode == 0x73 and funct3 == 0:
        if word == 0x0000_0073:
            return Instr("ecall")
        if word == 0x0010_0073:
            return Instr("ebreak")
        raise IllegalInstruction(pc, f"unknown SYSTEM encoding {word:#010x}")
    if opcode == 0x0F:
        return Instr("fence")

    # U/J formats have no funct3: dispatch on opcode alone.
    if opcode == 0x37 or opcode == 0x17:
        return Instr("lui" if opcode == 0x37 else "auipc",
                     rd=rd, imm=(word >> 12) & 0xFFFFF)
    if opcode == 0x6F:
        imm = (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12) | \
            (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1)
        return Instr("jal", rd=rd, imm=bits.sext(imm, 21))

    candidates = _DECODE_INDEX.get((opcode, funct3))
    if not candidates:
        raise IllegalInstruction(pc, f"unknown opcode {word:#010x}")

    spec = None
    if len(candidates) == 1:
        spec = candidates[0]
    else:
        # Disambiguate by funct7 (R-format and shift-immediates). Shift
        # immediates on RV64 use a 6-bit shamt, so compare the upper 6 bits.
        for cand in candidates:
            if cand.fmt == FMT_R and cand.funct7 == funct7:
                spec = cand
                break
            if cand.fmt == FMT_I and cand.mnemonic in _SHIFT_IMM_OPS:
                if (funct7 >> 1) == (cand.funct7 >> 1):
                    spec = cand
                    break
        if spec is None:
            raise IllegalInstruction(
                pc, f"no funct7 match for {word:#010x} (funct7={funct7:#x})"
            )

    if spec.fmt == FMT_R:
        return Instr(spec.mnemonic, rd=rd, rs1=rs1, rs2=rs2)
    if spec.fmt == FMT_I:
        if spec.mnemonic in _SHIFT_IMM_OPS:
            shamt_bits = 5 if spec.mnemonic.endswith("w") else 6
            return Instr(spec.mnemonic, rd=rd, rs1=rs1,
                         imm=(word >> 20) & ((1 << shamt_bits) - 1))
        return Instr(spec.mnemonic, rd=rd, rs1=rs1,
                     imm=bits.sext(word >> 20, 12))
    if spec.fmt == FMT_S:
        imm = ((word >> 25) << 5) | ((word >> 7) & 0x1F)
        return Instr(spec.mnemonic, rs1=rs1, rs2=rs2, imm=bits.sext(imm, 12))
    if spec.fmt == FMT_B:
        imm = (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11) | \
            (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1)
        return Instr(spec.mnemonic, rs1=rs1, rs2=rs2, imm=bits.sext(imm, 13))
    if spec.fmt == FMT_U:
        return Instr(spec.mnemonic, rd=rd, imm=(word >> 12) & 0xFFFFF)
    if spec.fmt == FMT_J:
        imm = (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12) | \
            (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1)
        return Instr(spec.mnemonic, rd=rd, imm=bits.sext(imm, 21))
    if spec.fmt == FMT_CSR:
        return Instr(spec.mnemonic, rd=rd, rs1=rs1, imm=(word >> 20) & 0xFFF)
    raise IllegalInstruction(pc, f"unknown format for {word:#010x}")


def encode_program(instrs) -> bytes:
    """Encode a sequence of instructions into little-endian machine code."""
    blob = bytearray()
    for instr in instrs:
        blob += encode(instr).to_bytes(4, "little")
    return bytes(blob)


def decode_program(blob: bytes, base_pc: int = 0):
    """Decode little-endian machine code back into instructions."""
    if len(blob) % 4:
        raise ValueError("machine code length must be a multiple of 4")
    out = []
    for offset in range(0, len(blob), 4):
        word = int.from_bytes(blob[offset:offset + 4], "little")
        out.append(decode(word, pc=base_pc + offset))
    return out
