"""Instruction container and spec table for the RV64 subset + HWST128.

Every mnemonic the simulator understands is described by an
:class:`InstrSpec` row carrying its encoding format and behavioural
classification (reads/writes, memory access width, branch-ness, which
extension it belongs to). The ISS, the timing model, the encoder and the
assembler all key off this single table.

Extensions
----------
``base``
    RV64I plus the M multiply/divide extension and Zicsr.
``hwst``
    The HWST128 instructions from the paper: metadata bind (``bndrs``,
    ``bndrt``), the temporal check (``tchk``), shadow-memory metadata
    stores/loads (``sbdl``, ``sbdu``, ``lbdls``, ``lbdus``), decompressing
    GPR loads for wrapper code (``lbas``, ``lbnd``, ``lkey``, ``lloc``)
    and the fused-check memory accesses (``ld.chk`` …).
``mpx``
    The MPX-style bound instructions used by the BOGO comparator model.
``avx``
    The 256-bit vector metadata instructions used by the WatchdogLite
    comparator model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

# Encoding formats (RISC-V standard nomenclature).
FMT_R = "R"
FMT_I = "I"
FMT_S = "S"
FMT_B = "B"
FMT_U = "U"
FMT_J = "J"
FMT_SYS = "SYS"   # ecall/ebreak/fence: no operands
FMT_CSR = "CSR"   # csrrw/csrrs/csrrc: rd, csr(imm), rs1


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: str
    opcode: int
    funct3: int = 0
    funct7: int = 0
    ext: str = "base"
    reads_rs1: bool = False
    reads_rs2: bool = False
    writes_rd: bool = False
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_jump: bool = False
    mem_bytes: int = 0
    mem_signed: bool = True
    # HWST semantics hooks consumed by the ISS:
    checked: bool = False        # fused spatial check against SRF[rs1]
    shadow_access: bool = False  # targets shadow memory via the SMAC
    srf_write: bool = False      # writes the shadow register file
    mul_like: bool = False
    div_like: bool = False


@dataclass
class Instr:
    """One instruction instance.

    ``imm`` holds the numeric immediate; when codegen emits a reference to
    a not-yet-placed symbol it stores the name in ``sym`` and the linker
    patches ``imm`` later. ``comment`` is assembly-listing chrome only.
    """

    op: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    sym: Optional[str] = None
    sym_kind: str = ""   # "", "call", "branch", "hi", "lo", "abs"
    comment: str = ""

    def spec(self) -> InstrSpec:
        return SPEC_TABLE[self.op]

    def __str__(self) -> str:  # assembly-ish rendering for listings
        from repro.isa.registers import reg_name

        s = SPEC_TABLE.get(self.op)
        if s is None:
            return f"<unknown {self.op}>"
        target = self.sym if self.sym is not None else self.imm
        if self.op == "tchk":
            body = f"tchk {reg_name(self.rs1)}"
        elif s.fmt == FMT_R:
            body = f"{self.op} {reg_name(self.rd)}, {reg_name(self.rs1)}, {reg_name(self.rs2)}"
        elif s.fmt == FMT_I and s.is_load:
            body = f"{self.op} {reg_name(self.rd)}, {target}({reg_name(self.rs1)})"
        elif s.fmt == FMT_I:
            body = f"{self.op} {reg_name(self.rd)}, {reg_name(self.rs1)}, {target}"
        elif s.fmt == FMT_S:
            body = f"{self.op} {reg_name(self.rs2)}, {target}({reg_name(self.rs1)})"
        elif s.fmt == FMT_B:
            body = f"{self.op} {reg_name(self.rs1)}, {reg_name(self.rs2)}, {target}"
        elif s.fmt == FMT_U:
            body = f"{self.op} {reg_name(self.rd)}, {target}"
        elif s.fmt == FMT_J:
            body = f"{self.op} {reg_name(self.rd)}, {target}"
        elif s.fmt == FMT_CSR:
            body = f"{self.op} {reg_name(self.rd)}, {self.imm:#x}, {reg_name(self.rs1)}"
        else:
            body = self.op
        if self.comment:
            return f"{body}  # {self.comment}"
        return body


def _r(mnemonic, funct3, funct7, *, ext="base", opcode=0x33, **kw) -> InstrSpec:
    fields = dict(reads_rs1=True, reads_rs2=True, writes_rd=True)
    fields.update(kw)
    return InstrSpec(mnemonic, FMT_R, opcode, funct3, funct7, ext=ext, **fields)


def _i(mnemonic, funct3, *, opcode=0x13, ext="base", **kw) -> InstrSpec:
    return InstrSpec(mnemonic, FMT_I, opcode, funct3, ext=ext,
                     reads_rs1=True, writes_rd=True, **kw)


def _load(mnemonic, funct3, nbytes, signed, *, opcode=0x03, ext="base", **kw) -> InstrSpec:
    return InstrSpec(mnemonic, FMT_I, opcode, funct3, ext=ext,
                     reads_rs1=True, writes_rd=True, is_load=True,
                     mem_bytes=nbytes, mem_signed=signed, **kw)


def _store(mnemonic, funct3, nbytes, *, opcode=0x23, ext="base", **kw) -> InstrSpec:
    return InstrSpec(mnemonic, FMT_S, opcode, funct3, ext=ext,
                     reads_rs1=True, reads_rs2=True, is_store=True,
                     mem_bytes=nbytes, **kw)


def _branch(mnemonic, funct3) -> InstrSpec:
    return InstrSpec(mnemonic, FMT_B, 0x63, funct3,
                     reads_rs1=True, reads_rs2=True, is_branch=True)


_SPECS = [
    # --- RV64I register-register ---------------------------------------
    _r("add", 0x0, 0x00), _r("sub", 0x0, 0x20),
    _r("sll", 0x1, 0x00), _r("slt", 0x2, 0x00), _r("sltu", 0x3, 0x00),
    _r("xor", 0x4, 0x00), _r("srl", 0x5, 0x00), _r("sra", 0x5, 0x20),
    _r("or", 0x6, 0x00), _r("and", 0x7, 0x00),
    _r("addw", 0x0, 0x00, opcode=0x3B), _r("subw", 0x0, 0x20, opcode=0x3B),
    _r("sllw", 0x1, 0x00, opcode=0x3B), _r("srlw", 0x5, 0x00, opcode=0x3B),
    _r("sraw", 0x5, 0x20, opcode=0x3B),
    # --- M extension -----------------------------------------------------
    _r("mul", 0x0, 0x01, mul_like=True), _r("mulh", 0x1, 0x01, mul_like=True),
    _r("mulhsu", 0x2, 0x01, mul_like=True), _r("mulhu", 0x3, 0x01, mul_like=True),
    _r("div", 0x4, 0x01, div_like=True), _r("divu", 0x5, 0x01, div_like=True),
    _r("rem", 0x6, 0x01, div_like=True), _r("remu", 0x7, 0x01, div_like=True),
    _r("mulw", 0x0, 0x01, opcode=0x3B, mul_like=True),
    _r("divw", 0x4, 0x01, opcode=0x3B, div_like=True),
    _r("divuw", 0x5, 0x01, opcode=0x3B, div_like=True),
    _r("remw", 0x6, 0x01, opcode=0x3B, div_like=True),
    _r("remuw", 0x7, 0x01, opcode=0x3B, div_like=True),
    # --- register-immediate ---------------------------------------------
    _i("addi", 0x0), _i("slti", 0x2), _i("sltiu", 0x3),
    _i("xori", 0x4), _i("ori", 0x6), _i("andi", 0x7),
    _i("slli", 0x1, funct7=0x00), _i("srli", 0x5, funct7=0x00),
    _i("srai", 0x5, funct7=0x20),
    _i("addiw", 0x0, opcode=0x1B),
    _i("slliw", 0x1, opcode=0x1B, funct7=0x00),
    _i("srliw", 0x5, opcode=0x1B, funct7=0x00),
    _i("sraiw", 0x5, opcode=0x1B, funct7=0x20),
    # --- loads / stores ---------------------------------------------------
    _load("lb", 0x0, 1, True), _load("lh", 0x1, 2, True),
    _load("lw", 0x2, 4, True), _load("ld", 0x3, 8, True),
    _load("lbu", 0x4, 1, False), _load("lhu", 0x5, 2, False),
    _load("lwu", 0x6, 4, False),
    _store("sb", 0x0, 1), _store("sh", 0x1, 2),
    _store("sw", 0x2, 4), _store("sd", 0x3, 8),
    # --- control flow ------------------------------------------------------
    _branch("beq", 0x0), _branch("bne", 0x1), _branch("blt", 0x4),
    _branch("bge", 0x5), _branch("bltu", 0x6), _branch("bgeu", 0x7),
    InstrSpec("jal", FMT_J, 0x6F, writes_rd=True, is_jump=True),
    InstrSpec("jalr", FMT_I, 0x67, 0x0, reads_rs1=True, writes_rd=True,
              is_jump=True),
    InstrSpec("lui", FMT_U, 0x37, writes_rd=True),
    InstrSpec("auipc", FMT_U, 0x17, writes_rd=True),
    # --- system -------------------------------------------------------------
    InstrSpec("ecall", FMT_SYS, 0x73, 0x0),
    InstrSpec("ebreak", FMT_SYS, 0x73, 0x0, funct7=0x01),
    InstrSpec("fence", FMT_SYS, 0x0F, 0x0),
    InstrSpec("csrrw", FMT_CSR, 0x73, 0x1, reads_rs1=True, writes_rd=True),
    InstrSpec("csrrs", FMT_CSR, 0x73, 0x2, reads_rs1=True, writes_rd=True),
    InstrSpec("csrrc", FMT_CSR, 0x73, 0x3, reads_rs1=True, writes_rd=True),
    # =====================================================================
    # HWST128 extension (custom-0 / custom-1 opcode space)
    # =====================================================================
    # Metadata bind: compress and write the SRF entry of rd.
    _r("bndrs", 0x0, 0x00, ext="hwst", opcode=0x0B, srf_write=True),
    _r("bndrt", 0x1, 0x00, ext="hwst", opcode=0x0B, srf_write=True),
    # Temporal check of SRF[rs1] against the key stored at its lock.
    InstrSpec("tchk", FMT_I, 0x0B, 0x2, ext="hwst", reads_rs1=True),
    # Shadow metadata store: SRF[rs2] halves -> LMSM(rs1 + imm).
    _store("sbdl", 0x0, 8, opcode=0x2B, ext="hwst", shadow_access=True),
    _store("sbdu", 0x1, 8, opcode=0x2B, ext="hwst", shadow_access=True),
    # Shadow metadata load into SRF (no decompression, memcpy-friendly).
    _load("lbdls", 0x2, 8, False, opcode=0x2B, ext="hwst",
          shadow_access=True, srf_write=True),
    _load("lbdus", 0x3, 8, False, opcode=0x2B, ext="hwst",
          shadow_access=True, srf_write=True),
    # Shadow metadata load + decompress into a GPR (wrapper/library path).
    _load("lbas", 0x4, 8, False, opcode=0x2B, ext="hwst", shadow_access=True),
    _load("lbnd", 0x5, 8, False, opcode=0x2B, ext="hwst", shadow_access=True),
    _load("lkey", 0x6, 8, False, opcode=0x2B, ext="hwst", shadow_access=True),
    _load("lloc", 0x7, 8, False, opcode=0x2B, ext="hwst", shadow_access=True),
    # Fused-check loads/stores: address computed from rs1 is checked
    # against the decompressed spatial metadata in SRF[rs1] by the SCU.
    _load("lb.chk", 0x0, 1, True, opcode=0x5B, ext="hwst", checked=True),
    _load("lh.chk", 0x1, 2, True, opcode=0x5B, ext="hwst", checked=True),
    _load("lw.chk", 0x2, 4, True, opcode=0x5B, ext="hwst", checked=True),
    _load("ld.chk", 0x3, 8, True, opcode=0x5B, ext="hwst", checked=True),
    _load("lbu.chk", 0x4, 1, False, opcode=0x5B, ext="hwst", checked=True),
    _load("lhu.chk", 0x5, 2, False, opcode=0x5B, ext="hwst", checked=True),
    _load("lwu.chk", 0x6, 4, False, opcode=0x5B, ext="hwst", checked=True),
    _store("sb.chk", 0x0, 1, opcode=0x7B, ext="hwst", checked=True),
    _store("sh.chk", 0x1, 2, opcode=0x7B, ext="hwst", checked=True),
    _store("sw.chk", 0x2, 4, opcode=0x7B, ext="hwst", checked=True),
    _store("sd.chk", 0x3, 8, opcode=0x7B, ext="hwst", checked=True),
    # =====================================================================
    # Comparator modelling extensions (BOGO / WatchdogLite)
    # =====================================================================
    # MPX-style: bound registers are modelled as the SRF spatial half.
    _r("bndcl", 0x0, 0x00, ext="mpx", opcode=0x6B, writes_rd=False),
    _r("bndcu", 0x1, 0x00, ext="mpx", opcode=0x6B, writes_rd=False),
    _load("bndldx", 0x2, 8, False, opcode=0x6B, ext="mpx",
          shadow_access=True, srf_write=True),
    _store("bndstx", 0x3, 8, opcode=0x6B, ext="mpx", shadow_access=True),
    # AVX-style 256-bit metadata moves/checks for the WDL wide mode.
    _load("vld256", 0x6, 32, False, opcode=0x0B, ext="avx",
          shadow_access=True, srf_write=True),
    _store("vst256", 0x7, 32, opcode=0x0B, ext="avx", shadow_access=True),
    _r("vchk", 0x3, 0x02, ext="avx", opcode=0x0B, writes_rd=False),
]

SPEC_TABLE: Dict[str, InstrSpec] = {s.mnemonic: s for s in _SPECS}

if len(SPEC_TABLE) != len(_SPECS):  # pragma: no cover - table sanity
    raise RuntimeError("duplicate mnemonic in SPEC_TABLE")

LOAD_MNEMONICS = frozenset(m for m, s in SPEC_TABLE.items() if s.is_load)
STORE_MNEMONICS = frozenset(m for m, s in SPEC_TABLE.items() if s.is_store)
BRANCH_MNEMONICS = frozenset(m for m, s in SPEC_TABLE.items() if s.is_branch)
HWST_MNEMONICS = frozenset(m for m, s in SPEC_TABLE.items() if s.ext == "hwst")


def spec_for(mnemonic: str) -> InstrSpec:
    """Look up the spec row for ``mnemonic`` (raises KeyError if unknown)."""
    return SPEC_TABLE[mnemonic]


def is_hwst_mnemonic(mnemonic: str) -> bool:
    """True for instructions added by the HWST128 extension."""
    return mnemonic in HWST_MNEMONICS


# Handy factory helpers used throughout codegen and tests -----------------

def nop() -> Instr:
    return Instr("addi", rd=0, rs1=0, imm=0)


def mv(rd: int, rs1: int) -> Instr:
    """Register move; in hardware this also propagates SRF[rs1] -> SRF[rd]."""
    return Instr("addi", rd=rd, rs1=rs1, imm=0)


def li_sequence(rd: int, value: int):
    """Materialise a 64-bit constant into ``rd``.

    Returns a list of instructions: ``lui+addiw`` fast path for 32-bit
    values, shift/or chains otherwise (what -O0 compilers emit).
    """
    from repro import bits

    value = bits.to_s64(bits.to_u64(value))
    out = []
    if -2048 <= value < 2048:
        out.append(Instr("addi", rd=rd, rs1=0, imm=value))
        return out
    if -(1 << 31) <= value < (1 << 31):
        hi = (value + 0x800) >> 12
        lo = value - (hi << 12)
        out.append(Instr("lui", rd=rd, imm=hi & 0xFFFFF))
        if lo:
            out.append(Instr("addiw", rd=rd, rs1=rd, imm=lo))
        else:
            # lui sign-extends bit 31; normalise through addiw anyway.
            out.append(Instr("addiw", rd=rd, rs1=rd, imm=0))
        return out
    # Wide constant: build the upper 32 bits then shift+or the lower part
    # in 11-bit chunks, the standard li expansion shape.
    upper = value >> 32
    lower = value & 0xFFFF_FFFF
    out.extend(li_sequence(rd, upper))
    out.append(Instr("slli", rd=rd, rs1=rd, imm=11))
    out.append(Instr("addi", rd=rd, rs1=rd, imm=(lower >> 21) & 0x7FF))
    out.append(Instr("slli", rd=rd, rs1=rd, imm=11))
    out.append(Instr("addi", rd=rd, rs1=rd, imm=(lower >> 10) & 0x7FF))
    out.append(Instr("slli", rd=rd, rs1=rd, imm=10))
    out.append(Instr("addi", rd=rd, rs1=rd, imm=lower & 0x3FF))
    return out
