"""Integer register file naming for the RV64 subset.

Thirty-two integer registers with the standard RISC-V ABI names. The
shadow register file (SRF) introduced by HWST128 mirrors this file
one-to-one: metadata bound to ``x7`` lives in ``srf7``.
"""

from __future__ import annotations

REG_COUNT = 32

ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

_NAME_TO_INDEX = {name: idx for idx, name in enumerate(ABI_NAMES)}
_NAME_TO_INDEX.update({f"x{i}": i for i in range(REG_COUNT)})
_NAME_TO_INDEX["fp"] = 8  # frame pointer alias for s0

# Convenience constants --------------------------------------------------
ZERO, RA, SP, GP, TP = 0, 1, 2, 3, 4
T0, T1, T2 = 5, 6, 7
S0, S1 = 8, 9
FP = S0
A0, A1, A2, A3, A4, A5, A6, A7 = range(10, 18)
S2, S3, S4, S5, S6, S7, S8, S9, S10, S11 = range(18, 28)
T3, T4, T5, T6 = range(28, 32)

CALLER_SAVED = (RA, T0, T1, T2, A0, A1, A2, A3, A4, A5, A6, A7, T3, T4, T5, T6)
CALLEE_SAVED = (SP, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11)
ARG_REGS = (A0, A1, A2, A3, A4, A5, A6, A7)


def reg_index(name: str) -> int:
    """Map an ABI or ``xN`` register name to its index.

    >>> reg_index("sp")
    2
    >>> reg_index("x31")
    31
    """
    try:
        return _NAME_TO_INDEX[name]
    except KeyError:
        raise ValueError(f"unknown register name: {name!r}") from None


def reg_name(index: int) -> str:
    """Map a register index to its ABI name.

    >>> reg_name(2)
    'sp'
    """
    if not 0 <= index < REG_COUNT:
        raise ValueError(f"register index out of range: {index}")
    return ABI_NAMES[index]
