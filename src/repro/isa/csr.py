"""Control and status register map.

Standard user counters plus the HWST128 configuration CSRs described in
the paper (Section 3.3/3.5): the linear-mapped shadow-memory offset used
by the shadow memory address calculator (SMAC, Eq. 1), the 24-bit packed
metadata bit-width register consumed by the COMP/DECOMP units, and the
lock-table window used by the temporal runtime.
"""

from __future__ import annotations

from repro import bits

# Standard read-only user counters.
CYCLE = 0xC00
TIME = 0xC01
INSTRET = 0xC02

# HWST128 configuration CSRs (custom read/write space).
HWST_SM_OFFSET = 0x800     # csr.sm.offset in Fig. 1 — LMSM base offset
HWST_META_WIDTHS = 0x801   # 24-bit packed field widths (Fig. 2 / Eq. 3-6)
HWST_LOCK_BASE = 0x802     # first lock_location address
HWST_LOCK_LIMIT = 0x803    # one past the last lock_location address
HWST_STATUS = 0x804        # bit0: enable checks, bit1: enable keybuffer

ALL_CSRS = (
    CYCLE, TIME, INSTRET,
    HWST_SM_OFFSET, HWST_META_WIDTHS,
    HWST_LOCK_BASE, HWST_LOCK_LIMIT, HWST_STATUS,
)

CSR_NAMES = {
    CYCLE: "cycle",
    TIME: "time",
    INSTRET: "instret",
    HWST_SM_OFFSET: "hwst.sm.offset",
    HWST_META_WIDTHS: "hwst.meta.widths",
    HWST_LOCK_BASE: "hwst.lock.base",
    HWST_LOCK_LIMIT: "hwst.lock.limit",
    HWST_STATUS: "hwst.status",
}

# Layout of HWST_META_WIDTHS: four 6-bit width fields packed into 24 bits.
# [5:0] base width, [11:6] range width, [17:12] lock width, [23:18] key width.
_WIDTH_FIELD_BITS = 6


def pack_meta_widths(base: int, range_: int, lock: int, key: int) -> int:
    """Pack the four metadata field widths into the 24-bit CSR value."""
    for name, width in (("base", base), ("range", range_),
                        ("lock", lock), ("key", key)):
        if not 0 <= width < (1 << _WIDTH_FIELD_BITS):
            raise ValueError(f"{name} width {width} does not fit in 6 bits")
    value = 0
    value = bits.deposit(value, 0, _WIDTH_FIELD_BITS, base)
    value = bits.deposit(value, 6, _WIDTH_FIELD_BITS, range_)
    value = bits.deposit(value, 12, _WIDTH_FIELD_BITS, lock)
    value = bits.deposit(value, 18, _WIDTH_FIELD_BITS, key)
    return value


def unpack_meta_widths(value: int):
    """Unpack the 24-bit CSR value into ``(base, range, lock, key)`` widths."""
    return (
        bits.extract(value, 0, _WIDTH_FIELD_BITS),
        bits.extract(value, 6, _WIDTH_FIELD_BITS),
        bits.extract(value, 12, _WIDTH_FIELD_BITS),
        bits.extract(value, 18, _WIDTH_FIELD_BITS),
    )


def csr_name(addr: int) -> str:
    """Human-readable CSR name (falls back to hex)."""
    return CSR_NAMES.get(addr, f"csr{addr:#x}")
