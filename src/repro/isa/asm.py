"""Two-pass textual assembler / disassembler.

Accepts the same syntax the disassembler (``Instr.__str__`` /
``Program.listing``) emits, so listings round-trip::

    loop:
        addi t0, t0, -1
        bne t0, zero, loop
        jalr zero, ra, 0

Supported operand forms:

* registers by ABI name or ``xN``;
* immediates in decimal or hex (``0x..``), optionally negative;
* ``imm(reg)`` memory operands for loads/stores/shadow ops;
* label targets for branches and jumps (resolved pc-relative);
* ``# comment`` to end of line; ``label:`` on its own line or before
  an instruction; an optional leading ``0x...:`` address (as printed
  by listings) is ignored.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import ToolchainError
from repro.isa.instructions import (
    FMT_B, FMT_CSR, FMT_I, FMT_J, FMT_R, FMT_S, FMT_SYS, FMT_U,
    Instr, SPEC_TABLE,
)
from repro.isa.registers import reg_index


class AsmError(ToolchainError):
    """Assembly syntax or resolution error."""

    def __init__(self, message: str, line_no: int):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_ADDR_PREFIX_RE = re.compile(r"^0x[0-9a-fA-F]+:\s*")
_MEM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\(([\w.]+)\)$")


def _parse_int(text: str, line_no: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AsmError(f"bad integer {text!r}", line_no) from None


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def _is_label(token: str) -> bool:
    if _MEM_RE.match(token):
        return False
    if token.lstrip("-").isdigit() or token.lstrip("-").startswith("0x"):
        return False
    try:
        reg_index(token)
        return False
    except ValueError:
        return True


def assemble(text: str, base_pc: int = 0) -> List[Instr]:
    """Assemble ``text`` into an instruction list.

    Branch/jump label targets become pc-relative immediates against
    ``base_pc``; numeric targets are taken as already-relative offsets.
    """
    # Pass 1: measure addresses, collect labels.
    labels: Dict[str, int] = {}
    parsed: List[Tuple[int, str, str]] = []   # (line_no, op, rest)
    index = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        line = _ADDR_PREFIX_RE.sub("", line)
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            name = match.group(1)
            if name in labels:
                raise AsmError(f"duplicate label {name!r}", line_no)
            labels[name] = index
            continue
        parts = line.split(None, 1)
        op = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if op not in SPEC_TABLE:
            raise AsmError(f"unknown mnemonic {op!r}", line_no)
        parsed.append((line_no, op, rest))
        index += 1

    # Pass 2: build instructions.
    out: List[Instr] = []
    for position, (line_no, op, rest) in enumerate(parsed):
        spec = SPEC_TABLE[op]
        operands = _split_operands(rest)

        def resolve_target(token: str) -> int:
            if _is_label(token):
                if token not in labels:
                    raise AsmError(f"undefined label {token!r}", line_no)
                return 4 * (labels[token] - position)
            return _parse_int(token, line_no)

        def reg(token: str) -> int:
            try:
                return reg_index(token)
            except ValueError:
                raise AsmError(f"bad register {token!r}",
                               line_no) from None

        def need(count: int):
            if len(operands) != count:
                raise AsmError(
                    f"{op} expects {count} operands, got "
                    f"{len(operands)}", line_no)

        if op == "tchk":
            need(1)
            out.append(Instr(op, rs1=reg(operands[0])))
        elif spec.fmt == FMT_R:
            if spec.writes_rd:
                need(3)
                out.append(Instr(op, rd=reg(operands[0]),
                                 rs1=reg(operands[1]),
                                 rs2=reg(operands[2])))
            else:
                need(2)
                out.append(Instr(op, rs1=reg(operands[0]),
                                 rs2=reg(operands[1])))
        elif spec.fmt == FMT_I and spec.is_load:
            need(2)
            mem = _MEM_RE.match(operands[1])
            if not mem:
                raise AsmError(f"expected imm(reg), got {operands[1]!r}",
                               line_no)
            out.append(Instr(op, rd=reg(operands[0]),
                             rs1=reg(mem.group(2)),
                             imm=_parse_int(mem.group(1), line_no)))
        elif spec.fmt == FMT_I and op == "jalr":
            need(3)
            out.append(Instr(op, rd=reg(operands[0]),
                             rs1=reg(operands[1]),
                             imm=_parse_int(operands[2], line_no)))
        elif spec.fmt == FMT_I:
            need(3)
            out.append(Instr(op, rd=reg(operands[0]),
                             rs1=reg(operands[1]),
                             imm=_parse_int(operands[2], line_no)))
        elif spec.fmt == FMT_S:
            need(2)
            mem = _MEM_RE.match(operands[1])
            if not mem:
                raise AsmError(f"expected imm(reg), got {operands[1]!r}",
                               line_no)
            out.append(Instr(op, rs2=reg(operands[0]),
                             rs1=reg(mem.group(2)),
                             imm=_parse_int(mem.group(1), line_no)))
        elif spec.fmt == FMT_B:
            need(3)
            out.append(Instr(op, rs1=reg(operands[0]),
                             rs2=reg(operands[1]),
                             imm=resolve_target(operands[2])))
        elif spec.fmt == FMT_U:
            need(2)
            out.append(Instr(op, rd=reg(operands[0]),
                             imm=_parse_int(operands[1], line_no)))
        elif spec.fmt == FMT_J:
            need(2)
            out.append(Instr(op, rd=reg(operands[0]),
                             imm=resolve_target(operands[1])))
        elif spec.fmt == FMT_CSR:
            need(3)
            out.append(Instr(op, rd=reg(operands[0]),
                             imm=_parse_int(operands[1], line_no),
                             rs1=reg(operands[2])))
        elif spec.fmt == FMT_SYS:
            need(0)
            out.append(Instr(op))
        else:  # pragma: no cover
            raise AsmError(f"unhandled format for {op}", line_no)
    return out


def disassemble(instrs, base_pc: int = 0,
                symbols: Optional[Dict[str, int]] = None) -> str:
    """Render instructions as assembly text ``assemble`` accepts."""
    by_addr: Dict[int, str] = {}
    if symbols:
        for name, addr in symbols.items():
            by_addr.setdefault(addr, name)
    lines = []
    for offset, ins in enumerate(instrs):
        pc = base_pc + 4 * offset
        if pc in by_addr:
            lines.append(f"{by_addr[pc]}:")
        lines.append(f"    {ins}")
    return "\n".join(lines)
