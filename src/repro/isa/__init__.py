"""RISC-V RV64 subset ISA plus the HWST128 memory-safety extension.

The package defines:

* :mod:`repro.isa.registers` — integer register file names/indices;
* :mod:`repro.isa.csr` — control/status register map, including the
  HWST128 configuration CSRs (shadow-memory offset, metadata bit widths,
  lock-table window);
* :mod:`repro.isa.instructions` — the :class:`Instr` container and the
  spec table describing every supported mnemonic;
* :mod:`repro.isa.encoding` — 32-bit binary encode/decode for the subset.
"""

from repro.isa.instructions import (
    Instr,
    InstrSpec,
    SPEC_TABLE,
    spec_for,
    is_hwst_mnemonic,
)
from repro.isa.registers import (
    REG_COUNT,
    reg_index,
    reg_name,
    ZERO, RA, SP, GP, TP, FP,
    T0, T1, T2, T3, T4, T5, T6,
    S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11,
    A0, A1, A2, A3, A4, A5, A6, A7,
)
from repro.isa import csr

__all__ = [
    "Instr",
    "InstrSpec",
    "SPEC_TABLE",
    "spec_for",
    "is_hwst_mnemonic",
    "REG_COUNT",
    "reg_index",
    "reg_name",
    "csr",
    "ZERO", "RA", "SP", "GP", "TP", "FP",
    "T0", "T1", "T2", "T3", "T4", "T5", "T6",
    "S0", "S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10", "S11",
    "A0", "A1", "A2", "A3", "A4", "A5", "A6", "A7",
]
