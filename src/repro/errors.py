"""Exception hierarchy shared across the HWST128 reproduction.

Simulator traps (spatial/temporal violations, faults) and toolchain errors
(front-end, IR, code generation) all derive from :class:`ReproError` so a
harness can catch everything produced by this package with one handler.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


# ---------------------------------------------------------------------------
# Toolchain errors
# ---------------------------------------------------------------------------

class ToolchainError(ReproError):
    """Base class for compiler front-end / IR / codegen failures."""


class LexError(ToolchainError):
    """Invalid token in mini-C source."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class ParseError(ToolchainError):
    """Syntax error in mini-C source."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class SemanticError(ToolchainError):
    """Type error or other semantic violation in mini-C source."""


class IRError(ToolchainError):
    """Malformed IR detected by the verifier or a pass."""


class CodegenError(ToolchainError):
    """Lowering from IR to RV64 failed."""


class LinkError(ToolchainError):
    """Symbol resolution failure when building a program image."""


# ---------------------------------------------------------------------------
# Simulation traps
# ---------------------------------------------------------------------------

class SimTrap(ReproError):
    """Base class for anything that stops the simulated program."""


class SpatialViolation(SimTrap):
    """Out-of-bound pointer dereference caught by a spatial check (SCU)."""

    def __init__(self, pc: int, addr: int, base: int, bound: int):
        super().__init__(
            f"spatial violation at pc={pc:#x}: addr={addr:#x} "
            f"outside [{base:#x}, {bound:#x})"
        )
        self.pc = pc
        self.addr = addr
        self.base = base
        self.bound = bound


class TemporalViolation(SimTrap):
    """Dangling-pointer dereference caught by a temporal check (TCU)."""

    def __init__(self, pc: int, ptr_key: int, lock_key: int, lock: int):
        super().__init__(
            f"temporal violation at pc={pc:#x}: pointer key {ptr_key:#x} != "
            f"lock key {lock_key:#x} (lock={lock:#x})"
        )
        self.pc = pc
        self.ptr_key = ptr_key
        self.lock_key = lock_key
        self.lock = lock


class MemoryFault(SimTrap):
    """Access to an unmapped or misaligned address."""

    def __init__(self, addr: int, reason: str = "unmapped"):
        super().__init__(f"memory fault at {addr:#x}: {reason}")
        self.addr = addr
        self.reason = reason


class IllegalInstruction(SimTrap):
    """Unknown opcode or malformed operands reached the decoder/executor."""

    def __init__(self, pc: int, detail: str):
        super().__init__(f"illegal instruction at pc={pc:#x}: {detail}")
        self.pc = pc
        self.detail = detail


class EcallExit(SimTrap):
    """Simulated program requested exit through an environment call."""

    def __init__(self, code: int):
        super().__init__(f"program exited with code {code}")
        self.code = code


class EcallAbort(SimTrap):
    """Simulated program aborted (runtime detected a fatal condition)."""

    def __init__(self, reason: str = "abort"):
        super().__init__(reason)
        self.reason = reason


class SimLimitExceeded(SimTrap):
    """Instruction budget exhausted — runaway program guard."""

    def __init__(self, limit: int):
        super().__init__(f"instruction limit exceeded ({limit})")
        self.limit = limit


class ShadowMemoryExhausted(SimTrap):
    """Shadow memory budget exhausted (reproduces the paper's lbm OOM)."""

    def __init__(self, used: int, budget: int):
        super().__init__(
            f"shadow memory exhausted: {used} bytes used, budget {budget}"
        )
        self.used = used
        self.budget = budget


# ---------------------------------------------------------------------------
# Harness verdicts
# ---------------------------------------------------------------------------

class BenchRegression(ReproError):
    """The performance gate failed: ``repro bench --against`` found at
    least one scenario slowed past tolerance (see repro.obs.compare)."""

    def __init__(self, scenarios):
        names = ", ".join(scenarios)
        super().__init__(
            f"performance regression in {len(scenarios)} scenario(s): "
            f"{names}")
        self.scenarios = list(scenarios)


class CampaignInterrupted(ReproError):
    """A fuzz/fault campaign was stopped by SIGTERM/SIGINT after
    flushing a valid truncated report (``"interrupted": true``)."""

    def __init__(self, completed: int, requested: int):
        super().__init__(
            f"campaign interrupted after {completed}/{requested} "
            "cells; truncated report flushed")
        self.completed = completed
        self.requested = requested


class OverloadShed(ReproError):
    """``repro serve`` admission control shed load (HTTP 429) where the
    caller required completion — e.g. the smoke client saw an
    unexpected 429 on an idle server."""

    def __init__(self, detail: str = "request shed under overload"):
        super().__init__(detail)


class DrainTimeout(ReproError):
    """``repro serve`` SIGTERM drain exceeded its deadline with
    requests still in flight (they were dropped)."""

    def __init__(self, dropped: int, timeout_s: float):
        super().__init__(
            f"drain deadline ({timeout_s:g}s) exceeded with {dropped} "
            "request(s) still in flight")
        self.dropped = dropped
        self.timeout_s = timeout_s


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------
#
# ``repro run`` maps every failure class to a distinct, documented exit
# code so scripts (and the fault-injection oracle) can classify outcomes
# without parsing stderr. 0/1 keep their POSIX meaning; 2 is argparse's
# usage-error code; everything above is ours.

EXIT_OK = 0                 # program exited 0
EXIT_FAILURE = 1            # program exited non-zero / generic error
EXIT_USAGE = 2              # bad command line (argparse)
EXIT_TOOLCHAIN = 3          # ToolchainError: lex/parse/sema/IR/codegen/link
EXIT_SPATIAL = 4            # SpatialViolation trap (out-of-bounds)
EXIT_TEMPORAL = 5           # TemporalViolation trap (dangling pointer)
EXIT_MEMFAULT = 6           # MemoryFault (unmapped access, "SIGSEGV")
EXIT_SIMLIMIT = 7           # SimLimitExceeded (instruction budget)
EXIT_ABORT = 8              # EcallAbort (runtime abort / ASAN / canary)
EXIT_ILLEGAL = 9            # IllegalInstruction
EXIT_SHADOW_OOM = 10        # ShadowMemoryExhausted
EXIT_BENCH_REGRESSION = 11  # BenchRegression (repro bench --against)
EXIT_INTERRUPTED = 12       # CampaignInterrupted (SIGTERM/SIGINT flush)
EXIT_OVERLOAD_SHED = 13     # OverloadShed (serve 429 where completion
#                             was required, e.g. the smoke client)
EXIT_DRAIN_TIMEOUT = 14     # DrainTimeout (serve SIGTERM drain missed
#                             its deadline; in-flight requests dropped)
EXIT_SPEC_DIVERGENCE = 15   # repro conform found the executable spec
#                             and an ISS engine disagreeing

#: Exception class -> CLI exit code. Looked up through the MRO so a
#: subclass of (say) SpatialViolation inherits its code.
EXIT_CODE_BY_ERROR = {
    ToolchainError: EXIT_TOOLCHAIN,
    SpatialViolation: EXIT_SPATIAL,
    TemporalViolation: EXIT_TEMPORAL,
    MemoryFault: EXIT_MEMFAULT,
    SimLimitExceeded: EXIT_SIMLIMIT,
    EcallAbort: EXIT_ABORT,
    IllegalInstruction: EXIT_ILLEGAL,
    ShadowMemoryExhausted: EXIT_SHADOW_OOM,
    BenchRegression: EXIT_BENCH_REGRESSION,
    CampaignInterrupted: EXIT_INTERRUPTED,
    OverloadShed: EXIT_OVERLOAD_SHED,
    DrainTimeout: EXIT_DRAIN_TIMEOUT,
}

#: ``RunResult.status`` -> CLI exit code (the trap classes above after
#: the machine has converted them into statuses).
EXIT_CODE_BY_STATUS = {
    "spatial_violation": EXIT_SPATIAL,
    "temporal_violation": EXIT_TEMPORAL,
    "memory_fault": EXIT_MEMFAULT,
    "limit": EXIT_SIMLIMIT,
    "abort": EXIT_ABORT,
    "illegal_instruction": EXIT_ILLEGAL,
    "shadow_oom": EXIT_SHADOW_OOM,
}


def exit_code_for(error: BaseException) -> int:
    """Distinct CLI exit code for a :class:`ReproError` instance."""
    for cls in type(error).__mro__:
        code = EXIT_CODE_BY_ERROR.get(cls)
        if code is not None:
            return code
    return EXIT_FAILURE


def exit_code_for_status(status: str, exit_code: int = 0) -> int:
    """Documented CLI exit code for a ``RunResult``-shaped outcome —
    the single mapping shared by ``repro run`` and the ``repro serve``
    verdict envelopes (which must agree byte-for-byte with the offline
    CLI)."""
    if status == "exit":
        return EXIT_OK if exit_code == 0 else EXIT_FAILURE
    return EXIT_CODE_BY_STATUS.get(status, EXIT_FAILURE)
