"""MiBench-class embedded kernels (Fig. 4 left group).

Nine kernels mirroring the MiBench programs the paper runs: string
search, CRC32, bitcount, dijkstra, SHA, basicmath, FFT, ADPCM and
SUSAN. Fixed-point arithmetic substitutes for floating point (see
DESIGN.md); inputs are generated with the deterministic runtime PRNG so
every scheme executes the identical computation.
"""

from repro.workloads.base import Workload, register

register(Workload(
    name="stringsearch",
    group="mibench",
    description="Boyer-Moore-Horspool search over generated text",
    params={"TEXT": 640, "ROUNDS": 2},
    small_params={"TEXT": 256, "ROUNDS": 2},
    source_template=r"""
int bmh_search(char *text, long n, char *pat, long m) {
    long skip[256];
    long i;
    long k;
    int hits = 0;
    for (i = 0; i < 256; i++) { skip[i] = m; }
    for (i = 0; i < m - 1; i++) { skip[(int)(unsigned char)pat[i]] = m - 1 - i; }
    k = m - 1;
    while (k < n) {
        long j = m - 1;
        long t = k;
        while (j >= 0 && text[t] == pat[j]) { t--; j--; }
        if (j < 0) { hits++; }
        k = k + skip[(int)(unsigned char)text[k]];
    }
    return hits;
}

int main(void) {
    long n = @TEXT@;
    char *text = (char*)malloc(n + 1);
    char *pat = (char*)malloc(8);
    long i;
    int r;
    int total = 0;
    rand_seed(42);
    for (i = 0; i < n; i++) {
        text[i] = (char)('a' + rand_next() % 4);
    }
    text[n] = 0;
    strcpy(pat, "abab");
    for (r = 0; r < @ROUNDS@; r++) {
        total += bmh_search(text, n, pat, 4);
    }
    free(pat);
    free(text);
    return total > 0 ? 0 : 1;
}
"""))

register(Workload(
    name="CRC32",
    group="mibench",
    description="table-driven CRC-32 over a heap buffer",
    params={"BYTES": 768, "ROUNDS": 2},
    small_params={"BYTES": 512, "ROUNDS": 1},
    source_template=r"""
unsigned int crc_table[256];

void crc_init(void) {
    unsigned int c;
    int n;
    int k;
    for (n = 0; n < 256; n++) {
        c = (unsigned int)n;
        for (k = 0; k < 8; k++) {
            if (c & 1) { c = 0xEDB88320 ^ (c >> 1); }
            else { c = c >> 1; }
        }
        crc_table[n] = c;
    }
}

unsigned int crc32(unsigned char *buf, long len) {
    unsigned int c = 0xFFFFFFFF;
    long i;
    for (i = 0; i < len; i++) {
        c = crc_table[(int)((c ^ buf[i]) & 0xFF)] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFF;
}

int main(void) {
    long n = @BYTES@;
    unsigned char *buf = (unsigned char*)malloc(n);
    long i;
    int r;
    unsigned int sum = 0;
    rand_seed(7);
    crc_init();
    for (i = 0; i < n; i++) { buf[i] = (unsigned char)(rand_next() & 0xFF); }
    for (r = 0; r < @ROUNDS@; r++) { buf[r] = (unsigned char)(buf[r] + 1); sum = sum * 31 + crc32(buf, n); }
    free(buf);
    return sum != 0 ? 0 : 1;
}
"""))

register(Workload(
    name="bitcounts",
    group="mibench",
    description="four bit-counting strategies over random words",
    params={"WORDS": 60},
    small_params={"WORDS": 25},
    source_template=r"""
int count_shift(unsigned long x) {
    int n = 0;
    while (x) { n += (int)(x & 1); x = x >> 1; }
    return n;
}

int count_kernighan(unsigned long x) {
    int n = 0;
    while (x) { x = x & (x - 1); n++; }
    return n;
}

int nibble_table[16] = {0,1,1,2,1,2,2,3,1,2,2,3,2,3,3,4};

int count_nibbles(unsigned long x) {
    int n = 0;
    while (x) { n += nibble_table[(int)(x & 15)]; x = x >> 4; }
    return n;
}

int count_bytes(unsigned long x) {
    int n = 0;
    while (x) {
        n += nibble_table[(int)(x & 15)] + nibble_table[(int)((x >> 4) & 15)];
        x = x >> 8;
    }
    return n;
}

int main(void) {
    long words = @WORDS@;
    long i;
    long a = 0;
    long b = 0;
    long c = 0;
    long d = 0;
    rand_seed(99);
    for (i = 0; i < words; i++) {
        unsigned long x = (unsigned long)rand_next();
        a += count_shift(x);
        b += count_kernighan(x);
        c += count_nibbles(x);
        d += count_bytes(x);
    }
    if (a != b) { return 1; }
    if (b != c) { return 2; }
    if (c != d) { return 3; }
    return 0;
}
"""))

register(Workload(
    name="dijkstra",
    group="mibench",
    description="single-source shortest paths, adjacency matrix on heap",
    params={"NODES": 24},
    small_params={"NODES": 10},
    source_template=r"""
enum { INF = 1000000000 };

int main(void) {
    int n = @NODES@;
    long *adj = (long*)malloc((long)n * n * sizeof(long));
    long *dist = (long*)malloc((long)n * sizeof(long));
    int *seen = (int*)malloc((long)n * sizeof(int));
    int i;
    int j;
    int round;
    long total = 0;
    rand_seed(1234);
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            if (i == j) { adj[(long)i * n + j] = 0; }
            else { adj[(long)i * n + j] = 1 + rand_next() % 100; }
        }
    }
    for (round = 0; round < 2; round++) {
        for (i = 0; i < n; i++) { dist[i] = INF; seen[i] = 0; }
        dist[round] = 0;
        for (i = 0; i < n; i++) {
            int best = -1;
            long bestd = INF + 1;
            for (j = 0; j < n; j++) {
                if (!seen[j] && dist[j] < bestd) { bestd = dist[j]; best = j; }
            }
            if (best < 0) { break; }
            seen[best] = 1;
            for (j = 0; j < n; j++) {
                long via = dist[best] + adj[(long)best * n + j];
                if (via < dist[j]) { dist[j] = via; }
            }
        }
        for (j = 0; j < n; j++) { total += dist[j]; }
    }
    free(seen);
    free(dist);
    free(adj);
    return total > 0 ? 0 : 1;
}
"""))

register(Workload(
    name="sha",
    group="mibench",
    description="SHA-1 rounds over a generated message",
    params={"BLOCKS": 3},
    small_params={"BLOCKS": 2},
    source_template=r"""
unsigned int rotl(unsigned int x, int s) {
    return (x << s) | (x >> (32 - s));
}

void sha1_block(unsigned int *h, unsigned int *w) {
    unsigned int a = h[0];
    unsigned int b = h[1];
    unsigned int c = h[2];
    unsigned int d = h[3];
    unsigned int e = h[4];
    unsigned int f;
    unsigned int k;
    unsigned int temp;
    int t;
    for (t = 16; t < 80; t++) {
        w[t] = rotl(w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16], 1);
    }
    for (t = 0; t < 80; t++) {
        if (t < 20) { f = (b & c) | ((~b) & d); k = 0x5A827999; }
        else if (t < 40) { f = b ^ c ^ d; k = 0x6ED9EBA1; }
        else if (t < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8F1BBCDC; }
        else { f = b ^ c ^ d; k = 0xCA62C1D6; }
        temp = rotl(a, 5) + f + e + k + w[t];
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
}

int main(void) {
    unsigned int h[5];
    unsigned int *w = (unsigned int*)malloc(80 * sizeof(int));
    int blk;
    int i;
    h[0] = 0x67452301; h[1] = 0xEFCDAB89; h[2] = 0x98BADCFE;
    h[3] = 0x10325476; h[4] = 0xC3D2E1F0;
    rand_seed(5);
    for (blk = 0; blk < @BLOCKS@; blk++) {
        for (i = 0; i < 16; i++) { w[i] = (unsigned int)rand_next(); }
        sha1_block(h, w);
    }
    free(w);
    return (h[0] | h[1] | h[2] | h[3] | h[4]) != 0 ? 0 : 1;
}
"""))

register(Workload(
    name="math",
    group="mibench",
    description="basicmath: integer sqrt/cbrt, angle conversion (Q16.16)",
    params={"VALUES": 200},
    small_params={"VALUES": 100},
    source_template=r"""
long isqrt(long x) {
    long r = x;
    long last = 0;
    if (x <= 0) { return 0; }
    if (r > 65536) { r = 65536; }
    while (r != last) {
        last = r;
        r = (r + x / r) / 2;
    }
    return r;
}

long icbrt(long x) {
    long r = 1;
    while (r * r * r <= x) { r++; }
    return r - 1;
}

long deg_to_rad_q16(long deg) {
    /* pi/180 in Q16.16 = 1144 */
    return deg * 1144;
}

int main(void) {
    long i;
    long acc = 0;
    long *values = (long*)malloc(@VALUES@ * sizeof(long));
    long *roots = (long*)malloc(@VALUES@ * sizeof(long));
    rand_seed(11);
    for (i = 0; i < @VALUES@; i++) {
        values[i] = 1 + rand_next() % 100000;
    }
    for (i = 0; i < @VALUES@; i++) {
        long v = values[i];
        long s = isqrt(v);
        if (s * s > v) { return 1; }
        if ((s + 1) * (s + 1) <= v) { return 2; }
        roots[i] = s;
        if (i % 16 == 0) { roots[i] += icbrt(v % 4096); }
        roots[i] += deg_to_rad_q16(v % 360) >> 16;
    }
    for (i = 0; i < @VALUES@; i++) { acc += roots[i]; }
    free(roots);
    free(values);
    return acc > 0 ? 0 : 3;
}
"""))

register(Workload(
    name="FFT",
    group="mibench",
    description="radix-2 fixed-point FFT (Q16.16) + inverse check",
    params={"N": 64},
    small_params={"N": 16},
    source_template=r"""
enum { FBITS = 16 };
long SIN_TAB[64];
long COS_TAB[64];

long fmul(long a, long b) {
    return (a * b) >> FBITS;
}

void build_tables(int n) {
    /* quarter-wave integer sine via Bhaskara approximation (Q16.16) */
    int i;
    for (i = 0; i < n; i++) {
        long deg = (long)i * 360 / n;
        long d = deg;
        long sign = 1;
        long s;
        if (d >= 180) { d -= 180; sign = -1; }
        s = 4 * d * (180 - d);
        s = (s << FBITS) / (40500 - d * (180 - d));
        SIN_TAB[i] = sign * s;
        deg = deg + 90;
        if (deg >= 360) { deg -= 360; }
        d = deg;
        sign = 1;
        if (d >= 180) { d -= 180; sign = -1; }
        s = 4 * d * (180 - d);
        s = (s << FBITS) / (40500 - d * (180 - d));
        COS_TAB[i] = sign * s;
    }
}

void fft(long *re, long *im, int n, int inverse) {
    int i;
    int j;
    int len;
    /* bit reversal permutation */
    j = 0;
    for (i = 1; i < n; i++) {
        int bit = n >> 1;
        while (j & bit) { j = j ^ bit; bit = bit >> 1; }
        j = j | bit;
        if (i < j) {
            long t = re[i]; re[i] = re[j]; re[j] = t;
            t = im[i]; im[i] = im[j]; im[j] = t;
        }
    }
    for (len = 2; len <= n; len = len << 1) {
        int step = n / len;
        for (i = 0; i < n; i += len) {
            int k;
            for (k = 0; k < len / 2; k++) {
                int idx = k * step;
                long wr = COS_TAB[idx];
                long wi = inverse ? SIN_TAB[idx] : -SIN_TAB[idx];
                long ur = re[i + k];
                long ui = im[i + k];
                long vr = fmul(re[i + k + len / 2], wr) - fmul(im[i + k + len / 2], wi);
                long vi = fmul(re[i + k + len / 2], wi) + fmul(im[i + k + len / 2], wr);
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
            }
        }
    }
    if (inverse) {
        for (i = 0; i < n; i++) { re[i] = re[i] / n; im[i] = im[i] / n; }
    }
}

int main(void) {
    int n = @N@;
    long *re = (long*)malloc(n * sizeof(long));
    long *im = (long*)malloc(n * sizeof(long));
    long *orig = (long*)malloc(n * sizeof(long));
    int i;
    long err = 0;
    build_tables(n);
    rand_seed(3);
    for (i = 0; i < n; i++) {
        re[i] = (rand_next() % 256) << FBITS;
        im[i] = 0;
        orig[i] = re[i];
    }
    fft(re, im, n, 0);
    fft(re, im, n, 1);
    for (i = 0; i < n; i++) {
        long d = re[i] - orig[i];
        if (d < 0) { d = -d; }
        if (d > err) { err = d; }
    }
    free(orig);
    free(im);
    free(re);
    /* allow ~6% fixed-point round-trip error */
    return err < (16 << FBITS) ? 0 : 1;
}
"""))

register(Workload(
    name="adpcm",
    group="mibench",
    description="IMA ADPCM encode of synthetic PCM samples",
    params={"SAMPLES": 600},
    small_params={"SAMPLES": 300},
    source_template=r"""
int step_table[16] = {7, 8, 9, 10, 11, 12, 13, 14,
                      16, 17, 19, 21, 23, 25, 28, 31};
int index_adjust[8] = {-1, -1, -1, -1, 2, 4, 6, 8};

int main(void) {
    long n = @SAMPLES@;
    short *pcm = (short*)malloc(n * sizeof(short));
    char *out = (char*)malloc(n);
    long i;
    int predicted = 0;
    int index = 0;
    long checksum = 0;
    rand_seed(21);
    for (i = 0; i < n; i++) {
        pcm[i] = (short)((rand_next() % 2048) - 1024);
    }
    for (i = 0; i < n; i++) {
        int step = step_table[index];
        int diff = (int)pcm[i] - predicted;
        int code = 0;
        if (diff < 0) { code = 8; diff = -diff; }
        if (diff >= step) { code |= 4; diff -= step; }
        if (diff >= step / 2) { code |= 2; diff -= step / 2; }
        if (diff >= step / 4) { code |= 1; }
        out[i] = (char)code;
        predicted += (code & 8) ? -((code & 7) * step / 4) : ((code & 7) * step / 4);
        index += index_adjust[code & 7];
        if (index < 0) { index = 0; }
        if (index > 15) { index = 15; }
        checksum += code;
    }
    free(out);
    free(pcm);
    return checksum > 0 ? 0 : 1;
}
"""))

register(Workload(
    name="susan",
    group="mibench",
    description="SUSAN-style image smoothing over a synthetic image",
    params={"W": 16, "H": 12},
    small_params={"W": 12, "H": 10},
    source_template=r"""
int main(void) {
    int w = @W@;
    int h = @H@;
    unsigned char *img = (unsigned char*)malloc((long)w * h);
    unsigned char *out = (unsigned char*)malloc((long)w * h);
    int x;
    int y;
    long total = 0;
    rand_seed(77);
    for (y = 0; y < h; y++) {
        for (x = 0; x < w; x++) {
            img[(long)y * w + x] = (unsigned char)(rand_next() % 256);
        }
    }
    for (y = 1; y < h - 1; y++) {
        for (x = 1; x < w - 1; x++) {
            int center = (int)img[(long)y * w + x];
            long num = 0;
            long den = 0;
            int dy;
            for (dy = -1; dy <= 1; dy++) {
                int dx;
                for (dx = -1; dx <= 1; dx++) {
                    int v = (int)img[(long)(y + dy) * w + (x + dx)];
                    int d = v - center;
                    int sim;
                    if (d < 0) { d = -d; }
                    sim = 256 - d;         /* brightness similarity */
                    num += (long)v * sim;
                    den += sim;
                }
            }
            out[(long)y * w + x] = (unsigned char)(num / den);
            total += out[(long)y * w + x];
        }
    }
    free(out);
    free(img);
    return total > 0 ? 0 : 1;
}
"""))
