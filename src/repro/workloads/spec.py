"""SPEC CPU2006-class kernels (Fig. 4/5 right group).

Seven kernels standing in for the SPEC programs the paper evaluates:
milc, lbm, sphinx3, sjeng, gobmk, bzip2 and hmmer. Floating-point
programs (milc/lbm/sphinx3) use fixed-point arithmetic with the same
array/stencil access patterns; bzip2 and hmmer are written with the
per-block/per-sequence allocate-free churn that makes their temporal
checking expensive (the paper singles them out in Section 5.1: CETS
instrumentation hits them hardest, so the keybuffer speedup is largest).
"""

from repro.workloads.base import Workload, register

register(Workload(
    name="milc",
    group="spec",
    description="su3-like 3x3 fixed-point matrix products over a lattice",
    params={"SITES": 24, "ITERS": 2},
    small_params={"SITES": 16, "ITERS": 1},
    source_template=r"""
enum { FB = 12 };

void mat_mul(long *a, long *b, long *c) {
    int i;
    int j;
    int k;
    for (i = 0; i < 3; i++) {
        for (j = 0; j < 3; j++) {
            long acc = 0;
            for (k = 0; k < 3; k++) {
                acc += (a[i * 3 + k] * b[k * 3 + j]) >> FB;
            }
            c[i * 3 + j] = acc;
        }
    }
}

int main(void) {
    int sites = @SITES@;
    long *lattice = (long*)malloc((long)sites * 9 * sizeof(long));
    long *gauge = (long*)malloc((long)sites * 9 * sizeof(long));
    long *tmp = (long*)malloc(9 * sizeof(long));
    int s;
    int e;
    int it;
    long checksum = 0;
    rand_seed(61);
    for (s = 0; s < sites * 9; s++) {
        lattice[s] = (rand_next() % 4096) - 2048;
        gauge[s] = (rand_next() % 4096) - 2048;
    }
    for (it = 0; it < @ITERS@; it++) {
        for (s = 0; s < sites; s++) {
            int nbr = (s + 1) % sites;
            mat_mul(lattice + (long)s * 9, gauge + (long)nbr * 9, tmp);
            for (e = 0; e < 9; e++) {
                lattice[(long)s * 9 + e] = (lattice[(long)s * 9 + e] + tmp[e]) / 2;
            }
        }
    }
    for (s = 0; s < sites * 9; s++) { checksum += lattice[s]; }
    free(tmp);
    free(gauge);
    free(lattice);
    return (checksum < 100000000 && checksum > -100000000) ? 0 : 1;
}
"""))

register(Workload(
    name="lbm",
    group="spec",
    description="lattice-Boltzmann-style 5-point stencil relaxation",
    params={"W": 20, "H": 14, "STEPS": 3},
    small_params={"W": 10, "H": 8, "STEPS": 2},
    source_template=r"""
int main(void) {
    int w = @W@;
    int h = @H@;
    long *grid = (long*)malloc((long)w * h * sizeof(long));
    long *next = (long*)malloc((long)w * h * sizeof(long));
    int x;
    int y;
    int t;
    long total = 0;
    rand_seed(13);
    for (y = 0; y < h; y++) {
        for (x = 0; x < w; x++) {
            grid[(long)y * w + x] = rand_next() % 10000;
        }
    }
    for (t = 0; t < @STEPS@; t++) {
        for (y = 1; y < h - 1; y++) {
            for (x = 1; x < w - 1; x++) {
                long c = grid[(long)y * w + x];
                long n = grid[(long)(y - 1) * w + x];
                long s = grid[(long)(y + 1) * w + x];
                long e = grid[(long)y * w + (x + 1)];
                long o = grid[(long)y * w + (x - 1)];
                next[(long)y * w + x] = c + ((n + s + e + o - 4 * c) >> 2);
            }
        }
        for (y = 1; y < h - 1; y++) {
            for (x = 1; x < w - 1; x++) {
                grid[(long)y * w + x] = next[(long)y * w + x];
            }
        }
    }
    for (y = 0; y < h; y++) {
        for (x = 0; x < w; x++) { total += grid[(long)y * w + x]; }
    }
    free(next);
    free(grid);
    return total > 0 ? 0 : 1;
}
"""))

register(Workload(
    name="sphinx3",
    group="spec",
    description="gaussian-mixture scoring of feature frames (fixed point)",
    params={"FRAMES": 14, "MIXES": 8, "DIM": 13},
    small_params={"FRAMES": 6, "MIXES": 4, "DIM": 8},
    source_template=r"""
enum { FB = 10 };

long score_frame(long *feat, long *means, long *vars, int mixes, int dim) {
    long best = -1000000000;
    int m;
    for (m = 0; m < mixes; m++) {
        long acc = 0;
        int d;
        for (d = 0; d < dim; d++) {
            long diff = feat[d] - means[m * dim + d];
            acc -= (diff * diff) >> FB;
            acc += vars[m * dim + d];
        }
        if (acc > best) { best = acc; }
    }
    return best;
}

int main(void) {
    int frames = @FRAMES@;
    int mixes = @MIXES@;
    int dim = @DIM@;
    long *means = (long*)malloc((long)mixes * dim * sizeof(long));
    long *vars = (long*)malloc((long)mixes * dim * sizeof(long));
    int f;
    int i;
    long total = 0;
    rand_seed(2001);
    for (i = 0; i < mixes * dim; i++) {
        means[i] = (rand_next() % 2048) - 1024;
        vars[i] = rand_next() % 64;
    }
    /* per-frame feature vectors are allocated and freed, like the
       per-utterance buffers in sphinx3 */
    for (f = 0; f < frames; f++) {
        long *feat = (long*)malloc((long)dim * sizeof(long));
        for (i = 0; i < dim; i++) { feat[i] = (rand_next() % 2048) - 1024; }
        total += score_frame(feat, means, vars, mixes, dim);
        free(feat);
    }
    free(vars);
    free(means);
    return total != 0 ? 0 : 1;
}
"""))

register(Workload(
    name="sjeng",
    group="spec",
    description="alpha-beta minimax over a 3x3 game tree",
    params={"GAMES": 2, "PRE": 4, "MAXD": 9},
    small_params={"GAMES": 1, "PRE": 5, "MAXD": 8},
    source_template=r"""
int winner(int *board) {
    int lines[24] = {0,1,2, 3,4,5, 6,7,8, 0,3,6, 1,4,7, 2,5,8, 0,4,8, 2,4,6};
    int i;
    for (i = 0; i < 8; i++) {
        int a = lines[i * 3];
        int b = lines[i * 3 + 1];
        int c = lines[i * 3 + 2];
        if (board[a] != 0 && board[a] == board[b] && board[b] == board[c]) {
            return board[a];
        }
    }
    return 0;
}

int minimax(int *board, int player, int depth, int alpha, int beta) {
    int w = winner(board);
    int i;
    int moved = 0;
    if (w != 0) { return w * (10 - depth); }
    if (depth >= @MAXD@) { return 0; }
    for (i = 0; i < 9; i++) {
        if (board[i] == 0) {
            int score;
            moved = 1;
            board[i] = player;
            score = minimax(board, -player, depth + 1, alpha, beta);
            board[i] = 0;
            if (player == 1) {
                if (score > alpha) { alpha = score; }
                if (alpha >= beta) { return alpha; }
            } else {
                if (score < beta) { beta = score; }
                if (beta <= alpha) { return beta; }
            }
        }
    }
    if (!moved) { return 0; }
    return player == 1 ? alpha : beta;
}

int main(void) {
    int g;
    long total = 0;
    rand_seed(8);
    for (g = 0; g < @GAMES@; g++) {
        int *board = (int*)malloc(9 * sizeof(int));
        int i;
        for (i = 0; i < 9; i++) { board[i] = 0; }
        for (i = 0; i < @PRE@; i++) {
            board[rand_next() % 9] = (i & 1) ? -1 : 1;
        }
        total += minimax(board, -1, @PRE@, -1000, 1000);
        free(board);
    }
    return (total > -100 && total < 100) ? 0 : 1;
}
"""))

register(Workload(
    name="gobmk",
    group="spec",
    description="go-board liberty counting by flood fill",
    params={"SIZE": 9, "STONES": 30, "ROUNDS": 2},
    small_params={"SIZE": 5, "STONES": 8, "ROUNDS": 1},
    source_template=r"""
int flood(int *board, int *mark, int size, int x, int y, int colour) {
    /* returns the number of liberties of the group at (x,y) */
    int libs = 0;
    int *stack_x = (int*)malloc((long)size * size * sizeof(int));
    int *stack_y = (int*)malloc((long)size * size * sizeof(int));
    int top = 0;
    stack_x[top] = x;
    stack_y[top] = y;
    top = 1;
    mark[y * size + x] = 1;
    while (top > 0) {
        int cx;
        int cy;
        int d;
        int dxs[4] = {1, -1, 0, 0};
        int dys[4] = {0, 0, 1, -1};
        top = top - 1;
        cx = stack_x[top];
        cy = stack_y[top];
        for (d = 0; d < 4; d++) {
            int nx = cx + dxs[d];
            int ny = cy + dys[d];
            if (nx < 0 || nx >= size || ny < 0 || ny >= size) { continue; }
            if (mark[ny * size + nx]) { continue; }
            if (board[ny * size + nx] == 0) {
                mark[ny * size + nx] = 1;
                libs++;
            } else if (board[ny * size + nx] == colour) {
                mark[ny * size + nx] = 1;
                stack_x[top] = nx;
                stack_y[top] = ny;
                top = top + 1;
            }
        }
    }
    free(stack_y);
    free(stack_x);
    return libs;
}

int main(void) {
    int size = @SIZE@;
    int *board = (int*)malloc((long)size * size * sizeof(int));
    int *mark = (int*)malloc((long)size * size * sizeof(int));
    int i;
    int r;
    long total = 0;
    rand_seed(360);
    for (i = 0; i < size * size; i++) { board[i] = 0; }
    for (i = 0; i < @STONES@; i++) {
        board[rand_next() % (size * size)] = (i & 1) ? 1 : 2;
    }
    for (r = 0; r < @ROUNDS@; r++) {
        int x;
        int y;
        for (i = 0; i < size * size; i++) { mark[i] = 0; }
        for (y = 0; y < size; y++) {
            for (x = 0; x < size; x++) {
                if (board[y * size + x] != 0 && !mark[y * size + x]) {
                    total += flood(board, mark, size, x, y,
                                   board[y * size + x]);
                }
            }
        }
    }
    free(mark);
    free(board);
    return total > 0 ? 0 : 1;
}
"""))

register(Workload(
    name="bzip2",
    group="spec",
    description="block compression: BWT + MTF + RLE with per-block heap churn",
    params={"BLOCK": 40, "BLOCKS": 3},
    small_params={"BLOCK": 32, "BLOCKS": 2},
    source_template=r"""
/* suffix comparison for the Burrows-Wheeler transform */
int suf_cmp(unsigned char *buf, int n, int a, int b) {
    int i;
    for (i = 0; i < n; i++) {
        int ca = (int)buf[(a + i) % n];
        int cb = (int)buf[(b + i) % n];
        if (ca != cb) { return ca - cb; }
    }
    return 0;
}

long compress_block(unsigned char *data, int n) {
    int *order = (int*)malloc((long)n * sizeof(int));
    unsigned char *bwt = (unsigned char*)malloc(n);
    unsigned char *mtf = (unsigned char*)malloc(n);
    int *alphabet = (int*)malloc(256 * sizeof(int));
    int i;
    int j;
    long out = 0;
    int run;
    for (i = 0; i < n; i++) { order[i] = i; }
    /* insertion sort of the rotations (bzip2 uses a fancier sort) */
    for (i = 1; i < n; i++) {
        int key = order[i];
        j = i - 1;
        while (j >= 0 && suf_cmp(data, n, order[j], key) > 0) {
            order[j + 1] = order[j];
            j = j - 1;
        }
        order[j + 1] = key;
    }
    for (i = 0; i < n; i++) {
        bwt[i] = data[(order[i] + n - 1) % n];
    }
    /* move-to-front */
    for (i = 0; i < 256; i++) { alphabet[i] = i; }
    for (i = 0; i < n; i++) {
        int c = (int)bwt[i];
        int pos = 0;
        while (alphabet[pos] != c) { pos++; }
        mtf[i] = (unsigned char)pos;
        while (pos > 0) { alphabet[pos] = alphabet[pos - 1]; pos--; }
        alphabet[0] = c;
    }
    /* run-length accumulate */
    run = 0;
    for (i = 0; i < n; i++) {
        if (mtf[i] == 0) { run++; }
        else {
            out += run > 0 ? 2 : 0;
            out += 1 + (mtf[i] > 15 ? 1 : 0);
            run = 0;
        }
    }
    free(alphabet);
    free(mtf);
    free(bwt);
    free(order);
    return out;
}

int main(void) {
    int blocks = @BLOCKS@;
    int n = @BLOCK@;
    long total = 0;
    int b;
    rand_seed(929);
    for (b = 0; b < blocks; b++) {
        unsigned char *data = (unsigned char*)malloc(n);
        int i;
        for (i = 0; i < n; i++) {
            data[i] = (unsigned char)('a' + rand_next() % 6);
        }
        total += compress_block(data, n);
        free(data);
    }
    return total > 0 ? 0 : 1;
}
"""))

register(Workload(
    name="hmmer",
    group="spec",
    description="profile-HMM Viterbi with per-sequence heap churn",
    params={"STATES": 16, "SEQLEN": 16, "SEQS": 3},
    small_params={"STATES": 8, "SEQLEN": 8, "SEQS": 2},
    source_template=r"""
enum { NEG = -100000000 };

long viterbi(int *seq, int len, long *match_emit, long *trans, int states) {
    long *prev = (long*)malloc((long)states * sizeof(long));
    long *cur = (long*)malloc((long)states * sizeof(long));
    int i;
    int s;
    long best;
    for (s = 0; s < states; s++) {
        prev[s] = (s == 0) ? 0 : NEG;
    }
    for (i = 0; i < len; i++) {
        for (s = 0; s < states; s++) {
            long stay = prev[s] + trans[s * 2];
            long move = (s > 0 ? prev[s - 1] : NEG) + trans[s * 2 + 1];
            long emit = match_emit[s * 4 + seq[i]];
            cur[s] = (stay > move ? stay : move) + emit;
        }
        for (s = 0; s < states; s++) { prev[s] = cur[s]; }
    }
    best = NEG;
    for (s = 0; s < states; s++) {
        if (prev[s] > best) { best = prev[s]; }
    }
    free(cur);
    free(prev);
    return best;
}

int main(void) {
    int states = @STATES@;
    long *match_emit = (long*)malloc((long)states * 4 * sizeof(long));
    long *trans = (long*)malloc((long)states * 2 * sizeof(long));
    int i;
    int q;
    long total = 0;
    rand_seed(606);
    for (i = 0; i < states * 4; i++) { match_emit[i] = (rand_next() % 64) - 32; }
    for (i = 0; i < states * 2; i++) { trans[i] = -(long)(rand_next() % 8); }
    for (q = 0; q < @SEQS@; q++) {
        int *seq = (int*)malloc((long)@SEQLEN@ * sizeof(int));
        for (i = 0; i < @SEQLEN@; i++) { seq[i] = (int)(rand_next() % 4); }
        total += viterbi(seq, @SEQLEN@, match_emit, trans, states);
        free(seq);
    }
    free(trans);
    free(match_emit);
    return total < 0 ? 0 : (total > 0 ? 0 : 1);
}
"""))
