"""Benchmark workloads: MiBench / Olden / SPEC-like kernels + Juliet.

Every performance workload is a self-checking mini-C program (exit code
0 on success) whose algorithmic skeleton and pointer/heap behaviour
follow the benchmark it stands in for (DESIGN.md documents the
substitutions, e.g. fixed-point for floating point). ``WORKLOADS`` maps
name -> :class:`Workload`; groups are ``mibench``, ``olden``, ``spec``.
"""

from repro.workloads.base import Workload, WORKLOADS, register, by_group
from repro.workloads import mibench, olden, spec  # noqa: F401 (registration)

SPEC_FIG5 = ("milc", "lbm", "sphinx3", "sjeng", "gobmk", "bzip2", "hmmer")

__all__ = ["Workload", "WORKLOADS", "register", "by_group", "SPEC_FIG5"]
