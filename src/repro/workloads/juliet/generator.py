"""Juliet-style case generation.

Each subtype is a template producing a (bad, good) mini-C program pair
parameterised by deterministic per-case values (buffer sizes, overflow
distances) and wrapped in one of five Juliet-style flow variants. The
``expected`` field records which tool families detect the bad variant
*by construction* — the property tests verify the executed behaviour
matches, and the Fig. 6 bench measures coverage by execution alone.

Tool families: ``pointer`` (SBCETS and both HWST128 variants — they
differ only on the ``odd_off_by_one`` subtype, flagged separately),
``asan``, ``gcc``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

SPATIAL_CWES = (121, 122, 124, 126, 127)
TEMPORAL_CWES = (415, 416, 476, 690, 761)

# (subtype, count) per CWE — proportions chosen so the per-tool corpus
# coverage lands at the paper's Fig. 6 percentages (see DESIGN.md).
CWE_PLAN: Dict[int, List[Tuple[str, int]]] = {
    121: [("loop_to_canary", 937), ("inter_object", 401),
          ("far_write", 70), ("intra_struct", 1100)],
    122: [("heap_loop", 800), ("memcpy_overflow", 300),
          ("odd_off_by_one", 72), ("heap_far", 80),
          ("heap_intra", 704)],
    124: [("heap_under", 500), ("heap_far_under", 30),
          ("intra_under", 398)],
    126: [("heap_overread", 350), ("heap_far_read", 18),
          ("intra_read", 314)],
    127: [("heap_under_read", 527), ("heap_far_under_read", 18),
          ("intra_under_read", 455)],
    415: [("double_free", 190)],
    416: [("uaf_fresh", 362), ("uaf_evicted", 30)],
    476: [("null_deref", 290)],
    690: [("null_return_offset", 290)],
    761: [("free_offset", 130)],
}


def total_cases() -> int:
    return sum(count for plan in CWE_PLAN.values()
               for _, count in plan)


def corpus_counts() -> Dict[str, int]:
    spatial = sum(c for cwe in SPATIAL_CWES
                  for _, c in CWE_PLAN[cwe])
    temporal = sum(c for cwe in TEMPORAL_CWES
                   for _, c in CWE_PLAN[cwe])
    return {"spatial": spatial, "temporal": temporal,
            "total": spatial + temporal}


@dataclass(frozen=True)
class JulietCase:
    """One generated case: a bad/good program pair."""

    case_id: str
    cwe: int
    subtype: str
    flow: int
    bad_source: str
    good_source: str
    # Which tool families detect the bad variant by construction.
    expected: Dict[str, bool] = field(default_factory=dict)

    @property
    def temporal(self) -> bool:
        return self.cwe in TEMPORAL_CWES


# ---------------------------------------------------------------------------
# Flow variants (Juliet control/data-flow wrappers)
# ---------------------------------------------------------------------------

def _wrap_flow(flow: int, prelude: str, body: str) -> str:
    """Wrap the scenario ``body`` in a Juliet-style flow variant."""
    if flow == 1:       # straight-line
        inner = body
        return f"{prelude}\nint main(void) {{\n{inner}\n    return 0;\n}}\n"
    if flow == 2:       # if(1)
        return (f"{prelude}\nint main(void) {{\n    if (1) {{\n{body}\n"
                f"    }}\n    return 0;\n}}\n")
    if flow == 3:       # global flag
        return (f"{prelude}\nint __flag5 = 5;\nint main(void) {{\n"
                f"    if (__flag5 == 5) {{\n{body}\n    }}\n"
                f"    return 0;\n}}\n")
    if flow == 4:       # while(1) { ...; break; }
        return (f"{prelude}\nint main(void) {{\n    while (1) {{\n{body}\n"
                f"        break;\n    }}\n    return 0;\n}}\n")
    if flow == 5:       # scenario in a helper function
        return (f"{prelude}\nvoid do_case(void) {{\n{body}\n}}\n"
                f"int main(void) {{\n    do_case();\n    return 0;\n}}\n")
    if flow == 6:       # single-iteration for loop reaches the sink
        return (f"{prelude}\nint main(void) {{\n    int __once;\n"
                f"    for (__once = 0; __once < 1; __once++) {{\n{body}\n"
                f"    }}\n    return 0;\n}}\n")
    if flow == 7:       # opaque predicate (always true at runtime)
        return (f"{prelude}\nint __opaque(void) {{ return 5 * 5 == 25; }}\n"
                f"int main(void) {{\n    if (__opaque()) {{\n{body}\n"
                f"    }}\n    return 0;\n}}\n")
    raise ValueError(f"unknown flow variant {flow}")


FLOW_VARIANTS = (1, 2, 3, 4, 5, 6, 7)


# ---------------------------------------------------------------------------
# Subtype templates: each returns (prelude, bad_body, good_body, expected)
# ---------------------------------------------------------------------------

def _t_loop_to_canary(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((4, 6, 8, 10, 12))
    body = (
        "    long buf[{n}];\n"
        "    long i;\n"
        "    for (i = 0; i < {m}; i++) {{\n"
        "        buf[i] = i;\n"
        "    }}\n"
        "    if (buf[0] != 0) {{ print_int(buf[0]); }}"
    )
    bad = body.format(n=n, m=n + 2)
    good = body.format(n=n, m=n)
    return "", bad, good, {"pointer": True, "asan": True, "gcc": True}


def _t_inter_object(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((4, 6, 8))
    off = rng.choice((0, 1))
    body = (
        "    long upper[{n}];\n"
        "    long lower[8];\n"
        "    long i;\n"
        "    for (i = 0; i < {n}; i++) {{ upper[i] = i; }}\n"
        "    for (i = 0; i < 8; i++) {{ lower[i] = i; }}\n"
        "    lower[{idx}] = 7;\n"
        "    if (upper[0] > 100) {{ print_int(upper[0]); }}"
    )
    bad = body.format(n=n, idx=8 + off)
    good = body.format(n=n, idx=7)
    return "", bad, good, {"pointer": True, "asan": True, "gcc": False}


def _t_far_write(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((4, 8))
    far = rng.choice((40, 48, 56))
    body = (
        "    long buf[{n}];\n"
        "    buf[0] = 1;\n"
        "    buf[{idx}] = 7;\n"
        "    if (buf[0] != 1) {{ print_int(buf[0]); }}"
    )
    bad = body.format(n=n, idx=n + far)
    good = body.format(n=n, idx=n - 1)
    return "", bad, good, {"pointer": True, "asan": False, "gcc": False}


def _t_intra_struct(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    k = rng.choice((8, 16, 24))
    over = rng.choice((2, 4, 6))
    prelude = ("typedef struct {{ char data[{k}]; long tail[4]; }} Box;"
               .format(k=k))
    body = (
        "    Box box;\n"
        "    long i;\n"
        "    box.tail[0] = 5;\n"
        "    for (i = 0; i < {m}; i++) {{\n"
        "        box.data[i] = (char)i;\n"
        "    }}\n"
        "    if (box.data[0] != 0) {{ print_int(1); }}"
    )
    bad = body.format(m=k + over)
    good = body.format(m=k)
    return prelude, bad, good, {"pointer": False, "asan": False,
                                "gcc": False}


def _t_heap_loop(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((4, 8, 12, 16))
    body = (
        "    long *p = (long*)malloc({n} * sizeof(long));\n"
        "    long i;\n"
        "    for (i = 0; i <= {m}; i++) {{\n"
        "        p[i] = i;\n"
        "    }}\n"
        "    free(p);"
    )
    bad = body.format(n=n, m=n)
    good = body.format(n=n, m=n - 1)
    return "", bad, good, {"pointer": True, "asan": True, "gcc": False}


def _t_memcpy_overflow(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((16, 32, 64))
    extra = rng.choice((8, 16))
    body = (
        "    char *dst = (char*)malloc({n});\n"
        "    char *src = (char*)malloc({n} + {extra});\n"
        "    memset(src, 7, {n} + {extra});\n"
        "    memcpy(dst, src, {count});\n"
        "    free(src);\n"
        "    free(dst);"
    )
    bad = body.format(n=n, extra=extra, count=n + extra)
    good = body.format(n=n, extra=extra, count=n)
    return "", bad, good, {"pointer": True, "asan": True, "gcc": False}


def _t_odd_off_by_one(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    # Odd allocation size: the compressed bound rounds up to the 8-byte
    # grid, so HWST128 misses the one-byte overflow (the paper's CWE122
    # gap vs SBCETS) while exact-bounds tools catch it.
    n = rng.choice((9, 11, 13, 17, 21))
    body = (
        "    char *p = (char*)malloc({n});\n"
        "    long i;\n"
        "    for (i = 0; i < {n}; i++) {{ p[i] = (char)i; }}\n"
        "    p[{idx}] = 1;\n"
        "    free(p);"
    )
    bad = body.format(n=n, idx=n)
    good = body.format(n=n, idx=n - 1)
    return "", bad, good, {"pointer": True, "hwst_misses": True,
                           "asan": True, "gcc": False}


def _t_heap_far(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((8, 16))
    far = rng.choice((64, 96))
    body = (
        "    long *p = (long*)malloc({n} * sizeof(long));\n"
        "    p[0] = 1;\n"
        "    p[{idx}] = 7;\n"
        "    free(p);"
    )
    bad = body.format(n=n, idx=n + far)
    good = body.format(n=n, idx=n - 1)
    return "", bad, good, {"pointer": True, "asan": False, "gcc": False}


def _t_heap_intra(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    k = rng.choice((8, 16, 24))
    over = rng.choice((2, 4))
    prelude = ("typedef struct {{ char data[{k}]; long tail[4]; }} Box;"
               .format(k=k))
    body = (
        "    Box *box = (Box*)malloc(sizeof(Box));\n"
        "    long i;\n"
        "    box->tail[0] = 5;\n"
        "    for (i = 0; i < {m}; i++) {{\n"
        "        box->data[i] = (char)i;\n"
        "    }}\n"
        "    free(box);"
    )
    bad = body.format(m=k + over)
    good = body.format(m=k)
    return prelude, bad, good, {"pointer": False, "asan": False,
                                "gcc": False}


def _t_heap_under(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((8, 16))
    body = (
        "    long *q = (long*)malloc(512);\n"
        "    long *p = (long*)malloc({n} * sizeof(long));\n"
        "    q[0] = 1;\n"
        "    p[{idx}] = 7;\n"
        "    free(p);\n"
        "    free(q);"
    )
    bad = body.format(n=n, idx=-1)
    good = body.format(n=n, idx=0)
    return "", bad, good, {"pointer": True, "asan": True, "gcc": False}


def _t_heap_far_under(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((8, 16))
    back = rng.choice((20, 30))
    body = (
        "    long *q = (long*)malloc(512);\n"
        "    long *p = (long*)malloc({n} * sizeof(long));\n"
        "    q[0] = 1;\n"
        "    p[{idx}] = 7;\n"
        "    free(p);\n"
        "    free(q);"
    )
    bad = body.format(n=n, idx=-back)
    good = body.format(n=n, idx=0)
    return "", bad, good, {"pointer": True, "asan": False, "gcc": False}


def _t_intra_under(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    k = rng.choice((8, 16))
    prelude = ("typedef struct {{ long head[4]; char data[{k}]; }} Box;"
               .format(k=k))
    body = (
        "    Box *box = (Box*)malloc(sizeof(Box));\n"
        "    box->head[0] = 5;\n"
        "    box->data[{idx}] = 7;\n"
        "    free(box);"
    )
    bad = body.format(idx=-4)
    good = body.format(idx=0)
    return prelude, bad, good, {"pointer": False, "asan": False,
                                "gcc": False}


def _t_heap_overread(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((8, 16))
    body = (
        "    long *p = (long*)malloc({n} * sizeof(long));\n"
        "    long acc = 0;\n"
        "    long i;\n"
        "    for (i = 0; i <= {m}; i++) {{ acc += p[i]; }}\n"
        "    free(p);\n"
        "    if (acc > 1000000) {{ print_int(acc); }}"
    )
    bad = body.format(n=n, m=n)
    good = body.format(n=n, m=n - 1)
    return "", bad, good, {"pointer": True, "asan": True, "gcc": False}


def _t_heap_far_read(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((8, 16))
    far = rng.choice((64, 80))
    body = (
        "    long *p = (long*)malloc({n} * sizeof(long));\n"
        "    long v = p[{idx}];\n"
        "    free(p);\n"
        "    if (v > 1000000) {{ print_int(v); }}"
    )
    bad = body.format(n=n, idx=n + far)
    good = body.format(n=n, idx=0)
    return "", bad, good, {"pointer": True, "asan": False, "gcc": False}


def _t_intra_read(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    k = rng.choice((8, 16))
    prelude = ("typedef struct {{ char data[{k}]; long tail[4]; }} Box;"
               .format(k=k))
    body = (
        "    Box box;\n"
        "    long v;\n"
        "    box.tail[0] = 5;\n"
        "    box.data[0] = 1;\n"
        "    v = box.data[{idx}];\n"
        "    if (v > 100) {{ print_int(v); }}"
    )
    bad = body.format(idx=k + 2)
    good = body.format(idx=0)
    return prelude, bad, good, {"pointer": False, "asan": False,
                                "gcc": False}


def _t_heap_under_read(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((8, 16))
    body = (
        "    long *q = (long*)malloc(512);\n"
        "    long *p = (long*)malloc({n} * sizeof(long));\n"
        "    long v;\n"
        "    q[0] = 1;\n"
        "    v = p[{idx}];\n"
        "    free(p);\n"
        "    free(q);\n"
        "    if (v > 1000000) {{ print_int(v); }}"
    )
    bad = body.format(n=n, idx=-1)
    good = body.format(n=n, idx=0)
    return "", bad, good, {"pointer": True, "asan": True, "gcc": False}


def _t_heap_far_under_read(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((8, 16))
    back = rng.choice((20, 30))
    body = (
        "    long *q = (long*)malloc(512);\n"
        "    long *p = (long*)malloc({n} * sizeof(long));\n"
        "    long v;\n"
        "    q[0] = 1;\n"
        "    v = p[{idx}];\n"
        "    free(p);\n"
        "    free(q);\n"
        "    if (v > 1000000) {{ print_int(v); }}"
    )
    bad = body.format(n=n, idx=-back)
    good = body.format(n=n, idx=0)
    return "", bad, good, {"pointer": True, "asan": False, "gcc": False}


def _t_intra_under_read(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    k = rng.choice((8, 16))
    prelude = ("typedef struct {{ long head[4]; char data[{k}]; }} Box;"
               .format(k=k))
    body = (
        "    Box *box = (Box*)malloc(sizeof(Box));\n"
        "    long v;\n"
        "    box->head[0] = 5;\n"
        "    v = box->data[{idx}];\n"
        "    free(box);\n"
        "    if (v > 100) {{ print_int(v); }}"
    )
    bad = body.format(idx=-8)
    good = body.format(idx=0)
    return prelude, bad, good, {"pointer": False, "asan": False,
                                "gcc": False}


def _t_double_free(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((16, 32))
    body = (
        "    long *p = (long*)malloc({n});\n"
        "    p[0] = 1;\n"
        "    free(p);\n"
        "{second}"
    )
    bad = body.format(n=n, second="    free(p);")
    good = body.format(n=n, second="")
    return "", bad, good, {"pointer": True, "asan": True, "gcc": False}


def _t_uaf_fresh(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((16, 32))
    write = rng.choice((0, 1))
    sink = "p[0] = 9;" if write else "v = p[0];"
    body = (
        "    long *p = (long*)malloc({n});\n"
        "    long v = 0;\n"
        "    p[0] = 1;\n"
        "    {free_at}\n"
        "    {sink}\n"
        "    {free_after}\n"
        "    if (v > 100) {{ print_int(v); }}"
    )
    bad = body.format(n=n, free_at="free(p);", sink=sink, free_after="")
    good = body.format(n=n, free_at="", sink=sink,
                       free_after="free(p);")
    return "", bad, good, {"pointer": True, "asan": True, "gcc": False}


def _t_uaf_evicted(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    # Enough churn to push the freed chunk out of ASAN's quarantine,
    # so the shadow is unpoisoned again; keys never lie, so the
    # pointer-based schemes still catch it.
    body = (
        "    long *p = (long*)malloc(24);\n"
        "    long v = 0;\n"
        "    long i;\n"
        "    p[0] = 1;\n"
        "    {free_at}\n"
        "    for (i = 0; i < 70; i++) {{\n"
        "        long *q = (long*)malloc(48);\n"
        "        q[0] = i;\n"
        "        free(q);\n"
        "    }}\n"
        "    {sink}\n"
        "    {free_after}\n"
        "    if (v > 100) {{ print_int(v); }}"
    )
    bad = body.format(free_at="free(p);", sink="v = p[0];", free_after="")
    good = body.format(free_at="", sink="v = p[0];",
                       free_after="free(p);")
    return "", bad, good, {"pointer": True, "asan": False, "gcc": False}


def _t_null_deref(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    write = rng.choice((0, 1))
    sink = "*p = 5;" if write else "v = *p;"
    body = (
        "    long backing = 3;\n"
        "    long *p = {init};\n"
        "    long v = 0;\n"
        "    {sink}\n"
        "    if (v > 100) {{ print_int(v); }}"
    )
    bad = body.format(init="0", sink=sink)
    good = body.format(init="&backing", sink=sink)
    # ASAN's runtime reports the SEGV (classified as detected); a plain
    # GCC build just crashes without a diagnostic.
    return "", bad, good, {"pointer": True, "asan": True, "gcc": False}


def _t_null_return_offset(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    # malloc fails (huge request); the unchecked NULL is dereferenced at
    # a large field offset that lands in mapped (text) memory, so no
    # fault occurs: only the pointer-based schemes see zero metadata.
    offset = rng.choice((68000, 72000, 90000))
    prelude = ("typedef struct {{ char pad[{off}]; long x; }} Big;"
               .format(off=offset))
    # The good variant guards the deref instead of early-returning so
    # the body stays valid inside void flow-variant helpers.
    bad = (
        "    Big *p = (Big*)malloc(900000000);\n"
        "    p->x = 5;"
    )
    good = (
        "    Big *p = (Big*)malloc(sizeof(Big));\n"
        "    if (p != 0) {\n"
        "        p->x = 5;\n"
        "        free((void*)p);\n"
        "    }"
    )
    return prelude, bad, good, {"pointer": True, "asan": False,
                                "gcc": False}


def _t_free_offset(rng) -> Tuple[str, str, str, Dict[str, bool]]:
    n = rng.choice((16, 32))
    off = rng.choice((2, 4))
    body = (
        "    long *p = (long*)malloc({n} * sizeof(long));\n"
        "    p[0] = 1;\n"
        "    free(p + {off});"
    )
    bad = body.format(n=n, off=off)
    good = body.format(n=n, off=0)
    return "", bad, good, {"pointer": True, "asan": True, "gcc": False}


_TEMPLATES: Dict[str, Callable] = {
    "loop_to_canary": _t_loop_to_canary,
    "inter_object": _t_inter_object,
    "far_write": _t_far_write,
    "intra_struct": _t_intra_struct,
    "heap_loop": _t_heap_loop,
    "memcpy_overflow": _t_memcpy_overflow,
    "odd_off_by_one": _t_odd_off_by_one,
    "heap_far": _t_heap_far,
    "heap_intra": _t_heap_intra,
    "heap_under": _t_heap_under,
    "heap_far_under": _t_heap_far_under,
    "intra_under": _t_intra_under,
    "heap_overread": _t_heap_overread,
    "heap_far_read": _t_heap_far_read,
    "intra_read": _t_intra_read,
    "heap_under_read": _t_heap_under_read,
    "heap_far_under_read": _t_heap_far_under_read,
    "intra_under_read": _t_intra_under_read,
    "double_free": _t_double_free,
    "uaf_fresh": _t_uaf_fresh,
    "uaf_evicted": _t_uaf_evicted,
    "null_deref": _t_null_deref,
    "null_return_offset": _t_null_return_offset,
    "free_offset": _t_free_offset,
}


def _build_case(cwe: int, subtype: str, index: int) -> JulietCase:
    rng = random.Random(f"{cwe}/{subtype}/{index}")
    flow = FLOW_VARIANTS[index % len(FLOW_VARIANTS)]
    prelude, bad_body, good_body, expected = _TEMPLATES[subtype](rng)
    return JulietCase(
        case_id=f"CWE{cwe}_{subtype}_{index:04d}",
        cwe=cwe,
        subtype=subtype,
        flow=flow,
        bad_source=_wrap_flow(flow, prelude, bad_body),
        good_source=_wrap_flow(flow, prelude, good_body),
        expected=dict(expected),
    )


def generate_corpus(fraction: float = 1.0,
                    cwes: Optional[Iterable[int]] = None,
                    max_per_subtype: Optional[int] = None
                    ) -> List[JulietCase]:
    """Generate the corpus (optionally a stratified sample).

    ``fraction`` scales every subtype's count (rounded, at least 1), so
    a sampled run preserves the corpus proportions and therefore the
    expected coverage percentages.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    selected = list(cwes) if cwes is not None else \
        list(SPATIAL_CWES + TEMPORAL_CWES)
    cases: List[JulietCase] = []
    for cwe in selected:
        for subtype, count in CWE_PLAN[cwe]:
            take = max(1, round(count * fraction))
            if max_per_subtype is not None:
                take = min(take, max_per_subtype)
            for index in range(take):
                cases.append(_build_case(cwe, subtype, index))
    return cases
