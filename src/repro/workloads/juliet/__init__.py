"""Juliet-style security test corpus (Section 4 / Fig. 6).

A generated stand-in for the NIST Juliet 1.x C cases the paper uses:
ten CWE families (spatial: 121/122/124/126/127, temporal:
415/416/476/690/761), each split into *subtypes* whose detectability
per tool is mechanical (redzone-skipping distances, compression-padding
off-by-ones, intra-object overflows, quarantine-evicted use-after-free,
NULL-plus-large-offset dereferences, …), wrapped in Juliet-style
control/data-flow variants, in the paper's corpus proportions
(7074 spatial + 1292 temporal = 8366 cases).

Every case carries a *bad* and a *good* program; detection is measured
by actually executing the instrumented binaries and observing which
classified trap (if any) fires — the same methodology as the paper's
SPIKE runs.
"""

from repro.workloads.juliet.generator import (
    CWE_PLAN,
    JulietCase,
    SPATIAL_CWES,
    TEMPORAL_CWES,
    corpus_counts,
    generate_corpus,
    total_cases,
)

__all__ = [
    "CWE_PLAN",
    "JulietCase",
    "SPATIAL_CWES",
    "TEMPORAL_CWES",
    "corpus_counts",
    "generate_corpus",
    "total_cases",
]
