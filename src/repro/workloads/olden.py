"""Olden-class pointer-chasing kernels (Fig. 4 middle group).

Seven kernels mirroring the Olden suite: treeadd, bisort, mst,
perimeter, health, em3d and tsp. All are allocation-heavy linked
structures — the workloads that stress metadata propagation through
memory (Section 3.2).
"""

from repro.workloads.base import Workload, register

register(Workload(
    name="treeadd",
    group="olden",
    description="balanced binary tree build + recursive sum",
    params={"DEPTH": 7},
    small_params={"DEPTH": 4},
    source_template=r"""
typedef struct Tree Tree;
struct Tree { long value; Tree *left; Tree *right; };

Tree *build(int depth, long value) {
    Tree *t = (Tree*)malloc(sizeof(Tree));
    t->value = value;
    if (depth <= 1) {
        t->left = 0;
        t->right = 0;
    } else {
        t->left = build(depth - 1, 2 * value);
        t->right = build(depth - 1, 2 * value + 1);
    }
    return t;
}

long sum(Tree *t) {
    if (!t) { return 0; }
    return t->value + sum(t->left) + sum(t->right);
}

void destroy(Tree *t) {
    if (!t) { return; }
    destroy(t->left);
    destroy(t->right);
    free(t);
}

int main(void) {
    Tree *root = build(@DEPTH@, 1);
    long total = sum(root);
    destroy(root);
    return total > 0 ? 0 : 1;
}
"""))

register(Workload(
    name="bisort",
    group="olden",
    description="binary-tree insertion sort + sortedness verification",
    params={"N": 120},
    small_params={"N": 40},
    source_template=r"""
typedef struct Node Node;
struct Node { long key; Node *left; Node *right; };

Node *insert(Node *root, long key) {
    if (!root) {
        Node *n = (Node*)malloc(sizeof(Node));
        n->key = key;
        n->left = 0;
        n->right = 0;
        return n;
    }
    if (key < root->key) { root->left = insert(root->left, key); }
    else { root->right = insert(root->right, key); }
    return root;
}

long walk(Node *t, long *out, long pos) {
    if (!t) { return pos; }
    pos = walk(t->left, out, pos);
    out[pos] = t->key;
    pos = pos + 1;
    return walk(t->right, out, pos);
}

void destroy(Node *t) {
    if (!t) { return; }
    destroy(t->left);
    destroy(t->right);
    free(t);
}

int main(void) {
    long n = @N@;
    long *sorted = (long*)malloc(n * sizeof(long));
    Node *root = 0;
    long i;
    rand_seed(17);
    for (i = 0; i < n; i++) {
        root = insert(root, rand_next() % 10000);
    }
    if (walk(root, sorted, 0) != n) { return 1; }
    for (i = 1; i < n; i++) {
        if (sorted[i - 1] > sorted[i]) { return 2; }
    }
    destroy(root);
    free(sorted);
    return 0;
}
"""))

register(Workload(
    name="mst",
    group="olden",
    description="Prim's MST over adjacency-list graph of heap nodes",
    params={"NODES": 20},
    small_params={"NODES": 8},
    source_template=r"""
typedef struct Edge Edge;
typedef struct Vertex Vertex;
struct Edge { int to; long weight; Edge *next; };
struct Vertex { Edge *edges; long best; int in_tree; };

void add_edge(Vertex *vs, int from, int to, long weight) {
    Edge *e = (Edge*)malloc(sizeof(Edge));
    e->to = to;
    e->weight = weight;
    e->next = vs[from].edges;
    vs[from].edges = e;
}

int main(void) {
    int n = @NODES@;
    Vertex *vs = (Vertex*)malloc((long)n * sizeof(Vertex));
    int i;
    int j;
    long total = 0;
    rand_seed(31);
    for (i = 0; i < n; i++) {
        vs[i].edges = 0;
        vs[i].best = 1000000000;
        vs[i].in_tree = 0;
    }
    for (i = 0; i < n; i++) {
        for (j = i + 1; j < n; j++) {
            long w = 1 + rand_next() % 512;
            add_edge(vs, i, j, w);
            add_edge(vs, j, i, w);
        }
    }
    vs[0].best = 0;
    for (i = 0; i < n; i++) {
        int bi = -1;
        long bw = 1000000001;
        Edge *e;
        for (j = 0; j < n; j++) {
            if (!vs[j].in_tree && vs[j].best < bw) { bw = vs[j].best; bi = j; }
        }
        if (bi < 0) { return 1; }
        vs[bi].in_tree = 1;
        total += vs[bi].best;
        e = vs[bi].edges;
        while (e) {
            if (!vs[e->to].in_tree && e->weight < vs[e->to].best) {
                vs[e->to].best = e->weight;
            }
            e = e->next;
        }
    }
    for (i = 0; i < n; i++) {
        Edge *e = vs[i].edges;
        while (e) { Edge *nx = e->next; free(e); e = nx; }
    }
    free(vs);
    return total > 0 ? 0 : 2;
}
"""))

register(Workload(
    name="perimeter",
    group="olden",
    description="quadtree build + perimeter of the marked region",
    params={"DEPTH": 4},
    small_params={"DEPTH": 3},
    source_template=r"""
typedef struct Quad Quad;
struct Quad {
    int kind;       /* 0 = white, 1 = black, 2 = grey */
    Quad *child[4];
};

Quad *build(int depth, long x, long y, long size) {
    Quad *q = (Quad*)malloc(sizeof(Quad));
    int i;
    if (depth == 0) {
        /* region: disk around the centre of a 64x64 image */
        long cx = x + size / 2 - 32;
        long cy = y + size / 2 - 32;
        q->kind = (cx * cx + cy * cy < 24 * 24) ? 1 : 0;
        for (i = 0; i < 4; i++) { q->child[i] = 0; }
        return q;
    }
    q->kind = 2;
    q->child[0] = build(depth - 1, x, y, size / 2);
    q->child[1] = build(depth - 1, x + size / 2, y, size / 2);
    q->child[2] = build(depth - 1, x, y + size / 2, size / 2);
    q->child[3] = build(depth - 1, x + size / 2, y + size / 2, size / 2);
    /* merge uniform children */
    if (q->child[0]->kind != 2) {
        int k = q->child[0]->kind;
        int same = 1;
        for (i = 1; i < 4; i++) {
            if (q->child[i]->kind != k) { same = 0; }
        }
        if (same) {
            for (i = 0; i < 4; i++) { free(q->child[i]); q->child[i] = 0; }
            q->kind = k;
        }
    }
    return q;
}

long count_black_leaves(Quad *q, long size) {
    if (!q) { return 0; }
    if (q->kind == 1) { return size; }
    if (q->kind == 0) { return 0; }
    return count_black_leaves(q->child[0], size / 2)
         + count_black_leaves(q->child[1], size / 2)
         + count_black_leaves(q->child[2], size / 2)
         + count_black_leaves(q->child[3], size / 2);
}

void destroy(Quad *q) {
    int i;
    if (!q) { return; }
    for (i = 0; i < 4; i++) { destroy(q->child[i]); }
    free(q);
}

int main(void) {
    Quad *root = build(@DEPTH@, 0, 0, 64);
    long area = count_black_leaves(root, 64);
    destroy(root);
    return area > 0 ? 0 : 1;
}
"""))

register(Workload(
    name="health",
    group="olden",
    description="hierarchical hospital simulation with patient lists",
    params={"STEPS": 20, "LEVELS": 3},
    small_params={"STEPS": 8, "LEVELS": 2},
    source_template=r"""
typedef struct Patient Patient;
typedef struct Hospital Hospital;
struct Patient { long id; long time; Patient *next; };
struct Hospital {
    Patient *waiting;
    Hospital *child[2];
    long treated;
};

Hospital *build(int level) {
    Hospital *h = (Hospital*)malloc(sizeof(Hospital));
    h->waiting = 0;
    h->treated = 0;
    if (level > 0) {
        h->child[0] = build(level - 1);
        h->child[1] = build(level - 1);
    } else {
        h->child[0] = 0;
        h->child[1] = 0;
    }
    return h;
}

void step(Hospital *h, long tick) {
    Patient *p;
    Patient *prev;
    if (!h) { return; }
    /* new arrival with some probability */
    if (rand_next() % 4 == 0) {
        p = (Patient*)malloc(sizeof(Patient));
        p->id = tick;
        p->time = 1 + rand_next() % 5;
        p->next = h->waiting;
        h->waiting = p;
    }
    /* treat the queue */
    prev = 0;
    p = h->waiting;
    while (p) {
        p->time = p->time - 1;
        if (p->time <= 0) {
            Patient *done = p;
            if (prev) { prev->next = p->next; }
            else { h->waiting = p->next; }
            p = p->next;
            free(done);
            h->treated = h->treated + 1;
        } else {
            prev = p;
            p = p->next;
        }
    }
    step(h->child[0], tick);
    step(h->child[1], tick);
}

long total_treated(Hospital *h) {
    if (!h) { return 0; }
    return h->treated + total_treated(h->child[0])
        + total_treated(h->child[1]);
}

void destroy(Hospital *h) {
    Patient *p;
    if (!h) { return; }
    p = h->waiting;
    while (p) { Patient *nx = p->next; free(p); p = nx; }
    destroy(h->child[0]);
    destroy(h->child[1]);
    free(h);
}

int main(void) {
    Hospital *root;
    long t;
    long treated;
    rand_seed(2026);
    root = build(@LEVELS@);
    for (t = 0; t < @STEPS@; t++) { step(root, t); }
    treated = total_treated(root);
    destroy(root);
    return treated > 0 ? 0 : 1;
}
"""))

register(Workload(
    name="em3d",
    group="olden",
    description="bipartite E/H node graph relaxation",
    params={"NODES": 48, "ITERS": 6, "DEGREE": 4},
    small_params={"NODES": 12, "ITERS": 2, "DEGREE": 2},
    source_template=r"""
typedef struct ENode ENode;
struct ENode {
    long value;
    ENode *deps[@DEGREE@];
    long coeffs[@DEGREE@];
    ENode *next;
};

ENode *make_list(int count, ENode **arr) {
    ENode *head = 0;
    int i;
    for (i = 0; i < count; i++) {
        ENode *n = (ENode*)malloc(sizeof(ENode));
        int d;
        n->value = rand_next() % 1000;
        for (d = 0; d < @DEGREE@; d++) { n->deps[d] = 0; n->coeffs[d] = 1 + rand_next() % 7; }
        n->next = head;
        head = n;
        arr[i] = n;
    }
    return head;
}

void wire(ENode *from, ENode **pool, int count) {
    ENode *n = from;
    while (n) {
        int d;
        for (d = 0; d < @DEGREE@; d++) {
            n->deps[d] = pool[rand_next() % count];
        }
        n = n->next;
    }
}

void relax(ENode *list) {
    ENode *n = list;
    while (n) {
        long acc = 0;
        int d;
        for (d = 0; d < @DEGREE@; d++) {
            acc += n->deps[d]->value * n->coeffs[d];
        }
        n->value = (n->value + (acc >> 3)) % 65536;
        n = n->next;
    }
}

void destroy(ENode *list) {
    while (list) { ENode *nx = list->next; free(list); list = nx; }
}

int main(void) {
    int half = @NODES@ / 2;
    ENode **earr = (ENode**)malloc((long)half * sizeof(ENode*));
    ENode **harr = (ENode**)malloc((long)half * sizeof(ENode*));
    ENode *elist;
    ENode *hlist;
    long sum = 0;
    int it;
    ENode *n;
    rand_seed(404);
    elist = make_list(half, earr);
    hlist = make_list(half, harr);
    wire(elist, harr, half);
    wire(hlist, earr, half);
    for (it = 0; it < @ITERS@; it++) {
        relax(elist);
        relax(hlist);
    }
    n = elist;
    while (n) { sum += n->value; n = n->next; }
    destroy(elist);
    destroy(hlist);
    free(harr);
    free(earr);
    return sum >= 0 ? 0 : 1;
}
"""))

register(Workload(
    name="tsp",
    group="olden",
    description="nearest-neighbour tour over a linked list of cities",
    params={"CITIES": 36},
    small_params={"CITIES": 10},
    source_template=r"""
typedef struct City City;
struct City { long x; long y; int visited; City *next; };

long dist2(City *a, City *b) {
    long dx = a->x - b->x;
    long dy = a->y - b->y;
    return dx * dx + dy * dy;
}

int main(void) {
    int n = @CITIES@;
    City *head = 0;
    City *cur;
    int i;
    long tour = 0;
    rand_seed(55);
    for (i = 0; i < n; i++) {
        City *c = (City*)malloc(sizeof(City));
        c->x = rand_next() % 1000;
        c->y = rand_next() % 1000;
        c->visited = 0;
        c->next = head;
        head = c;
    }
    cur = head;
    cur->visited = 1;
    for (i = 1; i < n; i++) {
        City *best = 0;
        long bestd = 0;
        City *c = head;
        while (c) {
            if (!c->visited) {
                long d = dist2(cur, c);
                if (!best || d < bestd) { best = c; bestd = d; }
            }
            c = c->next;
        }
        if (!best) { return 1; }
        best->visited = 1;
        tour += bestd;
        cur = best;
    }
    while (head) { City *nx = head->next; free(head); head = nx; }
    return tour > 0 ? 0 : 2;
}
"""))
