"""Workload registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class Workload:
    """One self-checking benchmark program."""

    name: str
    group: str             # "mibench" | "olden" | "spec"
    source_template: str
    params: Dict[str, int] = field(default_factory=dict)
    small_params: Dict[str, int] = field(default_factory=dict)
    description: str = ""

    def source(self, scale: str = "default") -> str:
        """Render the program; ``@NAME@`` tokens become parameter values."""
        values = dict(self.params)
        if scale == "small":
            values.update(self.small_params)
        text = self.source_template
        for key, value in values.items():
            text = text.replace(f"@{key}@", str(value))
        return text


WORKLOADS: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in WORKLOADS:
        raise ValueError(f"duplicate workload {workload.name!r}")
    WORKLOADS[workload.name] = workload
    return workload


def by_group(group: str):
    return [w for w in WORKLOADS.values() if w.group == group]
