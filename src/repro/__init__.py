"""HWST128 reproduction: complete memory safety on RISC-V with metadata
compression (Dow, Li, Parameswaran — DAC 2022), rebuilt as a pure-Python
system: ISA + ISS, pipeline timing model, metadata compression core,
mini-C compiler with SBCETS/HWST128/ASAN/GCC/BOGO/WDL instrumentation,
workload suites, and the figure-regeneration harness.

Quickstart::

    from repro import compile_and_run
    result = compile_and_run(source, scheme="hwst128_tchk")
"""

__version__ = "1.0.0"


def compile_and_run(source: str, scheme: str = "baseline", **kwargs):
    """Compile mini-C ``source`` under ``scheme`` and execute it.

    Convenience wrapper around :mod:`repro.schemes`; returns a
    :class:`repro.sim.machine.RunResult`. Extra keyword arguments are
    forwarded to :func:`repro.schemes.run_source`.
    """
    from repro.schemes import run_source

    return run_source(source, scheme=scheme, **kwargs)
