"""Runtime library sources (mini-C).

Every program links the base runtime (allocator, string/printing
helpers, deterministic PRNG) plus one scheme runtime providing
``__rt_scheme_init`` and the scheme's helper functions. Runtime sources
are compiled **without** instrumentation — they are the "library" side
of the paper's source/binary-compatibility story; the schemes that need
library coverage wrap these entry points instead of instrumenting them.

The temporal lock table helpers (``__lock_alloc``/``__lock_free``)
implement the paper's lock_location discipline as real simulated code,
so their cost shows up in the performance figures: a fresh unique key
per allocation, key erasure on free, lock_location recycling through a
free stack.
"""

from __future__ import annotations

BASE_RUNTIME = r"""
/* ---- heap allocator: first-fit free list, 16-byte headers ---- */
typedef struct Block Block;
struct Block { long size; Block *next; };

long __heap_ptr = 0;
long __heap_limit = 0;
Block *__free_list = 0;

void *malloc(long n) {
    Block *prev = 0;
    Block *cur = __free_list;
    if (n <= 0) { n = 1; }
    n = (n + 7) & ~7;
    while (cur) {
        if (cur->size >= n) {
            if (prev) { prev->next = cur->next; }
            else { __free_list = cur->next; }
            return (void*)((char*)cur + 16);
        }
        prev = cur;
        cur = cur->next;
    }
    if (__heap_ptr + n + 16 > __heap_limit) { return 0; }
    cur = (Block*)__heap_ptr;
    cur->size = n;
    cur->next = 0;
    __heap_ptr = __heap_ptr + n + 16;
    return (void*)((char*)cur + 16);
}

void free(void *p) {
    Block *blk;
    if (!p) { return; }
    blk = (Block*)((char*)p - 16);
    blk->next = __free_list;
    __free_list = blk;
}

long __alloc_size(void *p) {
    Block *blk = (Block*)((char*)p - 16);
    return blk->size;
}

void *calloc(long count, long size) {
    long total = count * size;
    void *p = malloc(total);
    if (p) { memset(p, 0, total); }
    return p;
}

/* ---- memory / string helpers ---- */
void *memcpy(void *dst, void *src, long n) {
    char *d = (char*)dst;
    char *s = (char*)src;
    long i;
    for (i = 0; i < n; i++) { d[i] = s[i]; }
    return dst;
}

void *memset(void *dst, int value, long n) {
    char *d = (char*)dst;
    long i;
    for (i = 0; i < n; i++) { d[i] = (char)value; }
    return dst;
}

int memcmp(void *a, void *b, long n) {
    unsigned char *x = (unsigned char*)a;
    unsigned char *y = (unsigned char*)b;
    long i;
    for (i = 0; i < n; i++) {
        if (x[i] != y[i]) { return (int)x[i] - (int)y[i]; }
    }
    return 0;
}

long strlen(char *s) {
    long n = 0;
    while (s[n]) { n++; }
    return n;
}

char *strcpy(char *dst, char *src) {
    long i = 0;
    while (src[i]) { dst[i] = src[i]; i++; }
    dst[i] = 0;
    return dst;
}

char *strncpy(char *dst, char *src, long n) {
    long i = 0;
    while (i < n && src[i]) { dst[i] = src[i]; i++; }
    while (i < n) { dst[i] = 0; i++; }
    return dst;
}

char *strcat(char *dst, char *src) {
    long n = strlen(dst);
    strcpy(dst + n, src);
    return dst;
}

int strcmp(char *a, char *b) {
    long i = 0;
    while (a[i] && a[i] == b[i]) { i++; }
    return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

int strncmp(char *a, char *b, long n) {
    long i = 0;
    if (n == 0) { return 0; }
    while (i < n - 1 && a[i] && a[i] == b[i]) { i++; }
    return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

/* ---- output ---- */
void print_char(int c) {
    char buf[1];
    buf[0] = (char)c;
    __ecall_write(1, buf, 1);
}

void print_str(char *s) {
    __ecall_write(1, s, strlen(s));
}

void print_int(long value) {
    char buf[24];
    long pos = 23;
    int negative = 0;
    if (value < 0) { negative = 1; value = -value; }
    if (value == 0) { buf[pos] = '0'; pos--; }
    while (value > 0) {
        buf[pos] = (char)('0' + value % 10);
        pos--;
        value = value / 10;
    }
    if (negative) { buf[pos] = '-'; pos--; }
    __ecall_write(1, buf + pos + 1, 23 - pos);
}

void print_hex(unsigned long value) {
    char buf[18];
    long pos = 17;
    char *digits = "0123456789abcdef";
    if (value == 0) { buf[pos] = '0'; pos--; }
    while (value > 0) {
        buf[pos] = digits[value & 15];
        pos--;
        value = value >> 4;
    }
    __ecall_write(1, buf + pos + 1, 17 - pos);
}

/* ---- deterministic PRNG (same stream on every run/scheme) ---- */
long __rand_state = 88172645463325252;

void rand_seed(long seed) {
    if (seed == 0) { seed = 1; }
    __rand_state = seed;
}

long rand_next(void) {
    /* xorshift64 */
    long x = __rand_state;
    x = x ^ (x << 13);
    x = x ^ ((x >> 7) & 0x1FFFFFFFFFFFFFF);
    x = x ^ (x << 17);
    __rand_state = x;
    return x & 0x7FFFFFFFFFFFFFFF;
}

/* ---- temporal lock table (paper Section 3.1/3.4) ---- */
long __lock_next = 0;
long __lock_limit_cache = 0;
long __key_next = 1;
long __lock_stack[2048];
long __lock_sp = 0;

long __lock_alloc(void) {
    long lk;
    if (__lock_sp > 0) {
        __lock_sp = __lock_sp - 1;
        lk = __lock_stack[__lock_sp];
    } else {
        lk = __lock_next;
        __lock_next = __lock_next + 8;
        if (__lock_next > __lock_limit_cache) { abort(); }
    }
    *(long*)lk = __key_next;
    __key_next = __key_next + 1;
    return lk;
}

void __lock_free(long lk) {
    if (lk == 0) { return; }
    *(long*)lk = 0;
    if (__lock_sp < 2048) {
        __lock_stack[__lock_sp] = lk;
        __lock_sp = __lock_sp + 1;
    }
}

/* ---- init ---- */
void __rt_init(void) {
    __heap_ptr = __heap_base();
    __heap_limit = __heap_end();
    __free_list = 0;
    __lock_next = __lock_table_base();
    __lock_limit_cache = __lock_table_end();
    __lock_sp = 0;
    __key_next = 1;
    __rt_scheme_init();
}
"""

# ---------------------------------------------------------------------------
# Scheme runtimes
# ---------------------------------------------------------------------------

BASELINE_SCHEME_RUNTIME = r"""
void __rt_scheme_init(void) { }
"""

# Shared by every pointer-based scheme: a process-lifetime lock for
# global objects (never freed).
_GLOBAL_LOCK_SNIPPET = r"""
long __global_lock = 0;
long __global_key = 0;
"""

HWST_SCHEME_RUNTIME = _GLOBAL_LOCK_SNIPPET + r"""
/* software temporal check used by the no-tchk HWST128 variant: the
   key is loaded from the lock_location with a plain load (paper 5.1:
   "HWST128 uses the software method to load the key") */
void __hwst_key_check(long key, long lock) {
    if (lock == 0) { __trap_temporal(); }
    if (*(long*)lock != key) { __trap_temporal(); }
}

/* free() sanity: pointer must be at the start of the allocation
   (CWE761) and carry a live key (CWE415 double free) */
void __hwst_free_check(long p, long base, long key, long lock) {
    if (p == 0) { return; }
    if (p != base) { __trap_temporal(); }
    if (lock == 0) { __trap_temporal(); }
    if (*(long*)lock != key) { __trap_temporal(); }
}

void __rt_scheme_init(void) {
    __global_lock = __lock_alloc();
    __global_key = *(long*)__global_lock;
}
"""

def sbcets_runtime(shadow: str = "trie") -> str:
    """SBCETS software runtime.

    ``shadow`` selects the metadata map: "trie" is the faithful
    SoftboundCETS two-level trie; "linear" uses the paper's
    linear-mapped shadow memory (the ABL-LMSM ablation).
    """
    if shadow == "trie":
        slot_fn = r"""
long __sb_slot(long addr) {
    long idx = addr >> 3;
    long hi = (idx >> 11) & 1023;
    long lo = idx & 2047;
    long sec = __sb_trie[hi];
    if (!sec) {
        /* secondary pages are carved from the top of the heap: always
           fresh (zeroed) and never recycled, like SBCETS' mmap pages */
        __heap_limit = __heap_limit - 2048 * 32;
        sec = __heap_limit;
        if (sec < __heap_ptr) { abort(); }
        __sb_trie[hi] = sec;
    }
    return sec + lo * 32;
}
"""
    elif shadow == "linear":
        slot_fn = r"""
long __sb_slot(long addr) {
    return (addr << 2) + __sb_shadow_off;
}
"""
    else:
        raise ValueError(f"unknown sbcets shadow mode {shadow!r}")
    return _GLOBAL_LOCK_SNIPPET + r"""
long __sb_trie[1024];
long __sb_shadow_off = 0;
/* the four metadata "registers" of the software scheme */
long __sb_mbase = 0;
long __sb_mbound = 0;
long __sb_mkey = 0;
long __sb_mlock = 0;
/* shadow stack for metadata of pointer args / returns */
long __sb_sstack[512];
long __sb_ssp = 0;
""" + slot_fn + r"""
void __sb_mload(long addr) {
    long s = __sb_slot(addr);
    __sb_mbase = *(long*)s;
    __sb_mbound = *(long*)(s + 8);
    __sb_mkey = *(long*)(s + 16);
    __sb_mlock = *(long*)(s + 24);
}

void __sb_mstore(long addr) {
    long s = __sb_slot(addr);
    *(long*)s = __sb_mbase;
    *(long*)(s + 8) = __sb_mbound;
    *(long*)(s + 16) = __sb_mkey;
    *(long*)(s + 24) = __sb_mlock;
}

void __sb_setmeta(long base, long bound, long key, long lock) {
    __sb_mbase = base;
    __sb_mbound = bound;
    __sb_mkey = key;
    __sb_mlock = lock;
}

void __sb_check(long addr, long n) {
    if (addr < __sb_mbase) { __trap_spatial(); }
    if (addr + n > __sb_mbound) { __trap_spatial(); }
    if (__sb_mlock == 0) { __trap_temporal(); }
    if (*(long*)__sb_mlock != __sb_mkey) { __trap_temporal(); }
}

void __sb_check_spatial(long addr, long n) {
    if (addr < __sb_mbase) { __trap_spatial(); }
    if (addr + n > __sb_mbound) { __trap_spatial(); }
}

void __sb_ss_push(long index) {
    long at = __sb_ssp + index * 4;
    __sb_sstack[at] = __sb_mbase;
    __sb_sstack[at + 1] = __sb_mbound;
    __sb_sstack[at + 2] = __sb_mkey;
    __sb_sstack[at + 3] = __sb_mlock;
}

void __sb_ss_pop(long index) {
    long at = __sb_ssp + index * 4;
    __sb_mbase = __sb_sstack[at];
    __sb_mbound = __sb_sstack[at + 1];
    __sb_mkey = __sb_sstack[at + 2];
    __sb_mlock = __sb_sstack[at + 3];
}

void __sb_ss_pushret(void) {
    __sb_sstack[504] = __sb_mbase;
    __sb_sstack[505] = __sb_mbound;
    __sb_sstack[506] = __sb_mkey;
    __sb_sstack[507] = __sb_mlock;
}

void __sb_ss_popret(void) {
    __sb_mbase = __sb_sstack[504];
    __sb_mbound = __sb_sstack[505];
    __sb_mkey = __sb_sstack[506];
    __sb_mlock = __sb_sstack[507];
}

void __sb_spatial(long addr, long n, long base, long bound) {
    if (addr < base) { __trap_spatial(); }
    if (addr + n > bound) { __trap_spatial(); }
}

void __sb_free_check(long p) {
    if (p == 0) { return; }
    if (p != __sb_mbase) { __trap_temporal(); }
    if (__sb_mlock == 0) { __trap_temporal(); }
    if (*(long*)__sb_mlock != __sb_mkey) { __trap_temporal(); }
    __lock_free(__sb_mlock);
}

void __rt_scheme_init(void) {
    __sb_shadow_off = __shadow_offset();
    __global_lock = __lock_alloc();
    __global_key = *(long*)__global_lock;
}
"""


ASAN_SCHEME_RUNTIME = r"""
long __asan_off = 0;
void *__asan_quarantine[64];
long __asan_qhead = 0;
long __asan_qcount = 0;

void __asan_poison(long addr, long n, int value) {
    long sb = __asan_off + (addr >> 3);
    long end = __asan_off + ((addr + n + 7) >> 3);
    while (sb < end) {
        *(char*)sb = (char)value;
        sb++;
    }
}

void __asan_unpoison(long addr, long n) {
    long sb = __asan_off + (addr >> 3);
    long full = n >> 3;
    long i;
    for (i = 0; i < full; i++) { *(char*)sb = 0; sb++; }
    if (n & 7) { *(char*)sb = (char)(n & 7); }
}

void *__asan_malloc(long n) {
    char *raw;
    if (n <= 0) { n = 1; }
    raw = (char*)malloc(n + 32);
    if (!raw) { return 0; }
    *(long*)raw = n;
    __asan_poison((long)raw, 16, 0xFA);
    __asan_unpoison((long)(raw + 16), n);
    /* the right redzone starts at the next 8-byte boundary: the last
       (partial) shadow byte of the object encodes the tail length */
    __asan_poison(((long)(raw + 16) + n + 7) & ~7, 16, 0xFB);
    return (void*)(raw + 16);
}

void __asan_free(void *p) {
    char *raw;
    long n;
    void *old;
    if (!p) { return; }
    /* free() must target a chunk start: a valid chunk has its left
       redzone (0xFA) immediately below (catches CWE761) */
    if (*(char*)(__asan_off + (((long)p - 1) >> 3)) != (char)0xFA) {
        __trap_asan();
    }
    /* double free: the chunk is still poisoned 0xFD from the first free */
    if (*(char*)(__asan_off + ((long)p >> 3)) == (char)0xFD) {
        __trap_asan();
    }
    raw = (char*)p - 16;
    n = *(long*)raw;
    __asan_poison((long)p, n, 0xFD);
    /* quarantine delays reuse so fresh UAF is caught */
    if (__asan_qcount == 64) {
        old = __asan_quarantine[__asan_qhead];
        __asan_unpoison((long)old, *(long*)((char*)old - 16));
        free((char*)old - 16);
        __asan_qhead = (__asan_qhead + 1) & 63;
        __asan_qcount = 63;
    }
    __asan_quarantine[(__asan_qhead + __asan_qcount) & 63] = p;
    __asan_qcount = __asan_qcount + 1;
}

void *__asan_calloc(long count, long size) {
    long total = count * size;
    void *p = __asan_malloc(total);
    if (p) { memset(p, 0, total); }
    return p;
}

void __asan_check(long addr, long n) {
    long sb = __asan_off + (addr >> 3);
    char k = *(char*)sb;
    if (k == 0) { return; }
    if (k > 0 && k < 8) {
        if ((addr & 7) + n <= (long)k) { return; }
    }
    __trap_asan();
}

void __asan_check_range(void *p, long n) {
    long addr = (long)p;
    long sb = __asan_off + (addr >> 3);
    long last = __asan_off + ((addr + n - 1) >> 3);
    char k;
    if (n <= 0) { return; }
    while (sb < last) {
        if (*(char*)sb != 0) { __trap_asan(); }
        sb++;
    }
    k = *(char*)sb;
    if (k == 0) { return; }
    if (k > 0 && k < 8) {
        if (((addr + n - 1) & 7) < (long)k) { return; }
    }
    __trap_asan();
}

void __rt_scheme_init(void) {
    __asan_off = __shadow_offset();
}
"""

GCC_SCHEME_RUNTIME = r"""
unsigned long __stack_chk_guard = 0;

void __stack_chk_fail(void) {
    __trap_canary();
}

void __canary_check(long value) {
    if (value != (long)__stack_chk_guard) { __stack_chk_fail(); }
}

void __rt_scheme_init(void) {
    __stack_chk_guard = 0xDEADBEEFCAFE0000;
}
"""

BOGO_SCHEME_RUNTIME = _GLOBAL_LOCK_SNIPPET + r"""
/* registry of containers known to hold heap pointers (the modelled
   MPX bound table pages BOGO scans on free) */
long __bogo_reg_arr[4096];
long __bogo_reg_n = 0;
long __bogo_shadow_off = 0;

void __bogo_reg(long container) {
    __bogo_reg_arr[__bogo_reg_n & 4095] = container;
    __bogo_reg_n = __bogo_reg_n + 1;
}

void __bogo_free_scan(long base, long bound) {
    /* BOGO: nullify the bounds of every table entry whose pointer
       points into the freed region -> later checks fail (partial
       temporal safety, use-after-free only). */
    long count = __bogo_reg_n;
    long i;
    long c;
    long v;
    if (count > 4096) { count = 4096; }
    for (i = 0; i < count; i++) {
        c = __bogo_reg_arr[i];
        v = *(long*)c;
        if (v >= base && v < bound) {
            *(long*)((c << 2) + __bogo_shadow_off) = 0;
        }
    }
}

void __bogo_free(void *p) {
    if (!p) { return; }
    __bogo_free_scan((long)p, (long)p + __alloc_size(p));
    free(p);
}

void __rt_scheme_init(void) {
    __bogo_shadow_off = __shadow_offset();
    __global_lock = __lock_alloc();
    __global_key = *(long*)__global_lock;
}
"""

WDL_SCHEME_RUNTIME = _GLOBAL_LOCK_SNIPPET + r"""
/* WatchdogLite metadata registers (narrow mode keeps them in memory,
   wide mode keeps metadata in the 256-bit SRF instead). */
long __wm_base = 0;
long __wm_bound = 0;
long __wm_key = 0;
long __wm_lock = 0;
long __wdl_shadow_off = 0;

/* narrow mode: direct (linear, uncompressed) shadow, no trie walk */
void __wdl_mload(long addr) {
    long s = (addr << 2) + __wdl_shadow_off;
    __wm_base = *(long*)s;
    __wm_bound = *(long*)(s + 8);
    __wm_key = *(long*)(s + 16);
    __wm_lock = *(long*)(s + 24);
}

void __wdl_mstore(long addr) {
    long s = (addr << 2) + __wdl_shadow_off;
    *(long*)s = __wm_base;
    *(long*)(s + 8) = __wm_bound;
    *(long*)(s + 16) = __wm_key;
    *(long*)(s + 24) = __wm_lock;
}

void __wdl_setmeta(long base, long bound, long key, long lock) {
    __wm_base = base;
    __wm_bound = bound;
    __wm_key = key;
    __wm_lock = lock;
}

void __wdl_spatial(long addr, long n, long base, long bound) {
    if (addr < base) { __trap_spatial(); }
    if (addr + n > bound) { __trap_spatial(); }
}

long __wdl_sstack[512];

void __wdl_ss_push(long index) {
    long at = index * 4;
    __wdl_sstack[at] = __wm_base;
    __wdl_sstack[at + 1] = __wm_bound;
    __wdl_sstack[at + 2] = __wm_key;
    __wdl_sstack[at + 3] = __wm_lock;
}

void __wdl_ss_pop(long index) {
    long at = index * 4;
    __wm_base = __wdl_sstack[at];
    __wm_bound = __wdl_sstack[at + 1];
    __wm_key = __wdl_sstack[at + 2];
    __wm_lock = __wdl_sstack[at + 3];
}

void __wdl_ss_pushret(void) {
    __wdl_sstack[504] = __wm_base;
    __wdl_sstack[505] = __wm_bound;
    __wdl_sstack[506] = __wm_key;
    __wdl_sstack[507] = __wm_lock;
}

void __wdl_ss_popret(void) {
    __wm_base = __wdl_sstack[504];
    __wm_bound = __wdl_sstack[505];
    __wm_key = __wdl_sstack[506];
    __wm_lock = __wdl_sstack[507];
}

void __wdl_check(long addr, long n) {
    if (addr < __wm_base) { __trap_spatial(); }
    if (addr + n > __wm_bound) { __trap_spatial(); }
    if (__wm_lock == 0) { __trap_temporal(); }
    if (*(long*)__wm_lock != __wm_key) { __trap_temporal(); }
}

void __wdl_free_check(long p) {
    if (p == 0) { return; }
    if (p != __wm_base) { __trap_temporal(); }
    if (__wm_lock == 0) { __trap_temporal(); }
    if (*(long*)__wm_lock != __wm_key) { __trap_temporal(); }
    __lock_free(__wm_lock);
}

/* wide mode free check reads uncompressed metadata straight from the
   shadow of the pointer's container */
void __wdl_free_check_at(long p, long container) {
    long s = (container << 2) + __wdl_shadow_off;
    long base = *(long*)s;
    long key = *(long*)(s + 16);
    long lock = *(long*)(s + 24);
    if (p == 0) { return; }
    if (p != base) { __trap_temporal(); }
    if (lock == 0) { __trap_temporal(); }
    if (*(long*)lock != key) { __trap_temporal(); }
    __lock_free(lock);
}

void __rt_scheme_init(void) {
    __wdl_shadow_off = __shadow_offset();
    __global_lock = __lock_alloc();
    __global_key = *(long*)__global_lock;
}
"""


SCHEME_RUNTIMES = {
    "baseline": BASELINE_SCHEME_RUNTIME,
    "hwst": HWST_SCHEME_RUNTIME,
    "sbcets": None,       # built by sbcets_runtime(shadow)
    "asan": ASAN_SCHEME_RUNTIME,
    "gcc": GCC_SCHEME_RUNTIME,
    "bogo": BOGO_SCHEME_RUNTIME,
    "wdl": WDL_SCHEME_RUNTIME,
}


def runtime_source(scheme_runtime: str = "baseline",
                   sbcets_shadow: str = "trie") -> str:
    """Full runtime source for a scheme family."""
    if scheme_runtime == "sbcets":
        extra = sbcets_runtime(sbcets_shadow)
    else:
        extra = SCHEME_RUNTIMES[scheme_runtime]
    return BASE_RUNTIME + extra
