"""Program assembly: lay out globals, emit stubs, resolve symbols.

``build_program`` turns a (possibly instrumented) IR module plus the
runtime into a loadable :class:`Program`:

1. globals (user + runtime + string literals) are placed in the data
   segment with their alignment;
2. every IR function is lowered by :mod:`repro.codegen.lower`;
3. assembly stubs provide the ecall veneers and platform constants
   (heap window, lock table window, shadow offset) that the mini-C
   runtime cannot express;
4. ``_start`` programs the HWST128 CSRs (the paper: field widths and
   the shadow offset are set at the beginning of the program), calls
   ``__rt_init`` then ``main``, and exits with main's return value;
5. call/hi/lo relocations are patched.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import bits
from repro.core.config import HwstConfig
from repro.errors import LinkError
from repro.isa import csr as csrdef
from repro.isa.instructions import Instr, SPEC_TABLE, li_sequence
from repro.isa.registers import A0, A7, RA, T0, ZERO
from repro.ir.ir import Module
from repro.codegen.lower import CodegenOptions, compile_function
from repro.sim.memory import DEFAULT_LAYOUT, MemoryLayout
from repro.sim.machine import SYS_ABORT, SYS_EXIT, SYS_WRITE

# ecall numbers for the classified safety aborts (see machine handling
# in repro.schemes.run: these appear as abort reasons).
SYS_TRAP_SPATIAL = 1001
SYS_TRAP_TEMPORAL = 1002
SYS_TRAP_ASAN = 1003
SYS_TRAP_CANARY = 1004


# ---------------------------------------------------------------------------
# Check-op mutation (repro.faultinject)
# ---------------------------------------------------------------------------
#
# Fault models for "a check instruction went missing / appeared where it
# should not": both are in-place single-instruction substitutions, so
# the text layout (and every already-patched relative branch) is
# untouched. The checked fused accesses and their plain twins follow
# the ``<op>.chk`` naming convention; the table below is derived from
# SPEC_TABLE rather than hard-coded so new checked ops join for free.

PLAIN_OF_CHECKED = {
    name: name[:-len(".chk")]
    for name, spec in SPEC_TABLE.items()
    if spec.checked and name.endswith(".chk")
    and name[:-len(".chk")] in SPEC_TABLE
}
CHECKED_OF_PLAIN = {plain: chk for chk, plain in PLAIN_OF_CHECKED.items()}


def _check_sites(instrs: List[Instr]) -> List[int]:
    """Indexes of HWST128 check ops (tchk + fused checked accesses)."""
    return [i for i, ins in enumerate(instrs)
            if ins.op == "tchk" or ins.op in PLAIN_OF_CHECKED]


def _plain_mem_sites(instrs: List[Instr]) -> List[int]:
    """Indexes of plain loads/stores that have a checked twin."""
    return [i for i, ins in enumerate(instrs)
            if ins.op in CHECKED_OF_PLAIN]


def mutate_check_ops(program, kind: str, select: int) -> str:
    """Mutate one HWST128 check op of ``program`` in place.

    ``kind`` is ``"check_drop"`` (a check instruction is lost: ``tchk``
    becomes a nop, a fused checked access becomes its unchecked twin)
    or ``"check_dup"`` (a spurious check appears: a plain access becomes
    its checked twin, which will consult whatever — likely invalid —
    metadata sits in SRF[rs1]). ``select`` picks the site
    deterministically. Returns a human-readable description of the
    mutation, or ``""`` when the program has no eligible site (the
    fault lands nowhere — a masked outcome by construction).
    """
    instrs = program.instrs
    if kind == "check_drop":
        sites = _check_sites(instrs)
        if not sites:
            return ""
        index = sites[select % len(sites)]
        ins = instrs[index]
        pc = program.text_base + 4 * index
        if ins.op == "tchk":
            instrs[index] = Instr("addi", rd=0, rs1=0, imm=0,
                                  comment="faultinject: dropped tchk")
            return f"dropped tchk at {pc:#x}"
        old = ins.op
        instrs[index] = Instr(PLAIN_OF_CHECKED[old], rd=ins.rd,
                              rs1=ins.rs1, rs2=ins.rs2, imm=ins.imm,
                              comment=f"faultinject: unchecked {old}")
        return f"dropped check of {old} at {pc:#x}"
    if kind == "check_dup":
        sites = _plain_mem_sites(instrs)
        if not sites:
            return ""
        index = sites[select % len(sites)]
        ins = instrs[index]
        pc = program.text_base + 4 * index
        old = ins.op
        instrs[index] = Instr(CHECKED_OF_PLAIN[old], rd=ins.rd,
                              rs1=ins.rs1, rs2=ins.rs2, imm=ins.imm,
                              comment=f"faultinject: spurious check on {old}")
        return f"added spurious check to {old} at {pc:#x}"
    raise ValueError(f"unknown check mutation kind {kind!r}")


def _stub_ret() -> Instr:
    return Instr("jalr", rd=ZERO, rs1=RA, imm=0)


def _const_stub(value: int) -> List[Instr]:
    return li_sequence(A0, value) + [_stub_ret()]


def _ecall_stub(number: int, returns: bool = True) -> List[Instr]:
    out = li_sequence(A7, number) + [Instr("ecall")]
    if returns:
        out.append(_stub_ret())
    return out


def asm_stubs(config: HwstConfig,
              layout: MemoryLayout) -> Dict[str, List[Instr]]:
    """Hand-written assembly functions linked into every program."""
    return {
        "exit": _ecall_stub(SYS_EXIT, returns=False),
        "abort": _ecall_stub(SYS_ABORT, returns=False),
        "__ecall_write": _ecall_stub(SYS_WRITE),
        "__trap_spatial": _ecall_stub(SYS_TRAP_SPATIAL, returns=False),
        "__trap_temporal": _ecall_stub(SYS_TRAP_TEMPORAL, returns=False),
        "__trap_asan": _ecall_stub(SYS_TRAP_ASAN, returns=False),
        "__trap_canary": _ecall_stub(SYS_TRAP_CANARY, returns=False),
        "__heap_base": _const_stub(layout.heap_base),
        "__heap_end": _const_stub(layout.heap_top),
        "__lock_table_base": _const_stub(config.lock_base),
        "__lock_table_end": _const_stub(config.lock_limit),
        "__shadow_offset": _const_stub(config.shadow_offset),
        "__cycles": [Instr("csrrs", rd=A0, rs1=ZERO, imm=csrdef.CYCLE),
                     _stub_ret()],
    }


def _start_code(config: HwstConfig) -> List[Instr]:
    """Entry stub: program the HWST128 CSRs, init the runtime, run main."""
    widths = config.widths
    packed = csrdef.pack_meta_widths(widths.base, widths.range,
                                     widths.lock, widths.key)
    out: List[Instr] = []
    for csr_addr, value in (
        (csrdef.HWST_SM_OFFSET, config.shadow_offset),
        (csrdef.HWST_META_WIDTHS, packed),
        (csrdef.HWST_LOCK_BASE, config.lock_base),
        (csrdef.HWST_LOCK_LIMIT, config.lock_limit),
    ):
        out += li_sequence(T0, value)
        out.append(Instr("csrrw", rd=ZERO, rs1=T0, imm=csr_addr))
    out.append(Instr("jal", rd=RA, sym="__rt_init", sym_kind="call"))
    out.append(Instr("jal", rd=RA, sym="main", sym_kind="call"))
    out += li_sequence(A7, SYS_EXIT)
    out.append(Instr("ecall"))
    return out


def build_program(module: Module,
                  config: Optional[HwstConfig] = None,
                  layout: MemoryLayout = DEFAULT_LAYOUT,
                  options: Optional[CodegenOptions] = None,
                  meta: Optional[dict] = None,
                  phases=None):
    """Link ``module`` into an executable :class:`Program`.

    ``phases`` (a :class:`repro.obs.phases.PhaseTimers`) splits the
    backend wall time into the per-function ``lower`` phase and the
    surrounding ``link`` work (layout, placement, relocation).
    """
    from repro.obs.phases import NULL_PHASES
    from repro.sim.program import Program, Segment

    config = config or HwstConfig()
    options = options or CodegenOptions()
    phases = phases if phases is not None else NULL_PHASES

    if "main" not in module.functions:
        raise LinkError("no main() in module")
    if "__rt_init" not in module.functions:
        raise LinkError("no __rt_init() — runtime not linked in")

    # 1. Data segment layout.
    with phases.phase("link"):
        global_addr: Dict[str, int] = {}
        cursor = layout.data_base
        blob = bytearray()
        for data in module.globals.values():
            align = max(data.align, 8 if not data.is_string else 1)
            aligned = bits.align_up(cursor, align)
            blob += b"\x00" * (aligned - cursor)
            cursor = aligned
            global_addr[data.name] = cursor
            chunk = data.data.ljust(data.size, b"\x00")
            blob += chunk
            cursor += data.size
        if cursor > layout.heap_base:
            raise LinkError(
                f"data segment overflows into the heap "
                f"({cursor:#x} > {layout.heap_base:#x})")

    # 2. Compile functions.
    with phases.phase("lower"):
        chunks: List[tuple] = [("_start", _start_code(config))]
        for name, code in asm_stubs(config, layout).items():
            if name in module.functions:
                continue  # a runtime/user definition overrides the stub
            chunks.append((name, code))
        for name, fn in module.functions.items():
            chunks.append((name, compile_function(fn, options)))

    with phases.phase("link"):
        # 3. Place sequentially.
        func_addr: Dict[str, int] = {}
        instrs: List[Instr] = []
        for name, code in chunks:
            func_addr[name] = layout.text_base + 4 * len(instrs)
            instrs.extend(code)
        text_end = layout.text_base + 4 * len(instrs)
        if text_end > layout.data_base:
            raise LinkError(f"text overflows data base ({text_end:#x})")

        # 4. Patch relocations.
        for index, ins in enumerate(instrs):
            if ins.sym is None:
                continue
            pc = layout.text_base + 4 * index
            if ins.sym_kind == "call":
                target = func_addr.get(ins.sym)
                if target is None:
                    raise LinkError(f"undefined function {ins.sym!r}")
                offset = target - pc
                if not bits.fits_signed(offset, 21):
                    raise LinkError(f"call to {ins.sym!r} out of jal range")
                ins.imm = offset
            elif ins.sym_kind in ("hi", "lo"):
                addr = global_addr.get(ins.sym)
                if addr is None:
                    raise LinkError(f"undefined global {ins.sym!r}")
                hi = (addr + 0x800) >> 12
                if ins.sym_kind == "hi":
                    ins.imm = hi & 0xFFFFF
                else:
                    ins.imm = addr - (hi << 12)
            else:
                raise LinkError(
                    f"unresolved local label {ins.sym!r} escaped codegen")
            ins.sym = None
            ins.sym_kind = ""

    symbols = dict(func_addr)
    symbols.update(global_addr)
    program_meta = dict(module.meta)
    if meta:
        program_meta.update(meta)
    return Program(
        instrs=instrs,
        entry=func_addr["_start"],
        text_base=layout.text_base,
        segments=[Segment(addr=layout.data_base, data=bytes(blob),
                          name="data")],
        symbols=symbols,
        layout=layout,
        meta=program_meta,
    )
