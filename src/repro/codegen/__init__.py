"""RV64 code generation, runtime library and linking.

* :mod:`repro.codegen.lower` — IR -> RV64 instruction selection with a
  per-block temp allocator (-O0 register pressure model);
* :mod:`repro.codegen.runtime` — the mini-C runtime library sources
  (allocator, string ops, printing, lock table, per-scheme runtimes);
* :mod:`repro.codegen.link` — program assembly: global layout, asm
  stubs, ``_start``, symbol resolution, the final :class:`Program`.
"""

from repro.codegen.lower import CodegenOptions, compile_function
from repro.codegen.link import build_program

__all__ = ["CodegenOptions", "compile_function", "build_program"]
