"""IR -> RV64 lowering (-O0 style).

Frame layout (descending from the frame pointer ``s0``)::

    s0 -  8   saved ra
    s0 - 16   saved old s0
              __canary          (gcc scheme; adjacent to saved regs)
              object locals     (arrays/structs/address-taken)
              scalar locals     (params, named scalars, hidden temps)
              spill slots       (expression-tree overflow, call spills)

Temporaries use t0-t6 with a per-block allocator; values crossing
statements live in slots (the IR guarantees this). ``gp`` is reserved as
an addressing scratch register for frames larger than the 12-bit
immediate range. Pointer-typed temporaries that must survive a call or
a spill carry their metadata with them through the shadow of the spill
slot, using whichever metadata instructions the active scheme provides
(HWST128 ``sbd/lbd``, MPX ``bndstx/bndldx``, AVX ``vst256/vld256``) —
this is exactly the register-spill metadata traffic the paper's SRF is
designed to keep cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import bits
from repro.errors import CodegenError
from repro.isa.instructions import Instr, li_sequence
from repro.isa.registers import A0, GP, RA, S0, SP, T0, ZERO
from repro.ir import ir as irdef

TEMP_REGS = (5, 6, 7, 28, 29, 30, 31)          # t0-t6
SPILL_SLOTS = 24


@dataclass(frozen=True)
class CodegenOptions:
    """Scheme-dependent lowering knobs."""

    # How pointer metadata travels when a pointer temp is spilled:
    # None (no metadata), "hwst" (sbdl/sbdu + lbdls/lbdus),
    # "mpx" (bndstx/bndldx), "avx" (vst256/vld256).
    spill_meta: Optional[str] = None


_LOAD_OPS = {(1, True): "lb", (1, False): "lbu", (2, True): "lh",
             (2, False): "lhu", (4, True): "lw", (4, False): "lwu",
             (8, True): "ld", (8, False): "ld"}
_STORE_OPS = {1: "sb", 2: "sh", 4: "sw", 8: "sd"}


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


class _FnEmitter:
    def __init__(self, fn: irdef.Function, options: CodegenOptions):
        self.fn = fn
        self.options = options
        self.out: List[Instr] = []
        self.labels: Dict[str, int] = {}
        self._layout_frame()
        # allocator state (reset per block)
        self.regmap: Dict[int, int] = {}
        self.spillmap: Dict[int, int] = {}
        self.free_regs: List[int] = []
        self.free_spills: List[int] = []
        self.last_use: Dict[int, int] = {}
        self.cur_index = 0

    # ------------------------------------------------------------------
    # Frame
    # ------------------------------------------------------------------

    def _layout_frame(self):
        slots = list(self.fn.locals.values())
        canary = [s for s in slots if s.name == "__canary"]
        objects = [s for s in slots
                   if s.is_object and s.name != "__canary"]
        scalars = [s for s in slots
                   if not s.is_object and s.name != "__canary"]
        self.slot_offset: Dict[str, int] = {}
        cursor = 16  # ra + old s0
        for slot in canary + objects + scalars:
            # Stack objects are 8-aligned regardless of element type:
            # the metadata compression drops 3 base bits (Eq. 3) and
            # ASAN's shadow bytes cover 8-byte granules, so object
            # bases must sit on the grid (compilers do the same).
            align = max(slot.align, 8) if slot.is_object \
                else max(slot.align, 1)
            cursor = _align_up(cursor + slot.size, align)
            self.slot_offset[slot.name] = cursor
        cursor = _align_up(cursor, 8)
        self.spill_base = cursor + 8
        cursor += 8 * SPILL_SLOTS
        self.frame_size = _align_up(cursor, 16)

    def local_offset(self, name: str) -> int:
        try:
            return self.slot_offset[name]
        except KeyError:
            raise CodegenError(
                f"{self.fn.name}: unknown local {name!r}") from None

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------

    def emit(self, op, **kw) -> Instr:
        ins = Instr(op, **kw) if isinstance(op, str) else op
        self.out.append(ins)
        return ins

    def emit_li(self, rd: int, value: int):
        for ins in li_sequence(rd, value):
            self.out.append(ins)

    def emit_mv(self, rd: int, rs: int):
        if rd != rs:
            self.emit("addi", rd=rd, rs1=rs, imm=0)

    def slot_base_imm(self, offset: int) -> Tuple[int, int]:
        """Return (base_reg, imm) addressing ``s0 - offset``.

        Uses ``gp`` as scratch when the offset exceeds the I-immediate.
        """
        if -2048 <= -offset <= 2047:
            return S0, -offset
        self.emit_li(GP, offset)
        self.emit("sub", rd=GP, rs1=S0, rs2=GP)
        return GP, 0

    def emit_addr_of_slot(self, rd: int, name: str):
        offset = self.local_offset(name)
        if -2048 <= -offset <= 2047:
            self.emit("addi", rd=rd, rs1=S0, imm=-offset)
        else:
            self.emit_li(rd, offset)
            self.emit("sub", rd=rd, rs1=S0, rs2=rd)

    # ------------------------------------------------------------------
    # Register allocation
    # ------------------------------------------------------------------

    def _block_reset(self, block: irdef.BasicBlock):
        self.regmap.clear()
        self.spillmap.clear()
        self.free_regs = list(TEMP_REGS)
        self.free_spills = list(range(SPILL_SLOTS))
        self.last_use = {}
        for index, ins in enumerate(block.instrs):
            for v in ins.uses():
                self.last_use[v] = index

    def _is_ptr(self, v: int) -> bool:
        ctype = self.fn.vreg_types[v]
        return ctype is not None and ctype.is_pointer()

    def _spill_slot_imm(self, slot: int) -> Tuple[int, int]:
        return self.slot_base_imm(self.spill_base + 8 * slot)

    def _spill(self, victim: int):
        reg = self.regmap.pop(victim)
        if not self.free_spills:
            raise CodegenError(f"{self.fn.name}: out of spill slots")
        slot = self.free_spills.pop()
        self.spillmap[victim] = slot
        base, imm = self._spill_slot_imm(slot)
        self.emit("sd", rs1=base, rs2=reg, imm=imm)
        if self._is_ptr(victim):
            self._emit_meta_spill(reg, base, imm)
        self.free_regs.append(reg)

    def _emit_meta_spill(self, reg: int, base: int, imm: int):
        meta = self.options.spill_meta
        if meta == "hwst":
            self.emit("sbdl", rs1=base, rs2=reg, imm=imm)
            self.emit("sbdu", rs1=base, rs2=reg, imm=imm)
        elif meta == "mpx":
            self.emit("bndstx", rs1=base, rs2=reg, imm=imm)
        elif meta == "avx":
            self.emit("vst256", rs1=base, rs2=reg, imm=imm)

    def _emit_meta_reload(self, reg: int, base: int, imm: int):
        meta = self.options.spill_meta
        if meta == "hwst":
            self.emit("lbdls", rd=reg, rs1=base, imm=imm)
            self.emit("lbdus", rd=reg, rs1=base, imm=imm)
        elif meta == "mpx":
            self.emit("bndldx", rd=reg, rs1=base, imm=imm)
        elif meta == "avx":
            self.emit("vld256", rd=reg, rs1=base, imm=imm)

    def _alloc(self, protect: Tuple[int, ...] = ()) -> int:
        if self.free_regs:
            return self.free_regs.pop()
        protected_regs = {self.regmap[v] for v in protect
                          if v in self.regmap}
        for victim, reg in list(self.regmap.items()):
            if reg not in protected_regs:
                self._spill(victim)
                return self.free_regs.pop()
        raise CodegenError(f"{self.fn.name}: register pressure too high")

    def _use(self, v: int, protect: Tuple[int, ...] = ()) -> int:
        if v in self.regmap:
            return self.regmap[v]
        if v in self.spillmap:
            slot = self.spillmap.pop(v)
            reg = self._alloc(protect)
            base, imm = self._spill_slot_imm(slot)
            self.emit("ld", rd=reg, rs1=base, imm=imm)
            if self._is_ptr(v):
                self._emit_meta_reload(reg, base, imm)
            self.free_spills.append(slot)
            self.regmap[v] = reg
            return reg
        raise CodegenError(
            f"{self.fn.name}: vreg {v} has no location (use before def?)")

    def _release_if_dead(self, v: int, index: int):
        if self.last_use.get(v, -1) <= index:
            if v in self.regmap:
                self.free_regs.append(self.regmap.pop(v))
            elif v in self.spillmap:
                self.free_spills.append(self.spillmap.pop(v))

    def _def(self, v: int, protect: Tuple[int, ...] = ()) -> int:
        reg = self._alloc(protect)
        self.regmap[v] = reg
        return reg

    def _finish_instr(self, ins: irdef.IRInstr, index: int):
        for v in set(ins.uses()):
            self._release_if_dead(v, index)
        for v in ins.defs():
            if v not in self.last_use:   # dead result
                self._release_if_dead(v, index)

    # ------------------------------------------------------------------
    # Function body
    # ------------------------------------------------------------------

    def run(self) -> List[Instr]:
        self._emit_prologue()
        for block in self.fn.blocks:
            self.labels[block.label] = len(self.out)
            self._block_reset(block)
            for index, ins in enumerate(block.instrs):
                self.cur_index = index
                self._emit_ir(ins, index)
        self._resolve_local_labels()
        return self.out

    def _emit_prologue(self):
        frame = self.frame_size
        if frame <= 2047:
            self.emit("addi", rd=SP, rs1=SP, imm=-frame)
            self.emit("sd", rs1=SP, rs2=RA, imm=frame - 8)
            self.emit("sd", rs1=SP, rs2=S0, imm=frame - 16)
            self.emit("addi", rd=S0, rs1=SP, imm=frame)
        else:
            self.emit_li(GP, frame)
            self.emit("sub", rd=SP, rs1=SP, rs2=GP)
            self.emit("add", rd=GP, rs1=SP, rs2=GP)
            self.emit("sd", rs1=GP, rs2=RA, imm=-8)
            self.emit("sd", rs1=GP, rs2=S0, imm=-16)
            self.emit_mv(S0, GP)

    def _emit_epilogue(self):
        self.emit("ld", rd=RA, rs1=S0, imm=-8)
        self.emit_mv(SP, S0)
        self.emit("ld", rd=S0, rs1=SP, imm=-16)
        self.emit("jalr", rd=ZERO, rs1=RA, imm=0)

    def _resolve_local_labels(self):
        for index, ins in enumerate(self.out):
            if ins.sym is not None and ins.sym_kind == "local":
                target = self.labels.get(ins.sym)
                if target is None:
                    raise CodegenError(
                        f"{self.fn.name}: unresolved label {ins.sym!r}")
                ins.imm = 4 * (target - index)
                ins.sym = None
                ins.sym_kind = ""

    # ------------------------------------------------------------------
    # Per-IR-instruction lowering
    # ------------------------------------------------------------------

    def _emit_ir(self, ins: irdef.IRInstr, index: int):
        handler = _IR_HANDLERS.get(type(ins))
        if handler is None:
            raise CodegenError(
                f"{self.fn.name}: cannot lower {type(ins).__name__}")
        handler(self, ins, index)


# ---------------------------------------------------------------------------
# IR handlers (module-level functions keyed by IR class)
# ---------------------------------------------------------------------------

def _h_iconst(em: _FnEmitter, ins: irdef.IConst, index: int):
    rd = em._def(ins.dst)
    em.emit_li(rd, ins.value)
    em._finish_instr(ins, index)


def _h_getparam(em: _FnEmitter, ins: irdef.GetParam, index: int):
    if ins.index >= 8:
        raise CodegenError("more than 8 arguments are not supported")
    rd = em._def(ins.dst)
    em.emit_mv(rd, A0 + ins.index)
    em._finish_instr(ins, index)


def _h_addrlocal(em: _FnEmitter, ins: irdef.AddrLocal, index: int):
    rd = em._def(ins.dst)
    em.emit_addr_of_slot(rd, ins.name)
    em._finish_instr(ins, index)


def _h_addrglobal(em: _FnEmitter, ins: irdef.AddrGlobal, index: int):
    rd = em._def(ins.dst)
    # Absolute address resolved by the linker (hi/lo pair).
    em.emit("lui", rd=rd, sym=ins.name, sym_kind="hi")
    em.emit("addiw", rd=rd, rs1=rd, sym=ins.name, sym_kind="lo")
    em._finish_instr(ins, index)


def _normalise(em: _FnEmitter, reg: int, width: int, signed: bool):
    """Renormalise ``reg`` to the canonical form of a width-byte int."""
    if width in (0, 8):
        return
    if width == 4:
        if signed:
            em.emit("addiw", rd=reg, rs1=reg, imm=0)
        else:
            em.emit("slli", rd=reg, rs1=reg, imm=32)
            em.emit("srli", rd=reg, rs1=reg, imm=32)
    elif width == 2:
        em.emit("slli", rd=reg, rs1=reg, imm=48)
        em.emit("srai" if signed else "srli", rd=reg, rs1=reg, imm=48)
    elif width == 1:
        if signed:
            em.emit("slli", rd=reg, rs1=reg, imm=56)
            em.emit("srai", rd=reg, rs1=reg, imm=56)
        else:
            em.emit("andi", rd=reg, rs1=reg, imm=0xFF)
    else:
        raise CodegenError(f"bad conversion width {width}")


_W4_OPS = {"add": "addw", "sub": "subw", "mul": "mulw",
           "sdiv": "divw", "udiv": "divuw", "srem": "remw",
           "urem": "remuw", "shl": "sllw", "lshr": "srlw", "ashr": "sraw"}
_N_OPS = {"add": "add", "sub": "sub", "mul": "mul", "sdiv": "div",
          "udiv": "divu", "srem": "rem", "urem": "remu", "and": "and",
          "or": "or", "xor": "xor", "shl": "sll", "lshr": "srl",
          "ashr": "sra"}


def _h_binop(em: _FnEmitter, ins: irdef.BinOp, index: int):
    ra_ = em._use(ins.a, protect=(ins.b,))
    rb = em._use(ins.b, protect=(ins.a,))
    rd = em._def(ins.dst, protect=(ins.a, ins.b))
    op = ins.op
    if op in ("eq", "ne"):
        em.emit("xor", rd=rd, rs1=ra_, rs2=rb)
        if op == "eq":
            em.emit("sltiu", rd=rd, rs1=rd, imm=1)
        else:
            em.emit("sltu", rd=rd, rs1=ZERO, rs2=rd)
    elif op in ("slt", "ult"):
        em.emit("slt" if op == "slt" else "sltu", rd=rd, rs1=ra_, rs2=rb)
    elif op in ("sgt", "ugt"):
        em.emit("slt" if op == "sgt" else "sltu", rd=rd, rs1=rb, rs2=ra_)
    elif op in ("sle", "ule"):
        em.emit("slt" if op == "sle" else "sltu", rd=rd, rs1=rb, rs2=ra_)
        em.emit("xori", rd=rd, rs1=rd, imm=1)
    elif op in ("sge", "uge"):
        em.emit("slt" if op == "sge" else "sltu", rd=rd, rs1=ra_, rs2=rb)
        em.emit("xori", rd=rd, rs1=rd, imm=1)
    else:
        width = ins.width
        if width == 4 and op in _W4_OPS:
            em.emit(_W4_OPS[op], rd=rd, rs1=ra_, rs2=rb)
            if not ins.signed:
                _normalise(em, rd, 4, False)
        elif op in _N_OPS:
            em.emit(_N_OPS[op], rd=rd, rs1=ra_, rs2=rb)
            if width in (1, 2):
                _normalise(em, rd, width, ins.signed)
        else:
            raise CodegenError(f"unknown binop {op!r}")
    em._finish_instr(ins, index)


def _h_unop(em: _FnEmitter, ins: irdef.UnOp, index: int):
    ra_ = em._use(ins.a)
    rd = em._def(ins.dst, protect=(ins.a,))
    if ins.op == "neg":
        if ins.width == 4:
            em.emit("subw", rd=rd, rs1=ZERO, rs2=ra_)
            if not ins.signed:
                _normalise(em, rd, 4, False)
        else:
            em.emit("sub", rd=rd, rs1=ZERO, rs2=ra_)
            if ins.width in (1, 2):
                _normalise(em, rd, ins.width, ins.signed)
    elif ins.op == "not":
        em.emit("xori", rd=rd, rs1=ra_, imm=-1)
        if ins.width in (1, 2, 4):
            _normalise(em, rd, ins.width, ins.signed)
    elif ins.op == "lognot":
        em.emit("sltiu", rd=rd, rs1=ra_, imm=1)
    else:
        raise CodegenError(f"unknown unop {ins.op!r}")
    em._finish_instr(ins, index)


def _h_conv(em: _FnEmitter, ins: irdef.Conv, index: int):
    ra_ = em._use(ins.a)
    rd = em._def(ins.dst, protect=(ins.a,))
    em.emit_mv(rd, ra_)
    _normalise(em, rd, ins.width, ins.signed)
    em._finish_instr(ins, index)


def _h_load(em: _FnEmitter, ins: irdef.Load, index: int):
    raddr = em._use(ins.addr)
    rd = em._def(ins.dst, protect=(ins.addr,))
    op = _LOAD_OPS[(ins.size, ins.signed if ins.size < 8 else True)]
    if ins.checked:
        op += ".chk"
    em.emit(op, rd=rd, rs1=raddr, imm=0)
    em._finish_instr(ins, index)


def _h_store(em: _FnEmitter, ins: irdef.Store, index: int):
    raddr = em._use(ins.addr, protect=(ins.src,))
    rsrc = em._use(ins.src, protect=(ins.addr,))
    op = _STORE_OPS[ins.size]
    if ins.checked:
        op += ".chk"
    em.emit(op, rs1=raddr, rs2=rsrc, imm=0)
    em._finish_instr(ins, index)


def _h_call(em: _FnEmitter, ins: irdef.Call, index: int):
    if len(ins.args) > 8:
        raise CodegenError("more than 8 call arguments")
    # Move arguments into a0..a7 (sources are always t-regs). Later
    # args still sitting in temp regs may be spilled to make room —
    # they reload when their turn comes.
    for position, v in enumerate(ins.args):
        reg = em._use(v)
        em.emit_mv(A0 + position, reg)
        # Free now unless this vreg appears again later in the arg list
        # or has later uses.
        if v not in ins.args[position + 1:]:
            em._release_if_dead(v, index)
    # Spill every temp that survives the call (t-regs are caller-saved).
    for victim in list(em.regmap):
        em._spill(victim)
    em.emit("jal", rd=RA, sym=ins.name, sym_kind="call")
    if ins.dst is not None and ins.dst in em.last_use:
        rd = em._def(ins.dst)
        em.emit_mv(rd, A0)
    em._finish_instr(ins, index)


def _h_ret(em: _FnEmitter, ins: irdef.Ret, index: int):
    if ins.value is not None:
        reg = em._use(ins.value)
        em.emit_mv(A0, reg)
    em._emit_epilogue()
    em._finish_instr(ins, index)


def _h_br(em: _FnEmitter, ins: irdef.Br, index: int):
    cond = em._use(ins.cond)
    em._finish_instr(ins, index)
    em.emit("bne", rs1=cond, rs2=ZERO, imm=8)
    em.emit("jal", rd=ZERO, sym=ins.else_label, sym_kind="local")
    em.emit("jal", rd=ZERO, sym=ins.then_label, sym_kind="local")


def _h_jmp(em: _FnEmitter, ins: irdef.Jmp, index: int):
    em.emit("jal", rd=ZERO, sym=ins.label, sym_kind="local")
    em._finish_instr(ins, index)


def _h_trapif(em: _FnEmitter, ins: irdef.TrapIf, index: int):
    cond = em._use(ins.cond)
    em._finish_instr(ins, index)
    em.emit("beq", rs1=cond, rs2=ZERO, imm=8)   # skip the trap jump
    em.emit("jal", rd=ZERO, sym=f"__trap_{ins.kind}", sym_kind="call")


# -- HWST128 extension ops -----------------------------------------------

def _h_bndrs(em: _FnEmitter, ins: irdef.HwBndrs, index: int):
    rptr = em._use(ins.ptr, protect=(ins.base, ins.bound))
    rbase = em._use(ins.base, protect=(ins.ptr, ins.bound))
    rbound = em._use(ins.bound, protect=(ins.ptr, ins.base))
    em.emit("bndrs", rd=rptr, rs1=rbase, rs2=rbound)
    em._finish_instr(ins, index)


def _h_bndrt(em: _FnEmitter, ins: irdef.HwBndrt, index: int):
    rptr = em._use(ins.ptr, protect=(ins.key, ins.lock))
    rkey = em._use(ins.key, protect=(ins.ptr, ins.lock))
    rlock = em._use(ins.lock, protect=(ins.ptr, ins.key))
    em.emit("bndrt", rd=rptr, rs1=rkey, rs2=rlock)
    em._finish_instr(ins, index)


def _h_tchk(em: _FnEmitter, ins: irdef.HwTchk, index: int):
    rptr = em._use(ins.ptr)
    em.emit("tchk", rs1=rptr)
    em._finish_instr(ins, index)


def _h_sbd(em: _FnEmitter, ins: irdef.HwSbd, index: int):
    rcont = em._use(ins.container, protect=(ins.ptr,))
    rptr = em._use(ins.ptr, protect=(ins.container,))
    if ins.which in ("lower", "both"):
        em.emit("sbdl", rs1=rcont, rs2=rptr, imm=ins.offset)
    if ins.which in ("upper", "both"):
        em.emit("sbdu", rs1=rcont, rs2=rptr, imm=ins.offset)
    em._finish_instr(ins, index)


def _h_lbds(em: _FnEmitter, ins: irdef.HwLbds, index: int):
    rcont = em._use(ins.container, protect=(ins.ptr,))
    rptr = em._use(ins.ptr, protect=(ins.container,))
    if ins.which in ("lower", "both"):
        em.emit("lbdls", rd=rptr, rs1=rcont, imm=ins.offset)
    if ins.which in ("upper", "both"):
        em.emit("lbdus", rd=rptr, rs1=rcont, imm=ins.offset)
    em._finish_instr(ins, index)


_META_GPR_OPS = {"base": "lbas", "bound": "lbnd", "key": "lkey",
                 "lock": "lloc"}


def _h_metagpr(em: _FnEmitter, ins: irdef.HwMetaGpr, index: int):
    rcont = em._use(ins.container)
    rd = em._def(ins.dst, protect=(ins.container,))
    em.emit(_META_GPR_OPS[ins.field_name], rd=rd, rs1=rcont,
            imm=ins.offset)
    em._finish_instr(ins, index)


# -- MPX / AVX comparator ops ----------------------------------------------

def _h_mpx_bndcl(em: _FnEmitter, ins: irdef.MpxBndcl, index: int):
    rptr = em._use(ins.ptr, protect=(ins.addr,))
    raddr = em._use(ins.addr, protect=(ins.ptr,))
    em.emit("bndcl", rs1=rptr, rs2=raddr)
    em._finish_instr(ins, index)


def _h_mpx_bndcu(em: _FnEmitter, ins: irdef.MpxBndcu, index: int):
    rptr = em._use(ins.ptr, protect=(ins.addr,))
    raddr = em._use(ins.addr, protect=(ins.ptr,))
    em.emit("bndcu", rs1=rptr, rs2=raddr)
    em._finish_instr(ins, index)


def _h_mpx_bndldx(em: _FnEmitter, ins: irdef.MpxBndldx, index: int):
    rcont = em._use(ins.container, protect=(ins.ptr,))
    rptr = em._use(ins.ptr, protect=(ins.container,))
    em.emit("bndldx", rd=rptr, rs1=rcont, imm=ins.offset)
    em._finish_instr(ins, index)


def _h_mpx_bndstx(em: _FnEmitter, ins: irdef.MpxBndstx, index: int):
    rcont = em._use(ins.container, protect=(ins.ptr,))
    rptr = em._use(ins.ptr, protect=(ins.container,))
    em.emit("bndstx", rs1=rcont, rs2=rptr, imm=ins.offset)
    em._finish_instr(ins, index)


def _h_avx_vld(em: _FnEmitter, ins: irdef.AvxVld, index: int):
    rcont = em._use(ins.container, protect=(ins.ptr,))
    rptr = em._use(ins.ptr, protect=(ins.container,))
    em.emit("vld256", rd=rptr, rs1=rcont, imm=ins.offset)
    em._finish_instr(ins, index)


def _h_avx_vst(em: _FnEmitter, ins: irdef.AvxVst, index: int):
    rcont = em._use(ins.container, protect=(ins.ptr,))
    rptr = em._use(ins.ptr, protect=(ins.container,))
    em.emit("vst256", rs1=rcont, rs2=rptr, imm=ins.offset)
    em._finish_instr(ins, index)


def _h_avx_vchk(em: _FnEmitter, ins: irdef.AvxVchk, index: int):
    rptr = em._use(ins.ptr, protect=(ins.addr,))
    raddr = em._use(ins.addr, protect=(ins.ptr,))
    em.emit("vchk", rs1=rptr, rs2=raddr)
    em._finish_instr(ins, index)


_IR_HANDLERS = {
    irdef.IConst: _h_iconst,
    irdef.GetParam: _h_getparam,
    irdef.AddrLocal: _h_addrlocal,
    irdef.AddrGlobal: _h_addrglobal,
    irdef.BinOp: _h_binop,
    irdef.UnOp: _h_unop,
    irdef.Conv: _h_conv,
    irdef.Load: _h_load,
    irdef.Store: _h_store,
    irdef.Call: _h_call,
    irdef.Ret: _h_ret,
    irdef.Br: _h_br,
    irdef.Jmp: _h_jmp,
    irdef.TrapIf: _h_trapif,
    irdef.HwBndrs: _h_bndrs,
    irdef.HwBndrt: _h_bndrt,
    irdef.HwTchk: _h_tchk,
    irdef.HwSbd: _h_sbd,
    irdef.HwLbds: _h_lbds,
    irdef.HwMetaGpr: _h_metagpr,
    irdef.MpxBndcl: _h_mpx_bndcl,
    irdef.MpxBndcu: _h_mpx_bndcu,
    irdef.MpxBndldx: _h_mpx_bndldx,
    irdef.MpxBndstx: _h_mpx_bndstx,
    irdef.AvxVld: _h_avx_vld,
    irdef.AvxVst: _h_avx_vst,
    irdef.AvxVchk: _h_avx_vchk,
}


def compile_function(fn: irdef.Function,
                     options: Optional[CodegenOptions] = None) -> List[Instr]:
    """Lower one IR function to RV64 instructions.

    Function-local labels are resolved; call sites and global-address
    pairs keep their ``sym`` for the linker.
    """
    emitter = _FnEmitter(fn, options or CodegenOptions())
    return emitter.run()
