"""Register IR, AST lowering, pointer analysis and instrumentation.

The IR sits between the mini-C front end and the RV64 code generator:

* :mod:`repro.ir.ir` — instruction definitions, functions, modules;
* :mod:`repro.ir.irgen` — typed AST -> IR (-O0 style, no optimisation);
* :mod:`repro.ir.verify` — structural invariants codegen relies on;
* :mod:`repro.ir.instrument` — the scheme instrumentation passes
  (SBCETS software, HWST128 hardware, ASAN, GCC canaries, BOGO/MPX,
  WatchdogLite narrow/wide) that rewrite clean IR into protected IR.

Pointer provenance is tracked during IR generation (``Function.prov``),
which is the reproduction of the SBCETS pointer analysis the paper's
compiler performs on LLVM IR.
"""

from repro.ir.ir import (
    Module, Function, BasicBlock,
    IConst, BinOp, UnOp, Conv, Load, Store, AddrLocal, AddrGlobal,
    Call, Ret, Br, Jmp,
    HwBndrs, HwBndrt, HwTchk, HwSbd, HwLbds, HwMetaGpr,
    MpxBndcl, MpxBndcu, MpxBndldx, MpxBndstx,
    AvxVld, AvxVst, AvxVchk,
)
from repro.ir.irgen import lower_unit
from repro.ir.verify import verify_module

__all__ = [
    "Module", "Function", "BasicBlock",
    "IConst", "BinOp", "UnOp", "Conv", "Load", "Store",
    "AddrLocal", "AddrGlobal", "Call", "Ret", "Br", "Jmp",
    "HwBndrs", "HwBndrt", "HwTchk", "HwSbd", "HwLbds", "HwMetaGpr",
    "MpxBndcl", "MpxBndcu", "MpxBndldx", "MpxBndstx",
    "AvxVld", "AvxVst", "AvxVchk",
    "lower_unit", "verify_module",
]
