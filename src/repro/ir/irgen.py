"""AST -> IR lowering (-O0 style).

Every mini-C function becomes an IR :class:`Function`. Lowering mirrors
what clang -O0 does structurally: all named variables live in stack
slots, expression temporaries form single-block trees, short-circuit
operators and ternaries round-trip through hidden temp slots, and no
optimisation of any kind is applied (the paper compiles all benchmarks
without optimisation).

Pointer provenance (``Function.prov``) is recorded for every
pointer-typed vreg as it is produced; the instrumentation passes use it
to decide where a pointer's metadata comes from (static object bounds,
loaded from shadow memory, function call result, null).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import IRError
from repro.minic import ast
from repro.minic.sema import SemaResult
from repro.minic.types import (
    ArrayType, CType, IntType, PointerType, StructType,
    CHAR, INT, LONG, VOID, pointee_size,
)
from repro.ir.ir import (
    AddrGlobal, AddrLocal, BasicBlock, BinOp, Br, Call, Conv, Function,
    GetParam, GlobalData, IConst, Jmp, Load, Module, Ret, Store, UnOp,
)

def _splits_blocks(expr) -> bool:
    """True when lowering ``expr`` creates new basic blocks (short-circuit
    operators and ternaries). Sibling operands must then round-trip
    through a temp slot to preserve the block-local vreg invariant."""
    if expr is None:
        return False
    if isinstance(expr, ast.Cond):
        return True
    if isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
        return True
    for attr in ("operand", "left", "right", "target", "value", "base",
                 "index", "cond", "then", "other"):
        child = getattr(expr, attr, None)
        if isinstance(child, ast.Expr) and _splits_blocks(child):
            return True
    args = getattr(expr, "args", None)
    if args:
        return any(_splits_blocks(a) for a in args)
    return False


_CMP_OPS = {"==": "eq", "!=": "ne"}
_SIGNED_CMP = {"<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
_UNSIGNED_CMP = {"<": "ult", "<=": "ule", ">": "ugt", ">=": "uge"}
_ARITH_OPS = {"+": "add", "-": "sub", "*": "mul",
              "&": "and", "|": "or", "^": "xor", "<<": "shl"}


class _FuncLowering:
    def __init__(self, sema: SemaResult, name: str, module: Module):
        self.sema = sema
        info = sema.functions[name]
        self.info = info
        self.fn = Function(name, info.func_type.ret, info.param_names)
        self.module = module
        self._block: BasicBlock = self.fn.add_block("entry")
        self._label_counter = 0
        self._tmp_counter = 0
        self._break_stack: List[str] = []
        self._continue_stack: List[str] = []
        self._cur_line = 0
        # Declare params first (codegen prologue stores a0.. into them).
        for pname in info.param_names:
            self.fn.add_local(pname, info.locals[pname], is_param=True)
        for lname, ltype in info.locals.items():
            if lname in self.fn.locals:
                continue
            self.fn.add_local(lname, ltype,
                              is_object=not ltype.is_scalar())

    # -- plumbing ---------------------------------------------------------

    def emit(self, instr):
        if self._block.terminated():
            # Unreachable code after return/break: park it in a dead block.
            self._block = self.fn.add_block(self.new_label("dead"))
        if not instr.line:
            instr.line = self._cur_line
        self._block.instrs.append(instr)
        return instr

    def new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}.{self._label_counter}"

    def start_block(self, label: str) -> BasicBlock:
        self._block = self.fn.add_block(label)
        return self._block

    def new_tmp_slot(self, ctype: CType) -> str:
        self._tmp_counter += 1
        name = f"__tmp.{self._tmp_counter}"
        self.fn.add_local(name, ctype)
        return name

    def vreg(self, ctype: Optional[CType] = None) -> int:
        return self.fn.new_vreg(ctype)

    def const(self, value: int, ctype: CType = LONG) -> int:
        dst = self.vreg(ctype)
        self.emit(IConst(dst, value))
        return dst

    def set_prov(self, v: int, prov):
        self.fn.prov[v] = prov

    def prov_of(self, v: int):
        return self.fn.prov.get(v)

    def _roundtrip_save(self, value: int, ctype: CType):
        """Park ``value`` in a fresh temp slot; returns a reload closure.

        Used whenever a sibling operand splits basic blocks, so that no
        vreg crosses a block boundary."""
        slot_type = ctype if ctype.is_scalar() else LONG
        tmp = self.new_tmp_slot(slot_type)
        size = max(slot_type.size, 1)
        is_ptr = slot_type.is_pointer()
        addr = self.vreg(PointerType(slot_type))
        self.emit(AddrLocal(addr, tmp))
        self.emit(Store(addr, value, size, ptr_value=is_ptr))

        def reload() -> int:
            addr2 = self.vreg(PointerType(slot_type))
            self.emit(AddrLocal(addr2, tmp))
            dst = self.vreg(ctype)
            signed = slot_type.signed if isinstance(slot_type, IntType) \
                else True
            self.emit(Load(dst, addr2, size, signed, ptr_result=is_ptr))
            if is_ptr:
                self.set_prov(dst, ("loaded", None))
            return dst

        return reload

    # -- lvalues -------------------------------------------------------------

    def lower_lvalue(self, expr: ast.Expr) -> Tuple[int, bool]:
        """Return (address vreg, needs_check)."""
        if expr.line:
            self._cur_line = expr.line
        if isinstance(expr, ast.Ident):
            if expr.binding in ("local", "param"):
                dst = self.vreg(PointerType(expr.ctype))
                self.emit(AddrLocal(dst, expr.name))
                self.set_prov(dst, ("local", expr.name))
                return dst, False
            if expr.binding == "global":
                dst = self.vreg(PointerType(expr.ctype))
                self.emit(AddrGlobal(dst, expr.name))
                self.set_prov(dst, ("global", expr.name))
                return dst, False
            raise IRError(f"{expr.name} is not an lvalue")
        if isinstance(expr, ast.Unary) and expr.op == "*":
            addr = self.lower_rvalue(expr.operand)
            return addr, True
        if isinstance(expr, ast.Index):
            base = self.lower_rvalue(expr.base)
            if _splits_blocks(expr.index):
                reload = self._roundtrip_save(
                    base, self._decayed_type(expr.base))
                index = self.lower_rvalue(expr.index)
                base = reload()
            else:
                index = self.lower_rvalue(expr.index)
            elem_size = expr.ctype.size if expr.ctype.size else 1
            scaled = self._scale(index, elem_size)
            dst = self.vreg(PointerType(expr.ctype))
            self.emit(BinOp(dst, "add", base, scaled))
            self.set_prov(dst, self.prov_of(base))
            # Direct indexing of a named local/global array is still a
            # user-level access that the schemes check.
            return dst, True
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = self.lower_rvalue(expr.base)
                needs_check = True
                struct = expr.base.ctype
                if isinstance(struct, ArrayType):
                    struct = struct.decay()
                struct = struct.pointee
            else:
                base, needs_check = self.lower_lvalue(expr.base)
                struct = expr.base.ctype
            field_obj = struct.field_named(expr.name)
            if field_obj.offset == 0:
                self.set_prov(base, self.prov_of(base))
                if field_obj.ctype.size > 0:
                    self.fn.subobj[base] = field_obj.ctype.size
                return base, needs_check
            off = self.const(field_obj.offset)
            dst = self.vreg(PointerType(expr.ctype))
            self.emit(BinOp(dst, "add", base, off))
            self.set_prov(dst, self.prov_of(base))
            if field_obj.ctype.size > 0:
                self.fn.subobj[dst] = field_obj.ctype.size
            return dst, needs_check
        if isinstance(expr, ast.Cast):
            # (T*)lvalue used as lvalue — forward to the operand.
            return self.lower_lvalue(expr.operand)
        raise IRError(f"not an lvalue: {type(expr).__name__}")

    def _scale(self, index: int, size: int) -> int:
        if size == 1:
            return index
        size_v = self.const(size)
        dst = self.vreg(LONG)
        self.emit(BinOp(dst, "mul", index, size_v))
        return dst

    # -- rvalues ----------------------------------------------------------

    def lower_rvalue(self, expr: ast.Expr) -> int:
        ctype = expr.ctype
        if expr.line:
            self._cur_line = expr.line
        if isinstance(expr, ast.IntLit):
            return self.const(expr.value, ctype)
        if isinstance(expr, ast.StrLit):
            dst = self.vreg(PointerType(CHAR))
            self.emit(AddrGlobal(dst, expr.symbol))
            self.set_prov(dst, ("global", expr.symbol))
            return dst
        if isinstance(expr, ast.Ident):
            return self._rvalue_ident(expr)
        if isinstance(expr, ast.Unary):
            return self._rvalue_unary(expr)
        if isinstance(expr, ast.PostIncDec):
            return self._rvalue_postincdec(expr)
        if isinstance(expr, ast.Binary):
            return self._rvalue_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._rvalue_assign(expr)
        if isinstance(expr, ast.Cond):
            return self._rvalue_cond(expr)
        if isinstance(expr, ast.Call):
            value = self._rvalue_call(expr)
            if value is None:
                raise IRError(f"void call {expr.name}() used as a value")
            return value
        if isinstance(expr, (ast.Index, ast.Member)):
            return self._load_lvalue(expr)
        if isinstance(expr, ast.Cast):
            return self._rvalue_cast(expr)
        if isinstance(expr, ast.SizeofType):
            return self.const(expr.query_type.size)
        if isinstance(expr, ast.SizeofExpr):
            return self.const(expr.operand.ctype.size)
        raise IRError(f"cannot lower {type(expr).__name__}")

    def _load_lvalue(self, expr: ast.Expr) -> int:
        """Load from an lvalue (with array decay)."""
        if isinstance(expr.ctype, ArrayType):
            addr, _ = self.lower_lvalue(expr)
            self.set_prov(addr, self.prov_of(addr))
            return addr  # decay: the address is the value
        if isinstance(expr.ctype, StructType):
            addr, _ = self.lower_lvalue(expr)
            return addr  # struct rvalue = its address (for memcpy/member)
        addr, needs_check = self.lower_lvalue(expr)
        ctype = expr.ctype
        dst = self.vreg(ctype)
        signed = ctype.signed if isinstance(ctype, IntType) else True
        load = Load(dst, addr, max(ctype.size, 1), signed,
                    ptr_result=ctype.is_pointer(), needs_check=needs_check)
        self.emit(load)
        if ctype.is_pointer():
            self.set_prov(dst, ("loaded", None))
        return dst

    def _rvalue_ident(self, expr: ast.Ident) -> int:
        if expr.binding == "enum":
            return self.const(expr.enum_value, INT)
        if isinstance(expr.ctype, (ArrayType, StructType)):
            addr, _ = self.lower_lvalue(expr)
            return addr
        return self._load_lvalue(expr)

    def _rvalue_unary(self, expr: ast.Unary) -> int:
        if expr.op == "&":
            operand = expr.operand
            addr, _ = self.lower_lvalue(operand)
            # Taking the address of a scalar local promotes it to a
            # protected stack object (SBCETS treats it like an alloca).
            if isinstance(operand, ast.Ident) and \
                    operand.binding in ("local", "param"):
                self.fn.locals[operand.name].is_object = True
            return addr
        if expr.op == "*":
            return self._load_lvalue(expr)
        operand = self.lower_rvalue(expr.operand)
        ctype = expr.ctype
        dst = self.vreg(ctype)
        width = ctype.size if isinstance(ctype, IntType) and ctype.size < 8 \
            else 0
        signed = ctype.signed if isinstance(ctype, IntType) else True
        mapping = {"-": "neg", "~": "not", "!": "lognot"}
        self.emit(UnOp(dst, mapping[expr.op], operand,
                       width=width, signed=signed))
        return dst

    def _rvalue_postincdec(self, expr: ast.PostIncDec) -> int:
        target = expr.operand
        addr, needs_check = self.lower_lvalue(target)
        ctype = expr.ctype
        old = self.vreg(ctype)
        signed = ctype.signed if isinstance(ctype, IntType) else True
        self.emit(Load(old, addr, max(ctype.size, 1), signed,
                       ptr_result=ctype.is_pointer(),
                       needs_check=needs_check))
        if ctype.is_pointer():
            self.set_prov(old, ("loaded", None))
        step = pointee_size(ctype) if ctype.is_pointer() else 1
        step_v = self.const(step)
        updated = self.vreg(ctype)
        op = "add" if expr.op == "++" else "sub"
        width = ctype.size if isinstance(ctype, IntType) and ctype.size < 8 \
            else 0
        self.emit(BinOp(updated, op, old, step_v, width=width,
                        signed=signed))
        if ctype.is_pointer():
            self.set_prov(updated, self.prov_of(old))
        self.emit(Store(addr, updated, max(ctype.size, 1),
                        ptr_value=ctype.is_pointer(),
                        needs_check=needs_check))
        return old

    def _cmp_kind(self, left_t: CType, right_t: CType) -> str:
        if left_t.is_pointer() or right_t.is_pointer():
            return "u"
        signed = True
        if isinstance(left_t, IntType) and isinstance(right_t, IntType):
            # usual conversions: unsigned wins at equal width
            width = max(left_t.size, right_t.size, 4)
            lsigned = left_t.signed or left_t.size < width
            rsigned = right_t.signed or right_t.size < width
            signed = lsigned and rsigned
        return "s" if signed else "u"

    def _decayed_type(self, expr: ast.Expr) -> CType:
        if isinstance(expr.ctype, ArrayType):
            return expr.ctype.decay()
        return expr.ctype

    def _rvalue_binary(self, expr: ast.Binary) -> int:
        op = expr.op
        if op in ("&&", "||"):
            return self._rvalue_logical(expr)
        left_t = self._decayed_type(expr.left)
        right_t = self._decayed_type(expr.right)
        left = self.lower_rvalue(expr.left)
        if _splits_blocks(expr.right):
            reload = self._roundtrip_save(left, left_t)
            right = self.lower_rvalue(expr.right)
            left = reload()
        else:
            right = self.lower_rvalue(expr.right)
        dst = self.vreg(expr.ctype)
        if op in _CMP_OPS:
            self.emit(BinOp(dst, _CMP_OPS[op], left, right))
            return dst
        if op in _SIGNED_CMP:
            table = _SIGNED_CMP if self._cmp_kind(left_t, right_t) == "s" \
                else _UNSIGNED_CMP
            self.emit(BinOp(dst, table[op], left, right))
            return dst
        # Pointer arithmetic.
        if left_t.is_pointer() and right_t.is_pointer() and op == "-":
            diff = self.vreg(LONG)
            self.emit(BinOp(diff, "sub", left, right))
            size = pointee_size(left_t)
            if size == 1:
                return diff
            size_v = self.const(size)
            self.emit(BinOp(dst, "sdiv", diff, size_v))
            return dst
        if left_t.is_pointer() or right_t.is_pointer():
            if left_t.is_pointer():
                ptr, idx, ptr_t = left, right, left_t
            else:
                ptr, idx, ptr_t = right, left, right_t
            scaled = self._scale(idx, pointee_size(ptr_t))
            ir_op = "add" if op == "+" else "sub"
            self.emit(BinOp(dst, ir_op, ptr, scaled))
            self.set_prov(dst, self.prov_of(ptr))
            return dst
        # Integer arithmetic with C result-width semantics.
        result_t = expr.ctype
        width = result_t.size if isinstance(result_t, IntType) and \
            result_t.size < 8 else 0
        signed = result_t.signed if isinstance(result_t, IntType) else True
        if op in _ARITH_OPS:
            self.emit(BinOp(dst, _ARITH_OPS[op], left, right,
                            width=width, signed=signed))
            return dst
        if op == "/":
            self.emit(BinOp(dst, "sdiv" if signed else "udiv",
                            left, right, width=width, signed=signed))
            return dst
        if op == "%":
            self.emit(BinOp(dst, "srem" if signed else "urem",
                            left, right, width=width, signed=signed))
            return dst
        if op == ">>":
            self.emit(BinOp(dst, "ashr" if signed else "lshr",
                            left, right, width=width, signed=signed))
            return dst
        raise IRError(f"unhandled binary op {op!r}")

    def _rvalue_logical(self, expr: ast.Binary) -> int:
        tmp = self.new_tmp_slot(INT)
        rhs_label = self.new_label("sc.rhs")
        end_label = self.new_label("sc.end")
        set0 = self.new_label("sc.zero")
        set1 = self.new_label("sc.one")

        left = self.lower_rvalue(expr.left)
        if expr.op == "&&":
            self.emit(Br(left, rhs_label, set0))
        else:
            self.emit(Br(left, set1, rhs_label))

        self.start_block(rhs_label)
        right = self.lower_rvalue(expr.right)
        self.emit(Br(right, set1, set0))

        self.start_block(set1)
        one = self.const(1, INT)
        addr1 = self.vreg(PointerType(INT))
        self.emit(AddrLocal(addr1, tmp))
        self.emit(Store(addr1, one, 4))
        self.emit(Jmp(end_label))

        self.start_block(set0)
        zero = self.const(0, INT)
        addr0 = self.vreg(PointerType(INT))
        self.emit(AddrLocal(addr0, tmp))
        self.emit(Store(addr0, zero, 4))
        self.emit(Jmp(end_label))

        self.start_block(end_label)
        addr2 = self.vreg(PointerType(INT))
        self.emit(AddrLocal(addr2, tmp))
        dst = self.vreg(INT)
        self.emit(Load(dst, addr2, 4, True))
        return dst

    def _rvalue_cond(self, expr: ast.Cond) -> int:
        ctype = expr.ctype
        tmp = self.new_tmp_slot(ctype if ctype.is_scalar() else LONG)
        then_label = self.new_label("sel.then")
        else_label = self.new_label("sel.else")
        end_label = self.new_label("sel.end")
        size = max(ctype.size, 1) if ctype.is_scalar() else 8
        is_ptr = ctype.is_pointer()

        cond = self.lower_rvalue(expr.cond)
        self.emit(Br(cond, then_label, else_label))

        self.start_block(then_label)
        then_v = self.lower_rvalue(expr.then)
        addr_t = self.vreg(PointerType(ctype))
        self.emit(AddrLocal(addr_t, tmp))
        self.emit(Store(addr_t, then_v, size, ptr_value=is_ptr))
        self.emit(Jmp(end_label))

        self.start_block(else_label)
        else_v = self.lower_rvalue(expr.other)
        addr_e = self.vreg(PointerType(ctype))
        self.emit(AddrLocal(addr_e, tmp))
        self.emit(Store(addr_e, else_v, size, ptr_value=is_ptr))
        self.emit(Jmp(end_label))

        self.start_block(end_label)
        addr = self.vreg(PointerType(ctype))
        self.emit(AddrLocal(addr, tmp))
        dst = self.vreg(ctype)
        signed = ctype.signed if isinstance(ctype, IntType) else True
        self.emit(Load(dst, addr, size, signed, ptr_result=is_ptr))
        if is_ptr:
            self.set_prov(dst, ("loaded", None))
        return dst

    def _rvalue_assign(self, expr: ast.Assign) -> int:
        target_t = expr.target.ctype
        # Struct assignment -> memcpy.
        if isinstance(target_t, StructType):
            dst_addr, _ = self.lower_lvalue(expr.target)
            src_addr = self.lower_rvalue(expr.value)
            size = self.const(target_t.size)
            self.emit(Call(None, "memcpy", [dst_addr, src_addr, size],
                           ptr_args=(0, 1)))
            return dst_addr
        size = max(target_t.size, 1)
        is_ptr = target_t.is_pointer()
        signed = target_t.signed if isinstance(target_t, IntType) else True
        value_splits = _splits_blocks(expr.value)
        target_splits = _splits_blocks(expr.target)
        if expr.op == "=":
            if value_splits or target_splits:
                # RHS first so no vreg crosses the blocks either side
                # creates; park it when the target itself splits.
                value = self.lower_rvalue(expr.value)
                value = self._coerce(value, self._decayed_type(expr.value),
                                     target_t)
                if target_splits:
                    reload = self._roundtrip_save(value, target_t)
                    addr, needs_check = self.lower_lvalue(expr.target)
                    value = reload()
                else:
                    addr, needs_check = self.lower_lvalue(expr.target)
            else:
                addr, needs_check = self.lower_lvalue(expr.target)
                value = self.lower_rvalue(expr.value)
                value = self._coerce(value, self._decayed_type(expr.value),
                                     target_t)
            self.emit(Store(addr, value, size, ptr_value=is_ptr,
                            needs_check=needs_check))
            return value
        # Compound assignment: evaluate the RHS first when it splits
        # blocks, so the target address stays block-local.
        rhs_reload = None
        if value_splits or target_splits:
            rhs = self.lower_rvalue(expr.value)
            if target_splits:
                rhs_reload = self._roundtrip_save(
                    rhs, self._decayed_type(expr.value))
            addr, needs_check = self.lower_lvalue(expr.target)
            if rhs_reload is not None:
                rhs = rhs_reload()
        else:
            addr, needs_check = self.lower_lvalue(expr.target)
            rhs = None
        old = self.vreg(target_t)
        self.emit(Load(old, addr, size, signed, ptr_result=is_ptr,
                       needs_check=needs_check))
        if is_ptr:
            self.set_prov(old, ("loaded", None))
        if rhs is None:
            rhs = self.lower_rvalue(expr.value)
        binop = expr.op[:-1]
        if is_ptr:
            scaled = self._scale(rhs, pointee_size(target_t))
            value = self.vreg(target_t)
            self.emit(BinOp(value, "add" if binop == "+" else "sub",
                            old, scaled))
            self.set_prov(value, self.prov_of(old))
        else:
            width = target_t.size if target_t.size < 8 else 0
            ir_op = {
                "+": "add", "-": "sub", "*": "mul",
                "/": "sdiv" if signed else "udiv",
                "%": "srem" if signed else "urem",
                "&": "and", "|": "or", "^": "xor",
                "<<": "shl",
                ">>": "ashr" if signed else "lshr",
            }[binop]
            value = self.vreg(target_t)
            self.emit(BinOp(value, ir_op, old, rhs,
                            width=width, signed=signed))
        self.emit(Store(addr, value, size, ptr_value=is_ptr,
                        needs_check=needs_check))
        return value

    def _coerce(self, value: int, from_t: CType, to_t: CType) -> int:
        """Renormalise `value` when narrowing integer conversions matter."""
        if isinstance(to_t, IntType) and isinstance(from_t, IntType):
            if to_t.size < from_t.size or \
                    (to_t.size == from_t.size and to_t.signed != from_t.signed):
                dst = self.vreg(to_t)
                self.emit(Conv(dst, value, to_t.size, to_t.signed))
                return dst
        return value

    def _rvalue_cast(self, expr: ast.Cast) -> int:
        value = self.lower_rvalue(expr.operand)
        from_t = self._decayed_type(expr.operand)
        to_t = expr.target_type
        if to_t.is_pointer():
            if from_t.is_pointer():
                self.set_prov(value, self.prov_of(value))
            elif isinstance(expr.operand, ast.IntLit) and \
                    expr.operand.value == 0:
                self.set_prov(value, ("null", None))
            else:
                self.set_prov(value, ("none", None))
            # Re-type the vreg as a pointer for later scaling decisions.
            self.fn.vreg_types[value] = to_t
            return value
        if isinstance(to_t, IntType):
            if from_t.is_pointer():
                return value
            return self._coerce(value, from_t, to_t)
        return value

    def _rvalue_call(self, expr: ast.Call) -> Optional[int]:
        ftype = self.sema.func_types[expr.name]
        args = []
        ptr_args = []
        # When any argument splits basic blocks, every argument value
        # round-trips through a temp slot so none crosses a boundary.
        any_splits = any(_splits_blocks(arg) for arg in expr.args)
        reloads = []
        for position, (arg, param_t) in enumerate(
                zip(expr.args, ftype.params)):
            value = self.lower_rvalue(arg)
            value = self._coerce(value, self._decayed_type(arg), param_t)
            if any_splits:
                reloads.append(self._roundtrip_save(value, param_t))
            else:
                args.append(value)
            arg_t = self._decayed_type(arg)
            if param_t.is_pointer() or arg_t.is_pointer():
                ptr_args.append(position)
        if any_splits:
            args = [reload() for reload in reloads]
        ret_t = ftype.ret
        dst = None
        if not ret_t.is_void():
            dst = self.vreg(ret_t)
        self.emit(Call(dst, expr.name, args, ptr_args=tuple(ptr_args),
                       ptr_result=ret_t.is_pointer()))
        if dst is not None and ret_t.is_pointer():
            self.set_prov(dst, ("call", expr.name))
        return dst

    # -- statements --------------------------------------------------------

    def lower_stmt(self, stmt: ast.Stmt):
        if stmt.line:
            self._cur_line = stmt.line
        if isinstance(stmt, ast.Block):
            for sub in stmt.stmts:
                self.lower_stmt(sub)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_vardecl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                if isinstance(stmt.expr, ast.Call):
                    self._rvalue_call(stmt.expr)   # result may be unused
                else:
                    self.lower_rvalue(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_dowhile(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            self.emit(Jmp(self._break_stack[-1]))
        elif isinstance(stmt, ast.Continue):
            self.emit(Jmp(self._continue_stack[-1]))
        else:  # pragma: no cover
            raise IRError(f"unknown statement {type(stmt).__name__}")

    def _store_local(self, name: str, ctype: CType, value: int):
        addr = self.vreg(PointerType(ctype))
        self.emit(AddrLocal(addr, name))
        self.emit(Store(addr, value, max(ctype.size, 1),
                        ptr_value=ctype.is_pointer()))

    def _lower_vardecl(self, stmt: ast.VarDecl):
        ctype = stmt.var_type
        if stmt.init is not None:
            value = self.lower_rvalue(stmt.init)
            value = self._coerce(value, self._decayed_type(stmt.init), ctype)
            self._store_local(stmt.name, ctype, value)
        elif stmt.init_list is not None:
            assert isinstance(ctype, ArrayType)
            elem = ctype.elem
            for index, item in enumerate(stmt.init_list):
                value = self.lower_rvalue(item)
                base = self.vreg(PointerType(elem))
                self.emit(AddrLocal(base, stmt.name))
                off = self.const(index * elem.size)
                addr = self.vreg(PointerType(elem))
                self.emit(BinOp(addr, "add", base, off))
                self.emit(Store(addr, value, max(elem.size, 1)))

    def _lower_condition(self, expr: ast.Expr, then_label: str,
                         else_label: str):
        cond = self.lower_rvalue(expr)
        self.emit(Br(cond, then_label, else_label))

    def _lower_if(self, stmt: ast.If):
        then_label = self.new_label("if.then")
        end_label = self.new_label("if.end")
        else_label = self.new_label("if.else") if stmt.other else end_label
        self._lower_condition(stmt.cond, then_label, else_label)
        self.start_block(then_label)
        self.lower_stmt(stmt.then)
        self.emit(Jmp(end_label))
        if stmt.other is not None:
            self.start_block(else_label)
            self.lower_stmt(stmt.other)
            self.emit(Jmp(end_label))
        self.start_block(end_label)

    def _lower_while(self, stmt: ast.While):
        cond_label = self.new_label("while.cond")
        body_label = self.new_label("while.body")
        end_label = self.new_label("while.end")
        self.emit(Jmp(cond_label))
        self.start_block(cond_label)
        self._lower_condition(stmt.cond, body_label, end_label)
        self.start_block(body_label)
        self._break_stack.append(end_label)
        self._continue_stack.append(cond_label)
        self.lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self.emit(Jmp(cond_label))
        self.start_block(end_label)

    def _lower_dowhile(self, stmt: ast.DoWhile):
        body_label = self.new_label("do.body")
        cond_label = self.new_label("do.cond")
        end_label = self.new_label("do.end")
        self.emit(Jmp(body_label))
        self.start_block(body_label)
        self._break_stack.append(end_label)
        self._continue_stack.append(cond_label)
        self.lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self.emit(Jmp(cond_label))
        self.start_block(cond_label)
        self._lower_condition(stmt.cond, body_label, end_label)
        self.start_block(end_label)

    def _lower_for(self, stmt: ast.For):
        cond_label = self.new_label("for.cond")
        body_label = self.new_label("for.body")
        step_label = self.new_label("for.step")
        end_label = self.new_label("for.end")
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        self.emit(Jmp(cond_label))
        self.start_block(cond_label)
        if stmt.cond is not None:
            self._lower_condition(stmt.cond, body_label, end_label)
        else:
            self.emit(Jmp(body_label))
        self.start_block(body_label)
        self._break_stack.append(end_label)
        self._continue_stack.append(step_label)
        self.lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self.emit(Jmp(step_label))
        self.start_block(step_label)
        if stmt.step is not None:
            self.lower_rvalue(stmt.step)
        self.emit(Jmp(cond_label))
        self.start_block(end_label)

    def _lower_return(self, stmt: ast.Return):
        if stmt.value is None:
            self.emit(Ret(None))
            return
        value = self.lower_rvalue(stmt.value)
        value = self._coerce(value, self._decayed_type(stmt.value),
                             self.fn.ret_ctype)
        self.emit(Ret(value, ptr_value=self.fn.ret_ctype.is_pointer()))

    # -- toplevel ----------------------------------------------------------

    def lower(self) -> Function:
        # Spill incoming arguments into their slots (-O0 prologue). The
        # stores are ordinary IR so instrumentation sees pointer params
        # and can attach their metadata (SRF propagation / shadow stack).
        for index, pname in enumerate(self.info.param_names):
            ptype = self.info.locals[pname]
            value = self.vreg(ptype)
            self.emit(GetParam(value, index))
            if ptype.is_pointer():
                self.set_prov(value, ("param", pname))
            addr = self.vreg(PointerType(ptype))
            self.emit(AddrLocal(addr, pname))
            self.emit(Store(addr, value, max(ptype.size, 1),
                            ptr_value=ptype.is_pointer()))
        self.lower_stmt(self.info.node.body)
        if not self._block.terminated():
            if self.fn.ret_ctype.is_void():
                self.emit(Ret(None))
            else:
                zero = self.const(0, self.fn.ret_ctype)
                self.emit(Ret(zero))
        # Terminate any dangling dead blocks.
        for blk in self.fn.blocks:
            if not blk.terminated():
                blk.instrs.append(Ret(None) if self.fn.ret_ctype.is_void()
                                  else Ret(self._dead_zero(blk)))
        return self.fn

    def _dead_zero(self, blk: BasicBlock) -> int:
        dst = self.vreg(self.fn.ret_ctype)
        blk.instrs.append(IConst(dst, 0))
        return dst


def _encode_global(gvar: ast.GlobalVar) -> bytes:
    """Build the initialiser bytes of a global variable."""
    ctype = gvar.var_type
    if gvar.init_string is not None:
        data = gvar.init_string
        return data.ljust(ctype.size, b"\x00")[:ctype.size]
    if gvar.init is not None:
        value = _const_fold(gvar.init)
        size = max(ctype.size, 1)
        return (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
    if gvar.init_list is not None:
        assert isinstance(ctype, ArrayType)
        elem_size = max(ctype.elem.size, 1)
        out = bytearray()
        for item in gvar.init_list:
            value = _const_fold(item)
            out += (value & ((1 << (8 * elem_size)) - 1)).to_bytes(
                elem_size, "little")
        return bytes(out).ljust(ctype.size, b"\x00")[:ctype.size]
    return b""


def _const_fold(expr: ast.Expr) -> int:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_const_fold(expr.operand)
    if isinstance(expr, ast.Unary) and expr.op == "~":
        return ~_const_fold(expr.operand)
    if isinstance(expr, ast.Ident) and expr.binding == "enum":
        return expr.enum_value
    if isinstance(expr, ast.SizeofType):
        return expr.query_type.size
    if isinstance(expr, ast.Binary):
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b, "<<": lambda a, b: a << b,
               ">>": lambda a, b: a >> b, "|": lambda a, b: a | b,
               "&": lambda a, b: a & b, "^": lambda a, b: a ^ b,
               "/": lambda a, b: a // b, "%": lambda a, b: a % b}
        if expr.op in ops:
            return ops[expr.op](_const_fold(expr.left),
                                _const_fold(expr.right))
    raise IRError("global initialiser must be a constant expression")


def lower_unit(sema: SemaResult, module_name: str = "module") -> Module:
    """Lower an analyzed translation unit into an IR module."""
    module = Module(module_name)
    for name in sema.functions:
        module.add_function(_FuncLowering(sema, name, module).lower())
    for name, gvar in sema.globals.items():
        module.add_global(GlobalData(
            name=name, size=max(gvar.var_type.size, 1),
            align=max(gvar.var_type.align, 1),
            data=_encode_global(gvar), ctype=gvar.var_type))
    for name, data in sema.strings.items():
        module.add_global(GlobalData(
            name=name, size=len(data), align=1, data=data,
            is_string=True))
    return module
