"""IR definitions: a register-based, block-structured IR.

Design points (all enforced by :mod:`repro.ir.verify`):

* virtual registers (plain ints) are assigned exactly once and every
  use is inside the defining basic block — expression-tree discipline,
  which lets the -O0 code generator run a trivial per-block register
  allocator while still modelling the register pressure a real -O0
  compiler produces;
* control flow transfers only at block terminators (``Br``/``Jmp``/``Ret``);
* values crossing statements or blocks live in stack slots (locals),
  matching -O0 spill behaviour — this is what makes the shadow-memory
  metadata traffic of the safety schemes realistic.

Instrumentation-only opcodes (``Hw*``, ``Mpx*``, ``Avx*``) map 1:1 to
the HWST128 / comparator ISA extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.minic.types import CType


@dataclass
class IRInstr:
    """Base class. ``uses()``/``defs()`` drive liveness and verification."""

    # Source line for diagnostics. Deliberately *not* a dataclass field
    # (un-annotated class attribute): subclasses keep their positional
    # constructors, and irgen stamps the attribute after construction.
    line = 0

    def uses(self) -> Tuple[int, ...]:
        return ()

    def defs(self) -> Tuple[int, ...]:
        return ()

    def is_terminator(self) -> bool:
        return False


# -- values -----------------------------------------------------------------

@dataclass
class IConst(IRInstr):
    dst: int
    value: int

    def defs(self):
        return (self.dst,)


@dataclass
class BinOp(IRInstr):
    """ops: add sub mul sdiv udiv srem urem and or xor shl lshr ashr
    eq ne slt sle sgt sge ult ule ugt uge"""

    dst: int
    op: str
    a: int
    b: int
    # When nonzero, the operation is a C int-width op whose result must
    # be renormalised to `width` bytes with `signed`ness (addw-style).
    width: int = 0
    signed: bool = True

    def uses(self):
        return (self.a, self.b)

    def defs(self):
        return (self.dst,)


@dataclass
class UnOp(IRInstr):
    """ops: neg, not (bitwise), lognot (C !)"""

    dst: int
    op: str
    a: int
    width: int = 0
    signed: bool = True

    def uses(self):
        return (self.a,)

    def defs(self):
        return (self.dst,)


@dataclass
class Conv(IRInstr):
    """Renormalise ``a`` to a ``width``-byte integer (sign/zero extend)."""

    dst: int
    a: int
    width: int
    signed: bool

    def uses(self):
        return (self.a,)

    def defs(self):
        return (self.dst,)


# -- memory --------------------------------------------------------------

@dataclass
class Load(IRInstr):
    dst: int
    addr: int
    size: int
    signed: bool = True
    checked: bool = False       # lower to .chk form (HWST128 scheme)
    ptr_result: bool = False    # the loaded value is a pointer
    needs_check: bool = False   # address derives from user pointer data

    def uses(self):
        return (self.addr,)

    def defs(self):
        return (self.dst,)


@dataclass
class Store(IRInstr):
    addr: int
    src: int
    size: int
    checked: bool = False
    ptr_value: bool = False
    needs_check: bool = False

    def uses(self):
        return (self.addr, self.src)


@dataclass
class GetParam(IRInstr):
    """Read the N-th incoming argument register (entry block only)."""

    dst: int
    index: int

    def defs(self):
        return (self.dst,)


@dataclass
class AddrLocal(IRInstr):
    dst: int
    name: str

    def defs(self):
        return (self.dst,)


@dataclass
class AddrGlobal(IRInstr):
    dst: int
    name: str

    def defs(self):
        return (self.dst,)


# -- control -------------------------------------------------------------

@dataclass
class Call(IRInstr):
    dst: Optional[int]
    name: str
    args: List[int] = field(default_factory=list)
    # Pointer-typed argument positions / pointer-typed result (for the
    # schemes that must ferry metadata across calls).
    ptr_args: Tuple[int, ...] = ()
    ptr_result: bool = False

    def uses(self):
        return tuple(self.args)

    def defs(self):
        return (self.dst,) if self.dst is not None else ()


@dataclass
class TrapIf(IRInstr):
    """Raise a classified safety trap when ``cond`` is non-zero.

    Lowered to a compare-and-skip branch over a jump to the trap stub —
    the shape of the inline checks SBCETS emits at -O0."""

    cond: int
    kind: str  # "spatial" | "temporal" | "asan" | "canary"

    def uses(self):
        return (self.cond,)


@dataclass
class Ret(IRInstr):
    value: Optional[int] = None
    ptr_value: bool = False

    def uses(self):
        return (self.value,) if self.value is not None else ()

    def is_terminator(self):
        return True


@dataclass
class Br(IRInstr):
    cond: int
    then_label: str
    else_label: str

    def uses(self):
        return (self.cond,)

    def is_terminator(self):
        return True


@dataclass
class Jmp(IRInstr):
    label: str

    def is_terminator(self):
        return True


# -- HWST128 instrumentation ops -------------------------------------------

@dataclass
class HwBndrs(IRInstr):
    """Bind spatial metadata: SRF[ptr] <- compress(base, bound)."""

    ptr: int
    base: int
    bound: int

    def uses(self):
        return (self.ptr, self.base, self.bound)


@dataclass
class HwBndrt(IRInstr):
    """Bind temporal metadata: SRF[ptr] <- compress(key, lock)."""

    ptr: int
    key: int
    lock: int

    def uses(self):
        return (self.ptr, self.key, self.lock)


@dataclass
class HwTchk(IRInstr):
    """Keybuffer-assisted temporal check of SRF[ptr]."""

    ptr: int

    def uses(self):
        return (self.ptr,)


@dataclass
class HwSbd(IRInstr):
    """Store SRF[ptr] halves to the shadow of ``container + offset``."""

    container: int
    ptr: int
    offset: int = 0
    which: str = "both"   # "lower" | "upper" | "both"

    def uses(self):
        return (self.container, self.ptr)


@dataclass
class HwLbds(IRInstr):
    """Load SRF[ptr] halves from the shadow of ``container + offset``."""

    ptr: int
    container: int
    offset: int = 0
    which: str = "both"

    def uses(self):
        return (self.ptr, self.container)


@dataclass
class HwMetaGpr(IRInstr):
    """Decompressing metadata load into a GPR (lbas/lbnd/lkey/lloc)."""

    dst: int
    container: int
    field_name: str       # "base" | "bound" | "key" | "lock"
    offset: int = 0

    def uses(self):
        return (self.container,)

    def defs(self):
        return (self.dst,)


# -- MPX (BOGO) ops -----------------------------------------------------------

@dataclass
class MpxBndcl(IRInstr):
    ptr: int
    addr: int

    def uses(self):
        return (self.ptr, self.addr)


@dataclass
class MpxBndcu(IRInstr):
    ptr: int
    addr: int

    def uses(self):
        return (self.ptr, self.addr)


@dataclass
class MpxBndldx(IRInstr):
    ptr: int
    container: int
    offset: int = 0

    def uses(self):
        return (self.ptr, self.container)


@dataclass
class MpxBndstx(IRInstr):
    container: int
    ptr: int
    offset: int = 0

    def uses(self):
        return (self.container, self.ptr)


# -- AVX (WatchdogLite wide) ops --------------------------------------------

@dataclass
class AvxVld(IRInstr):
    ptr: int
    container: int
    offset: int = 0

    def uses(self):
        return (self.ptr, self.container)


@dataclass
class AvxVst(IRInstr):
    container: int
    ptr: int
    offset: int = 0

    def uses(self):
        return (self.container, self.ptr)


@dataclass
class AvxVchk(IRInstr):
    ptr: int
    addr: int

    def uses(self):
        return (self.ptr, self.addr)


# -- containers ------------------------------------------------------------

@dataclass
class BasicBlock:
    label: str
    instrs: List[IRInstr] = field(default_factory=list)

    def terminated(self) -> bool:
        return bool(self.instrs) and self.instrs[-1].is_terminator()


@dataclass
class LocalSlot:
    """One stack-frame object."""

    name: str
    ctype: CType
    size: int
    align: int
    is_object: bool = False      # array/struct or address-taken
    is_param: bool = False


class Function:
    """IR function: ordered blocks + frame layout + value metadata."""

    def __init__(self, name: str, ret_ctype: CType,
                 param_names: List[str]):
        self.name = name
        self.ret_ctype = ret_ctype
        self.param_names = list(param_names)
        self.blocks: List[BasicBlock] = []
        self.locals: Dict[str, LocalSlot] = {}
        self.vreg_types: List[Optional[CType]] = []
        # Pointer provenance per vreg — the SBCETS pointer analysis:
        #   ("local", name)   address rooted at local object `name`
        #   ("global", name)  address rooted at global `name`
        #   ("loaded", None)  pointer value loaded from memory
        #   ("call", fname)   pointer returned by a call
        #   ("param", name)   pointer argument (metadata on shadow stack)
        #   None              not a pointer / unknown
        self.prov: Dict[int, Optional[Tuple[str, Optional[str]]]] = {}
        # Sub-object windows per vreg: a pointer produced by member
        # lowering points into a struct field of this byte size. Used
        # only by the static analyzer (intra-object overflow linting);
        # codegen and instrumentation ignore it.
        self.subobj: Dict[int, int] = {}
        self.uses_frame_lock = False   # set by instrumentation

    def new_vreg(self, ctype: Optional[CType] = None) -> int:
        self.vreg_types.append(ctype)
        return len(self.vreg_types) - 1

    def block(self, label: str) -> BasicBlock:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(f"no block {label!r} in {self.name}")

    def add_block(self, label: str) -> BasicBlock:
        blk = BasicBlock(label)
        self.blocks.append(blk)
        return blk

    def add_local(self, name: str, ctype: CType, *,
                  is_object: bool = False, is_param: bool = False) -> LocalSlot:
        if name in self.locals:
            raise ValueError(f"duplicate local {name!r} in {self.name}")
        size = max(ctype.size, 1)
        slot = LocalSlot(name=name, ctype=ctype, size=size,
                         align=max(ctype.align, 1),
                         is_object=is_object, is_param=is_param)
        self.locals[name] = slot
        return slot

    def instr_count(self) -> int:
        return sum(len(blk.instrs) for blk in self.blocks)

    def __repr__(self):
        return f"<Function {self.name}: {len(self.blocks)} blocks>"


@dataclass
class GlobalData:
    """One linked data object (global variable or string literal)."""

    name: str
    size: int
    align: int
    data: bytes = b""            # initialiser (may be shorter than size)
    ctype: Optional[CType] = None
    is_string: bool = False


class Module:
    """A compiled translation unit (pre-link)."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalData] = {}
        self.meta: Dict[str, object] = {}

    def add_function(self, func: Function):
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func

    def add_global(self, data: GlobalData):
        if data.name in self.globals:
            raise ValueError(f"duplicate global {data.name!r}")
        self.globals[data.name] = data

    def merge(self, other: "Module"):
        """Link another module's contents into this one."""
        for func in other.functions.values():
            self.add_function(func)
        for data in other.globals.values():
            self.add_global(data)

    def dump(self) -> str:
        lines = []
        for func in self.functions.values():
            lines.append(f"func {func.name}:")
            for blk in func.blocks:
                lines.append(f"  {blk.label}:")
                for ins in blk.instrs:
                    lines.append(f"    {ins}")
        return "\n".join(lines)
