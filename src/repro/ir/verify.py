"""IR structural verifier.

Checks the invariants the -O0 code generator relies on:

* every basic block ends in exactly one terminator and contains no
  terminator earlier;
* every vreg is defined exactly once, before all of its uses, and all
  uses are inside the defining block (block-local expression trees);
* branch targets exist;
* locals referenced by AddrLocal exist in the frame.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import IRError
from repro.ir.ir import AddrLocal, Br, Function, Jmp, Module


def verify_function(fn: Function):
    labels = {blk.label for blk in fn.blocks}
    if len(labels) != len(fn.blocks):
        raise IRError(f"{fn.name}: duplicate block labels")
    defined_in: Dict[int, str] = {}

    for blk in fn.blocks:
        if not blk.instrs:
            raise IRError(f"{fn.name}/{blk.label}: empty block")
        for index, ins in enumerate(blk.instrs):
            last = index == len(blk.instrs) - 1
            if ins.is_terminator() != last:
                raise IRError(
                    f"{fn.name}/{blk.label}: terminator misplaced at "
                    f"{index} ({ins})"
                )
            for v in ins.defs():
                if v in defined_in:
                    raise IRError(
                        f"{fn.name}/{blk.label}: vreg {v} redefined")
                if not 0 <= v < len(fn.vreg_types):
                    raise IRError(f"{fn.name}: vreg {v} never allocated")
                defined_in[v] = blk.label
            if isinstance(ins, AddrLocal) and ins.name not in fn.locals:
                raise IRError(
                    f"{fn.name}/{blk.label}: unknown local {ins.name!r}")
            if isinstance(ins, Br):
                for target in (ins.then_label, ins.else_label):
                    if target not in labels:
                        raise IRError(
                            f"{fn.name}/{blk.label}: branch to missing "
                            f"block {target!r}")
            if isinstance(ins, Jmp) and ins.label not in labels:
                raise IRError(
                    f"{fn.name}/{blk.label}: jump to missing block "
                    f"{ins.label!r}")

    # Uses: defined earlier in the same block.
    for blk in fn.blocks:
        seen: Set[int] = set()
        for ins in blk.instrs:
            for v in ins.uses():
                if v in seen:
                    continue
                if defined_in.get(v) != blk.label:
                    raise IRError(
                        f"{fn.name}/{blk.label}: vreg {v} used in "
                        f"{blk.label} but defined in "
                        f"{defined_in.get(v)} ({ins})")
                raise IRError(
                    f"{fn.name}/{blk.label}: vreg {v} used before its "
                    f"definition ({ins})")
            for v in ins.defs():
                seen.add(v)
            # A use after the def in the same block is fine; re-walk:
        # Second pass done implicitly: the loop above flags any use whose
        # def has not yet been seen in this block.


def _verify_block_uses(fn: Function, blk) -> None:  # pragma: no cover
    pass


def verify_module(module: Module):
    """Verify every function; raises IRError on the first violation."""
    for fn in module.functions.values():
        verify_function(fn)
