"""IR structural verifier.

Checks the invariants the -O0 code generator relies on:

* every basic block ends in exactly one terminator and contains no
  terminator earlier;
* every vreg is defined exactly once, before all of its uses, and all
  uses are inside the defining block (block-local expression trees);
* branch targets exist;
* block labels are unique, including case-insensitively (codegen and
  ``Function.block`` look labels up by exact string, so two labels that
  differ only by case silently shadow each other);
* locals referenced by AddrLocal exist in the frame;
* calls to in-module functions pass the right number of arguments
  (unknown callees — runtime helpers — are skipped);
* optionally (``allow_unreachable=False``) no block is unreachable
  from the entry block.  The default is permissive because irgen
  deliberately emits ``dead.*`` landing blocks for statements after a
  ``return``; use :func:`unreachable_blocks` to inspect them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import IRError
from repro.ir.ir import AddrLocal, Br, Call, Function, Jmp, Module


def unreachable_blocks(fn: Function) -> List[str]:
    """Labels of blocks with no path from the entry block, layout order."""
    if not fn.blocks:
        return []
    succs: Dict[str, tuple] = {}
    for blk in fn.blocks:
        term = blk.instrs[-1] if blk.instrs else None
        if isinstance(term, Br):
            succs[blk.label] = (term.then_label, term.else_label)
        elif isinstance(term, Jmp):
            succs[blk.label] = (term.label,)
        else:
            succs[blk.label] = ()
    entry = fn.blocks[0].label
    seen = {entry}
    stack = [entry]
    while stack:
        for nxt in succs.get(stack.pop(), ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return [blk.label for blk in fn.blocks if blk.label not in seen]


def verify_function(fn: Function, module: Optional[Module] = None, *,
                    allow_unreachable: bool = True):
    labels = {blk.label for blk in fn.blocks}
    if len(labels) != len(fn.blocks):
        counts: Dict[str, int] = {}
        for blk in fn.blocks:
            counts[blk.label] = counts.get(blk.label, 0) + 1
        dupes = sorted(label for label, n in counts.items() if n > 1)
        raise IRError(f"{fn.name}: duplicate block labels {dupes}")
    folded: Dict[str, str] = {}
    for blk in fn.blocks:
        prev = folded.setdefault(blk.label.casefold(), blk.label)
        if prev != blk.label:
            raise IRError(
                f"{fn.name}: block labels {prev!r} and {blk.label!r} "
                f"differ only by case and would shadow each other")
    defined_in: Dict[int, str] = {}

    for blk in fn.blocks:
        if not blk.instrs:
            raise IRError(f"{fn.name}/{blk.label}: empty block")
        for index, ins in enumerate(blk.instrs):
            last = index == len(blk.instrs) - 1
            if ins.is_terminator() != last:
                raise IRError(
                    f"{fn.name}/{blk.label}: terminator misplaced at "
                    f"{index} ({ins})"
                )
            for v in ins.defs():
                if v in defined_in:
                    raise IRError(
                        f"{fn.name}/{blk.label}: vreg {v} redefined")
                if not 0 <= v < len(fn.vreg_types):
                    raise IRError(f"{fn.name}: vreg {v} never allocated")
                defined_in[v] = blk.label
            if isinstance(ins, AddrLocal) and ins.name not in fn.locals:
                raise IRError(
                    f"{fn.name}/{blk.label}: unknown local {ins.name!r}")
            if isinstance(ins, Call) and module is not None:
                callee = module.functions.get(ins.name)
                if callee is not None and \
                        len(ins.args) != len(callee.param_names):
                    raise IRError(
                        f"{fn.name}/{blk.label}: call to {ins.name!r} "
                        f"passes {len(ins.args)} argument(s) but its "
                        f"definition takes {len(callee.param_names)}")
            if isinstance(ins, Br):
                for target in (ins.then_label, ins.else_label):
                    if target not in labels:
                        raise IRError(
                            f"{fn.name}/{blk.label}: branch to missing "
                            f"block {target!r}")
            if isinstance(ins, Jmp) and ins.label not in labels:
                raise IRError(
                    f"{fn.name}/{blk.label}: jump to missing block "
                    f"{ins.label!r}")

    # Uses: defined earlier in the same block.
    for blk in fn.blocks:
        seen: Set[int] = set()
        for ins in blk.instrs:
            for v in ins.uses():
                if v in seen:
                    continue
                if defined_in.get(v) != blk.label:
                    raise IRError(
                        f"{fn.name}/{blk.label}: vreg {v} used in "
                        f"{blk.label} but defined in "
                        f"{defined_in.get(v)} ({ins})")
                raise IRError(
                    f"{fn.name}/{blk.label}: vreg {v} used before its "
                    f"definition ({ins})")
            for v in ins.defs():
                seen.add(v)
            # A use after the def in the same block is fine; re-walk:
        # Second pass done implicitly: the loop above flags any use whose
        # def has not yet been seen in this block.

    if not allow_unreachable:
        dead = unreachable_blocks(fn)
        if dead:
            raise IRError(
                f"{fn.name}: unreachable block(s) {dead} — no path from "
                f"entry {fn.blocks[0].label!r}")


def verify_module(module: Module, *, allow_unreachable: bool = True):
    """Verify every function; raises IRError on the first violation."""
    for fn in module.functions.values():
        verify_function(fn, module, allow_unreachable=allow_unreachable)
